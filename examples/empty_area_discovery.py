#!/usr/bin/env python
"""Empty-area discovery: the headline capability of access-area mining.

Option (a) of Section 2.2 — re-running queries and boxing their results —
can only ever see where the data *is*.  The access-area definition sees
where users *looked*.  This example runs both on the same set of
empty-area queries and contrasts the outcomes, including the paper's
`zooSpec.dec = -100` data-quality finding.

Run:  python examples/empty_area_discovery.py
"""

from repro import AccessAreaExtractor, skyserver_schema
from repro.algebra.predicates import ColumnRef
from repro.baselines import RequeryBaseline, requery_log
from repro.workload import ContentConfig, build_database

QUERIES = [
    # Southern sky: never observed by the survey.
    "SELECT objid FROM PhotoObjAll "
    "WHERE ra BETWEEN 20 AND 110 AND dec BETWEEN -85 AND -55",
    # Future spectroscopic ids: beyond any loaded plate.
    "SELECT * FROM galSpecLine WHERE specobjid "
    "BETWEEN 3600000000000000000 AND 5700000000000000000",
    # Negative photometric redshifts: physically impossible estimates.
    "SELECT objid, z FROM Photoz WHERE z >= -0.9 AND z <= -0.1",
    # The famous out-of-domain declination.
    "SELECT * FROM zooSpec WHERE ra BETWEEN 10 AND 100 "
    "AND dec BETWEEN -100 AND -20",
]


def main() -> None:
    schema = skyserver_schema()
    db = build_database(ContentConfig(), schema)
    extractor = AccessAreaExtractor(schema)
    requery = RequeryBaseline(db)

    print("=== What re-querying sees ===")
    report = requery_log(requery, QUERIES)
    for outcome in report.outcomes:
        status = ("EMPTY RESULT — intent invisible"
                  if outcome.empty_result else
                  f"error: {outcome.error}" if outcome.error else
                  f"MBR: {outcome.area.cnf}")
        print(f"  {outcome.sql[:64]:66s} -> {status}")
    print(f"\n  {report.empty_results}/{report.total} queries yield "
          "nothing to a result-based method.\n")

    print("=== What access-area extraction sees ===")
    for sql in QUERIES:
        area = extractor.extract(sql).area
        print(f"  {sql[:64]:66s}")
        print(f"    -> {area.describe()}")
    print()

    print("=== Data-quality finding (Section 6.3) ===")
    area = extractor.extract(QUERIES[3]).area
    hull = area.footprint_hull(ColumnRef("zooSpec", "dec"))
    declared = schema.column("zooSpec", "dec").effective_domain
    print(f"  queried dec range : {hull}")
    print(f"  declared domain   : {declared}")
    if hull.lo < declared.lo:
        print("  -> users query below the physical minimum of -90: "
              "a hint to tighten value ranges or improve documentation.")


if __name__ == "__main__":
    main()
