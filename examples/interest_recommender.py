#!/usr/bin/env python
"""Interest recommendation: "which parts of the data do others deem
important?" (Section 6.3).

Runs the case-study pipeline, fits an :class:`InterestRecommender` on
the resulting clusters, and plays three user scenarios:

* a newcomer (cold start → globally popular areas);
* a user refining a spectroscopic query (nearest related interests);
* a user whose window sits in empty space (their peers' empty-area
  interests rank first).

Run:  python examples/interest_recommender.py
"""

from repro import CaseStudyConfig, run_case_study
from repro.recommend import InterestRecommender
from repro.workload import WorkloadConfig


def main() -> None:
    print("Mining the community's interest areas ...")
    result = run_case_study(CaseStudyConfig(
        workload=WorkloadConfig(n_queries=3000, seed=13),
        sample_size=1500,
    ))
    from repro.core import AccessAreaExtractor
    extractor = AccessAreaExtractor(result.schema)
    recommender = InterestRecommender(
        result.stats, extractor=extractor,
        resolution=result.config.resolution).fit(
        [s.area for s in result.sample], result.clustering,
        sigma=result.config.sigma)
    print(f"indexed {recommender.n_clusters} interest areas\n")

    print("=== Cold start: the most popular interest areas ===")
    for rec in recommender.popular(k=4):
        print(f"  [{rec.popularity:>4} queries] {rec.suggested_sql[:90]}")
    print()

    scenarios = [
        ("A user inspecting early stellar spectra",
         "SELECT * FROM SpecObjAll WHERE plate BETWEEN 400 AND 900 "
         "AND class = 'star'"),
        ("A user browsing photometric redshifts",
         "SELECT objid, z FROM Photoz WHERE z BETWEEN 0.02 AND 0.08"),
        ("A user probing the (empty) southern sky",
         "SELECT * FROM PhotoObjAll WHERE ra BETWEEN 30 AND 100 "
         "AND dec BETWEEN -80 AND -55"),
    ]
    for title, sql in scenarios:
        print(f"=== {title} ===")
        print(f"  their query : {sql}")
        for rec in recommender.recommend_for_sql(sql, k=3):
            print(f"  -> {rec.describe()[:100]}")
            print(f"     try: {rec.suggested_sql[:92]}")
        print()


if __name__ == "__main__":
    main()
