#!/usr/bin/env python
"""Baseline showdown: our method vs. OLAPClus vs. raw-query clustering.

A compact rendition of Sections 6.4 and 6.5: generate one hot point-lookup
population and one transform-heavy range population, then cluster them
three ways and compare the outcomes.

Run:  python examples/baseline_showdown.py
"""

import random

from repro import AccessAreaExtractor, skyserver_schema
from repro.baselines import (fragmentation, olapclus_cluster,
                             raw_access_area)
from repro.clustering import partitioned_dbscan
from repro.distance import QueryDistance
from repro.schema import CONTENT_BOUNDS, StatisticsCatalog

HOT_LO, HOT_HI = 1_237_657_855_534_432_934, 1_237_666_210_342_830_434


def point_lookups(rng, n):
    return [f"SELECT z FROM Photoz WHERE objid = "
            f"{rng.randint(HOT_LO, HOT_HI)}" for _ in range(n)]


def transform_heavy_ranges(rng, n):
    statements = []
    for _ in range(n):
        a = rng.randint(3_520_000, 3_560_000) * 10 ** 12
        b = rng.randint(5_740_000, 5_788_000) * 10 ** 12
        style = rng.random()
        if style < 0.35:
            statements.append(
                f"SELECT specobjid, COUNT(*) FROM galSpecLine "
                f"WHERE specobjid >= {a} AND specobjid <= {b} "
                f"GROUP BY specobjid "
                f"HAVING COUNT(*) > {rng.randint(1, 10 ** 6)}")
        elif style < 0.6:
            statements.append(
                f"SELECT * FROM galSpecLine "
                f"WHERE NOT (specobjid < {a} OR specobjid > {b})")
        else:
            statements.append(
                f"SELECT * FROM galSpecLine "
                f"WHERE specobjid BETWEEN {a} AND {b}")
    return statements


def main() -> None:
    rng = random.Random(17)
    schema = skyserver_schema()
    extractor = AccessAreaExtractor(schema)
    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)

    for title, statements in [
        # Point lookups need density for DBSCAN chaining; the real log has
        # 179k of them — 500 is the laptop-scale stand-in.
        ("hot point lookups (Table 1 Cluster 1 analogue)",
         point_lookups(rng, 500)),
        ("transform-heavy id ranges (Cluster 19 analogue)",
         transform_heavy_ranges(rng, 150)),
    ]:
        print(f"=== {title} — {len(statements)} queries ===")
        areas = [extractor.extract(sql).area for sql in statements]
        for area in areas:
            stats.observe_cnf(area.cnf)
        distance = QueryDistance(stats, resolution=0.05)

        ours = partitioned_dbscan(areas, distance, eps=0.12, min_pts=5)
        print(f"  our method        : {ours.n_clusters} cluster(s), "
              f"{ours.noise_count} noise")

        olap = olapclus_cluster(areas, min_pts=2)
        print(f"  OLAPClus (exact)  : "
              f"{fragmentation(areas, min_pts=2)} groups "
              f"({olap.n_clusters} clusters + {olap.noise_count} noise)")

        raw_areas = [raw_access_area(sql, schema) for sql in statements]
        raw = partitioned_dbscan(raw_areas, distance, eps=0.12, min_pts=5)
        print(f"  raw + overlap     : {raw.n_clusters} cluster(s), "
              f"{raw.noise_count} noise")
        print()

    print("Shapes to compare with the paper:")
    print("  - OLAPClus shatters point lookups (~1 group per constant;")
    print("    the paper reports ~100,000 clusters for Cluster 1);")
    print("  - raw-query clustering splits / sheds the transform-heavy")
    print("    family (the paper's broken Clusters 2, 5, 8, 9, ...);")
    print("  - the access-area method keeps one cluster per interest.")


if __name__ == "__main__":
    main()
