#!/usr/bin/env python
"""Query-log forensics: batch extraction with the Section 6.1 taxonomy.

Processes a synthetic log (including malformed statements, DDL, dialect
mistakes, and server-erroring queries), prints the extraction rate and
failure breakdown, the per-stage timing profile of Section 6.6, and the
most common access-area signatures.

Run:  python examples/query_log_forensics.py [n_queries]
"""

import sys
from collections import Counter

from repro import AccessAreaExtractor, process_log, skyserver_schema
from repro.baselines import area_signature
from repro.workload import WorkloadConfig, generate_workload


def main() -> None:
    n_queries = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    workload = generate_workload(WorkloadConfig(n_queries=n_queries,
                                                seed=99))
    extractor = AccessAreaExtractor(skyserver_schema())

    report = process_log(workload.log.statements_with_users(), extractor)

    print(f"log statements      : {report.total:,}")
    print(f"areas extracted     : {report.extraction_count:,} "
          f"({report.extraction_rate:.2%}; paper: 99.46%)")
    print(f"  syntax errors     : {report.parse_errors}")
    print(f"  lexical garbage   : {report.lex_errors}")
    print(f"  non-SELECT / DDL  : {report.unsupported_statements}")
    print(f"  CNF blow-ups      : {report.cnf_failures}")
    print()

    print("failure examples:")
    for index, kind, message in report.failures[:5]:
        sql = workload.log[index].sql
        print(f"  [{kind:<11}] {sql[:48]:50s} {message[:40]}")
    print()

    print("per-stage timings (Section 6.6):")
    print(f"  {'stage':<12} {'min ms':>9} {'mean ms':>9} {'max ms':>9}")
    for stage in ("parse", "extract", "cnf", "consolidate"):
        s = report.stage_timings[stage]
        print(f"  {stage:<12} {s.minimum * 1e3:>9.3f} "
              f"{s.mean * 1e3:>9.3f} {s.maximum * 1e3:>9.3f}")
    print()

    relation_counts = Counter()
    for extracted in report.extracted:
        relation_counts[extracted.area.relations] += 1
    print("most-queried relation combinations:")
    for relations, count in relation_counts.most_common(8):
        print(f"  {count:>6,}  {', '.join(relations)}")
    print()

    signature_counts = Counter(
        area_signature(e.area) for e in report.extracted)
    repeated = sum(1 for c in signature_counts.values() if c > 1)
    print(f"distinct access-area signatures : {len(signature_counts):,}")
    print(f"signatures issued repeatedly    : {repeated:,}")


if __name__ == "__main__":
    main()
