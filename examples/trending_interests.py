#!/usr/bin/env python
"""Trending interests: how community focus shifts over time.

The paper's abstract motivates access-area mining with understanding
"the public focus, and trending research directions".  This example
generates a log whose composition drifts — the early-survey star study
(family 9) only appears late, the metadata lookups (family 10) only
early — splits the timeline into windows, mines each window's interest
areas, and prints the emerged / persisted / vanished trends.

Run:  python examples/trending_interests.py
"""

from repro import AccessAreaExtractor, StatisticsCatalog, process_log, \
    skyserver_schema
from repro.analysis import mine_drift, split_by_time
from repro.schema.skyserver import CONTENT_BOUNDS
from repro.workload import WorkloadConfig, generate_workload


def main() -> None:
    schema = skyserver_schema()
    workload = generate_workload(WorkloadConfig(
        n_queries=2500, seed=5,
        emerging_families=(9, 24),   # star study + high-z hunt start late
        fading_families=(10,),       # metadata curiosity dies off
    ))
    print(f"extracting areas from {len(workload.log):,} statements ...")
    extractor = AccessAreaExtractor(schema)
    report = process_log(workload.log.statements(), extractor)
    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)
    for extracted in report.extracted:
        stats.observe_cnf(extracted.area.cnf)

    pairs = [(item.area, workload.log[item.index].timestamp)
             for item in report.extracted]
    windows = split_by_time(pairs, 3)
    print(f"windows: {[len(w) for w in windows]} queries\n")

    drift = mine_drift(windows, stats, eps=0.12, min_pts=5)
    print(drift.describe(limit=0))
    print()

    print("=== Emerged interests (new research directions) ===")
    for trend in drift.emerged():
        print(f"  {trend.describe()[:100]}")
    print()
    print("=== Vanished interests ===")
    for trend in drift.vanished():
        print(f"  {trend.describe()[:100]}")
    print()
    print("=== Biggest movers among persisting interests ===")
    movers = sorted(drift.persisted(),
                    key=lambda t: abs(t.growth - 1), reverse=True)
    for trend in movers[:6]:
        print(f"  {trend.describe()[:100]}")


if __name__ == "__main__":
    main()
