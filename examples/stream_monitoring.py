#!/usr/bin/env python
"""Stream monitoring: the operator's live view of a query log.

Section 4 of the paper sketches extracting access areas "from an
incoming stream of logged queries, to detect changes in this data stream
and to notify the system operator about the occurrence of new predicates
and query types".  This example replays a synthetic log through the
:class:`StreamMonitor`, printing notifications as they fire, then shows
the user analytics (bots vs. mortals, test vs. final queries).

Run:  python examples/stream_monitoring.py [n_queries]
"""

import sys

from repro import AccessAreaExtractor, StatisticsCatalog, skyserver_schema
from repro.analysis import (UserQuery, analyze_users,
                            classify_test_queries, format_user_report)
from repro.core.stream import StreamMonitor
from repro.schema.skyserver import CONTENT_BOUNDS
from repro.workload import WorkloadConfig, generate_workload


def main() -> None:
    n_queries = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    schema = skyserver_schema()
    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)
    workload = generate_workload(WorkloadConfig(n_queries=n_queries,
                                                seed=77))

    printed = 0

    def notify(event) -> None:
        nonlocal printed
        if printed < 20:
            print(f"  {event}")
            printed += 1
        elif printed == 20:
            print("  ... (further events suppressed)")
            printed += 1

    print(f"Replaying {len(workload.log):,} statements "
          "(warmup: 300) ...")
    monitor = StreamMonitor(AccessAreaExtractor(schema), stats=stats,
                            on_event=notify, warmup=300)
    monitor.process_many(workload.log.statements())
    print()
    print(monitor.summary())
    print()

    # -- user analytics over the same stream -------------------------------
    print("User analytics (bot/mortal split):")
    extractor = AccessAreaExtractor(schema)
    queries: list[UserQuery] = []
    for entry in workload.log.entries[:2000]:
        try:
            area = extractor.extract(entry.sql).area
        except Exception:
            continue
        queries.append(UserQuery(entry.user, area, entry.sql))
    analytics = analyze_users(queries, bot_min_queries=5,
                              bot_repetition=0.6)
    print(format_user_report(analytics, top=8))
    print()

    heavy_users = sorted(analytics.profiles.values(),
                         key=lambda p: p.query_count, reverse=True)
    if heavy_users:
        user = heavy_users[0].user
        own = [q for q in queries if q.user == user]
        roles = classify_test_queries(own)
        finals = sum(1 for r in roles if r.is_final)
        print(f"test-vs-final for {user}: {len(roles) - finals} test "
              f"queries, {finals} final queries")


if __name__ == "__main__":
    main()
