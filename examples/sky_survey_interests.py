#!/usr/bin/env python
"""The full case study: mine user interests from a SkyServer-style log.

Reproduces the Section 6 pipeline end-to-end on the synthetic substrate
and prints the Table-1 style report plus the Figure-1 ASCII panels —
the same artifacts the benchmark harness regenerates, here sized for an
interactive run.

Run:  python examples/sky_survey_interests.py [n_queries]
"""

import sys
import time

from repro import CaseStudyConfig, run_case_study
from repro.analysis import (figure1a, figure1b, figure1c, format_summary,
                            format_table1)
from repro.workload import ContentConfig, WorkloadConfig


def main() -> None:
    n_queries = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    config = CaseStudyConfig(
        workload=WorkloadConfig(n_queries=n_queries, seed=13),
        content=ContentConfig(photo_rows=2000, spec_rows=1600,
                              satellite_rows=1000, seed=7),
        sample_size=min(2000, n_queries),
    )

    print(f"Mining user interests from a {n_queries:,}-statement log ...")
    start = time.perf_counter()
    result = run_case_study(config)
    print(f"done in {time.perf_counter() - start:.1f}s\n")

    print(format_summary(result))
    print()
    print("Top aggregated access areas (Table 1 layout):")
    print(format_table1(result.rows, max_rows=24))
    print()

    empty_rows = [row for row in result.rows if row.is_empty_area]
    print(f"{len(empty_rows)} clusters lie in EMPTY parts of the data "
          "space — user interest in sky regions / id ranges / redshifts "
          "with no data behind them:")
    for row in empty_rows[:8]:
        print(f"  n={row.cardinality:>4}  {row.description}")
    print()

    for figure in (figure1a(result), figure1b(result), figure1c(result)):
        print(figure.render_ascii())
        print()


if __name__ == "__main__":
    main()
