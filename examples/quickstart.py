#!/usr/bin/env python
"""Quickstart: extract access areas from individual SQL statements.

Demonstrates the core public API on the query shapes Section 4 of the
paper discusses — simple selections, joins, aggregates, and nested
queries — and shows how the intermediate format (relations + CNF) is the
state-independent description of "what the user was after".

Run:  python examples/quickstart.py
"""

from repro import AccessAreaExtractor, skyserver_schema

EXAMPLES = [
    ("Simple selection (Section 4.1)",
     "SELECT u, g, r FROM PhotoObjAll WHERE ra <= 210 AND dec <= 10"),
    ("BETWEEN splits into bounds",
     "SELECT * FROM SpecObjAll WHERE plate BETWEEN 296 AND 3200"),
    ("NOT inverts operators",
     "SELECT * FROM Photoz WHERE NOT (z < 0.2 OR z > 0.8)"),
    ("Join condition pushed into the constraint (Section 4.2)",
     "SELECT s.z FROM SpecObjAll s JOIN PhotoObjAll p "
     "ON s.bestobjid = p.objid WHERE p.r < 17.5"),
    ("FULL OUTER JOIN drops the constraint (Example 2)",
     "SELECT * FROM galSpecExtra FULL OUTER JOIN galSpecIndx "
     "ON galSpecExtra.specobjid = galSpecIndx.specObjID"),
    ("Aggregate HAVING via the Lemma mappings (Section 4.3)",
     "SELECT plate, COUNT(*) FROM SpecObjAll WHERE mjd > 52000 "
     "GROUP BY plate HAVING COUNT(*) > 100"),
    ("Nested EXISTS flattened (Lemma 4)",
     "SELECT * FROM PhotoObjAll WHERE dec < -50 AND EXISTS "
     "(SELECT * FROM SpecObjAll WHERE "
     "SpecObjAll.bestobjid = PhotoObjAll.objid AND SpecObjAll.z > 2)"),
    ("A query that ERRORS on the real server still has an area",
     "SELECT objid FROM PhotoObjAll LIMIT 10"),
    ("A contradictory query has the empty area",
     "SELECT * FROM Photoz WHERE z > 5 AND z < 1"),
]


def main() -> None:
    extractor = AccessAreaExtractor(skyserver_schema())
    for title, sql in EXAMPLES:
        result = extractor.extract(sql)
        area = result.area
        print(f"--- {title}")
        print(f"    SQL   : {sql}")
        print(f"    tables: {', '.join(area.relations)}")
        print(f"    area  : {area.cnf}")
        if area.notes:
            print(f"    notes : {'; '.join(area.notes)}")
        timing = result.timings
        print(f"    stages: parse {timing.parse * 1e3:.2f}ms, "
              f"extract {timing.extract * 1e3:.2f}ms, "
              f"cnf {timing.cnf * 1e3:.2f}ms, "
              f"consolidate {timing.consolidate * 1e3:.2f}ms")
        print()


if __name__ == "__main__":
    main()
