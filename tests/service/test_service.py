"""The interest service over its resident pipeline state.

The load-bearing checks:

* **Batch parity** — after ingesting a workload through ``POST
  /queries``, the live labels equal a from-scratch weighted
  ``DBSCAN.fit`` over the service's unique areas (same metric, same
  numbering) — the incremental path serves the same answer the batch
  pipeline would.
* **Graceful degradation** — an arrival the block-sparse backend
  refuses (its table set would drop the partition exactness bound to
  ``eps``) returns **200** with ``status: "unclustered"`` and leaves
  the resident state untouched; it never becomes an HTTP error.
* **Concurrent reads** — snapshot-backed GETs interleaved with the
  single writer never see a half-applied update.
"""

import asyncio

import pytest

np = pytest.importorskip("numpy")

from repro.algebra.intervals import Interval
from repro.clustering import DBSCAN
from repro.distance import QueryDistance
from repro.obs.metrics import MetricsRegistry
from repro.schema import Column, ColumnType, Relation, Schema
from repro.service import (AppState, ServiceConfig, TestClient,
                           create_app)
from repro.workload import WorkloadConfig, generate_workload


def _service(config: ServiceConfig, schema=None):
    registry = MetricsRegistry()
    state = AppState(config, schema=schema, registry=registry)
    return create_app(state=state), state


@pytest.fixture(scope="module")
def ingested():
    """A service that has swallowed the seed synthetic workload."""
    app, state = _service(ServiceConfig(eps=0.12, min_pts=3, warmup=10,
                                        min_cluster_size=2))
    client = TestClient(app)
    workload = generate_workload(WorkloadConfig(n_queries=150, seed=7))
    outcomes = []
    for sql, user in workload.log.statements_with_users():
        response = client.post("/queries", json={"sql": sql,
                                                 "user": user})
        assert response.status == 200
        outcomes.append(response.json())
    return app, state, client, outcomes


class TestIngest:
    def test_statements_cluster(self, ingested):
        _, _, _, outcomes = ingested
        statuses = {o["status"] for o in outcomes}
        assert "clustered" in statuses
        clustered = [o for o in outcomes if o["status"] == "clustered"]
        assert all(isinstance(o["label"], int) for o in clustered)
        assert all(isinstance(o["unique_index"], int)
                   for o in clustered)

    def test_labels_match_batch_dbscan(self, ingested):
        _, state, _, _ = ingested
        clusterer = state.clusterer
        metric = QueryDistance(state.frozen_stats)
        want = DBSCAN(eps=state.config.eps,
                      min_pts=state.config.min_pts).fit(
            clusterer.areas(), distance=metric,
            weights=clusterer.weights())
        assert clusterer.labels() == list(want.labels)

    def test_missing_sql_field_is_400(self, ingested):
        _, _, client, _ = ingested
        assert client.post("/queries", json={}).status == 400
        assert client.post("/queries",
                           json={"sql": "   "}).status == 400
        assert client.post("/queries",
                           json={"sql": "SELECT 1",
                                 "user": 7}).status == 400

    def test_unparseable_statement_degrades(self, ingested):
        _, _, client, _ = ingested
        response = client.post("/queries",
                               json={"sql": "CLEARLY NOT SQL"})
        assert response.status == 200
        body = response.json()
        assert body["status"] == "failed"
        assert "error" in body


class TestReads:
    def test_clusters_listing(self, ingested):
        _, state, client, _ = ingested
        body = client.get("/clusters").json()
        assert body["n_clusters"] == state.clusterer.n_clusters
        total_unique = (sum(r["unique_areas"] for r in body["clusters"])
                        + body["noise"]["unique_areas"])
        assert total_unique == state.clusterer.n_unique
        weighted = (sum(r["weighted_size"] for r in body["clusters"])
                    + body["noise"]["weighted_size"])
        assert weighted == pytest.approx(sum(
            state.clusterer.weights()))

    def test_cluster_detail(self, ingested):
        _, _, client, _ = ingested
        first = client.get("/clusters").json()["clusters"][0]
        body = client.get(f"/clusters/{first['id']}").json()
        assert body["weighted_size"] == pytest.approx(
            first["weighted_size"])
        assert body["description"]
        assert body["suggested_sql"].startswith("SELECT")
        assert 0.0 <= body["area_coverage"] <= 1.0

    def test_cluster_detail_errors(self, ingested):
        _, _, client, _ = ingested
        assert client.get("/clusters/not-an-int").status == 400
        assert client.get("/clusters/99999").status == 404

    def test_user_interests(self, ingested):
        _, state, client, _ = ingested
        user = max(state.users, key=lambda u: sum(
            state.users[u].values()))
        body = client.get(f"/users/{user}/interests").json()
        assert body["user"] == user
        rows = body["interests"]
        assert rows == sorted(rows, key=lambda r: r["queries"],
                              reverse=True)
        assert all(r["cluster"] >= 0 for r in rows)

    def test_unknown_user_is_404(self, ingested):
        _, _, client, _ = ingested
        assert client.get("/users/nobody-ever/interests").status == 404

    def test_recommend_for_sql(self, ingested):
        _, _, client, _ = ingested
        response = client.get("/recommend", params={
            "sql": "SELECT * FROM PhotoObjAll "
                   "WHERE ra BETWEEN 100 AND 120",
            "k": "3"})
        assert response.status == 200
        rows = response.json()["recommendations"]
        assert rows
        distances = [r["distance"] for r in rows]
        assert distances == sorted(distances)

    def test_recommend_popular_without_sql(self, ingested):
        _, _, client, _ = ingested
        rows = client.get("/recommend").json()["recommendations"]
        assert rows
        # The NaN regression: popular rows must serialize distance as
        # JSON null, not the string "NaN" json.dumps would emit.
        assert all(r["distance"] is None for r in rows)
        popularity = [r["popularity"] for r in rows]
        assert popularity == sorted(popularity, reverse=True)

    def test_recommend_k_validation(self, ingested):
        _, _, client, _ = ingested
        assert client.get("/recommend",
                          params={"k": "0"}).status == 400
        assert client.get("/recommend",
                          params={"k": "999"}).status == 400
        assert client.get("/recommend",
                          params={"k": "x"}).status == 400

    def test_recommend_bad_sql_is_422(self, ingested):
        _, _, client, _ = ingested
        response = client.get("/recommend",
                              params={"sql": "NOT SQL"})
        assert response.status == 422

    def test_healthz(self, ingested):
        _, state, client, _ = ingested
        body = client.get("/healthz").json()
        assert body["status"] == "ok"
        assert body["ingested"] == state.monitor.state.processed
        assert body["n_clusters"] == state.clusterer.n_clusters
        assert body["backend"] == "sparse"

    def test_metrics_exposition(self, ingested):
        _, _, client, _ = ingested
        response = client.get("/metrics")
        assert response.status == 200
        assert response.headers["content-type"].startswith("text/plain")
        text = response.text
        assert "repro_service_requests_total" in text
        assert "repro_service_request_seconds" in text
        assert "repro_service_ingested_total" in text
        assert "repro_incremental_arrivals_total" in text


class TestRefusalDegradation:
    """eps=0.3 over a 3-relation join world: adding a 4th relation to
    the join drops the table-partition bound to 1 - 3/4 = 0.25 <= eps,
    so the backend refuses pre-mutation and ingest degrades."""

    @pytest.fixture()
    def join_world(self):
        schema = Schema("joins")
        for name in ("A", "B", "C", "D"):
            schema.add(Relation(name, (
                Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),
                Column("k", ColumnType.INT, Interval(0.0, 1000.0)),)))
        app, state = _service(
            ServiceConfig(eps=0.3, min_pts=2, warmup=0, backend="sparse",
                          min_cluster_size=1),
            schema=schema)
        return app, state, TestClient(app)

    def test_refused_arrival_degrades_to_200(self, join_world):
        _, state, client = join_world
        for i in range(3):
            response = client.post("/queries", json={
                "sql": f"SELECT * FROM A JOIN B ON A.k = B.k "
                       f"JOIN C ON B.k = C.k "
                       f"WHERE A.x BETWEEN {10 + i} AND {20 + i}"})
            assert response.json()["status"] == "clustered"
        before = state.clusterer.n_unique
        response = client.post("/queries", json={
            "sql": "SELECT * FROM A JOIN B ON A.k = B.k "
                   "JOIN C ON B.k = C.k JOIN D ON C.k = D.k "
                   "WHERE A.x BETWEEN 10 AND 20"})
        assert response.status == 200
        body = response.json()
        assert body["status"] == "unclustered"
        assert body["label"] is None
        # Pre-mutation refusal: the population is untouched and the
        # next compatible arrival still clusters.
        assert state.clusterer.n_unique == before
        response = client.post("/queries", json={
            "sql": "SELECT * FROM A JOIN B ON A.k = B.k "
                   "JOIN C ON B.k = C.k "
                   "WHERE A.x BETWEEN 12 AND 22"})
        assert response.json()["status"] == "clustered"

    def test_refusals_counted(self, join_world):
        _, state, client = join_world
        client.post("/queries", json={
            "sql": "SELECT * FROM A JOIN B ON A.k = B.k "
                   "JOIN C ON B.k = C.k WHERE A.x < 50"})
        client.post("/queries", json={
            "sql": "SELECT * FROM A JOIN B ON A.k = B.k "
                   "JOIN C ON B.k = C.k JOIN D ON C.k = D.k "
                   "WHERE A.x < 50"})
        text = client.get("/metrics").text
        assert "repro_incremental_refused_total 1" in text
        assert 'repro_service_ingested_total{status="unclustered"} 1' \
            in text


class TestConcurrency:
    def test_reads_interleaved_with_writer(self):
        app, state = _service(ServiceConfig(eps=0.12, min_pts=3,
                                            warmup=0,
                                            min_cluster_size=2))
        client = TestClient(app)
        workload = generate_workload(WorkloadConfig(n_queries=60,
                                                    seed=3))
        statements = workload.log.statements_with_users()

        async def writer():
            for sql, user in statements:
                response = await client.apost(
                    "/queries", json={"sql": sql, "user": user})
                assert response.status == 200
                await asyncio.sleep(0)

        async def reader(path):
            seen = []
            for _ in range(40):
                response = await client.aget(path)
                assert response.status == 200
                seen.append(response.json())
                await asyncio.sleep(0)
            return seen

        async def run():
            return await asyncio.gather(
                writer(), reader("/clusters"), reader("/healthz"))

        _, cluster_reads, _ = asyncio.run(run())
        # Every observed snapshot is internally consistent: the listed
        # clusters are exactly the distinct non-noise labels.
        for body in cluster_reads:
            assert len(body["clusters"]) == body["n_clusters"]
        versions = [body["version"] for body in cluster_reads]
        assert versions == sorted(versions)
        # And the writer really ran underneath those reads.
        assert state.monitor.state.processed == len(statements)

    def test_recommender_refresh_is_lazy(self):
        app, state = _service(ServiceConfig(eps=0.12, min_pts=2,
                                            warmup=0,
                                            min_cluster_size=1))
        client = TestClient(app)
        for i in range(4):
            client.post("/queries", json={
                "sql": f"SELECT * FROM PhotoObjAll WHERE ra BETWEEN "
                       f"{100 + i} AND {120 + i}"})
        first = state.recommender()
        assert state.recommender() is first  # cached between changes
        for i in range(4):
            client.post("/queries", json={
                "sql": f"SELECT * FROM SpecObjAll WHERE z BETWEEN "
                       f"0.{i} AND 0.{i + 2}"})
        assert state.recommender() is not first  # CLUSTER_CHANGED
