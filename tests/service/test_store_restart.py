"""Resident state survives a service restart via the area store.

The contract: every ingest is journalled; a new ``AppState`` over the
same ``store_dir`` replays the journal — areas fetched by fingerprint
digest, re-clustered in arrival order, **zero** SQL re-extraction —
and serves bitwise-identical labels.  ``max_resident`` bounds the
intern pool without changing any answer.
"""

import pytest

pytest.importorskip("numpy")

from repro.obs.metrics import MetricsRegistry
from repro.service import AppState, ServiceConfig, TestClient, create_app
from repro.workload import WorkloadConfig, generate_workload


def _ingest_workload(state, n=120, seed=11):
    workload = generate_workload(WorkloadConfig(n_queries=n, seed=seed))
    for sql, user in workload.log.statements_with_users():
        state.ingest(sql, user=user)
    state.ingest("NOT SQL AT ALL ((", user="mallory")


def _fresh(config):
    return AppState(config, registry=MetricsRegistry())


@pytest.fixture()
def store_config(tmp_path):
    return ServiceConfig(eps=0.12, min_pts=3, warmup=10,
                         min_cluster_size=2,
                         store_dir=str(tmp_path / "s"))


def test_restart_replays_bitwise_identical_state(store_config):
    first = _fresh(store_config)
    _ingest_workload(first)
    labels = list(first.monitor.statement_labels)
    counters = (first.monitor.state.processed,
                first.monitor.state.extracted,
                first.monitor.state.failures)
    sizes = first.snapshot().sizes()
    users = {user: {a.fingerprint: n for a, n in ledger.items()}
             for user, ledger in first.users.items()}
    first.close()

    second = _fresh(store_config)
    assert second.replayed == counters[0]
    assert list(second.monitor.statement_labels) == labels
    assert (second.monitor.state.processed,
            second.monitor.state.extracted,
            second.monitor.state.failures) == counters
    assert second.snapshot().sizes() == sizes
    assert {user: {a.fingerprint: n for a, n in ledger.items()}
            for user, ledger in second.users.items()} == users
    second.close()


def test_restart_does_not_reextract_sql(store_config, monkeypatch):
    first = _fresh(store_config)
    _ingest_workload(first, n=60)
    first.close()

    calls = []
    from repro.core.extractor import AccessAreaExtractor
    original = AccessAreaExtractor.extract

    def counting(self, sql):
        calls.append(sql)
        return original(self, sql)

    monkeypatch.setattr(AccessAreaExtractor, "extract", counting)
    second = _fresh(store_config)
    assert second.replayed > 0
    assert calls == []  # warm open parsed nothing
    second.close()


def test_ingest_continues_after_restart(store_config):
    first = _fresh(store_config)
    _ingest_workload(first, n=60)
    first.close()

    second = _fresh(store_config)
    before = second.monitor.state.processed
    outcome = second.ingest(
        "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 20",
        user="carol")
    assert outcome.status in ("clustered", "unclustered")
    assert second.monitor.state.processed == before + 1
    assert "carol" in second.users or "carol" in second.user_unclustered
    second.close()


def test_max_resident_bounds_pool_not_answers(tmp_path):
    base = ServiceConfig(eps=0.12, min_pts=3, warmup=10,
                         min_cluster_size=2,
                         store_dir=str(tmp_path / "a"))
    bounded = ServiceConfig(eps=0.12, min_pts=3, warmup=10,
                            min_cluster_size=2,
                            store_dir=str(tmp_path / "b"),
                            max_resident=8)
    s1, s2 = _fresh(base), _fresh(bounded)
    _ingest_workload(s1, n=100)
    _ingest_workload(s2, n=100)
    assert s2.interner.resident <= 8
    assert s2.interner.evictions > 0
    assert len(s2.interner) == len(s1.interner)
    assert list(s2.monitor.statement_labels) == \
        list(s1.monitor.statement_labels)
    s1.close()
    s2.close()


def test_max_resident_requires_store_dir():
    with pytest.raises(ValueError):
        ServiceConfig(max_resident=4)


def test_healthz_reports_store_and_monotonic_uptime(store_config):
    state = _fresh(store_config)
    _ingest_workload(state, n=40)
    client = TestClient(create_app(state=state))
    body = client.get("/healthz").json()
    assert body["status"] == "ok"
    assert body["uptime_seconds"] >= 0
    assert body["intern_resident"] == state.interner.resident
    store = body["store"]
    assert store["dir"] == store_config.store_dir
    assert store["backing"] == "disk"
    assert store["journal_length"] == state.monitor.state.processed
    assert store["segment_bytes"] > 0
    assert 0.0 <= store["buffer_pool"]["hit_rate"] <= 1.0
    assert store["buffer_pool"]["resident_bytes"] >= 0
    state.close()


def test_healthz_without_store_has_no_store_section():
    state = AppState(ServiceConfig(warmup=5),
                     registry=MetricsRegistry())
    client = TestClient(create_app(state=state))
    body = client.get("/healthz").json()
    assert body["uptime_seconds"] >= 0
    assert "store" not in body
