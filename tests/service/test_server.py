"""The stdlib asyncio HTTP/1.1 host, exercised over a real socket."""

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import HTTPServer, ServiceConfig, create_app


async def _in_executor(func, *args):
    return await asyncio.get_running_loop().run_in_executor(
        None, func, *args)


def _get(port, path):
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10) as response:
        return response.status, response.read()


def _post(port, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"content-type": "application/json"})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def test_round_trip_over_socket():
    app = create_app(ServiceConfig(warmup=0, min_pts=2,
                                   min_cluster_size=1),
                     registry=MetricsRegistry())

    async def scenario():
        server = HTTPServer(app, "127.0.0.1", 0)
        port = await server.start()
        try:
            status, body = await _in_executor(
                _post, port, "/queries",
                {"sql": "SELECT * FROM PhotoObjAll "
                        "WHERE ra BETWEEN 1 AND 2",
                 "user": "u1"})
            assert status == 200
            assert body["status"] == "clustered"
            status, raw = await _in_executor(_get, port, "/healthz")
            assert status == 200
            assert json.loads(raw)["ingested"] == 1
            status, raw = await _in_executor(_get, port, "/metrics")
            assert status == 200
            assert b"repro_service_requests_total" in raw
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_error_statuses_over_socket():
    app = create_app(ServiceConfig(warmup=0),
                     registry=MetricsRegistry())

    def expect_error(port, path):
        try:
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}{path}", timeout=10):
                pytest.fail("expected an HTTP error")
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    async def scenario():
        server = HTTPServer(app, "127.0.0.1", 0)
        port = await server.start()
        try:
            code, body = await _in_executor(
                expect_error, port, "/definitely-not-a-route")
            assert (code, body) == (404, {"error": "not found"})
            code, body = await _in_executor(
                expect_error, port, "/clusters/xyz")
            assert code == 400
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_keep_alive_reuses_connection():
    """Two requests down one connection (HTTP/1.1 keep-alive)."""
    app = create_app(ServiceConfig(warmup=0),
                     registry=MetricsRegistry())

    async def scenario():
        server = HTTPServer(app, "127.0.0.1", 0)
        port = await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            for _ in range(2):
                writer.write(b"GET /healthz HTTP/1.1\r\n"
                             b"host: test\r\n\r\n")
                await writer.drain()
                status_line = await reader.readline()
                assert b"200" in status_line
                length = 0
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n"):
                        break
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":")[1])
                body = await reader.readexactly(length)
                assert json.loads(body)["status"] == "ok"
            writer.close()
            await writer.wait_closed()
        finally:
            await server.stop()

    asyncio.run(scenario())
