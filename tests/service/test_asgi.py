"""The dependency-free ASGI routing core."""

import pytest

from repro.service import (App, HTTPError, JSONResponse, Request,
                           Response, TestClient)


@pytest.fixture()
def app():
    application = App()

    @application.get("/ping")
    async def ping(request: Request):
        return {"pong": True}

    @application.get("/items/{key}")
    async def item(request: Request):
        return {"key": request.path_params["key"]}

    @application.post("/echo")
    async def echo(request: Request):
        return {"got": request.json()}

    @application.get("/teapot")
    async def teapot(request: Request):
        raise HTTPError(418, "short and stout")

    @application.get("/boom")
    async def boom(request: Request):
        raise RuntimeError("kaboom")

    @application.get("/raw")
    async def raw(request: Request):
        return Response("plain", status=201,
                        content_type="text/x-custom")

    return application


class TestRouting:
    def test_dict_becomes_json_200(self, app):
        response = TestClient(app).get("/ping")
        assert response.status == 200
        assert response.headers["content-type"] == "application/json"
        assert response.json() == {"pong": True}

    def test_path_params_decoded(self, app):
        response = TestClient(app).get("/items/a%20user")
        assert response.json() == {"key": "a user"}

    def test_unknown_path_is_404(self, app):
        response = TestClient(app).get("/nope")
        assert response.status == 404
        assert response.json() == {"error": "not found"}

    def test_wrong_method_is_405(self, app):
        response = TestClient(app).post("/ping", json={})
        assert response.status == 405

    def test_response_passthrough(self, app):
        response = TestClient(app).get("/raw")
        assert (response.status, response.text) == (201, "plain")
        assert response.headers["content-type"] == "text/x-custom"

    def test_query_params_last_wins(self, app):
        client = TestClient(app)
        response = client.request("GET", "/ping",
                                  params={"a": "1", "b": "2"})
        assert response.status == 200


class TestErrors:
    def test_http_error_envelope(self, app):
        response = TestClient(app).get("/teapot")
        assert response.status == 418
        assert response.json() == {"error": "short and stout"}

    def test_unexpected_exception_is_500(self, app):
        response = TestClient(app).get("/boom")
        assert response.status == 500
        assert response.json() == {"error": "internal server error"}

    def test_invalid_json_body_is_400(self, app):
        response = TestClient(app).post("/echo", body=b"{nope")
        assert response.status == 400
        assert "invalid JSON" in response.json()["error"]

    def test_non_object_body_is_400(self, app):
        response = TestClient(app).post("/echo", body=b"[1, 2]")
        assert response.status == 400

    def test_empty_body_is_400(self, app):
        response = TestClient(app).post("/echo")
        assert response.status == 400


class TestObserver:
    def test_observer_sees_route_template(self):
        seen = []
        application = App(observer=lambda *a: seen.append(a))

        @application.get("/items/{key}")
        async def item(request: Request):
            return {"key": request.path_params["key"]}

        client = TestClient(application)
        client.get("/items/42")
        client.get("/missing")
        assert len(seen) == 2
        template, method, status, seconds = seen[0]
        assert (template, method, status) == ("/items/{key}", "GET", 200)
        assert seconds >= 0.0
        # Unrouted requests report the raw path (no template to name).
        assert seen[1][:3] == ("/missing", "GET", 404)

    def test_json_response_sorts_keys(self):
        response = JSONResponse({"b": 1, "a": 2})
        assert response.body == b'{"a": 2, "b": 1}'
