"""The AreaStore facade: durability, recovery, and observability."""

import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.store import AreaStore, fingerprint_digest, open_store


def test_open_store_is_optional(tmp_path):
    assert open_store(None) is None
    assert open_store("") is None
    store = open_store(str(tmp_path / "s"))
    assert isinstance(store, AreaStore)
    store.close()


def test_append_is_idempotent_by_fingerprint(tmp_path, areas):
    with AreaStore(str(tmp_path / "s")) as store:
        digests = [store.append_area(area) for area in areas]
        assert len(store) == len(areas)
        # appending the same areas again only re-hits the index
        assert [store.append_area(a) for a in areas] == digests
        assert len(store) == len(areas)
        for digest, area in zip(digests, areas):
            assert digest in store
            got = store.get_area(digest)
            assert got.fingerprint == area.fingerprint
        assert store.get_area(b"\x00" * 32) is None
        # first-appended order, no duplicates
        assert [d for d, _ in store.iter_areas()] == digests


def test_reopen_recovers_unpublished_index(tmp_path, areas):
    """Records appended after the last checkpoint are re-indexed on
    open — the index ⊆ segments invariant, restored to equality."""
    path = str(tmp_path / "s")
    store = AreaStore(path)
    digests = [store.append_area(area) for area in areas[:3]]
    store.checkpoint()
    late = [store.append_area(area) for area in areas[3:]]
    # no close(): the index snapshot never saw the late appends
    del store

    reopened = AreaStore(path)
    assert len(reopened) == len(areas)
    for digest, area in zip(digests + late, areas):
        assert reopened.get_area(digest).fingerprint == area.fingerprint
    # re-appending post-recovery neither duplicates nor double-counts
    for area in areas:
        reopened.append_area(area)
    assert len(reopened) == len(areas)
    reopened.close()


def test_torn_store_tail_loses_only_the_torn_record(tmp_path, areas):
    path = str(tmp_path / "s")
    store = AreaStore(path)
    kept = [store.append_area(area) for area in areas[:4]]
    del store  # crash: no close, no checkpoint
    # the kill landed mid-append: clip the active segment inside the
    # last record
    segments = os.path.join(path, "segments")
    active = sorted(os.listdir(segments))[-1]
    seg_path = os.path.join(segments, active)
    size = os.path.getsize(seg_path)
    with open(seg_path, "r+b") as handle:
        handle.truncate(size - 5)

    reopened = AreaStore(path)
    assert reopened.segments.truncated_tail_bytes > 0
    # the first three survive; the clipped fourth is simply gone
    assert len(reopened) == 3
    for digest, area in zip(kept[:3], areas[:3]):
        assert reopened.get_area(digest).fingerprint == area.fingerprint
    # index ⊆ segments: nothing in the index points past the tear
    for digest in reopened.index.iter_digests():
        assert reopened.get_area(digest) is not None
    # the lost area can be re-appended and is whole again
    assert reopened.append_area(areas[3]) == kept[3]
    assert len(reopened) == 4
    reopened.close()


def test_journal_round_trip_and_survival(tmp_path):
    path = str(tmp_path / "s")
    entries = [{"digest": None, "user": "u1"},
               {"digest": "ab" * 32, "user": None},
               {"digest": "cd" * 32, "user": "u2"}]
    with AreaStore(path) as store:
        for entry in entries:
            store.append_journal(entry)
        assert list(store.iter_journal()) == entries
        assert store.journal_length == 3
    with AreaStore(path) as reopened:
        assert list(reopened.iter_journal()) == entries


def test_meta_documents_round_trip(tmp_path):
    with AreaStore(str(tmp_path / "s")) as store:
        assert store.load_meta("missing") is None
        store.save_meta("manifest", {"total": 5, "outcomes": [[1, 2]]})
        assert store.load_meta("manifest") == {"total": 5,
                                               "outcomes": [[1, 2]]}
        store.save_meta("manifest", {"total": 6})  # atomic overwrite
        assert store.load_meta("manifest") == {"total": 6}


def test_block_store_round_trip(tmp_path):
    np = pytest.importorskip("numpy")
    with AreaStore(str(tmp_path / "s")) as store:
        condensed = np.arange(10, dtype=np.float64) / 3.0
        store.blocks.save("ab" * 32, condensed)
        loaded = store.blocks.load("ab" * 32)
        assert loaded is not None
        np.testing.assert_array_equal(np.asarray(loaded), condensed)
        assert store.blocks.load("ef" * 32) is None
        # a flipped payload byte fails the CRC instead of serving junk
        path = os.path.join(str(tmp_path / "s"), "blocks",
                            "ab" * 32 + ".blk")
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        assert store.blocks.load("ab" * 32) is None


def test_record_is_idempotent(tmp_path, areas):
    registry = MetricsRegistry()
    with AreaStore(str(tmp_path / "s")) as store:
        for area in areas:
            store.append_area(area)
        store.append_area(areas[0])
        store.append_journal({"x": 1})
        store.record(registry)
        store.record(registry)
        assert registry.counter(
            "repro_store_area_appends_total").value == len(areas)
        assert registry.counter(
            "repro_store_area_rehits_total").value == 1
        assert registry.counter(
            "repro_store_journal_appends_total").value == 1
        assert registry.gauge(
            "repro_store_index_entries").value == len(areas)


def test_digest_key_matches_module_function(tmp_path, areas):
    with AreaStore(str(tmp_path / "s")) as store:
        for area in areas:
            assert store.append_area(area) == fingerprint_digest(area)
