"""Buffer-pool caching, invalidation, and delta-based recording."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.store import BufferPool


@pytest.fixture()
def data_file(tmp_path):
    path = tmp_path / "data.bin"
    path.write_bytes(bytes(range(256)) * 16)  # 4096 bytes
    return str(path)


def test_read_spans_pages_and_caches(data_file):
    pool = BufferPool(capacity=8, page_size=64)
    raw = pool.read("t", data_file, 60, 10)  # crosses a page boundary
    assert raw == bytes(range(60, 70))
    misses_after_first = pool.stats.misses
    assert misses_after_first == 2
    again = pool.read("t", data_file, 60, 10)
    assert again == raw
    assert pool.stats.misses == misses_after_first
    assert pool.stats.hits == 2


def test_read_past_eof_returns_none(data_file):
    pool = BufferPool(capacity=4, page_size=64)
    assert pool.read("t", data_file, 4090, 100) is None
    assert pool.read("t", "/nonexistent/file", 0, 10) is None


def test_eviction_bounds_residency(data_file):
    pool = BufferPool(capacity=2, page_size=64)
    for offset in range(0, 64 * 6, 64):
        pool.read("t", data_file, offset, 64)
    assert pool.stats.evictions == 4
    assert pool.resident_bytes <= 2 * 64


def test_invalidate_forces_reread(tmp_path):
    path = tmp_path / "active.bin"
    path.write_bytes(b"a" * 64)
    pool = BufferPool(capacity=4, page_size=64)
    assert pool.read("t", str(path), 0, 64) == b"a" * 64
    path.write_bytes(b"b" * 64)
    # stale without invalidation — that's the cache working
    assert pool.read("t", str(path), 0, 64) == b"a" * 64
    pool.invalidate("t")
    assert pool.read("t", str(path), 0, 64) == b"b" * 64


def test_record_is_idempotent(data_file):
    pool = BufferPool(capacity=4, page_size=64)
    pool.read("t", data_file, 0, 64)
    pool.read("t", data_file, 0, 64)
    registry = MetricsRegistry()
    pool.record(registry)
    pool.record(registry)  # double scrape must not double-count
    assert registry.counter(
        "repro_store_pool_hits_total").value == pool.stats.hits
    assert registry.counter(
        "repro_store_pool_misses_total").value == pool.stats.misses
    # new activity after a scrape lands as its delta
    pool.read("t", data_file, 0, 64)
    pool.record(registry)
    assert registry.counter(
        "repro_store_pool_hits_total").value == pool.stats.hits
