"""Segment-log appends, rolling, and crash recovery."""

import os

from repro.store import (BufferPool, KIND_AREA, KIND_JOURNAL,
                         SegmentLog, pack_record)


def _log(tmp_path, **kwargs):
    return SegmentLog(str(tmp_path / "segments"), BufferPool(16, 64),
                      **kwargs)


def test_append_read_scan_round_trip(tmp_path):
    log = _log(tmp_path)
    loc1 = log.append(KIND_AREA, b"a" * 32, b"first")
    loc2 = log.append(KIND_JOURNAL, b"", b"second")
    assert log.read(loc1) == (KIND_AREA, b"a" * 32, b"first")
    assert log.read(loc2) == (KIND_JOURNAL, b"", b"second")
    scanned = [(kind, key, payload, loc)
               for kind, key, payload, loc in log.scan()]
    assert scanned == [
        (KIND_AREA, b"a" * 32, b"first", loc1),
        (KIND_JOURNAL, b"", b"second", loc2),
    ]


def test_roll_seals_and_reads_span_segments(tmp_path):
    log = _log(tmp_path, roll_bytes=128)
    locations = [log.append(KIND_AREA, bytes([i]) * 32, b"x" * 64)
                 for i in range(6)]
    assert len(log.segment_ids) > 1
    for i, location in enumerate(locations):
        assert log.read(location) == (KIND_AREA, bytes([i]) * 32,
                                      b"x" * 64)
    # scan order is append order across the roll boundary
    keys = [key for _, key, _, _ in log.scan()]
    assert keys == [bytes([i]) * 32 for i in range(6)]
    # no stray .tmp files survive publication
    assert not [name for name in os.listdir(log.directory)
                if name.endswith(".tmp")]


def test_reopen_preserves_records(tmp_path):
    log = _log(tmp_path, roll_bytes=128)
    for i in range(6):
        log.append(KIND_AREA, bytes([i]) * 32, b"y" * 40)
    reopened = _log(tmp_path, roll_bytes=128)
    assert reopened.truncated_tail_bytes == 0
    keys = [key for _, key, _, _ in reopened.scan()]
    assert keys == [bytes([i]) * 32 for i in range(6)]


def test_torn_tail_truncated_on_reopen(tmp_path):
    log = _log(tmp_path)
    log.append(KIND_AREA, b"a" * 32, b"keep-me")
    active = os.path.join(log.directory, f"seg-{log.active_id:06d}.log")
    # simulate a writer killed mid-append: half a record at the tail
    partial = pack_record(KIND_AREA, b"b" * 32, b"torn-away")[:-7]
    with open(active, "ab") as handle:
        handle.write(partial)
    reopened = _log(tmp_path)
    assert reopened.truncated_tail_bytes == len(partial)
    records = list(reopened.scan())
    assert [key for _, key, _, _ in records] == [b"a" * 32]
    # the file itself was repaired, not just skipped over
    size_after = os.path.getsize(active)
    assert size_after == records[0][3].length
    # and appends continue cleanly after the repair
    loc = reopened.append(KIND_AREA, b"c" * 32, b"after-crash")
    assert reopened.read(loc) == (KIND_AREA, b"c" * 32, b"after-crash")


def test_garbage_tail_truncated(tmp_path):
    log = _log(tmp_path)
    log.append(KIND_AREA, b"a" * 32, b"keep")
    active = os.path.join(log.directory, f"seg-{log.active_id:06d}.log")
    with open(active, "ab") as handle:
        handle.write(b"\xff" * 33)  # wrong magic from byte one
    reopened = _log(tmp_path)
    assert reopened.truncated_tail_bytes == 33
    assert [key for _, key, _, _ in reopened.scan()] == [b"a" * 32]


def test_kill_at_every_append_boundary(tmp_path):
    """Chop the log at every byte length: reopen always serves exactly
    the fully-appended prefix (never an error, never a torn record)."""
    log = _log(tmp_path)
    lengths = [0]
    for i in range(3):
        loc = log.append(KIND_AREA, bytes([i]) * 32, b"p" * (10 + i))
        lengths.append(loc.offset + loc.length)
    active = os.path.join(log.directory, f"seg-{log.active_id:06d}.log")
    full = open(active, "rb").read()
    for cut in range(len(full) + 1):
        with open(active, "wb") as handle:
            handle.write(full[:cut])
        reopened = _log(tmp_path)
        got = [key for _, key, _, _ in reopened.scan()]
        survived = max(n for n, end in enumerate(lengths) if end <= cut)
        assert got == [bytes([i]) * 32 for i in range(survived)]
