"""Condensed-block spill and reload through the distance stage."""

import pytest

np = pytest.importorskip("numpy")

from repro.distance.block_sparse import compute_matrix
from repro.distance.query_distance import QueryDistance
from repro.store import AreaStore


@pytest.fixture()
def population(extractor):
    sqls = [
        "SELECT a FROM T WHERE a > 0 AND a < 1",
        "SELECT a FROM T WHERE a > 0.2 AND a < 1.2",
        "SELECT a FROM T WHERE a > 4 AND a < 5",
        "SELECT b FROM S WHERE b < 2",
        "SELECT b FROM S WHERE b > 1 AND b < 3",
        "SELECT b FROM S WHERE b > 8",
    ]
    return [extractor.extract(sql).area for sql in sqls]


def _compute(population, stats, store, token="res=0.05"):
    distance = QueryDistance(stats, resolution=0.05)
    return compute_matrix(population, distance, mode="sparse",
                          eps=0.2, store=store, store_token=token)


def test_blocks_spill_then_reload_bitwise(tmp_path, population, stats):
    path = str(tmp_path / "s")
    with AreaStore(path) as store:
        cold = _compute(population, stats, store)
        saved = store.blocks.saves
        assert saved >= 2  # one condensed block per partition
        assert store.blocks.loads == 0

    with AreaStore(path) as store:
        warm = _compute(population, stats, store)
        assert store.blocks.saves == 0
        assert store.blocks.loads >= saved

    n = len(population)
    for i in range(n):
        for j in range(n):
            assert cold[i, j] == warm[i, j]  # bitwise, not approx


def test_metric_drift_misses_block_cache(tmp_path, population, stats):
    path = str(tmp_path / "s")
    with AreaStore(path) as store:
        _compute(population, stats, store, token="res=0.05")
        saved = store.blocks.saves
    with AreaStore(path) as store:
        _compute(population, stats, store, token="res=0.10")
        # different metric token → recompute + save, never reload
        assert store.blocks.loads == 0
        assert store.blocks.saves == saved


def test_vptree_backend_matches_cold_and_warm(tmp_path, population,
                                              stats):
    """The vptree path accepts the store without changing answers
    (tree partitions hold lazy packs — nothing to spill)."""
    path = str(tmp_path / "s")
    distance = QueryDistance(stats, resolution=0.05)
    with AreaStore(path) as store:
        cold = compute_matrix(population, distance, mode="sparse",
                              eps=0.2, neighbor_backend="vptree",
                              store=store, store_token="res=0.05")
    with AreaStore(path) as store:
        warm = compute_matrix(population, distance, mode="sparse",
                              eps=0.2, neighbor_backend="vptree",
                              store=store, store_token="res=0.05")
    for i in range(len(population)):
        assert cold.neighbors(i, 0.2) == warm.neighbors(i, 0.2)


def test_vptree_fallback_partitions_spill_and_reload(tmp_path,
                                                     population, stats):
    """Kernel-refused partitions materialize condensed blocks — those
    are spilled cold and reloaded warm."""
    from repro.distance.metric_index import VPTreeIndex

    class OracleOnlyDistance(QueryDistance):
        # overriding any metric entry point voids the kernel's
        # oracle-parity guarantee → every partition falls back
        def distance(self, a, b):
            return super().distance(a, b)

    path = str(tmp_path / "s")
    distance = OracleOnlyDistance(stats, resolution=0.05)
    with AreaStore(path) as store:
        cold = VPTreeIndex.compute(population, distance, cutoff=0.2,
                                   store=store, store_token="res=0.05")
        assert cold.vpstats.fallback_partitions >= 2
        saved = store.blocks.saves
        assert saved >= 2
    with AreaStore(path) as store:
        warm = VPTreeIndex.compute(population, distance, cutoff=0.2,
                                   store=store, store_token="res=0.05")
        assert store.blocks.saves == 0
        assert store.blocks.loads >= saved
    for i in range(len(population)):
        assert cold.neighbors(i, 0.2) == warm.neighbors(i, 0.2)
