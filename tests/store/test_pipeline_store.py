"""Store-backed pipeline paths: warm replay, eviction, idempotent stats.

The load-bearing guarantees:

* a warm ``process_log`` over the same store reproduces the cold
  report — same areas (by fingerprint), same failures, same dedupe
  structure — with **zero** SQL extraction;
* a disk-backed interner under ``max_resident`` keeps uniqueness
  accounting exact while bounding resident areas;
* calling ``.record`` twice leaves every counter equal to the true
  total (the cumulative-counter double-counting regression).
"""

import pytest

from repro.core.pipeline import (AccessAreaInterner, log_manifest_key,
                                 process_log)
from repro.obs.metrics import MetricsRegistry
from repro.store import AreaStore, fingerprint_digest

from .conftest import SQLS

STREAM = [
    (SQLS[0], "alice"),
    (SQLS[1], "bob"),
    ("THIS IS NOT SQL ((", "mallory"),
    (SQLS[0], "alice"),          # duplicate → dedupe weight 2
    (SQLS[2], None),
    (SQLS[3], "carol"),
    (SQLS[4], "bob"),
]


def _fingerprints(report):
    return [item.area.fingerprint for item in report.extracted]


def test_warm_replay_matches_cold_run(tmp_path, extractor):
    path = str(tmp_path / "s")
    with AreaStore(path) as store:
        cold = process_log(STREAM, extractor, store=store)
    assert not cold.warm

    with AreaStore(path) as store:
        warm = process_log(STREAM, extractor, store=store)
    assert warm.warm
    assert warm.total == cold.total
    assert warm.parse_errors == cold.parse_errors
    assert warm.failures == cold.failures
    assert _fingerprints(warm) == _fingerprints(cold)
    assert [item.user for item in warm.extracted] == \
        [item.user for item in cold.extracted]
    assert [item.index for item in warm.extracted] == \
        [item.index for item in cold.extracted]


def test_warm_replay_skips_extraction(tmp_path, extractor,
                                      monkeypatch):
    path = str(tmp_path / "s")
    with AreaStore(path) as store:
        process_log(STREAM, extractor, store=store)

    def boom(sql):  # any parse attempt fails the test
        raise AssertionError(f"warm replay re-extracted {sql!r}")

    monkeypatch.setattr(extractor, "extract", boom)
    with AreaStore(path) as store:
        warm = process_log(STREAM, extractor, store=store)
    assert warm.warm
    assert warm.extraction_count == 6


def test_manifest_key_tracks_stream_and_config(extractor, schema):
    from repro.core.extractor import AccessAreaExtractor
    base = log_manifest_key(STREAM, extractor)
    assert log_manifest_key(STREAM, extractor) == base
    assert log_manifest_key(STREAM[:-1], extractor) != base
    reordered = [STREAM[1], STREAM[0]] + STREAM[2:]
    assert log_manifest_key(reordered, extractor) != base
    other = AccessAreaExtractor(schema, predicate_cap=3)
    assert log_manifest_key(STREAM, other) != base


def test_changed_stream_falls_back_to_cold(tmp_path, extractor):
    path = str(tmp_path / "s")
    with AreaStore(path) as store:
        process_log(STREAM, extractor, store=store)
    with AreaStore(path) as store:
        report = process_log(STREAM + [(SQLS[1], "dave")], extractor,
                             store=store)
        assert not report.warm
        assert report.total == len(STREAM) + 1
    # ... and that longer stream is itself warm next time around
    with AreaStore(path) as store:
        again = process_log(STREAM + [(SQLS[1], "dave")], extractor,
                            store=store)
    assert again.warm


def test_interner_requires_store_for_eviction():
    with pytest.raises(ValueError):
        AccessAreaInterner(max_resident=4)
    with pytest.raises(ValueError):
        AccessAreaInterner(store=object(), max_resident=0)


def test_disk_backed_interner_evicts_without_losing_identity(
        tmp_path, areas):
    with AreaStore(str(tmp_path / "s")) as store:
        interner = AccessAreaInterner(store=store, max_resident=2)
        assert interner.backing == "disk"
        for area in areas:
            interner.intern(area)
        assert interner.resident <= 2
        assert interner.evictions == len(areas) - 2
        assert len(interner) == len(areas)  # identity is the index
        # re-interning an evicted area is a hit, not a new unique
        assert interner.intern(areas[0]) is not None
        assert interner.hits == 1
        assert len(interner) == len(areas)
        # areas() serves the full population from the store
        digests = {fingerprint_digest(a) for a in areas}
        assert {fingerprint_digest(a)
                for a in interner.areas()} == digests


def test_memory_interner_unchanged(areas):
    interner = AccessAreaInterner()
    assert interner.backing == "memory"
    for area in areas:
        interner.intern(area)
        interner.intern(area)
    assert len(interner) == len(areas)
    assert interner.hits == len(areas)
    assert interner.evictions == 0


def test_interner_record_is_idempotent(areas):
    interner = AccessAreaInterner()
    for area in areas:
        interner.intern(area)
        interner.intern(area)
    registry = MetricsRegistry()
    interner.record(registry)
    interner.record(registry)  # the double-counting regression
    assert registry.counter(
        "repro_intern_hits_total").value == len(areas)
    assert registry.counter(
        "repro_intern_misses_total").value == len(areas)
    # later activity still lands as its delta
    interner.intern(areas[0])
    interner.record(registry)
    assert registry.counter(
        "repro_intern_hits_total").value == len(areas) + 1
