"""Shared fixtures: a small schema, its extractor, and sample areas."""

import pytest

from repro.algebra.intervals import Interval
from repro.core.extractor import AccessAreaExtractor
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)

SQLS = [
    "SELECT a FROM T WHERE a > 1 AND a < 3",
    "SELECT a FROM T WHERE a > 2 AND a < 4",
    "SELECT a, a1 FROM T WHERE a1 BETWEEN 0 AND 2",
    "SELECT b FROM S WHERE b < 5",
    "SELECT b, u FROM S WHERE u > 1 AND b > 2",
]


def build_schema() -> Schema:
    schema = Schema("store")
    schema.add(Relation("T", (
        Column("a", ColumnType.FLOAT, Interval(0.0, 5.0)),
        Column("a1", ColumnType.FLOAT, Interval(0.0, 5.0)),
        Column("s", ColumnType.VARCHAR, categories=("x", "y", "z")),
    )))
    schema.add(Relation("S", (
        Column("b", ColumnType.FLOAT, Interval(0.0, 10.0)),
        Column("u", ColumnType.FLOAT, Interval(0.0, 10.0)),
    )))
    return schema


@pytest.fixture()
def schema():
    return build_schema()


@pytest.fixture()
def extractor(schema):
    return AccessAreaExtractor(schema)


@pytest.fixture()
def areas(extractor):
    return [extractor.extract(sql).area for sql in SQLS]


@pytest.fixture()
def stats(schema):
    return StatisticsCatalog.from_exact_content(schema, {
        ("T", "a"): Interval(0.0, 5.0),
        ("T", "a1"): Interval(0.0, 5.0),
        ("S", "b"): Interval(0.0, 10.0),
        ("S", "u"): Interval(0.0, 10.0),
    })
