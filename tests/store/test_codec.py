"""Round-trips and torn-tail behaviour of the store's codecs."""

import pytest

from repro.store import (CodecError, KIND_AREA, KIND_JOURNAL, block_key,
                         decode_area, encode_area, fingerprint_digest,
                         pack_record, scan_records)
from repro.store.codec import (BLOCK_HEADER_SIZE, pack_block_header,
                               unpack_block_header)


def test_area_payload_round_trip(areas):
    for area in areas:
        clone = decode_area(encode_area(area))
        assert clone.fingerprint == area.fingerprint
        assert fingerprint_digest(clone) == fingerprint_digest(area)


def test_digest_is_canonical(extractor):
    """Clause order and literal spelling don't change the key."""
    a = extractor.extract(
        "SELECT a FROM T WHERE a > 1 AND a < 3").area
    b = extractor.extract(
        "SELECT a FROM T WHERE a < 3.0 AND a > 1.00").area
    assert fingerprint_digest(a) == fingerprint_digest(b)
    c = extractor.extract(
        "SELECT a FROM T WHERE a > 1 AND a < 4").area
    assert fingerprint_digest(a) != fingerprint_digest(c)


def test_digest_distinguishes_lookalike_primitives():
    """The encoder is type-tagged: 1, 1.0, True and "1" differ."""
    keys = {fingerprint_digest((value,))
            for value in (1, 1.0, True, "1", None)}
    assert len(keys) == 5
    # nesting matters too
    assert fingerprint_digest((("a",), "b")) != \
        fingerprint_digest(("a", ("b",)))


def test_digest_rejects_unencodable_components():
    with pytest.raises(CodecError):
        fingerprint_digest((object(),))


def test_scan_records_round_trip():
    records = [
        pack_record(KIND_AREA, b"k" * 32, b"payload-one"),
        pack_record(KIND_JOURNAL, b"", b'{"x":1}'),
        pack_record(KIND_AREA, b"j" * 32, b""),
    ]
    buf = b"".join(records)
    parsed, valid = scan_records(buf)
    assert valid == len(buf)
    assert [(k, key, payload) for k, key, payload, _ in parsed] == [
        (KIND_AREA, b"k" * 32, b"payload-one"),
        (KIND_JOURNAL, b"", b'{"x":1}'),
        (KIND_AREA, b"j" * 32, b""),
    ]
    offsets = [offset for _, _, _, offset in parsed]
    assert offsets == [0, len(records[0]),
                       len(records[0]) + len(records[1])]


def test_scan_records_truncates_any_torn_tail():
    """Cutting the last record at *every* byte boundary yields exactly
    the two whole records and the tear offset — the recovery point."""
    head = pack_record(KIND_AREA, b"a" * 32, b"first")
    mid = pack_record(KIND_JOURNAL, b"", b"second")
    tail = pack_record(KIND_AREA, b"b" * 32, b"third")
    for cut in range(len(tail)):
        parsed, valid = scan_records(head + mid + tail[:cut])
        assert len(parsed) == 2
        assert valid == len(head) + len(mid)


def test_scan_records_stops_at_corruption():
    first = pack_record(KIND_AREA, b"a" * 32, b"first")
    second = pack_record(KIND_AREA, b"b" * 32, b"second")
    corrupted = bytearray(first + second)
    corrupted[len(first) + 20] ^= 0xFF  # flip one body byte
    parsed, valid = scan_records(bytes(corrupted))
    assert len(parsed) == 1
    assert valid == len(first)


def test_block_header_round_trip():
    raw = pack_block_header(91, 0xDEADBEEF)
    assert len(raw) == BLOCK_HEADER_SIZE
    assert unpack_block_header(raw) == (91, 0xDEADBEEF)
    with pytest.raises(CodecError):
        unpack_block_header(b"NOPE" + raw[4:])
    with pytest.raises(CodecError):
        unpack_block_header(raw[:4])


def test_block_key_content_addressing():
    d1, d2 = b"\x01" * 32, b"\x02" * 32
    base = block_key(("T", "S"), [d1, d2], token="res=0.05")
    # partition key is a set: name order is canonicalized away
    assert block_key(("S", "T"), [d1, d2], token="res=0.05") == base
    # member order defines the condensed layout: it must matter
    assert block_key(("T", "S"), [d2, d1], token="res=0.05") != base
    # metric drift must miss
    assert block_key(("T", "S"), [d1, d2], token="res=0.1") != base
    assert block_key(("T", "S"), [d1, d2]) != base
