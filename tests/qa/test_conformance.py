"""Tier-1 conformance gate: the randomized sweep must run clean.

Promoted from the lemma-oracle benchmark validation: a fixed-seed
~200-query sweep over all four grammar profiles asserting zero
soundness and zero metamorphic violations, plus a hypothesis-driven
pass over the simple profile whose condition trees are built by a
genuine composite strategy (so hypothesis shrinking applies).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extractor import AccessAreaExtractor
from repro.engine import Database
from repro.qa import QAConfig, run_qa
from repro.qa.oracle import check_metamorphic, check_soundness
from repro.qa.schemagen import random_database, random_schema
from repro.sqlparser import parse


def test_fixed_seed_sweep_is_clean():
    report = run_qa(QAConfig(n_queries=200, seed=0, shrink=False))
    detail = "\n".join(str(case.to_json()) for case in report.failures)
    assert report.ok, detail
    assert set(report.profiles) == {"simple", "join", "aggregate",
                                    "nested"}
    for profile, stats in report.profiles.items():
        assert stats.soundness_checks > 0, profile
        assert stats.metamorphic_checks > 0, profile


# -- hypothesis strategy for the simple profile -------------------------------

_COLUMNS = ("u", "v")
_OPS = ("<", "<=", "=", ">", ">=", "<>")

_constants = st.integers(min_value=-4, max_value=6)


@st.composite
def _atoms(draw):
    column = draw(st.sampled_from(_COLUMNS))
    kind = draw(st.sampled_from(
        ("cmp", "between", "inlist", "isnull", "colcol")))
    if kind == "between":
        a, b = sorted((draw(_constants), draw(_constants)))
        neg = "NOT " if draw(st.booleans()) else ""
        return f"{column} {neg}BETWEEN {a} AND {b}"
    if kind == "inlist":
        values = sorted(draw(st.sets(_constants, min_size=1, max_size=3)))
        neg = "NOT " if draw(st.booleans()) else ""
        return f"{column} {neg}IN ({', '.join(map(str, values))})"
    if kind == "isnull":
        neg = "NOT " if draw(st.booleans()) else ""
        return f"{column} IS {neg}NULL"
    if kind == "colcol":
        return f"u {draw(st.sampled_from(_OPS))} v"
    return f"{column} {draw(st.sampled_from(_OPS))} {draw(_constants)}"


_conditions = st.recursive(
    _atoms(),
    lambda children: st.one_of(
        children.map(lambda c: f"NOT ({c})"),
        st.tuples(children, children, st.sampled_from(("AND", "OR")))
        .map(lambda t: f"({t[0]}) {t[2]} ({t[1]})"),
    ),
    max_leaves=5)


@pytest.fixture(scope="module")
def simple_state():
    schema = random_schema(random.Random(7), 1)
    db = random_database(schema, random.Random(7), max_rows=6)
    return schema, db, AccessAreaExtractor(schema)


@settings(max_examples=60, deadline=None, derandomize=True)
@given(condition=_conditions)
def test_simple_profile_conformance(simple_state, condition):
    schema, db, extractor = simple_state
    sql = f"SELECT * FROM T WHERE {condition}"
    stmt = parse(sql)
    failures = check_soundness(sql, stmt, db, extractor)
    assert not failures, "\n".join(str(f) for f in failures)
    outcome = check_metamorphic(sql, stmt, extractor)
    assert outcome.failures == [], \
        "\n".join(str(f) for f in outcome.failures)
