"""The shrinker must reach 1-minimal statements and states."""

import random

from repro.engine import Database
from repro.qa.schemagen import random_schema
from repro.qa.shrink import shrink_case
from repro.sqlparser import ast, parse


def _schema():
    return random_schema(random.Random(0), 3)


def _db(schema, rows):
    db = Database(schema)
    db.insert("T", rows)
    db.insert("S", [])
    db.insert("R", [])
    return db


def test_rows_shrink_to_single_witness():
    schema = _schema()
    rows = [{"u": u, "v": 0, "s": "a"} for u in range(8)]
    db = _db(schema, rows)
    stmt = parse("SELECT * FROM T WHERE u > 5")

    def still_fails(stmt, db):
        # "Failure": the state still contains a row with u = 7.
        return any(row["u"] == 7
                   for t in db.tables if t.name == "T"
                   for row in t.rows)

    shrunk_stmt, shrunk_db = shrink_case(stmt, db, still_fails)
    table = next(t for t in shrunk_db.tables if t.name == "T")
    assert [row["u"] for row in table.rows] == [7]


def test_statement_shrinks_to_failing_conjunct():
    schema = _schema()
    db = _db(schema, [{"u": 1, "v": 1, "s": "a"}])
    stmt = parse("SELECT * FROM T WHERE (u > 0 AND v < 5) "
                 "AND (s = 'a' OR u NOT BETWEEN 1 AND 3)")

    def still_fails(stmt, db):
        # "Failure" tied to the NOT BETWEEN atom surviving in the tree.
        return "NOT BETWEEN" in str(stmt)

    shrunk_stmt, _ = shrink_case(stmt, db, still_fails)
    # Minimal form: just the one atom that carries the failure.
    assert isinstance(shrunk_stmt.where, ast.Between)
    assert shrunk_stmt.where.negated
    assert "NOT BETWEEN" in str(shrunk_stmt)


def test_exceptions_count_as_not_reproduced():
    schema = _schema()
    db = _db(schema, [{"u": 1, "v": 1, "s": "a"}])
    stmt = parse("SELECT * FROM T WHERE u > 0 AND v > 0")

    def touchy(stmt, db):
        if stmt.where is None:
            raise RuntimeError("boom")
        return True

    shrunk_stmt, _ = shrink_case(stmt, db, touchy)
    # The WHERE-dropping reduction raised, so a WHERE must survive.
    assert shrunk_stmt.where is not None
