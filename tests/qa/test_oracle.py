"""Unit tests of the conformance oracle primitives."""

import random

import pytest

from repro.core.extractor import AccessAreaExtractor
from repro.engine import Database
from repro.qa.oracle import (REWRITES, check_metamorphic, check_soundness,
                             covers_tuple, execute_statement,
                             influence_probe)
from repro.qa.schemagen import random_schema
from repro.sqlparser import parse


@pytest.fixture
def schema():
    return random_schema(random.Random(0), 3)


@pytest.fixture
def extractor(schema):
    return AccessAreaExtractor(schema)


def _db(schema, rows_by_relation):
    db = Database(schema)
    for name, rows in rows_by_relation.items():
        db.insert(name, rows)
    return db


# -- covers_tuple -------------------------------------------------------------

def test_covers_simple_range(extractor):
    area = extractor.extract("SELECT * FROM T WHERE u > 2").area
    assert covers_tuple(area, "T", {"u": 3, "v": 0, "s": "x"})
    assert not covers_tuple(area, "T", {"u": 2, "v": 0, "s": "x"})


def test_covers_null_value_is_satisfiable(extractor):
    area = extractor.extract("SELECT * FROM T WHERE u > 2").area
    assert covers_tuple(area, "T", {"u": None, "v": 0, "s": "x"})


def test_covers_other_relation_clause_is_satisfiable(extractor):
    area = extractor.extract(
        "SELECT * FROM T, S WHERE T.u = S.u AND S.w = 5").area
    # The S.w = 5 clause cannot rule out a T tuple.
    assert covers_tuple(area, "T", {"u": 1, "v": 0, "s": "x"})
    assert not covers_tuple(area, "S", {"u": 1, "w": 4})


def test_covers_disjunction_needs_one_true(extractor):
    area = extractor.extract(
        "SELECT * FROM T WHERE u < 0 OR u > 4").area
    assert covers_tuple(area, "T", {"u": -1, "v": 0, "s": "x"})
    assert covers_tuple(area, "T", {"u": 5, "v": 0, "s": "x"})
    assert not covers_tuple(area, "T", {"u": 2, "v": 0, "s": "x"})


def test_empty_area_covers_nothing(extractor):
    area = extractor.extract(
        "SELECT * FROM T WHERE u < 0 AND u > 4").area
    assert area.is_empty
    assert not covers_tuple(area, "T", {"u": 1, "v": 0, "s": "x"})


# -- influence probe (contribution semantics) ---------------------------------

def test_probe_flags_matching_rows_only(schema):
    db = _db(schema, {"T": [{"u": 1, "v": 0, "s": "a"},
                            {"u": 5, "v": 0, "s": "a"}],
                      "S": [], "R": []})
    stmt = parse("SELECT * FROM T WHERE u > 2")
    assert influence_probe(stmt, db) == [("T", {"u": 5, "v": 0, "s": "a"})]


def test_probe_includes_all_group_members(schema):
    db = _db(schema, {"T": [{"u": 1, "v": 2, "s": "a"},
                            {"u": 1, "v": 3, "s": "a"}],
                      "S": [], "R": []})
    stmt = parse("SELECT u, SUM(v) FROM T GROUP BY u "
                 "HAVING SUM(v) > 4")
    assert len(influence_probe(stmt, db)) == 2


def test_probe_excludes_blocking_tuples(schema):
    # Removing u=1,v=1 would FLIP the group into the result (min rises
    # above 2) — blocking influence, which the access-area model and
    # hence the one-directional probe deliberately exclude.
    db = _db(schema, {"T": [{"u": 1, "v": 1, "s": "a"},
                            {"u": 1, "v": 5, "s": "a"}],
                      "S": [], "R": []})
    stmt = parse("SELECT u, MIN(v) FROM T GROUP BY u "
                 "HAVING MIN(v) > 2")
    assert influence_probe(stmt, db) == []


def test_probe_none_on_unexecutable(schema):
    db = _db(schema, {"T": [], "S": [], "R": []})
    stmt = parse("SELECT * FROM Nosuchtable WHERE u > 1")
    assert influence_probe(stmt, db) is None


# -- soundness check ----------------------------------------------------------

def test_soundness_passes_on_simple_query(schema, extractor):
    db = _db(schema, {"T": [{"u": 1, "v": 0, "s": "a"},
                            {"u": 4, "v": 2, "s": "b"}],
                      "S": [{"u": 4, "w": 0}], "R": []})
    sql = "SELECT * FROM T WHERE u > 2"
    assert check_soundness(sql, parse(sql), db, extractor) == []


def test_soundness_catches_a_too_small_area(schema):
    # An extractor whose area is the WRONG half-space must be caught.
    class Lying:
        def extract_statement(self, stmt):
            real = AccessAreaExtractor(schema)
            return real.extract("SELECT * FROM T WHERE u < 0")

    db = _db(schema, {"T": [{"u": 3, "v": 0, "s": "a"}],
                      "S": [], "R": []})
    sql = "SELECT * FROM T WHERE u > 2"
    failures = check_soundness(sql, parse(sql), db, Lying())
    assert failures and failures[0].kind == "soundness"


# -- metamorphic rewrites -----------------------------------------------------

def test_all_rewrites_produce_parseable_sql(schema):
    sqls = [
        "SELECT * FROM T WHERE u BETWEEN 1 AND 3",
        "SELECT * FROM T WHERE NOT (u > 1 AND v < 2)",
        "SELECT * FROM T WHERE u NOT BETWEEN -1 AND 1",
        "SELECT * FROM T, S WHERE T.u = S.u",
        "SELECT * FROM T JOIN S ON T.u = S.u WHERE T.v > 0",
    ]
    applied = 0
    for sql in sqls:
        stmt = parse(sql)
        for _name, rewrite in REWRITES:
            rewritten = rewrite(stmt)
            if rewritten is None:
                continue
            applied += 1
            parse(str(rewritten))  # must round-trip
    assert applied >= 8


def test_rewrites_preserve_engine_semantics_where_defined(schema):
    # On NULL-free states every rewrite is engine-observable equal.
    db = _db(schema, {"T": [{"u": u, "v": v, "s": "a"}
                            for u in range(-2, 4) for v in (-1, 2)],
                      "S": [{"u": 0, "w": 1}, {"u": 2, "w": 3}],
                      "R": []})
    sqls = [
        "SELECT * FROM T WHERE u BETWEEN -1 AND 2",
        "SELECT * FROM T WHERE u NOT BETWEEN -1 AND 1",
        "SELECT * FROM T WHERE NOT (u > 1 AND v < 2)",
        "SELECT * FROM T, S WHERE T.u = S.u AND S.w > 0",
    ]
    from repro.qa.oracle import result_key
    for sql in sqls:
        stmt = parse(sql)
        base = result_key(execute_statement(stmt, db))
        for name, rewrite in REWRITES:
            rewritten = rewrite(stmt)
            if rewritten is None:
                continue
            got = execute_statement(rewritten, db)
            assert got is not None, (sql, name)
            assert result_key(got) == base, (sql, name)


def test_metamorphic_stability_on_exact_queries(schema, extractor):
    sql = "SELECT * FROM T WHERE u NOT BETWEEN -1 AND 1"
    outcome = check_metamorphic(sql, parse(sql), extractor)
    assert outcome.checked >= 2
    assert outcome.failures == []


def test_metamorphic_skips_inexact_extractions(schema, extractor):
    sql = "SELECT * FROM T WHERE NOT (s LIKE 'a%') AND u BETWEEN 0 AND 2"
    outcome = check_metamorphic(sql, parse(sql), extractor)
    assert outcome.skipped_inexact >= 1
    assert outcome.failures == []
