"""Every corpus seed must replay green, forever.

Each JSON under ``tests/qa/corpus`` is a (usually shrunken) minimal
query + minimal database state that once exhibited a conformance bug.
Replaying them as plain tests pins every historical fix independently
of the randomized sweep.
"""

from pathlib import Path

import pytest

from repro.qa.corpus import load_case, replay_case

CORPUS_DIR = Path(__file__).parent / "corpus"
CASE_PATHS = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert len(CASE_PATHS) >= 9


@pytest.mark.parametrize("path", CASE_PATHS, ids=lambda p: p.stem)
def test_corpus_case_replays_green(path):
    case = load_case(path)
    failures = replay_case(case)
    assert failures == [], "\n".join(str(f) for f in failures)
