"""Unit pins for the bugs the conformance harness flushed out.

Each test block matches one corpus seed under ``tests/qa/corpus`` and
states the pre-fix failure it guards against.
"""

import random

import pytest

from repro.algebra.coercion import coerce_pair, compare_values, parse_number
from repro.core.extractor import AccessAreaExtractor
from repro.engine import Database, QueryExecutor
from repro.qa.oracle import covers_tuple
from repro.qa.schemagen import random_schema


@pytest.fixture
def schema():
    return random_schema(random.Random(0), 3)


@pytest.fixture
def extractor(schema):
    return AccessAreaExtractor(schema)


def _area_members(extractor, sql, values):
    area = extractor.extract(sql).area
    return [v for v in values
            if covers_tuple(area, "T", {"u": v, "v": 0, "s": "x"})]


# -- satellite: shared mixed-type comparison coercion -------------------------

class TestCoercion:
    def test_parse_number(self):
        assert parse_number("3") == 3
        assert parse_number("3.5") == 3.5
        assert parse_number("a1") is None

    def test_coerce_pair_numeric_string(self):
        assert coerce_pair(3, "1") == (3, 1)
        assert coerce_pair("2.5", 1) == (2.5, 1)

    def test_coerce_pair_non_numeric_string(self):
        assert coerce_pair(3, "a1") == ("3", "a1")

    def test_null_never_satisfies(self):
        assert not compare_values(None, "=", None)
        assert not compare_values(1, "<>", None)

    def test_engine_and_area_agree_on_quoted_numeric(self, schema,
                                                     extractor):
        # Pre-fix: the engine coerced '1' to 1 but the area predicate
        # compared by type tag, so the returned row escaped the area.
        db = Database(schema)
        db.insert("T", [{"u": 3, "v": 0, "s": "a"}])
        db.insert("S", [])
        db.insert("R", [])
        sql = "SELECT * FROM T WHERE u > '1'"
        rows = QueryExecutor(db).execute_sql(sql).rows
        assert len(rows) == 1
        area = extractor.extract(sql).area
        assert covers_tuple(area, "T", rows[0])

    def test_quoted_between_bounds(self, extractor):
        members = _area_members(
            extractor, "SELECT * FROM T WHERE u BETWEEN '0' AND '2'",
            [-1, 0, 1, 2, 3])
        assert members == [0, 1, 2]

    def test_quoted_in_list(self, extractor):
        members = _area_members(
            extractor, "SELECT * FROM T WHERE u IN ('1')", [0, 1, 2])
        assert members == [1]


# -- satellite: exactness-flag propagation ------------------------------------

class TestExactness:
    @pytest.mark.parametrize("sql", [
        "SELECT * FROM T WHERE u > 2",
        "SELECT * FROM T WHERE u NOT BETWEEN -1 AND 1",
        "SELECT * FROM T WHERE NOT (u = 1 OR u = 2)",
        "SELECT * FROM T WHERE s LIKE 'a1'",
    ])
    def test_exact_paths(self, extractor, sql):
        assert extractor.extract(sql).exact

    @pytest.mark.parametrize("sql", [
        "SELECT * FROM T WHERE s LIKE 'a%'",
        "SELECT * FROM T WHERE u IS NULL",
        "SELECT * FROM T WHERE u + v > 3",
        "SELECT * FROM T WHERE NOT (u + v > 3)",
    ])
    def test_widened_paths(self, extractor, sql):
        result = extractor.extract(sql)
        assert not result.exact
        assert result.area.exact is False

    def test_exact_flag_outside_fingerprint(self, extractor):
        exact = extractor.extract("SELECT * FROM T WHERE u > 2").area
        inexact = extractor.extract(
            "SELECT * FROM T WHERE u > 2 AND s LIKE 'a%'").area
        assert not inexact.exact
        # Identity ignores the flag: both widen to the same constraint.
        assert exact == inexact
        assert hash(exact) == hash(inexact)

    def test_predicate_cap_marks_inexact(self, schema):
        capped = AccessAreaExtractor(schema, predicate_cap=2)
        result = capped.extract(
            "SELECT * FROM T WHERE (u = 1 AND v = 1) "
            "OR (u = 2 AND v = 2) OR (u = 3 AND v = 3)")
        assert not result.exact


# -- satellite: re-widening NOT over widened conditions -----------------------

class TestNotRewidening:
    @pytest.mark.parametrize("sql", [
        "SELECT * FROM T WHERE NOT (s LIKE 'a%')",
        "SELECT * FROM T WHERE NOT (u IS NULL)",
        "SELECT * FROM T WHERE NOT (u + v > 3)",
    ])
    def test_not_over_widened_stays_total(self, extractor, sql):
        # Pre-fix: NOT flipped the TRUE widening into an empty area.
        result = extractor.extract(sql)
        assert not result.area.is_empty
        assert covers_tuple(result.area, "T", {"u": 1, "v": 1, "s": "b"})
        assert not result.exact

    def test_exact_negations_still_narrow(self, extractor):
        # The re-widening must not catch genuinely exact negations.
        members = _area_members(
            extractor, "SELECT * FROM T WHERE NOT (u <> 1)", [0, 1, 2])
        assert members == [1]

    def test_having_not_pushes_into_comparison(self, extractor):
        negated = extractor.extract(
            "SELECT u, SUM(v) FROM T GROUP BY u "
            "HAVING NOT (SUM(v) > 100)")
        direct = extractor.extract(
            "SELECT u, SUM(v) FROM T GROUP BY u "
            "HAVING SUM(v) <= 100")
        assert negated.area == direct.area
        assert not negated.area.is_empty


# -- satellite: interval-negation boundary semantics --------------------------

class TestIntervalNegationBoundaries:
    def test_not_between_excludes_exact_endpoints(self, extractor):
        members = _area_members(
            extractor, "SELECT * FROM T WHERE u NOT BETWEEN -1 AND 1",
            [-2, -1.0001, -1, -0.9999, 0, 0.9999, 1, 1.0001, 2])
        assert members == [-2, -1.0001, 1.0001, 2]

    def test_double_negation_restores_closed_interval(self, extractor):
        members = _area_members(
            extractor,
            "SELECT * FROM T WHERE NOT (u NOT BETWEEN -1 AND 1)",
            [-2, -1, 0, 1, 2])
        assert members == [-1, 0, 1]

    def test_degenerate_point_interval(self, extractor):
        members = _area_members(
            extractor, "SELECT * FROM T WHERE u NOT BETWEEN 1 AND 1",
            [0, 1, 2])
        assert members == [0, 2]

    def test_inverted_bounds_negate_to_total(self, extractor):
        result = extractor.extract(
            "SELECT * FROM T WHERE u NOT BETWEEN 3 AND -1")
        assert result.area.is_unconstrained
        empty = extractor.extract(
            "SELECT * FROM T WHERE u BETWEEN 3 AND -1")
        assert empty.area.is_empty

    def test_not_of_open_rays_is_point(self, extractor):
        members = _area_members(
            extractor, "SELECT * FROM T WHERE NOT (u < 1 OR u > 1)",
            [0, 1, 2])
        assert members == [1]


# -- bug found by the sweep: vacuous truth over unsatisfiable subqueries ------

class TestVacuousTruth:
    @pytest.mark.parametrize("sql", [
        "SELECT * FROM T WHERE u > ALL "
        "(SELECT u FROM S WHERE w = 0 AND w = 1)",
        "SELECT * FROM T WHERE NOT EXISTS "
        "(SELECT * FROM S WHERE w = 0 AND w = 1)",
        "SELECT * FROM T WHERE u NOT IN "
        "(SELECT u FROM S WHERE w > 5 AND w < 0)",
        "SELECT * FROM T WHERE NOT (u > ANY "
        "(SELECT u FROM S WHERE w = 0 AND w = 1))",
    ])
    def test_unsat_subquery_must_not_empty_the_area(self, extractor,
                                                    sql):
        # Pre-fix: the contradictory inner constraint collapsed the
        # whole area to ∅, although the construct is vacuously true on
        # the (always-) empty subquery and every outer row is returned.
        area = extractor.extract(sql).area
        assert not area.is_empty
        assert covers_tuple(area, "T", {"u": -1, "v": 3, "s": None})

    def test_plain_exists_over_unsat_subquery_stays_empty(self,
                                                          extractor):
        # EXISTS (never-true) never returns rows: ∅ is the right area.
        area = extractor.extract(
            "SELECT * FROM T WHERE EXISTS "
            "(SELECT * FROM S WHERE w = 0 AND w = 1)").area
        assert area.is_empty

    def test_satisfiable_subquery_keeps_its_constraint(self, extractor):
        area = extractor.extract(
            "SELECT * FROM T WHERE u > ALL "
            "(SELECT u FROM S WHERE w = 0)").area
        assert not area.is_empty
        assert not covers_tuple(area, "S", {"u": 0, "w": 4})
