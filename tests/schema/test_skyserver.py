"""The SkyServer DR9-like schema and its content-footprint constants."""

from repro.schema import CONTENT_BOUNDS, content_bounds, skyserver_schema
from repro.schema import skyserver as sky


class TestSchemaShape:
    def test_table1_relations_present(self):
        schema = skyserver_schema()
        for name in ["Photoz", "SpecObjAll", "galSpecLine", "galSpecInfo",
                     "PhotoObjAll", "sppLines", "SpecPhotoAll",
                     "DBObjects", "emissionLinesPort", "stellarMassPCAWisc",
                     "AtlasOutline", "zooSpec", "galSpecExtra",
                     "galSpecIndx", "sppParams"]:
            assert schema.has_relation(name), name

    def test_angle_domains(self):
        schema = skyserver_schema()
        ra = schema.column("PhotoObjAll", "ra")
        dec = schema.column("PhotoObjAll", "dec")
        assert ra.effective_domain.lo == 0.0
        assert ra.effective_domain.hi == 360.0
        assert dec.effective_domain.lo == -90.0

    def test_categorical_class(self):
        schema = skyserver_schema()
        cls = schema.column("SpecObjAll", "class")
        assert "star" in cls.categories

    def test_dbobjects_categorical(self):
        schema = skyserver_schema()
        assert "U" in schema.column("DBObjects", "type").categories
        assert "U" in schema.column("DBObjects", "access").categories


class TestContentFootprint:
    def test_every_bound_column_exists(self):
        schema = skyserver_schema()
        for (relation, column) in CONTENT_BOUNDS:
            assert schema.has_relation(relation), relation
            assert schema.relation(relation).has_column(column), \
                f"{relation}.{column}"

    def test_bounds_within_domains(self):
        schema = skyserver_schema()
        for (relation, column), interval in CONTENT_BOUNDS.items():
            col = schema.relation(relation).column(column)
            dom = col.effective_domain
            assert dom.lo <= interval.lo <= interval.hi <= dom.hi, \
                f"{relation}.{column}"

    def test_lookup_case_insensitive(self):
        assert content_bounds("photoz", "Z") is not None
        assert content_bounds("nope", "x") is None

    def test_empty_area_families_fall_outside_content(self):
        # Clusters 19-21 query specobjid above the DR9 content band.
        spec = content_bounds("galSpecLine", "specobjid")
        assert spec.hi < 3_519_644_828_126_257_152
        # Cluster 18 queries dec below the photometric footprint.
        dec = content_bounds("PhotoObjAll", "dec")
        assert dec.lo > -50.0
        # Clusters 23-24 query z outside [0, 1].
        z = content_bounds("Photoz", "z")
        assert z.lo >= -0.1 and z.hi <= 3.0

    def test_hot_ranges_inside_content(self):
        objid = content_bounds("Photoz", "objid")
        assert objid.contains(1_237_657_855_534_432_934)
        assert objid.contains(1_237_666_210_342_830_434)
        plate = content_bounds("SpecObjAll", "plate")
        assert plate.contains(296) and plate.contains(3200)

    def test_figure1a_band(self):
        assert sky.PLATE_LO == 266 and sky.PLATE_HI == 5141
        assert sky.MJD_LO == 51578 and sky.MJD_HI == 55752
