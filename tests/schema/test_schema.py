"""Schema metadata: columns, relations, registry."""

import pytest

from repro.algebra.intervals import Interval
from repro.schema import Column, ColumnType, Relation, Schema


class TestColumn:
    def test_numeric_types(self):
        for ctype in (ColumnType.BIGINT, ColumnType.INT,
                      ColumnType.SMALLINT, ColumnType.REAL,
                      ColumnType.FLOAT):
            assert ctype.is_numeric
        assert not ColumnType.VARCHAR.is_numeric

    def test_declared_domain_narrows(self):
        col = Column("ra", ColumnType.FLOAT, Interval(0.0, 360.0))
        assert col.effective_domain == Interval(0.0, 360.0)

    def test_type_domain_fallback(self):
        col = Column("x", ColumnType.INT)
        dom = col.effective_domain
        assert dom.lo == -(2 ** 31) and dom.hi == 2 ** 31 - 1

    def test_bigint_domain_holds_objids(self):
        col = Column("objid", ColumnType.BIGINT)
        assert col.effective_domain.contains(1_237_657_855_534_432_934)

    def test_categorical_domain_raises(self):
        col = Column("class", ColumnType.VARCHAR,
                     categories=("star", "galaxy"))
        with pytest.raises(TypeError):
            _ = col.effective_domain


class TestRelation:
    def _rel(self):
        return Relation("T", (
            Column("u", ColumnType.INT),
            Column("V", ColumnType.FLOAT),
        ))

    def test_column_lookup_case_insensitive(self):
        rel = self._rel()
        assert rel.column("U").name == "u"
        assert rel.column("v").name == "V"

    def test_has_column(self):
        rel = self._rel()
        assert rel.has_column("u") and not rel.has_column("w")

    def test_missing_column_raises(self):
        with pytest.raises(KeyError):
            self._rel().column("nope")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Relation("T", (Column("u", ColumnType.INT),
                           Column("U", ColumnType.INT)))

    def test_iteration_and_len(self):
        rel = self._rel()
        assert len(rel) == 2
        assert [c.name for c in rel] == ["u", "V"]


class TestSchema:
    def _schema(self):
        schema = Schema("test")
        schema.add(Relation("PhotoObjAll",
                            (Column("ra", ColumnType.FLOAT),)))
        return schema

    def test_lookup_case_insensitive(self):
        schema = self._schema()
        assert schema.relation("photoobjall").name == "PhotoObjAll"
        assert schema.canonical_name("PHOTOOBJALL") == "PhotoObjAll"

    def test_contains(self):
        schema = self._schema()
        assert "photoobjall" in schema
        assert "nope" not in schema

    def test_duplicate_relation_rejected(self):
        schema = self._schema()
        with pytest.raises(ValueError):
            schema.add(Relation("PHOTOOBJALL",
                                (Column("x", ColumnType.INT),)))

    def test_missing_relation_raises(self):
        with pytest.raises(KeyError):
            self._schema().relation("nope")

    def test_column_accessor(self):
        schema = self._schema()
        assert schema.column("photoobjall", "RA").name == "ra"
