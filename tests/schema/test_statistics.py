"""content(a)/access(a) estimation and log-driven widening (Section 5.3)."""

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)


class _StubSource:
    """A sampling source returning canned values."""

    def __init__(self, values_by_column):
        self.values = values_by_column

    def sample_column(self, relation, column, size):
        return self.values.get((relation, column), [])


def _schema():
    schema = Schema("test")
    schema.add(Relation("T", (
        Column("u", ColumnType.FLOAT, Interval(-1000.0, 1000.0)),
        Column("s", ColumnType.VARCHAR, categories=("a", "b")),
    )))
    return schema


T_U = ColumnRef("T", "u")
T_S = ColumnRef("T", "s")


class TestEstimation:
    def test_access_doubles_sampled_range(self):
        source = _StubSource({("T", "u"): [0.0, 10.0, 5.0]})
        catalog = StatisticsCatalog.estimate(_schema(), source)
        access = catalog.access_interval(T_U)
        # Sampled [0, 10], doubled → [-5, 15].
        assert access == Interval(-5.0, 15.0)

    def test_content_is_sampled_mbr(self):
        source = _StubSource({("T", "u"): [0.0, 10.0]})
        catalog = StatisticsCatalog.estimate(_schema(), source)
        assert catalog.content_interval(T_U) == Interval(0.0, 10.0)

    def test_empty_sample_falls_back_to_domain(self):
        catalog = StatisticsCatalog.estimate(_schema(), _StubSource({}))
        assert catalog.access_interval(T_U) == Interval(-1000.0, 1000.0)

    def test_none_values_filtered(self):
        source = _StubSource({("T", "u"): [None, 2.0, None, 4.0]})
        catalog = StatisticsCatalog.estimate(_schema(), source)
        assert catalog.content_interval(T_U) == Interval(2.0, 4.0)

    def test_categorical_vocabulary(self):
        source = _StubSource({("T", "s"): ["a", "a", "b"]})
        catalog = StatisticsCatalog.estimate(_schema(), source)
        assert catalog.access_values(T_S) == frozenset({"a", "b"})

    def test_categorical_empty_sample_uses_declared(self):
        catalog = StatisticsCatalog.estimate(_schema(), _StubSource({}))
        assert catalog.access_values(T_S) == frozenset({"a", "b"})


class TestExactContent:
    def test_from_exact_content(self):
        catalog = StatisticsCatalog.from_exact_content(
            _schema(), {("T", "u"): Interval(0.0, 50.0)})
        assert catalog.access_interval(T_U) == Interval(0.0, 50.0)

    def test_missing_column_uses_domain(self):
        catalog = StatisticsCatalog.from_exact_content(_schema(), {})
        assert catalog.access_interval(T_U) == Interval(-1000.0, 1000.0)


class TestObservation:
    def _catalog(self):
        return StatisticsCatalog.from_exact_content(
            _schema(), {("T", "u"): Interval(0.0, 10.0)})

    def test_widening_below(self):
        catalog = self._catalog()
        catalog.observe_predicate(
            ColumnConstantPredicate(T_U, Op.GE, -100))
        assert catalog.access_interval(T_U).lo == -100
        # Content stays put: only access(a) grows.
        assert catalog.content_interval(T_U) == Interval(0.0, 10.0)

    def test_widening_above(self):
        catalog = self._catalog()
        catalog.observe_predicate(ColumnConstantPredicate(T_U, Op.LE, 99))
        assert catalog.access_interval(T_U).hi == 99

    def test_inside_value_no_change(self):
        catalog = self._catalog()
        catalog.observe_predicate(ColumnConstantPredicate(T_U, Op.EQ, 5))
        assert catalog.access_interval(T_U) == Interval(0.0, 10.0)

    def test_observe_cnf(self):
        catalog = self._catalog()
        cnf = CNF.of([Clause.of([
            ColumnConstantPredicate(T_U, Op.GT, 77)])])
        catalog.observe_cnf(cnf)
        assert catalog.access_interval(T_U).hi == 77

    def test_categorical_observation(self):
        catalog = self._catalog()
        catalog.observe_predicate(
            ColumnConstantPredicate(T_S, Op.EQ, "zzz"))
        assert "zzz" in catalog.access_values(T_S)

    def test_out_of_domain_observation_kept(self):
        # The zooSpec.dec = -100 phenomenon: access may exceed the
        # physically sensible domain.
        catalog = self._catalog()
        catalog.observe_predicate(
            ColumnConstantPredicate(T_U, Op.GE, -2000))
        assert catalog.access_interval(T_U).lo == -2000


class TestFallbacks:
    def test_unknown_column_uses_schema_domain(self):
        catalog = StatisticsCatalog.from_exact_content(_schema(), {})
        ref = ColumnRef("T", "u")
        assert catalog.access_interval(ref) == Interval(-1000.0, 1000.0)

    def test_unknown_relation_gets_wide_range(self):
        catalog = StatisticsCatalog.from_exact_content(_schema(), {})
        ref = ColumnRef("Mystery", "x")
        assert catalog.access_interval(ref).width > 1e300

    def test_is_numeric(self):
        catalog = StatisticsCatalog.from_exact_content(_schema(), {})
        assert catalog.is_numeric(T_U)
        assert not catalog.is_numeric(T_S)
