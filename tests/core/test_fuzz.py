"""Robustness fuzzing: the front-end must never crash uncontrolled.

Feeding arbitrary text into the extractor may fail, but only ever with
the documented error types — the batch pipeline over 12M statements
depends on that contract.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.cnf import CNFConversionError
from repro.clustering import DBSCAN, NOISE
from repro.core import AccessAreaExtractor, process_log
from repro.distance import DistanceMatrix, QueryDistance
from repro.schema import StatisticsCatalog, skyserver_schema
from repro.schema.skyserver import CONTENT_BOUNDS
from repro.sqlparser import SqlError, tokenize
from repro.sqlparser.errors import LexError
from repro.workload import WorkloadConfig, generate_workload

EXTRACTOR = AccessAreaExtractor(skyserver_schema())
STATS = StatisticsCatalog.from_exact_content(skyserver_schema(),
                                             CONTENT_BOUNDS)

_sql_alphabet = st.sampled_from(
    list("SELECTFROMWHEREANDORNT ()*,.<>='\"0123456789abcxyz_-%"))


@settings(max_examples=300, deadline=None)
@given(st.text(alphabet=_sql_alphabet, max_size=120))
def test_extractor_fails_only_with_documented_errors(text):
    try:
        EXTRACTOR.extract(text)
    except (SqlError, CNFConversionError):
        pass  # the documented failure modes


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=80))
def test_extractor_handles_arbitrary_unicode(text):
    try:
        EXTRACTOR.extract(text)
    except (SqlError, CNFConversionError):
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=100))
def test_tokenizer_total(text):
    try:
        tokens = tokenize(text)
    except LexError:
        return
    assert tokens  # at least EOF
    assert tokens[-1].value == ""


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000),
       st.integers(min_value=8, max_value=30))
def test_end_to_end_matrix_clustering_fuzz(seed, n_queries):
    """Generator SQL → extractor → distance matrix → DBSCAN, ~100
    random workloads: no exception, well-formed labels throughout."""
    workload = generate_workload(
        WorkloadConfig(n_queries=n_queries, seed=seed))
    report = process_log(workload.log.statements(), EXTRACTOR,
                         keep_failures=False)
    for item in report.extracted:
        STATS.observe_cnf(item.area.cnf)
    areas = report.areas()
    matrix = report.distance_matrix(
        QueryDistance(STATS, resolution=0.05), cutoff=0.12)
    assert matrix.stats.pairs_computed + matrix.stats.pairs_skipped \
        == len(areas) * (len(areas) - 1) // 2
    result = DBSCAN(0.12, min_pts=3).fit(areas, matrix=matrix)
    assert len(result.labels) == len(areas)
    labels = {label for label in result.labels if label != NOISE}
    # Cluster ids are dense non-negative integers.
    assert labels == set(range(result.n_clusters))


@settings(max_examples=100, deadline=None)
@given(st.text(alphabet=_sql_alphabet, max_size=100))
def test_prefixed_select_fuzz(garbage):
    """A valid prefix plus garbage: still only documented errors."""
    sql = "SELECT * FROM PhotoObjAll WHERE " + garbage
    try:
        result = EXTRACTOR.extract(sql)
    except (SqlError, CNFConversionError):
        return
    # If it parsed, the area must be well-formed.
    assert result.area.relations
    str(result.area.cnf)
