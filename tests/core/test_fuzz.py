"""Robustness fuzzing: the front-end must never crash uncontrolled.

Feeding arbitrary text into the extractor may fail, but only ever with
the documented error types — the batch pipeline over 12M statements
depends on that contract.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.cnf import CNFConversionError
from repro.core import AccessAreaExtractor
from repro.schema import skyserver_schema
from repro.sqlparser import SqlError, tokenize
from repro.sqlparser.errors import LexError

EXTRACTOR = AccessAreaExtractor(skyserver_schema())

_sql_alphabet = st.sampled_from(
    list("SELECTFROMWHEREANDORNT ()*,.<>='\"0123456789abcxyz_-%"))


@settings(max_examples=300, deadline=None)
@given(st.text(alphabet=_sql_alphabet, max_size=120))
def test_extractor_fails_only_with_documented_errors(text):
    try:
        EXTRACTOR.extract(text)
    except (SqlError, CNFConversionError):
        pass  # the documented failure modes


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=80))
def test_extractor_handles_arbitrary_unicode(text):
    try:
        EXTRACTOR.extract(text)
    except (SqlError, CNFConversionError):
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=100))
def test_tokenizer_total(text):
    try:
        tokens = tokenize(text)
    except LexError:
        return
    assert tokens  # at least EOF
    assert tokens[-1].value == ""


@settings(max_examples=100, deadline=None)
@given(st.text(alphabet=_sql_alphabet, max_size=100))
def test_prefixed_select_fuzz(garbage):
    """A valid prefix plus garbage: still only documented errors."""
    sql = "SELECT * FROM PhotoObjAll WHERE " + garbage
    try:
        result = EXTRACTOR.extract(sql)
    except (SqlError, CNFConversionError):
        return
    # If it parsed, the area must be well-formed.
    assert result.area.relations
    str(result.area.cnf)
