"""The AccessArea model."""

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnColumnPredicate,
                                      ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core.area import AccessArea, empty_area, unconstrained

T_U = ColumnRef("T", "u")
T_V = ColumnRef("T", "v")


def _area(*preds):
    return AccessArea(("T",), CNF.of([Clause.of([p]) for p in preds]))


class TestBasics:
    def test_relations_sorted_and_deduped(self):
        area = AccessArea(("T", "S", "T"), CNF.true())
        assert area.relations == ("S", "T")

    def test_unconstrained(self):
        area = unconstrained(["T", "S"])
        assert area.is_unconstrained and not area.is_empty

    def test_empty(self):
        area = empty_area(["T"])
        assert area.is_empty
        assert area.describe() == "∅"

    def test_table_set(self):
        assert unconstrained(["T", "S"]).table_set == frozenset({"S", "T"})


class TestFootprints:
    def test_unit_clauses_intersect(self):
        area = _area(
            ColumnConstantPredicate(T_U, Op.GE, 1),
            ColumnConstantPredicate(T_U, Op.LE, 9),
            ColumnConstantPredicate(T_V, Op.GT, 5),
        )
        footprints = area.column_footprints()
        assert footprints[T_U].hull() == Interval(1, 9)
        assert footprints[T_V].intervals[0].lo == 5

    def test_non_unit_clause_skipped(self):
        area = AccessArea(("T",), CNF.of([Clause.of([
            ColumnConstantPredicate(T_U, Op.LT, 1),
            ColumnConstantPredicate(T_V, Op.GT, 9),
        ])]))
        assert area.column_footprints() == {}

    def test_categorical_skipped(self):
        area = _area(ColumnConstantPredicate(T_U, Op.EQ, "x"))
        assert area.column_footprints() == {}

    def test_join_predicate_skipped(self):
        area = _area(ColumnColumnPredicate(T_U, Op.EQ, ColumnRef("S", "u")))
        assert area.column_footprints() == {}

    def test_footprint_hull(self):
        area = _area(ColumnConstantPredicate(T_U, Op.EQ, 4))
        assert area.footprint_hull(T_U) == Interval.point(4)
        assert area.footprint_hull(T_V) is None


class TestDescribe:
    def test_describe_includes_tables(self):
        area = _area(ColumnConstantPredicate(T_U, Op.GT, 1))
        assert "T.u > 1" in area.describe()
        assert "[on T]" in area.describe()

    def test_describe_unconstrained(self):
        assert unconstrained(["T"]).describe() == "T"
