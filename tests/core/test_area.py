"""The AccessArea model."""

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnColumnPredicate,
                                      ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core.area import AccessArea, empty_area, unconstrained

T_U = ColumnRef("T", "u")
T_V = ColumnRef("T", "v")


def _area(*preds):
    return AccessArea(("T",), CNF.of([Clause.of([p]) for p in preds]))


class TestBasics:
    def test_relations_sorted_and_deduped(self):
        area = AccessArea(("T", "S", "T"), CNF.true())
        assert area.relations == ("S", "T")

    def test_unconstrained(self):
        area = unconstrained(["T", "S"])
        assert area.is_unconstrained and not area.is_empty

    def test_empty(self):
        area = empty_area(["T"])
        assert area.is_empty
        assert area.describe() == "∅"

    def test_table_set(self):
        assert unconstrained(["T", "S"]).table_set == frozenset({"S", "T"})


class TestFootprints:
    def test_unit_clauses_intersect(self):
        area = _area(
            ColumnConstantPredicate(T_U, Op.GE, 1),
            ColumnConstantPredicate(T_U, Op.LE, 9),
            ColumnConstantPredicate(T_V, Op.GT, 5),
        )
        footprints = area.column_footprints()
        assert footprints[T_U].hull() == Interval(1, 9)
        assert footprints[T_V].intervals[0].lo == 5

    def test_non_unit_clause_skipped(self):
        area = AccessArea(("T",), CNF.of([Clause.of([
            ColumnConstantPredicate(T_U, Op.LT, 1),
            ColumnConstantPredicate(T_V, Op.GT, 9),
        ])]))
        assert area.column_footprints() == {}

    def test_categorical_skipped(self):
        area = _area(ColumnConstantPredicate(T_U, Op.EQ, "x"))
        assert area.column_footprints() == {}

    def test_join_predicate_skipped(self):
        area = _area(ColumnColumnPredicate(T_U, Op.EQ, ColumnRef("S", "u")))
        assert area.column_footprints() == {}

    def test_footprint_hull(self):
        area = _area(ColumnConstantPredicate(T_U, Op.EQ, 4))
        assert area.footprint_hull(T_U) == Interval.point(4)
        assert area.footprint_hull(T_V) is None


class TestDescribe:
    def test_describe_includes_tables(self):
        area = _area(ColumnConstantPredicate(T_U, Op.GT, 1))
        assert "T.u > 1" in area.describe()
        assert "[on T]" in area.describe()

    def test_describe_unconstrained(self):
        assert unconstrained(["T"]).describe() == "T"


class TestCanonicalIdentity:
    """Order-insensitive equality/hash — the intern-pool contract."""

    def _pred(self, ref, op, value):
        return ColumnConstantPredicate(ref, op, value)

    def test_clause_order_irrelevant(self):
        a = self._pred(T_U, Op.GT, 1)
        b = self._pred(T_V, Op.LT, 2)
        forward = _area(a, b)
        backward = _area(b, a)
        assert forward == backward
        assert hash(forward) == hash(backward)
        assert forward.fingerprint == backward.fingerprint

    def test_predicate_order_within_clause_irrelevant(self):
        a = self._pred(T_U, Op.GT, 1)
        b = self._pred(T_V, Op.LT, 2)
        one = AccessArea(("T",), CNF.of([Clause.of([a, b])]))
        other = AccessArea(("T",), CNF.of([Clause.of([b, a])]))
        assert one == other and hash(one) == hash(other)

    def test_duplicate_clauses_collapse(self):
        a = self._pred(T_U, Op.GT, 1)
        assert _area(a) == _area(a, a)

    def test_numeric_literal_spelling_unified(self):
        five = _area(self._pred(T_U, Op.EQ, 5))
        five_float = _area(self._pred(T_U, Op.EQ, 5.0))
        assert five == five_float
        assert hash(five) == hash(five_float)

    def test_string_and_number_spaces_disjoint(self):
        number = _area(self._pred(T_U, Op.EQ, 5))
        string = _area(self._pred(T_U, Op.EQ, "5"))
        assert number != string

    def test_different_constants_differ(self):
        assert _area(self._pred(T_U, Op.GT, 1)) \
            != _area(self._pred(T_U, Op.GT, 2))

    def test_different_relations_differ(self):
        cnf = CNF.true()
        assert AccessArea(("T",), cnf) != AccessArea(("S",), cnf)

    def test_notes_do_not_split_identity(self):
        cnf = CNF.of([Clause.of([self._pred(T_U, Op.GT, 1)])])
        plain = AccessArea(("T",), cnf)
        noted = AccessArea(("T",), cnf, notes=("weird query",))
        assert plain == noted
        assert hash(plain) == hash(noted)

    def test_non_area_comparisons(self):
        area = _area(self._pred(T_U, Op.GT, 1))
        assert area != "not an area"
        assert not (area == 42)

    def test_usable_as_dict_key(self):
        mapping = {}
        a = self._pred(T_U, Op.GT, 1)
        b = self._pred(T_V, Op.LT, 2)
        mapping[_area(a, b)] = "first"
        mapping[_area(b, a)] = "second"
        assert len(mapping) == 1
        assert mapping[_area(a, b)] == "second"

    def test_join_predicate_operand_order_canonical(self):
        forward = ColumnColumnPredicate(T_U, Op.EQ, ColumnRef("S", "u"))
        backward = ColumnColumnPredicate(ColumnRef("S", "u"), Op.EQ, T_U)
        one = AccessArea(("S", "T"), CNF.of([Clause.of([forward])]))
        other = AccessArea(("S", "T"), CNF.of([Clause.of([backward])]))
        assert one == other
