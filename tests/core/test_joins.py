"""Join queries (Section 4.2, Examples 2-3)."""


class TestInnerAndCross:
    def test_inner_join_condition_pushed(self, extract):
        area = extract("SELECT * FROM T JOIN S ON T.u = S.u")
        assert area.relations == ("S", "T")
        assert str(area.cnf) == "S.u = T.u"

    def test_comma_join_equivalent(self, extract):
        joined = extract("SELECT * FROM T JOIN S ON T.u = S.u")
        comma = extract("SELECT * FROM T, S WHERE T.u = S.u")
        assert str(joined.cnf) == str(comma.cnf)
        assert joined.relations == comma.relations

    def test_cross_join_unconstrained(self, extract):
        area = extract("SELECT * FROM T CROSS JOIN S")
        assert area.is_unconstrained
        assert area.relations == ("S", "T")

    def test_join_condition_plus_where(self, extract):
        area = extract(
            "SELECT * FROM T JOIN S ON T.u = S.u WHERE T.v > 3")
        assert str(area.cnf) == "S.u = T.u AND T.v > 3"

    def test_join_with_extra_on_predicate(self, extract):
        area = extract(
            "SELECT * FROM T JOIN S ON T.u = S.u AND S.v < 2")
        assert str(area.cnf) == "S.u = T.u AND S.v < 2"

    def test_chained_joins(self, extract):
        area = extract(
            "SELECT * FROM T JOIN S ON T.u = S.u JOIN R ON S.v = R.v")
        assert area.relations == ("R", "S", "T")
        assert "R.v = S.v" in str(area.cnf)


class TestOuterJoins:
    def test_full_outer_drops_condition(self, extract):
        # Example 2: any pair can influence the result.
        area = extract("SELECT * FROM T FULL OUTER JOIN S ON (T.u = S.u)")
        assert area.is_unconstrained
        assert area.relations == ("S", "T")

    def test_full_outer_keeps_where(self, extract):
        area = extract(
            "SELECT * FROM T FULL OUTER JOIN S ON T.u = S.u "
            "WHERE T.v > 1")
        assert str(area.cnf) == "T.v > 1"

    def test_right_outer_equals_lemma4_flattening(self, extract):
        # Example 3: RIGHT OUTER JOIN reduces to the nested-IN form whose
        # Lemma-4 flattening is the join condition itself.
        area = extract("SELECT * FROM T RIGHT OUTER JOIN S ON (T.u = S.u)")
        nested = extract(
            "SELECT * FROM T, S WHERE T.u IN (SELECT S.u FROM S)")
        assert str(area.cnf) == str(nested.cnf) == "S.u = T.u"

    def test_left_outer_analogous(self, extract):
        area = extract("SELECT * FROM T LEFT OUTER JOIN S ON T.u = S.u")
        assert str(area.cnf) == "S.u = T.u"


class TestNaturalJoin:
    def test_common_columns_equated(self, extract):
        # T and S share u and v.
        area = extract("SELECT * FROM T NATURAL JOIN S")
        text = str(area.cnf)
        assert "S.u = T.u" in text and "S.v = T.v" in text

    def test_no_common_columns_noted(self, extract):
        # T and R share only v.
        area = extract("SELECT * FROM T NATURAL JOIN R")
        assert str(area.cnf) == "R.v = T.v"

    def test_without_schema_widens(self):
        from repro.core import AccessAreaExtractor
        area = AccessAreaExtractor(schema=None).extract(
            "SELECT * FROM A NATURAL JOIN B").area
        assert area.is_unconstrained
        assert any("NATURAL" in note for note in area.notes)


class TestSelfJoinMerging:
    def test_same_relation_twice_merges(self, extract):
        # The paper excludes self-joins; two occurrences collapse into one
        # relation of the universal relation.
        area = extract("SELECT * FROM T a, T b WHERE a.u > 1 AND b.u < 9")
        assert area.relations == ("T",)
        assert str(area.cnf) == "T.u < 9 AND T.u > 1"
