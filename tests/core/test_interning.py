"""Access-area interning: canonical pool, dedupe maps, pipeline wiring."""

import pytest

from repro.algebra.cnf import CNF, Clause
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core import (AccessAreaInterner, InternStats, dedupe_areas,
                        expand_labels, process_log)
from repro.core.area import AccessArea
from repro.obs.metrics import MetricsRegistry


def _pred(column, op, value):
    return ColumnConstantPredicate(ColumnRef("T", column), op, value)


def area(*preds, relations=("T",)):
    return AccessArea(tuple(relations),
                      CNF.of([Clause.of([p]) for p in preds]))


class TestInterner:
    def test_first_object_wins(self):
        pool = AccessAreaInterner()
        first = area(_pred("u", Op.GT, 1))
        second = area(_pred("u", Op.GT, 1))
        assert first is not second
        assert pool.intern(first) is first
        assert pool.intern(second) is first
        assert len(pool) == 1
        assert pool.hits == 1

    def test_clause_order_interns_together(self):
        a = _pred("u", Op.GT, 1)
        b = _pred("v", Op.LT, 2)
        pool = AccessAreaInterner()
        forward = area(a, b)
        backward = area(b, a)
        assert pool.intern(forward) is pool.intern(backward)

    def test_literal_spelling_interns_together(self):
        pool = AccessAreaInterner()
        five = area(_pred("u", Op.EQ, 5))
        five_point_zero = area(_pred("u", Op.EQ, 5.0))
        assert pool.intern(five) is pool.intern(five_point_zero)

    def test_distinct_areas_stay_distinct(self):
        pool = AccessAreaInterner()
        one = pool.intern(area(_pred("u", Op.GT, 1)))
        two = pool.intern(area(_pred("u", Op.GT, 2)))
        assert one is not two
        assert len(pool) == 2
        assert pool.hits == 0

    def test_contains_and_areas_order(self):
        pool = AccessAreaInterner()
        first = pool.intern(area(_pred("u", Op.GT, 1)))
        second = pool.intern(area(_pred("u", Op.GT, 2)))
        assert first in pool and second in pool
        assert area(_pred("u", Op.GT, 3)) not in pool
        assert pool.areas() == [first, second]

    def test_stats(self):
        pool = AccessAreaInterner()
        for value in (1, 1, 1, 2):
            pool.intern(area(_pred("u", Op.GT, value)))
        stats = pool.stats()
        assert stats == InternStats(pool_size=2, hits=2)
        assert stats.probes == 4
        assert stats.hit_rate == 0.5
        assert stats.dedup_ratio == 2.0

    def test_empty_stats(self):
        stats = AccessAreaInterner().stats()
        assert stats.hit_rate == 0.0
        assert stats.dedup_ratio == 1.0

    def test_record_metrics(self):
        registry = MetricsRegistry()
        pool = AccessAreaInterner()
        for value in (1, 1, 2, 2):
            pool.intern(area(_pred("u", Op.GT, value)))
        pool.record(registry)
        assert registry.gauge("repro_intern_pool_size").value == 2
        assert registry.counter("repro_intern_hits_total").value == 2
        assert registry.counter("repro_intern_misses_total").value == 2
        assert registry.gauge("repro_intern_dedup_ratio").value == 2.0


class TestDedupeAreas:
    def test_first_occurrence_order_and_maps(self):
        pool = [area(_pred("u", Op.GT, value)) for value in (1, 2, 3)]
        source = [pool[i] for i in [1, 0, 1, 2, 0, 1]]
        unique, weights, inverse = dedupe_areas(source)
        assert unique == [pool[1], pool[0], pool[2]]
        assert weights == [3, 2, 1]
        assert inverse == [0, 1, 0, 2, 1, 0]

    def test_expand_labels_roundtrip(self):
        source = [area(_pred("u", Op.GT, value))
                  for value in (1, 2, 1, 1, 3)]
        unique, weights, inverse = dedupe_areas(source)
        labels = list(range(len(unique)))
        expanded = expand_labels(labels, inverse)
        assert len(expanded) == len(source)
        # Two sources sharing an area share the expanded label.
        assert expanded[0] == expanded[2] == expanded[3]
        assert len(set(expanded)) == len(unique)

    def test_shared_interner_accumulates(self):
        pool = AccessAreaInterner()
        dedupe_areas([area(_pred("u", Op.GT, 1))], pool)
        dedupe_areas([area(_pred("u", Op.GT, 1)),
                      area(_pred("u", Op.GT, 2))], pool)
        assert len(pool) == 2
        assert pool.hits == 1

    def test_empty(self):
        assert dedupe_areas([]) == ([], [], [])
        assert expand_labels([], []) == []


class TestProcessLogInterning:
    STATEMENTS = [
        "SELECT * FROM T WHERE T.u > 1",
        "SELECT * FROM T WHERE T.u > 1",
        "SELECT * FROM T WHERE T.u > 2",
        "SELECT v FROM T WHERE T.u > 1",  # projection-invariant area
    ]

    def test_repeats_share_one_object(self, extractor):
        report = process_log(self.STATEMENTS, extractor)
        areas = report.areas()
        assert areas[0] is areas[1] is areas[3]
        assert areas[0] is not areas[2]
        stats = report.intern_stats
        assert stats.pool_size == 2
        assert stats.hits == 2

    def test_no_intern_keeps_distinct_objects(self, extractor):
        report = process_log(self.STATEMENTS, extractor, intern=False)
        areas = report.areas()
        assert report.interner is None
        assert areas[0] is not areas[1]
        assert areas[0] == areas[1]  # still canonically equal
        assert report.intern_stats == InternStats()

    def test_unique_areas_collapse(self, extractor):
        report = process_log(self.STATEMENTS, extractor)
        unique, weights, inverse = report.unique_areas()
        assert len(unique) == 2
        assert weights == [3, 1]
        assert inverse == [0, 0, 1, 0]

    def test_unique_areas_without_interning(self, extractor):
        interned = process_log(self.STATEMENTS, extractor)
        plain = process_log(self.STATEMENTS, extractor, intern=False)
        assert interned.unique_areas()[1:] == plain.unique_areas()[1:]

    def test_shared_pool_across_logs(self, extractor):
        pool = AccessAreaInterner()
        process_log(self.STATEMENTS[:2], extractor, interner=pool)
        process_log(self.STATEMENTS[2:], extractor, interner=pool)
        assert len(pool) == 2
        assert pool.hits == 2

    def test_metrics_recorded(self, extractor):
        registry = MetricsRegistry()
        process_log(self.STATEMENTS, extractor, registry=registry)
        assert registry.gauge("repro_intern_pool_size").value == 2
        assert registry.gauge("repro_intern_dedup_ratio").value \
            == pytest.approx(2.0)
