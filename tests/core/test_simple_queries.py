"""Simple queries (Section 4.1): exact access areas, BETWEEN/NOT handling."""


class TestPlainPredicates:
    def test_paper_example(self, extract):
        # "SELECT u FROM T WHERE u >= 1 AND u <= 8 AND s > 5" — adapted to
        # the fixture schema (s is v here).
        area = extract("SELECT u FROM T WHERE u >= 1 AND u <= 8 AND v > 5")
        assert area.relations == ("T",)
        assert str(area.cnf) == "T.u <= 8 AND T.u >= 1 AND T.v > 5"

    def test_projection_does_not_constrain(self, extract):
        a = extract("SELECT u FROM T WHERE u > 1")
        b = extract("SELECT v FROM T WHERE u > 1")
        assert str(a.cnf) == str(b.cnf)

    def test_order_by_ignored(self, extract):
        a = extract("SELECT * FROM T WHERE u > 1 ORDER BY v DESC")
        b = extract("SELECT * FROM T WHERE u > 1")
        assert str(a.cnf) == str(b.cnf)

    def test_no_where(self, extract):
        area = extract("SELECT * FROM T")
        assert area.is_unconstrained and area.relations == ("T",)

    def test_unqualified_column_resolved(self, extract):
        area = extract("SELECT * FROM T WHERE u > 1")
        pred = next(area.cnf.predicates())
        assert pred.ref.relation == "T"

    def test_alias_resolved_to_real_name(self, extract):
        area = extract("SELECT * FROM T alias1 WHERE alias1.u > 1")
        assert area.relations == ("T",)
        pred = next(area.cnf.predicates())
        assert pred.ref.relation == "T"

    def test_relations_sorted(self, extract):
        area = extract("SELECT * FROM S, R, T")
        assert area.relations == ("R", "S", "T")


class TestBetween:
    def test_between_splits(self, extract):
        area = extract("SELECT * FROM T WHERE u BETWEEN 1 AND 8")
        assert str(area.cnf) == "T.u <= 8 AND T.u >= 1"

    def test_not_between(self, extract):
        area = extract("SELECT * FROM T WHERE u NOT BETWEEN 1 AND 8")
        assert str(area.cnf) == "(T.u < 1 OR T.u > 8)"


class TestNot:
    def test_paper_not_example(self, extract):
        # NOT (T.u > 5 AND T.v <= 10) becomes T.u <= 5 OR T.v > 10.
        area = extract("SELECT * FROM T WHERE NOT (T.u > 5 AND T.v <= 10)")
        assert str(area.cnf) == "(T.u <= 5 OR T.v > 10)"

    def test_double_not(self, extract):
        area = extract("SELECT * FROM T WHERE NOT (NOT (u > 5))")
        assert str(area.cnf) == "T.u > 5"

    def test_not_equality(self, extract):
        area = extract("SELECT * FROM T WHERE NOT (u = 5)")
        assert str(area.cnf) == "T.u <> 5"


class TestInList:
    def test_in_list_becomes_disjunction(self, extract):
        area = extract("SELECT * FROM T WHERE u IN (1, 2, 3)")
        assert str(area.cnf) == "(T.u = 1 OR T.u = 2 OR T.u = 3)"

    def test_not_in_list(self, extract):
        area = extract("SELECT * FROM T WHERE u NOT IN (1, 2)")
        assert str(area.cnf) == "T.u <> 1 AND T.u <> 2"

    def test_categorical_in(self, extract):
        area = extract("SELECT * FROM T WHERE s IN ('a', 'b')")
        assert str(area.cnf) == "(T.s = 'a' OR T.s = 'b')"


class TestIntermediateFormatPassthrough:
    def test_paper_intermediate_example(self, extract):
        area = extract(
            "SELECT * FROM T WHERE (T.u <= 5 OR T.u >= 10) AND T.v <= 5")
        assert str(area.cnf) == "(T.u <= 5 OR T.u >= 10) AND T.v <= 5"


class TestConsolidationInPipeline:
    def test_contradiction_detected(self, extract):
        area = extract("SELECT * FROM T WHERE u > 5 AND u < 3")
        assert area.is_empty

    def test_bounds_merged(self, extract):
        area = extract("SELECT * FROM T WHERE u >= 1 AND u >= 4 AND u <= 9")
        assert str(area.cnf) == "T.u <= 9 AND T.u >= 4"

    def test_consolidation_can_be_disabled(self, schema):
        from repro.core import AccessAreaExtractor
        raw = AccessAreaExtractor(schema, consolidate=False)
        area = raw.extract("SELECT * FROM T WHERE u > 5 AND u < 3").area
        assert not area.is_empty  # contradiction left in place
        assert len(area.cnf) == 2


class TestWidening:
    def test_udf_comparison_widens(self, extract):
        area = extract("SELECT * FROM T WHERE dbo.f(u) > 5")
        assert area.is_unconstrained
        assert any("widened" in note for note in area.notes)

    def test_column_arithmetic_widens(self, extract):
        area = extract("SELECT * FROM T WHERE u + v > 5")
        assert area.is_unconstrained

    def test_constant_arithmetic_folds(self, extract):
        area = extract("SELECT * FROM T WHERE u > 20 + 2")
        assert str(area.cnf) == "T.u > 22"

    def test_like_exact_becomes_equality(self, extract):
        area = extract("SELECT * FROM T WHERE s LIKE 'abc'")
        assert str(area.cnf) == "T.s = 'abc'"

    def test_like_wildcard_widens(self, extract):
        area = extract("SELECT * FROM T WHERE s LIKE 'ab%'")
        assert area.is_unconstrained

    def test_is_null_widens(self, extract):
        area = extract("SELECT * FROM T WHERE u IS NULL")
        assert area.is_unconstrained

    def test_widening_is_partial(self, extract):
        # Only the unsupported conjunct widens; the rest is kept.
        area = extract("SELECT * FROM T WHERE u IS NULL AND v > 3")
        assert str(area.cnf) == "T.v > 3"


class TestUnknownSchemaObjects:
    def test_unknown_relation_still_extracts(self, extract):
        # "SELECT Galaxies.objid FROM Galaxies LIMIT 10" (Section 6.6).
        # Unknown relations canonicalize to lowercase at extraction.
        area = extract("SELECT Galaxies.objid FROM Galaxies LIMIT 10")
        assert area.relations == ("galaxies",)

    def test_no_schema_extractor(self):
        from repro.core import AccessAreaExtractor
        area = AccessAreaExtractor(schema=None).extract(
            "SELECT * FROM Foo WHERE Foo.x > 1").area
        assert str(area.cnf) == "foo.x > 1"

    def test_mixed_case_duplicates_share_table_set(self, extract):
        # Regression: raw-case table_set vs lowercased partition keys
        # used to split the same logical relation into distinct
        # partitions the metric saw as one (d_tables == 0).
        a = extract("SELECT * FROM Galaxies WHERE Galaxies.x > 1")
        b = extract("SELECT * FROM GALAXIES WHERE galaxies.x > 2")
        c = extract("SELECT * FROM galaxies WHERE galaxies.x > 3")
        assert a.table_set == b.table_set == c.table_set
        assert a.table_set == frozenset({"galaxies"})
