"""Streaming extraction and novelty detection (Section 4 extension)."""

import pytest

from repro.core import AccessAreaExtractor
from repro.core.stream import EventKind, StreamMonitor
from repro.schema import (CONTENT_BOUNDS, StatisticsCatalog,
                          skyserver_schema)


@pytest.fixture()
def monitor():
    schema = skyserver_schema()
    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)
    return StreamMonitor(AccessAreaExtractor(schema), stats=stats,
                         warmup=0)


def kinds(monitor):
    return [event.kind for event in monitor.events]


class TestIngestion:
    def test_counts(self, monitor):
        monitor.process("SELECT * FROM Photoz WHERE z < 0.1")
        monitor.process("SELCT broken")
        assert monitor.state.processed == 2
        assert monitor.state.extracted == 1
        assert monitor.state.failures == 1
        assert monitor.state.extraction_rate == 0.5

    def test_process_many_returns_areas(self, monitor):
        areas = monitor.process_many([
            "SELECT * FROM Photoz", "CREATE TABLE x (a int)",
            "SELECT * FROM SpecObjAll"])
        assert len(areas) == 2

    def test_failure_returns_none(self, monitor):
        assert monitor.process("DECLARE @x int") is None


class TestNoveltyEvents:
    def test_new_relation_once(self, monitor):
        monitor.process("SELECT * FROM Photoz")
        monitor.process("SELECT * FROM Photoz")
        relation_events = [e for e in monitor.events
                           if e.kind is EventKind.NEW_RELATION]
        assert len(relation_events) == 1

    def test_new_column(self, monitor):
        monitor.process("SELECT * FROM Photoz")
        monitor.process("SELECT * FROM Photoz WHERE z < 0.1")
        assert EventKind.NEW_COLUMN in kinds(monitor)

    def test_new_relation_combination(self, monitor):
        monitor.process("SELECT * FROM sppLines")
        monitor.process("SELECT * FROM sppParams")
        monitor.process(
            "SELECT * FROM sppLines l JOIN sppParams p "
            "ON l.specobjid = p.specobjid")
        assert EventKind.NEW_RELATION_SET in kinds(monitor)

    def test_new_query_feature(self, monitor):
        monitor.process("SELECT * FROM SpecObjAll WHERE plate > 300")
        assert EventKind.NEW_QUERY_FEATURE not in kinds(monitor)
        monitor.process("SELECT plate, COUNT(*) FROM SpecObjAll "
                        "GROUP BY plate HAVING COUNT(*) > 5")
        features = {e.detail for e in monitor.events
                    if e.kind is EventKind.NEW_QUERY_FEATURE}
        assert any("group-by" in f for f in features)
        assert any("having" in f for f in features)

    def test_feature_only_fires_once(self, monitor):
        for _ in range(3):
            monitor.process("SELECT * FROM Photoz WHERE z "
                            "BETWEEN 0 AND 0.1")
        between_events = [
            e for e in monitor.events
            if e.kind is EventKind.NEW_QUERY_FEATURE
            and "between" in e.detail
        ]
        assert len(between_events) == 1

    def test_out_of_range_constant(self, monitor):
        # zooSpec access(dec) is the [-11, 70] stripe: 0 is inside.
        monitor.process("SELECT * FROM zooSpec WHERE dec >= 0")
        assert EventKind.OUT_OF_RANGE_CONSTANT not in kinds(monitor)
        monitor.process("SELECT * FROM zooSpec WHERE dec >= -100")
        events = [e for e in monitor.events
                  if e.kind is EventKind.OUT_OF_RANGE_CONSTANT]
        assert events and "-100" in events[0].detail

    def test_warmup_suppresses_events(self):
        schema = skyserver_schema()
        quiet = StreamMonitor(AccessAreaExtractor(schema), warmup=10)
        for _ in range(5):
            quiet.process("SELECT * FROM Photoz WHERE z < 0.1")
        assert not quiet.events

    def test_callback_invoked(self):
        schema = skyserver_schema()
        seen = []
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                on_event=seen.append)
        monitor.process("SELECT * FROM Photoz")
        assert seen and seen[0].kind is EventKind.NEW_RELATION


class TestFailureBurst:
    def test_burst_detected(self):
        schema = skyserver_schema()
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                failure_window=10,
                                failure_burst_threshold=0.3)
        for _ in range(10):
            monitor.process("SELECT * FROM Photoz")
        for _ in range(10):
            monitor.process("SELCT broken !!!")
        assert EventKind.FAILURE_BURST in kinds(monitor)

    def test_burst_fires_once_per_episode(self):
        schema = skyserver_schema()
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                failure_window=10,
                                failure_burst_threshold=0.3)
        for _ in range(30):
            monitor.process("SELCT broken")
        bursts = [e for e in monitor.events
                  if e.kind is EventKind.FAILURE_BURST]
        assert len(bursts) == 1

    def test_no_burst_on_sporadic_failures(self):
        schema = skyserver_schema()
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                failure_window=10,
                                failure_burst_threshold=0.5)
        for i in range(40):
            if i % 10 == 0:
                monitor.process("SELCT broken")
            else:
                monitor.process("SELECT * FROM Photoz")
        assert EventKind.FAILURE_BURST not in kinds(monitor)

    def test_alternating_burst_fires_once(self):
        # An alternating fail/success stream keeps the window at a 50%
        # failure rate: one long burst episode.  The old latch re-armed
        # on every successful parse and fired once per failure.
        schema = skyserver_schema()
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                failure_window=10,
                                failure_burst_threshold=0.3)
        for _ in range(30):
            monitor.process("SELCT broken")
            monitor.process("SELECT * FROM Photoz")
        bursts = [e for e in monitor.events
                  if e.kind is EventKind.FAILURE_BURST]
        assert len(bursts) == 1

    def test_latch_rearms_after_recovery(self):
        # Burst → full recovery (window rate drops below threshold) →
        # second burst: exactly two notifications, one per episode.
        schema = skyserver_schema()
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                failure_window=10,
                                failure_burst_threshold=0.3)
        for _ in range(15):
            monitor.process("SELCT broken")
        for _ in range(20):  # flush the window clean
            monitor.process("SELECT * FROM Photoz")
        for _ in range(15):
            monitor.process("SELCT broken")
        bursts = [e for e in monitor.events
                  if e.kind is EventKind.FAILURE_BURST]
        assert len(bursts) == 2


class TestSummary:
    def test_summary_mentions_counts(self, monitor):
        monitor.process("SELECT * FROM Photoz WHERE z < 0.1")
        text = monitor.summary()
        assert "statements processed : 1" in text
        assert "events emitted" in text
