"""Streaming extraction and novelty detection (Section 4 extension)."""

import pytest

from repro.core import AccessAreaExtractor
from repro.core.stream import EventKind, StreamMonitor
from repro.schema import (CONTENT_BOUNDS, StatisticsCatalog,
                          skyserver_schema)


@pytest.fixture()
def monitor():
    schema = skyserver_schema()
    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)
    return StreamMonitor(AccessAreaExtractor(schema), stats=stats,
                         warmup=0)


def kinds(monitor):
    return [event.kind for event in monitor.events]


class TestIngestion:
    def test_counts(self, monitor):
        monitor.process("SELECT * FROM Photoz WHERE z < 0.1")
        monitor.process("SELCT broken")
        assert monitor.state.processed == 2
        assert monitor.state.extracted == 1
        assert monitor.state.failures == 1
        assert monitor.state.extraction_rate == 0.5

    def test_process_many_returns_areas(self, monitor):
        areas = monitor.process_many([
            "SELECT * FROM Photoz", "CREATE TABLE x (a int)",
            "SELECT * FROM SpecObjAll"])
        assert len(areas) == 2

    def test_failure_returns_none(self, monitor):
        assert monitor.process("DECLARE @x int") is None


class TestNoveltyEvents:
    def test_new_relation_once(self, monitor):
        monitor.process("SELECT * FROM Photoz")
        monitor.process("SELECT * FROM Photoz")
        relation_events = [e for e in monitor.events
                           if e.kind is EventKind.NEW_RELATION]
        assert len(relation_events) == 1

    def test_new_column(self, monitor):
        monitor.process("SELECT * FROM Photoz")
        monitor.process("SELECT * FROM Photoz WHERE z < 0.1")
        assert EventKind.NEW_COLUMN in kinds(monitor)

    def test_new_relation_combination(self, monitor):
        monitor.process("SELECT * FROM sppLines")
        monitor.process("SELECT * FROM sppParams")
        monitor.process(
            "SELECT * FROM sppLines l JOIN sppParams p "
            "ON l.specobjid = p.specobjid")
        assert EventKind.NEW_RELATION_SET in kinds(monitor)

    def test_new_query_feature(self, monitor):
        monitor.process("SELECT * FROM SpecObjAll WHERE plate > 300")
        assert EventKind.NEW_QUERY_FEATURE not in kinds(monitor)
        monitor.process("SELECT plate, COUNT(*) FROM SpecObjAll "
                        "GROUP BY plate HAVING COUNT(*) > 5")
        features = {e.detail for e in monitor.events
                    if e.kind is EventKind.NEW_QUERY_FEATURE}
        assert any("group-by" in f for f in features)
        assert any("having" in f for f in features)

    def test_feature_only_fires_once(self, monitor):
        for _ in range(3):
            monitor.process("SELECT * FROM Photoz WHERE z "
                            "BETWEEN 0 AND 0.1")
        between_events = [
            e for e in monitor.events
            if e.kind is EventKind.NEW_QUERY_FEATURE
            and "between" in e.detail
        ]
        assert len(between_events) == 1

    def test_out_of_range_constant(self, monitor):
        # zooSpec access(dec) is the [-11, 70] stripe: 0 is inside.
        monitor.process("SELECT * FROM zooSpec WHERE dec >= 0")
        assert EventKind.OUT_OF_RANGE_CONSTANT not in kinds(monitor)
        monitor.process("SELECT * FROM zooSpec WHERE dec >= -100")
        events = [e for e in monitor.events
                  if e.kind is EventKind.OUT_OF_RANGE_CONSTANT]
        assert events and "-100" in events[0].detail

    def test_warmup_suppresses_events(self):
        schema = skyserver_schema()
        quiet = StreamMonitor(AccessAreaExtractor(schema), warmup=10)
        for _ in range(5):
            quiet.process("SELECT * FROM Photoz WHERE z < 0.1")
        assert not quiet.events

    def test_callback_invoked(self):
        schema = skyserver_schema()
        seen = []
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                on_event=seen.append)
        monitor.process("SELECT * FROM Photoz")
        assert seen and seen[0].kind is EventKind.NEW_RELATION


class TestFailureBurst:
    def test_burst_detected(self):
        schema = skyserver_schema()
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                failure_window=10,
                                failure_burst_threshold=0.3)
        for _ in range(10):
            monitor.process("SELECT * FROM Photoz")
        for _ in range(10):
            monitor.process("SELCT broken !!!")
        assert EventKind.FAILURE_BURST in kinds(monitor)

    def test_burst_fires_once_per_episode(self):
        schema = skyserver_schema()
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                failure_window=10,
                                failure_burst_threshold=0.3)
        for _ in range(30):
            monitor.process("SELCT broken")
        bursts = [e for e in monitor.events
                  if e.kind is EventKind.FAILURE_BURST]
        assert len(bursts) == 1

    def test_no_burst_on_sporadic_failures(self):
        schema = skyserver_schema()
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                failure_window=10,
                                failure_burst_threshold=0.5)
        for i in range(40):
            if i % 10 == 0:
                monitor.process("SELCT broken")
            else:
                monitor.process("SELECT * FROM Photoz")
        assert EventKind.FAILURE_BURST not in kinds(monitor)

    def test_alternating_burst_fires_once(self):
        # An alternating fail/success stream keeps the window at a 50%
        # failure rate: one long burst episode.  The old latch re-armed
        # on every successful parse and fired once per failure.
        schema = skyserver_schema()
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                failure_window=10,
                                failure_burst_threshold=0.3)
        for _ in range(30):
            monitor.process("SELCT broken")
            monitor.process("SELECT * FROM Photoz")
        bursts = [e for e in monitor.events
                  if e.kind is EventKind.FAILURE_BURST]
        assert len(bursts) == 1

    def test_latch_rearms_after_recovery(self):
        # Burst → full recovery (window rate drops below threshold) →
        # second burst: exactly two notifications, one per episode.
        schema = skyserver_schema()
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                failure_window=10,
                                failure_burst_threshold=0.3)
        for _ in range(15):
            monitor.process("SELCT broken")
        for _ in range(20):  # flush the window clean
            monitor.process("SELECT * FROM Photoz")
        for _ in range(15):
            monitor.process("SELCT broken")
        bursts = [e for e in monitor.events
                  if e.kind is EventKind.FAILURE_BURST]
        assert len(bursts) == 2


class TestSummary:
    def test_summary_mentions_counts(self, monitor):
        monitor.process("SELECT * FROM Photoz WHERE z < 0.1")
        text = monitor.summary()
        assert "statements processed : 1" in text
        assert "events emitted" in text


class TestShortStreamBurst:
    def test_short_all_failure_stream_alarms(self):
        # A stream that dies before failure_window statements must
        # still notify: the burst check fires once half the window has
        # been observed.
        schema = skyserver_schema()
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                failure_window=50,
                                failure_burst_threshold=0.2)
        for _ in range(25):
            monitor.process("SELCT broken !!!")
        assert EventKind.FAILURE_BURST in kinds(monitor)

    def test_below_half_window_stays_quiet(self):
        schema = skyserver_schema()
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                failure_window=50,
                                failure_burst_threshold=0.2)
        for _ in range(24):
            monitor.process("SELCT broken !!!")
        assert EventKind.FAILURE_BURST not in kinds(monitor)


class TestWarmupCountsExtractions:
    def test_parse_failures_do_not_burn_warmup(self):
        # 20 junk statements then one real one: with warmup measured
        # against processed statements the junk would exhaust warmup
        # and the real statement's novelties would fire mid-learning.
        schema = skyserver_schema()
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=3)
        for _ in range(20):
            monitor.process("SELCT broken !!!")
        monitor.process("SELECT * FROM Photoz")
        novelty = [e for e in monitor.events
                   if e.kind is EventKind.NEW_RELATION]
        assert not novelty
        # After three *extractions* the monitor is warmed up.
        monitor.process("SELECT * FROM SpecObjAll")
        monitor.process("SELECT * FROM zooSpec")
        monitor.process("SELECT * FROM sppLines")
        novelty = [e for e in monitor.events
                   if e.kind is EventKind.NEW_RELATION]
        assert [e.detail for e in novelty] \
            == ["first query touching relation sppLines"]


class TestOutOfRangeSlackFloor:
    def _point_access_monitor(self):
        # A sampled catalog of a constant column yields a width-0
        # access interval (e.g. every sampled z was 0.2): the relative
        # margin alone would then flag *every* different constant.
        from repro.algebra.intervals import Interval
        from repro.schema.statistics import NumericColumnStats
        schema = skyserver_schema()
        stats = StatisticsCatalog.from_exact_content(schema,
                                                     CONTENT_BOUNDS)
        stats._numeric[("photoz", "z")] = NumericColumnStats(
            access=Interval(0.2, 0.2), content=Interval(0.2, 0.2))
        return StreamMonitor(AccessAreaExtractor(schema), stats=stats,
                             warmup=0)

    def test_point_access_interval_uses_domain_floor(self):
        monitor = self._point_access_monitor()
        # z's declared domain is [-1, 10]: with the domain-derived
        # floor, a nearby constant is routine widening...
        monitor.process("SELECT * FROM Photoz WHERE z < 0.21")
        assert EventKind.OUT_OF_RANGE_CONSTANT not in kinds(monitor)

    def test_domain_floor_still_catches_far_constants(self):
        monitor = self._point_access_monitor()
        monitor.process("SELECT * FROM Photoz WHERE z < 5.0")
        events = [e for e in monitor.events
                  if e.kind is EventKind.OUT_OF_RANGE_CONSTANT]
        assert events and "5.0" in events[0].detail

    def test_unknown_column_fallback_cannot_overflow(self):
        # An unresolvable column falls back to Interval(-1.7e308,
        # 1.7e308), whose width overflows to inf.  The margin
        # arithmetic must not propagate that into inf/nan comparisons
        # (or flag anything).
        schema = skyserver_schema()
        stats = StatisticsCatalog.from_exact_content(schema,
                                                     CONTENT_BOUNDS)
        monitor = StreamMonitor(AccessAreaExtractor(schema), stats=stats,
                                warmup=0)
        monitor.process(
            "SELECT * FROM Photoz p JOIN SpecObjAll s "
            "ON p.specobjid = s.specobjid WHERE p.nosuchcol > 1e307")
        assert EventKind.OUT_OF_RANGE_CONSTANT not in kinds(monitor)
        assert monitor.state.extracted == 1


class TestIncrementalClustering:
    def _monitor(self, **kwargs):
        schema = skyserver_schema()
        stats = StatisticsCatalog.from_exact_content(schema,
                                                     CONTENT_BOUNDS)
        return StreamMonitor(AccessAreaExtractor(schema), stats=stats,
                             warmup=0, cluster_incrementally=True,
                             **kwargs)

    def test_requires_stats(self):
        schema = skyserver_schema()
        with pytest.raises(ValueError, match="statistics"):
            StreamMonitor(AccessAreaExtractor(schema),
                          cluster_incrementally=True)

    def test_labels_track_extracted_statements(self):
        monitor = self._monitor(cluster_eps=0.1, cluster_min_pts=2)
        for i in range(4):
            monitor.process(f"SELECT * FROM Photoz WHERE z < 0.1")
            monitor.process("SELCT broken !!!")
        assert len(monitor.statement_labels) == 4
        assert len(monitor.statement_labels) == len(monitor.areas)
        # The repeated statement interns to one area, which promotes to
        # a core singleton cluster at min_pts=2.
        assert monitor.statement_labels[-1] == 0
        assert monitor.clusterer.n_unique == 1

    def test_cluster_changed_event_on_structure_change(self):
        monitor = self._monitor(cluster_eps=0.1, cluster_min_pts=2)
        monitor.process("SELECT * FROM Photoz WHERE z < 0.1")
        assert EventKind.CLUSTER_CHANGED not in kinds(monitor)
        monitor.process("SELECT * FROM Photoz WHERE z < 0.1")
        changed = [e for e in monitor.events
                   if e.kind is EventKind.CLUSTER_CHANGED]
        assert len(changed) == 1 and "promotion" in changed[0].detail
        # A third repeat is structurally quiet.
        monitor.process("SELECT * FROM Photoz WHERE z < 0.1")
        changed = [e for e in monitor.events
                   if e.kind is EventKind.CLUSTER_CHANGED]
        assert len(changed) == 1

    def test_stream_labels_match_batch_dbscan(self):
        import copy

        from repro.clustering import DBSCAN
        from repro.distance import QueryDistance

        schema = skyserver_schema()
        stats = StatisticsCatalog.from_exact_content(schema,
                                                     CONTENT_BOUNDS)
        frozen = copy.deepcopy(stats)
        monitor = StreamMonitor(AccessAreaExtractor(schema), stats=stats,
                                warmup=0, cluster_incrementally=True,
                                cluster_eps=0.08, cluster_min_pts=2)
        for i in range(24):
            z = 0.10 + 0.001 * (i % 4)
            monitor.process(f"SELECT * FROM Photoz WHERE z < {z}")
        for i in range(8):
            monitor.process(
                f"SELECT * FROM SpecObjAll WHERE plate > {300 + i % 2}")
        clusterer = monitor.clusterer
        # The monitor's catalog kept widening; the clusterer's frozen
        # copy must match a batch run over the enablement-time stats.
        want = DBSCAN(eps=0.08, min_pts=2).fit(
            clusterer.areas(), distance=QueryDistance(frozen),
            weights=clusterer.weights())
        assert clusterer.labels() == list(want.labels)
        assert monitor.clusterer.n_clusters >= 2

    def test_summary_mentions_clustering(self):
        monitor = self._monitor()
        monitor.process("SELECT * FROM Photoz WHERE z < 0.1")
        assert "clustering" in monitor.summary()
