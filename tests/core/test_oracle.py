"""E10: extraction vs. an independent execution oracle.

For queries without aggregates or nesting, the access area is exactly the
set of tuples satisfying the WHERE constraint (Section 2.3's definition
collapses to σ_P).  So running the query on a dense grid database and
evaluating the extracted CNF on the same grid must select the same rows —
across two *independent* code paths (engine evaluator vs. algebra
predicates).  Hypothesis drives randomized WHERE clauses through both.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AccessAreaExtractor
from repro.engine import Database, QueryExecutor
from repro.schema import Column, ColumnType, Relation, Schema
from repro.sqlparser import parse

GRID = [-2, -1, 0, 1, 2, 3]


def _schema():
    schema = Schema("oracle")
    schema.add(Relation("T", (Column("u", ColumnType.INT),
                              Column("v", ColumnType.INT))))
    return schema


def _database(schema):
    db = Database(schema)
    db.insert("T", [{"u": u, "v": v}
                    for u, v in itertools.product(GRID, GRID)])
    return db


SCHEMA = _schema()
DB = _database(SCHEMA)
EXECUTOR = QueryExecutor(DB)
EXTRACTOR = AccessAreaExtractor(SCHEMA)

# -- random WHERE clause generation ------------------------------------------

_values = st.sampled_from([-2, -1, 0, 1, 2, 3])
_columns = st.sampled_from(["u", "v"])
_ops = st.sampled_from(["<", "<=", "=", ">", ">=", "<>"])


@st.composite
def _conditions(draw, depth=2):
    if depth == 0 or draw(st.integers(0, 2)) == 0:
        kind = draw(st.integers(0, 2))
        col = draw(_columns)
        if kind == 0:
            return f"{col} {draw(_ops)} {draw(_values)}"
        if kind == 1:
            lo = draw(_values)
            hi = draw(_values)
            lo, hi = min(lo, hi), max(lo, hi)
            return f"{col} BETWEEN {lo} AND {hi}"
        members = draw(st.lists(_values, min_size=1, max_size=3))
        return f"{col} IN ({', '.join(map(str, members))})"
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return f"NOT ({draw(_conditions(depth=depth - 1))})"
    left = draw(_conditions(depth=depth - 1))
    right = draw(_conditions(depth=depth - 1))
    op = "AND" if kind == 1 else "OR"
    return f"({left}) {op} ({right})"


def _rows_from_cnf(cnf):
    selected = set()
    for u, v in itertools.product(GRID, GRID):
        row = {"u": u, "v": v}
        if all(any(p.evaluate(row[p.ref.column]) for p in clause)
               for clause in cnf):
            selected.add((u, v))
    return selected


@settings(max_examples=150, deadline=None)
@given(_conditions())
def test_extracted_area_matches_execution(condition):
    sql = f"SELECT u, v FROM T WHERE {condition}"
    executed = {(row["u"], row["v"])
                for row in EXECUTOR.execute(parse(sql)).rows}
    area = EXTRACTOR.extract(sql).area
    assert _rows_from_cnf(area.cnf) == executed


@settings(max_examples=60, deadline=None)
@given(_conditions())
def test_consolidation_agrees_with_unconsolidated(condition):
    sql = f"SELECT * FROM T WHERE {condition}"
    plain = AccessAreaExtractor(SCHEMA, consolidate=False) \
        .extract(sql).area
    consolidated = EXTRACTOR.extract(sql).area
    assert _rows_from_cnf(plain.cnf) == _rows_from_cnf(consolidated.cnf)


@settings(max_examples=60, deadline=None)
@given(_conditions())
def test_extraction_is_deterministic(condition):
    sql = f"SELECT * FROM T WHERE {condition}"
    first = EXTRACTOR.extract(sql).area
    second = EXTRACTOR.extract(sql).area
    assert str(first.cnf) == str(second.cnf)
    assert first.relations == second.relations


_join_conditions = st.lists(
    st.tuples(st.sampled_from(["A.x", "B.x", "B.y"]),
              st.sampled_from(["<", "<=", "=", ">", ">=", "<>"]),
              st.sampled_from(["A.x", "B.y", "-1", "0", "2"])),
    min_size=1, max_size=3)


@settings(max_examples=60, deadline=None)
@given(_join_conditions)
def test_join_extraction_matches_execution(terms):
    """Randomized two-relation queries: σ_P over A×B equals execution."""
    schema = Schema("oracle3")
    schema.add(Relation("A", (Column("x", ColumnType.INT),)))
    schema.add(Relation("B", (Column("x", ColumnType.INT),
                              Column("y", ColumnType.INT))))
    grid = [-1, 0, 1, 2]
    db = Database(schema)
    db.insert("A", [{"x": i} for i in grid])
    db.insert("B", [{"x": i, "y": j}
                    for i in grid for j in grid])
    predicates = [f"{left} {op} {right}"
                  for left, op, right in terms
                  if left != right]
    if not predicates:
        return
    sql = "SELECT * FROM A, B WHERE " + " AND ".join(predicates)

    executed = {
        (row["A.x"], row["B.x"], row["B.y"])
        for row in QueryExecutor(db).execute_sql(sql).rows
    }
    area = AccessAreaExtractor(schema).extract(sql).area
    selected = set()
    for ax in grid:
        for bx in grid:
            for by in grid:
                values = {"A.x": ax, "B.x": bx, "B.y": by}
                ok = True
                for clause in area.cnf:
                    clause_ok = False
                    for pred in clause:
                        if hasattr(pred, "value"):
                            clause_ok |= pred.evaluate(
                                values[str(pred.ref)])
                        else:
                            clause_ok |= pred.evaluate(
                                values[str(pred.left)],
                                values[str(pred.right)])
                    if not clause_ok:
                        ok = False
                        break
                if ok:
                    selected.add((ax, bx, by))
    assert selected == executed


def test_join_query_against_oracle():
    """One multi-relation spot check: join constraint equals execution."""
    schema = Schema("oracle2")
    schema.add(Relation("A", (Column("x", ColumnType.INT),)))
    schema.add(Relation("B", (Column("x", ColumnType.INT),
                              Column("y", ColumnType.INT))))
    db = Database(schema)
    db.insert("A", [{"x": i} for i in GRID])
    db.insert("B", [{"x": i, "y": j}
                    for i, j in itertools.product(GRID, GRID)])
    sql = ("SELECT * FROM A JOIN B ON A.x = B.x WHERE B.y > 0")
    executed = {
        (row["A.x"], row["B.x"], row["B.y"])
        for row in QueryExecutor(db).execute_sql(sql).rows
    }
    area = AccessAreaExtractor(schema).extract(sql).area
    selected = set()
    for ax, bx, by in itertools.product(GRID, GRID, GRID):
        values = {"A.x": ax, "B.x": bx, "B.y": by}
        ok = True
        for clause in area.cnf:
            clause_ok = False
            for pred in clause:
                if hasattr(pred, "value"):
                    clause_ok |= pred.evaluate(
                        values[str(pred.ref)])
                else:
                    clause_ok |= pred.evaluate(
                        values[str(pred.left)], values[str(pred.right)])
            if not clause_ok:
                ok = False
                break
        if ok:
            selected.add((ax, bx, by))
    assert selected == executed
