"""Aggregate queries (Section 4.3): Lemmas 1-3 and the other aggregates.

The fixture schema provides ``Pos`` (domain [0, 100]) and ``Neg``
(domain [-100, 0]) so both signs of Lemma 1 are exercised, plus ``T``
whose FLOAT columns act as the "large enough" (-inf, +inf)-like domain of
Lemmas 2 and 3.
"""

from repro.algebra.intervals import Interval
from repro.algebra.predicates import ColumnRef, Op
from repro.core.aggregates import aggregate_constraint, effective_domain
from repro.algebra.boolexpr import FALSE, TRUE


REF = ColumnRef("T", "v")
WIDE = Interval(-1e9, 1e9)
POS = Interval(0.0, 100.0)
NEG = Interval(-100.0, 0.0)


class TestLemma1Sum:
    """SELECT u, SUM(v) ... GROUP BY u HAVING SUM(v) > c."""

    def test_positive_supp_unconstrained(self):
        # Case 1: supp > 0 → access area is T.
        assert aggregate_constraint("SUM", REF, Op.GT, 42, WIDE) is TRUE
        assert aggregate_constraint("SUM", REF, Op.GT, 42, POS) is TRUE

    def test_nonpositive_supp_unreachable(self):
        # supp <= 0 and c > supp → empty access area.
        assert aggregate_constraint("SUM", REF, Op.GT, 5, NEG) is FALSE

    def test_nonpositive_supp_in_domain(self):
        # supp <= 0 and c in dom → σ_{v > c}.
        expr = aggregate_constraint("SUM", REF, Op.GT, -10, NEG)
        assert str(expr) == "T.v > -10"

    def test_nonpositive_supp_below_domain(self):
        # c < inf → access area is T.
        assert aggregate_constraint("SUM", REF, Op.GT, -1000, NEG) is TRUE


class TestLemma2(object):
    """WHERE T.v < c1 ... HAVING SUM(T.v) > c2 (via the full extractor)."""

    def test_c1_positive(self, extract):
        # c1 > 0 → access is σ_{v < c1}.
        area = extract("SELECT T.u, SUM(T.v) FROM T WHERE T.v < 7 "
                       "GROUP BY T.u HAVING SUM(T.v) > 100")
        assert str(area.cnf) == "T.v < 7"

    def test_c1_nonpositive_c2_nonnegative(self, extract):
        # c1 <= 0 and c2 >= 0 → empty.
        area = extract("SELECT T.u, SUM(T.v) FROM T WHERE T.v < -1 "
                       "GROUP BY T.u HAVING SUM(T.v) > 5")
        assert area.is_empty

    def test_c1_nonpositive_c2_below(self, extract):
        # c1 <= 0, c2 < 0, c2 < c1 → σ_{v < c1 ∧ v > c2}.
        area = extract("SELECT T.u, SUM(T.v) FROM T WHERE T.v < -1 "
                       "GROUP BY T.u HAVING SUM(T.v) > -5")
        assert str(area.cnf) == "T.v < -1 AND T.v > -5"

    def test_c1_nonpositive_c2_between(self, extract):
        # c2 >= c1 (but negative) → still empty: a single tuple cannot
        # reach above c2 and additions only decrease the sum.
        area = extract("SELECT T.u, SUM(T.v) FROM T WHERE T.v < -5 "
                       "GROUP BY T.u HAVING SUM(T.v) > -2")
        assert area.is_empty


class TestLemma3:
    def test_lower_bounded_where(self, extract):
        # WHERE v > c1 HAVING SUM(v) > c2 → σ_{v > c1} regardless of c2.
        area = extract("SELECT T.u, SUM(T.v) FROM T WHERE T.v > 2 "
                       "GROUP BY T.u HAVING SUM(T.v) > 1000000")
        assert str(area.cnf) == "T.v > 2"

    def test_negative_lower_bound(self, extract):
        area = extract("SELECT T.u, SUM(T.v) FROM T WHERE T.v > -3 "
                       "GROUP BY T.u HAVING SUM(T.v) > 50")
        assert str(area.cnf) == "T.v > -3"


class TestSumOtherOperators:
    def test_less_than_with_negatives_available(self):
        assert aggregate_constraint("SUM", REF, Op.LT, 5, WIDE) is TRUE

    def test_less_than_nonnegative_domain(self):
        expr = aggregate_constraint("SUM", REF, Op.LT, 5, POS)
        assert str(expr) == "T.v < 5"

    def test_less_than_unreachable(self):
        assert aggregate_constraint("SUM", REF, Op.LT, -1, POS) is FALSE

    def test_equality_mixed_domain(self):
        assert aggregate_constraint("SUM", REF, Op.EQ, 17, WIDE) is TRUE

    def test_equality_positive_domain(self):
        expr = aggregate_constraint("SUM", REF, Op.EQ, 17, POS)
        assert str(expr) == "T.v <= 17"

    def test_not_equal(self):
        assert aggregate_constraint("SUM", REF, Op.NE, 17, POS) is TRUE


class TestCount:
    def test_count_gt_unconstrained(self):
        assert aggregate_constraint("COUNT", None, Op.GT, 10, WIDE) is TRUE

    def test_count_lt_one_empty(self):
        assert aggregate_constraint("COUNT", None, Op.LT, 1, WIDE) is FALSE

    def test_count_le(self):
        assert aggregate_constraint("COUNT", None, Op.LE, 1, WIDE) is TRUE
        assert aggregate_constraint("COUNT", None, Op.LE, 0, WIDE) is FALSE

    def test_count_eq(self):
        assert aggregate_constraint("COUNT", None, Op.EQ, 3, WIDE) is TRUE
        assert aggregate_constraint("COUNT", None, Op.EQ, 0, WIDE) is FALSE
        assert aggregate_constraint("COUNT", None, Op.EQ, 2.5, WIDE) is FALSE

    def test_count_star_in_query(self, extract):
        area = extract("SELECT T.u, COUNT(*) FROM T GROUP BY T.u "
                       "HAVING COUNT(*) > 5")
        assert area.is_unconstrained


class TestMinMax:
    def test_min_gt_constrains(self):
        expr = aggregate_constraint("MIN", REF, Op.GT, 4, WIDE)
        assert str(expr) == "T.v > 4"

    def test_min_lt_unconstrained_when_reachable(self):
        assert aggregate_constraint("MIN", REF, Op.LT, 4, WIDE) is TRUE

    def test_min_lt_unreachable(self):
        assert aggregate_constraint("MIN", REF, Op.LT, -200, NEG) is FALSE

    def test_min_eq(self):
        expr = aggregate_constraint("MIN", REF, Op.EQ, 4, WIDE)
        assert str(expr) == "T.v >= 4"

    def test_max_lt_constrains(self):
        expr = aggregate_constraint("MAX", REF, Op.LT, 4, WIDE)
        assert str(expr) == "T.v < 4"

    def test_max_gt_unconstrained_when_reachable(self):
        assert aggregate_constraint("MAX", REF, Op.GT, 4, WIDE) is TRUE

    def test_max_eq_out_of_domain(self):
        assert aggregate_constraint("MAX", REF, Op.EQ, 200, POS) is FALSE

    def test_max_in_query(self, extract):
        area = extract("SELECT T.u, MAX(T.v) FROM T GROUP BY T.u "
                       "HAVING MAX(T.v) < 9")
        assert str(area.cnf) == "T.v < 9"


class TestAvg:
    def test_interior_target_unconstrained(self):
        assert aggregate_constraint("AVG", REF, Op.GT, 5, WIDE) is TRUE

    def test_unreachable_above(self):
        assert aggregate_constraint("AVG", REF, Op.GT, 200, POS) is FALSE

    def test_unreachable_below(self):
        assert aggregate_constraint("AVG", REF, Op.LT, -5, POS) is FALSE

    def test_eq_in_domain(self):
        assert aggregate_constraint("AVG", REF, Op.EQ, 50, POS) is TRUE
        assert aggregate_constraint("AVG", REF, Op.EQ, 200, POS) is FALSE


class TestHavingEdgeCases:
    def test_column_outside_from_ignored(self, extract):
        # "we check if a belongs to some relation in the FROM clause.
        #  If it does not, we ignore it."
        area = extract("SELECT T.u, SUM(S.v) FROM T GROUP BY T.u "
                       "HAVING SUM(S.v) > 5")
        assert area.is_unconstrained
        assert any("outside FROM" in note for note in area.notes)

    def test_constant_on_left_side(self, extract):
        area = extract("SELECT T.u, MIN(T.v) FROM T GROUP BY T.u "
                       "HAVING 4 < MIN(T.v)")
        assert str(area.cnf) == "T.v > 4"

    def test_having_with_plain_predicate(self, extract):
        area = extract("SELECT T.u FROM T GROUP BY T.u HAVING T.u > 3")
        assert str(area.cnf) == "T.u > 3"

    def test_having_conjunction(self, extract):
        area = extract(
            "SELECT T.u, MIN(T.v), MAX(T.v) FROM T GROUP BY T.u "
            "HAVING MIN(T.v) > 1 AND MAX(T.v) < 9")
        assert str(area.cnf) == "T.v < 9 AND T.v > 1"

    def test_unknown_aggregate_widens(self, extract):
        area = extract("SELECT T.u FROM T GROUP BY T.u "
                       "HAVING STDEV(T.v) > 1")
        assert area.is_unconstrained

    def test_group_by_alone_does_not_constrain(self, extract):
        area = extract("SELECT T.u, COUNT(*) FROM T GROUP BY T.u")
        assert area.is_unconstrained

    def test_having_between_on_aggregate(self, extract):
        # MIN BETWEEN 1 AND 9 → MIN >= 1 constrains (σ_{v>=1});
        # MIN <= 9 is reachable for any tuple → TRUE.
        area = extract("SELECT T.u, MIN(T.v) FROM T GROUP BY T.u "
                       "HAVING MIN(T.v) BETWEEN 1 AND 9")
        assert str(area.cnf) == "T.v >= 1"

    def test_having_between_on_sum_unbounded_domain(self, extract):
        area = extract("SELECT T.u, SUM(T.v) FROM T GROUP BY T.u "
                       "HAVING SUM(T.v) BETWEEN 5 AND 10")
        assert area.is_unconstrained  # tunable in an unbounded domain


class TestEffectiveDomain:
    def test_declared_narrowed_by_where(self):
        dom = effective_domain(Interval(-10.0, 10.0), Interval(0.0, 99.0))
        assert dom == Interval(0.0, 10.0)

    def test_missing_declared_defaults_wide(self):
        dom = effective_domain(None, None)
        assert dom.lo < -1e300 and dom.hi > 1e300
