"""ExtractionContext: alias scopes, relation registry, column resolution."""

from repro.core.context import ExtractionContext
from repro.schema import Column, ColumnType, Relation, Schema


def _schema():
    schema = Schema("ctx")
    schema.add(Relation("T", (Column("u", ColumnType.INT),)))
    schema.add(Relation("S", (Column("v", ColumnType.INT),)))
    return schema


class TestRelationRegistry:
    def test_canonicalization(self):
        ctx = ExtractionContext(_schema())
        assert ctx.register_table("t") == "T"
        assert ctx.relations == ["T"]

    def test_unknown_relation_lowercased(self):
        # Not in the schema → canonicalized to lowercase, so the partition
        # key and d_tables can never disagree with mixed-case duplicates.
        ctx = ExtractionContext(_schema())
        assert ctx.register_table("Galaxies") == "galaxies"

    def test_unknown_relation_case_duplicates_merge(self):
        ctx = ExtractionContext(_schema())
        ctx.register_table("Galaxies", "a")
        ctx.register_table("GALAXIES", "b")
        assert ctx.relations == ["galaxies"]
        assert ctx.aliases["a"] == "galaxies"
        assert ctx.aliases["b"] == "galaxies"

    def test_duplicate_occurrences_merge(self):
        ctx = ExtractionContext(_schema())
        ctx.register_table("T", "a")
        ctx.register_table("t", "b")
        assert ctx.relations == ["T"]
        assert ctx.aliases["a"] == "T" and ctx.aliases["b"] == "T"

    def test_child_shares_relations(self):
        ctx = ExtractionContext(_schema())
        ctx.register_table("T")
        child = ctx.child()
        child.register_table("S")
        assert ctx.relations == ["T", "S"]
        assert "s" not in ctx.aliases  # alias scope is per level

    def test_notes_propagate_to_root(self):
        ctx = ExtractionContext(_schema())
        child = ctx.child().child()
        child.note("deep note")
        assert ctx.notes == ["deep note"]


class TestColumnResolution:
    def test_qualified_by_alias(self):
        ctx = ExtractionContext(_schema())
        ctx.register_table("T", "x")
        ref = ctx.resolve_column("x", "u")
        assert ref.relation == "T" and ref.column == "u"

    def test_qualified_by_table_name(self):
        ctx = ExtractionContext(_schema())
        ctx.register_table("T")
        assert ctx.resolve_column("T", "u").relation == "T"

    def test_qualified_unknown_binding_treated_as_relation(self):
        ctx = ExtractionContext(_schema())
        ref = ctx.resolve_column("s", "v")
        assert ref.relation == "S"  # canonicalized via schema

    def test_unqualified_searches_schema(self):
        ctx = ExtractionContext(_schema())
        ctx.register_table("T")
        ctx.register_table("S")
        assert ctx.resolve_column(None, "v").relation == "S"

    def test_unqualified_unresolvable(self):
        ctx = ExtractionContext(_schema())
        ctx.register_table("T")
        ctx.register_table("S")
        assert ctx.resolve_column(None, "nope") is None

    def test_unqualified_single_unknown_relation(self):
        ctx = ExtractionContext(_schema())
        ctx.register_table("Galaxies")
        ref = ctx.resolve_column(None, "objid")
        assert ref.relation == "galaxies"

    def test_correlated_lookup_through_parent(self):
        ctx = ExtractionContext(_schema())
        ctx.register_table("T")
        child = ctx.child()
        child.register_table("S")
        # u is not in S; resolution walks out to the parent scope.
        assert child.resolve_column(None, "u").relation == "T"

    def test_alias_shadowing(self):
        ctx = ExtractionContext(_schema())
        ctx.register_table("T", "a")
        child = ctx.child()
        child.register_table("S", "a")
        assert child.resolve_column("a", "v").relation == "S"
        assert ctx.resolve_column("a", "u").relation == "T"

    def test_no_schema_single_relation(self):
        ctx = ExtractionContext(None)
        ctx.register_table("Foo")
        assert ctx.resolve_column(None, "x").relation == "foo"

    def test_no_schema_two_relations_unresolvable(self):
        ctx = ExtractionContext(None)
        ctx.register_table("Foo")
        ctx.register_table("Bar")
        assert ctx.resolve_column(None, "x") is None
