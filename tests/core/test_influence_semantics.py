"""Bounded-state verification of the aggregate-lemma semantics.

For a candidate tuple value ``x``, the Lemma 1-3 access areas answer:
does SOME allowed database state exist in which ``x``'s group satisfies
the HAVING clause — i.e. the tuple *participates in an output group*?
Over small integer domains the witness states are small, so we can
search them exhaustively with the engine and compare against what
:func:`aggregate_constraint` predicts.

A subtlety this test documents: the paper's *literal* Definition 3
("removing t changes the result set") would additionally count tuples
that influence by **suppressing** a group from the output — e.g. for
``HAVING MIN(v) > 0``, a tuple with ``v = -2`` joined by a ``v = 1``
tuple removes that group's output row, so deleting it changes the
result.  The paper's own Lemma proofs ("if t.v < c ... t cannot
influence the result") explicitly use the participation reading, and so
does this implementation; the suppression reading would make every
aggregate HAVING constraint vacuous.  See DESIGN.md.
"""

import itertools

import pytest

from repro.core import AccessAreaExtractor
from repro.engine import Database, QueryExecutor
from repro.schema import Column, ColumnType, Relation, Schema
from repro.algebra.intervals import Interval


def _schema(domain: Interval) -> Schema:
    schema = Schema("influence")
    schema.add(Relation("G", (
        Column("u", ColumnType.INT),
        Column("v", ColumnType.INT, domain),
    )))
    return schema


def _group_in_output(schema: Schema, values: list[int], sql: str) -> bool:
    db = Database(schema)
    db.insert("G", [{"u": 1, "v": value} for value in values])
    return len(QueryExecutor(db).execute_sql(sql).rows) > 0


def _participates(schema: Schema, domain_values: list[int], x: int,
                  sql: str, max_extras: int = 2) -> bool:
    """∃ state (x + up to 2 same-group extras): the group is output."""
    for size in range(0, max_extras + 1):
        for extras in itertools.combinations_with_replacement(
                domain_values, size):
            if _group_in_output(schema, [x, *extras], sql):
                return True
    return False


def _predicted(schema: Schema, sql: str, x: int) -> bool:
    area = AccessAreaExtractor(schema).extract(sql).area
    row = {"u": 1, "v": x}
    return all(
        any(p.evaluate(row[p.ref.column]) for p in clause)
        for clause in area.cnf)


#: Configurations where witnesses of ≤2 extra tuples are provably enough.
CASES = [
    (Interval(-3, 0), "SUM", "HAVING SUM(G.v) > -2"),   # Lemma 1 σ_{v>c}
    (Interval(-3, 0), "SUM", "HAVING SUM(G.v) > 1"),    # unreachable: ∅
    (Interval(0, 3), "SUM", "HAVING SUM(G.v) > 2"),     # supp > 0: all
    (Interval(0, 3), "SUM", "HAVING SUM(G.v) < 2"),     # inf >= 0: σ_{v<2}
    (Interval(-3, 3), "MIN", "HAVING MIN(G.v) > 0"),    # σ_{v>0}
    (Interval(-3, 3), "MIN", "HAVING MIN(G.v) < 0"),    # reachable: all
    (Interval(-3, 3), "MAX", "HAVING MAX(G.v) < 1"),    # σ_{v<1}
    (Interval(-3, 3), "MAX", "HAVING MAX(G.v) > 1"),    # reachable: all
    (Interval(-3, 3), "COUNT", "HAVING COUNT(*) > 2"),  # all
    (Interval(-3, 3), "COUNT", "HAVING COUNT(*) < 1"),  # ∅
]


@pytest.mark.parametrize("domain,func,having", CASES,
                         ids=[c[2] for c in CASES])
def test_prediction_matches_exhaustive_participation(domain, func, having):
    schema = _schema(domain)
    domain_values = list(range(int(domain.lo), int(domain.hi) + 1))
    select = "COUNT(*)" if func == "COUNT" else f"{func}(G.v)"
    sql = f"SELECT G.u, {select} FROM G GROUP BY G.u {having}"
    for x in domain_values:
        observed = _participates(schema, domain_values, x, sql)
        predicted = _predicted(schema, sql, x)
        assert observed == predicted, (
            f"value {x}: engine witness search says {observed}, "
            f"extraction predicts {predicted} for {sql}")


def test_suppression_reading_would_be_vacuous():
    """Documents why participation (not literal removal) semantics is
    the right reading of Definition 3 for aggregates: under literal
    removal, a v = -2 tuple influences ``HAVING MIN(v) > 0`` by
    suppressing the group — so *every* tuple would influence and the
    lemmas' σ conditions could never hold."""
    schema = _schema(Interval(-3, 3))
    sql = ("SELECT G.u, MIN(G.v) FROM G GROUP BY G.u "
           "HAVING MIN(G.v) > 0")
    # {-2, 1}: group suppressed; remove -2 → {1}: group appears.
    assert not _group_in_output(schema, [-2, 1], sql)
    assert _group_in_output(schema, [1], sql)
    # Yet the lemma access area excludes v = -2 (and the paper proves it).
    assert not _predicted(schema, sql, -2)
    assert _predicted(schema, sql, 1)
