"""Nested queries (Section 4.4): Lemmas 4-6, Example 4, approximations."""


class TestLemma4:
    def test_single_exists(self, extract):
        area = extract(
            "SELECT * FROM T WHERE T.u > 3 AND EXISTS "
            "(SELECT * FROM S WHERE S.u = T.u AND S.v < 2)")
        assert area.relations == ("S", "T")
        assert str(area.cnf) == "S.u = T.u AND S.v < 2 AND T.u > 3"

    def test_matches_paper_transformed_query(self, extract):
        nested = extract(
            "SELECT * FROM T WHERE T.u > 3 AND EXISTS "
            "(SELECT * FROM S WHERE S.u = T.u AND S.v < 2)")
        flat = extract(
            "SELECT * FROM T, S WHERE T.u > 3 AND S.u = T.u AND S.v < 2")
        assert str(nested.cnf) == str(flat.cnf)
        assert nested.relations == flat.relations


class TestLemma5:
    def test_two_exists_same_relation_and(self, extract):
        # AND-connected EXISTS over the same relation must OR their
        # constraints — a naive conjunction would be contradictory.
        area = extract(
            "SELECT * FROM T WHERE T.u > 3 "
            "AND EXISTS (SELECT * FROM S WHERE S.v < 2 AND S.u = T.u) "
            "AND EXISTS (SELECT * FROM S WHERE S.v >= 7 AND S.u = T.u)")
        assert not area.is_empty
        assert str(area.cnf) == \
            "(S.v < 2 OR S.v >= 7) AND S.u = T.u AND T.u > 3"

    def test_grouping_by_relation(self, extract):
        # EXISTS over different relations stay conjoined.
        area = extract(
            "SELECT * FROM T WHERE "
            "EXISTS (SELECT * FROM S WHERE S.u = T.u) AND "
            "EXISTS (SELECT * FROM R WHERE R.v = T.v)")
        assert area.relations == ("R", "S", "T")
        assert str(area.cnf) == "R.v = T.v AND S.u = T.u"


class TestLemma6:
    def test_or_connected_exists(self, extract):
        area = extract(
            "SELECT * FROM T WHERE T.u > 3 "
            "OR EXISTS (SELECT * FROM S WHERE S.v < 2 AND S.u = T.u) "
            "OR EXISTS (SELECT * FROM S WHERE S.v >= 7 AND S.u = T.u)")
        # CNF of (T.u>3) ∨ (S.u=T.u ∧ (S.v<2 ∨ S.v>=7)).
        assert str(area.cnf) == ("(S.u = T.u OR T.u > 3) AND "
                                 "(S.v < 2 OR S.v >= 7 OR T.u > 3)")


class TestExample4:
    def test_two_level_nesting(self, extract):
        area = extract(
            "SELECT * FROM T WHERE T.u > 1 AND EXISTS "
            "(SELECT * FROM S WHERE S.u = T.u AND S.v < 2 AND EXISTS "
            "(SELECT * FROM R WHERE R.v = S.v AND R.x < 3))")
        assert area.relations == ("R", "S", "T")
        assert str(area.cnf) == ("R.v = S.v AND R.x < 3 AND "
                                 "S.u = T.u AND S.v < 2 AND T.u > 1")

    def test_matches_flat_equivalent(self, extract):
        nested = extract(
            "SELECT * FROM T WHERE T.u > 1 AND EXISTS "
            "(SELECT * FROM S WHERE S.u = T.u AND S.v < 2 AND EXISTS "
            "(SELECT * FROM R WHERE R.v = S.v AND R.x < 3))")
        flat = extract(
            "SELECT * FROM T, S, R WHERE T.u > 1 AND S.u = T.u "
            "AND S.v < 2 AND R.v = S.v AND R.x < 3")
        assert str(nested.cnf) == str(flat.cnf)


class TestInSubquery:
    def test_in_becomes_exists_flattening(self, extract):
        area = extract(
            "SELECT * FROM T WHERE T.u IN "
            "(SELECT S.u FROM S WHERE S.v = 12)")
        assert str(area.cnf) == "S.u = T.u AND S.v = 12"

    def test_in_with_operator_link(self, extract):
        # Scalar subquery comparison: implicit nesting.
        area = extract(
            "SELECT * FROM T WHERE T.u = "
            "(SELECT S.u FROM S WHERE S.v = 12)")
        assert str(area.cnf) == "S.u = T.u AND S.v = 12"

    def test_scalar_with_inequality(self, extract):
        area = extract(
            "SELECT * FROM T WHERE T.u < (SELECT S.u FROM S)")
        assert str(area.cnf) == "S.u > T.u"


class TestQuantified:
    def test_any_keeps_operator(self, extract):
        area = extract(
            "SELECT * FROM T WHERE T.u > ANY "
            "(SELECT S.u FROM S WHERE S.v < 5)")
        assert "S.v < 5" in str(area.cnf)
        assert "S.u < T.u" in str(area.cnf)

    def test_all_approximated(self, extract):
        area = extract(
            "SELECT * FROM T WHERE T.u > ALL (SELECT S.u FROM S)")
        assert "S.u < T.u" in str(area.cnf)
        assert any("ALL" in note for note in area.notes)


class TestNegatedNesting:
    def test_not_exists_influence_symmetry(self, extract):
        positive = extract(
            "SELECT * FROM T WHERE EXISTS "
            "(SELECT * FROM S WHERE S.u = T.u AND S.v < 2)")
        negative = extract(
            "SELECT * FROM T WHERE NOT EXISTS "
            "(SELECT * FROM S WHERE S.u = T.u AND S.v < 2)")
        assert str(positive.cnf) == str(negative.cnf)
        assert any("influence" in note for note in negative.notes)

    def test_not_in_subquery(self, extract):
        area = extract(
            "SELECT * FROM T WHERE T.u NOT IN (SELECT S.u FROM S)")
        assert str(area.cnf) == "S.u = T.u"

    def test_not_over_mixed_condition_shields_subquery(self, extract):
        # De Morgan routes the NOT to T.u; the flattened subquery
        # constraint (influence-symmetric) survives un-negated.
        area = extract(
            "SELECT * FROM T WHERE NOT (T.u > 5 AND EXISTS "
            "(SELECT * FROM S WHERE S.u = T.u AND S.v < 2))")
        text = str(area.cnf)
        assert "S.v < 2" in text  # NOT negated to S.v >= 2
        assert "T.u <= 5" in text

    def test_not_over_scalar_subquery_negates_link_only(self, extract):
        area = extract(
            "SELECT * FROM T WHERE NOT (T.u = "
            "(SELECT S.u FROM S WHERE S.v = 12))")
        assert str(area.cnf) == "S.u <> T.u AND S.v = 12"

    def test_double_not_over_subquery(self, extract):
        once = extract(
            "SELECT * FROM T WHERE T.u > 5 OR EXISTS "
            "(SELECT * FROM S WHERE S.v < 2)")
        twice = extract(
            "SELECT * FROM T WHERE NOT (NOT (T.u > 5 OR EXISTS "
            "(SELECT * FROM S WHERE S.v < 2)))")
        assert str(once.cnf) == str(twice.cnf)


class TestCorrelationScoping:
    def test_outer_column_visible_inside(self, extract):
        # R has no column u, so the bare u resolves outward to T.u.
        area = extract(
            "SELECT * FROM T WHERE EXISTS "
            "(SELECT * FROM R WHERE R.v = u)")
        assert str(area.cnf) == "R.v = T.u"

    def test_inner_alias_shadowing(self, extract):
        area = extract(
            "SELECT * FROM T a WHERE EXISTS "
            "(SELECT * FROM S a WHERE a.v < 2) AND a.u > 1")
        # Inner 'a' is S; outer 'a' is T.
        assert str(area.cnf) == "S.v < 2 AND T.u > 1"

    def test_exists_with_aggregate_subquery(self, extract):
        # Nested aggregates combine Sections 4.3 and 4.4.
        area = extract(
            "SELECT * FROM T WHERE T.u > 1 AND EXISTS "
            "(SELECT S.u FROM S WHERE S.u = T.u "
            "GROUP BY S.u HAVING SUM(S.v) > 5)")
        # SUM over an unbounded FLOAT domain never constrains (Lemma 1).
        assert str(area.cnf) == "S.u = T.u AND T.u > 1"
