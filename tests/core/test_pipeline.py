"""Batch log processing: extraction rate, failure taxonomy, timings."""

import math

from repro.core import AccessAreaExtractor, process_log
from repro.core.extractor import StageTimings
from repro.core.pipeline import StageTimingSummary


class TestProcessLog:
    def test_mixed_log(self, schema):
        statements = [
            "SELECT * FROM T WHERE u > 1",
            "SELECT * FROM S WHERE v BETWEEN 1 AND 2",
            "CREATE TABLE x (a int)",
            "SELECT FROM WHERE",
            "SELECT ? FROM T",
            "DECLARE @x int",
        ]
        report = process_log(statements, AccessAreaExtractor(schema))
        assert report.total == 6
        assert report.extraction_count == 2
        assert report.unsupported_statements == 2
        assert report.parse_errors == 1
        assert report.lex_errors == 1
        assert abs(report.extraction_rate - 2 / 6) < 1e-12

    def test_users_carried_through(self, schema):
        report = process_log(
            [("SELECT * FROM T", "alice"), ("SELECT * FROM S", "bob")],
            AccessAreaExtractor(schema))
        assert [e.user for e in report.extracted] == ["alice", "bob"]

    def test_indices_point_into_log(self, schema):
        report = process_log(
            ["CREATE TABLE x (a int)", "SELECT * FROM T"],
            AccessAreaExtractor(schema))
        assert report.extracted[0].index == 1

    def test_failures_recorded(self, schema):
        report = process_log(["SELCT 1"], AccessAreaExtractor(schema))
        index, kind, message = report.failures[0]
        assert index == 0 and kind == "parse" and message

    def test_failures_can_be_dropped(self, schema):
        report = process_log(["SELCT 1"], AccessAreaExtractor(schema),
                             keep_failures=False)
        assert report.parse_errors == 1 and not report.failures

    def test_default_extractor(self):
        report = process_log(["SELECT * FROM T WHERE T.u > 1"])
        assert report.extraction_count == 1

    def test_areas_accessor(self, schema):
        report = process_log(["SELECT * FROM T WHERE u > 1"],
                             AccessAreaExtractor(schema))
        assert len(report.areas()) == 1


class TestTimings:
    def test_stage_timings_collected(self, schema):
        report = process_log(
            ["SELECT * FROM T WHERE u > 1"] * 5,
            AccessAreaExtractor(schema))
        for stage in ("parse", "extract", "cnf", "consolidate"):
            summary = report.stage_timings[stage]
            assert summary.count == 5
            assert summary.total >= 0
            assert summary.minimum <= summary.maximum

    def test_timing_summary_mean(self, schema):
        report = process_log(["SELECT * FROM T"] * 3,
                             AccessAreaExtractor(schema))
        parse = report.stage_timings["parse"]
        assert abs(parse.mean - parse.total / 3) < 1e-12

    def test_stage_timings_total_property(self):
        t = StageTimings(1.0, 2.0, 3.0, 4.0)
        assert t.total == 10.0

    def test_empty_summary_reports_finite_minimum(self):
        """Regression: an empty summary once leaked ``minimum == inf``
        into exported reports; it must read 0.0."""
        summary = StageTimingSummary()
        assert summary.minimum == 0.0
        assert math.isfinite(summary.minimum)
        assert summary.mean == 0.0

    def test_empty_log_timings_are_finite(self, schema):
        report = process_log([], AccessAreaExtractor(schema))
        for summary in report.stage_timings.values():
            assert summary.minimum == 0.0

    def test_minimum_tracks_first_and_smallest_value(self):
        summary = StageTimingSummary()
        summary.add(0.5)
        assert summary.minimum == 0.5
        summary.add(0.2)
        summary.add(0.9)
        assert summary.minimum == 0.2
        assert summary.maximum == 0.9
        assert summary.count == 3


class TestTimingQuantiles:
    def test_quantiles_on_known_values(self):
        summary = StageTimingSummary()
        for value in range(1, 101):  # 1..100 ms
            summary.add(value / 1000)
        assert summary.p50 == 50.5 / 1000
        assert abs(summary.p95 - 95.05 / 1000) < 1e-12
        assert abs(summary.p99 - 99.01 / 1000) < 1e-12
        assert summary.quantile(0.0) == summary.minimum
        assert summary.quantile(1.0) == summary.maximum

    def test_empty_summary_quantiles_are_zero(self):
        summary = StageTimingSummary()
        assert summary.p50 == 0.0
        assert summary.p95 == 0.0
        assert summary.p99 == 0.0

    def test_quantiles_bounded_by_min_max(self, schema):
        report = process_log(["SELECT * FROM T WHERE u > 1"] * 7,
                             AccessAreaExtractor(schema))
        for summary in report.stage_timings.values():
            assert summary.minimum <= summary.p50 <= summary.maximum
            assert summary.p50 <= summary.p95 <= summary.p99
            assert summary.p99 <= summary.maximum

    def test_single_value_quantiles_collapse(self):
        summary = StageTimingSummary()
        summary.add(0.25)
        assert summary.p50 == summary.p95 == summary.p99 == 0.25
