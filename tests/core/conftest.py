"""Shared fixtures: a small generic schema and an extractor over it."""

import pytest

from repro.algebra.intervals import Interval
from repro.core import AccessAreaExtractor
from repro.schema import Column, ColumnType, Relation, Schema


@pytest.fixture()
def schema():
    """Relations T(u, v, s), S(u, v), R(v, x) with FLOAT domains."""
    schema = Schema("test")
    schema.add(Relation("T", (
        Column("u", ColumnType.FLOAT),
        Column("v", ColumnType.FLOAT),
        Column("s", ColumnType.VARCHAR, categories=("a", "b", "c")),
    )))
    schema.add(Relation("S", (
        Column("u", ColumnType.FLOAT),
        Column("v", ColumnType.FLOAT),
    )))
    schema.add(Relation("R", (
        Column("v", ColumnType.FLOAT),
        Column("x", ColumnType.FLOAT),
    )))
    schema.add(Relation("Pos", (
        Column("p", ColumnType.FLOAT, Interval(0.0, 100.0)),
        Column("k", ColumnType.FLOAT, Interval(0.0, 100.0)),
    )))
    schema.add(Relation("Neg", (
        Column("n", ColumnType.FLOAT, Interval(-100.0, 0.0)),
        Column("k", ColumnType.FLOAT, Interval(-100.0, 0.0)),
    )))
    return schema


@pytest.fixture()
def extractor(schema):
    return AccessAreaExtractor(schema)


@pytest.fixture()
def extract(extractor):
    def _extract(sql: str):
        return extractor.extract(sql).area

    return _extract
