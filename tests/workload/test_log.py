"""QueryLog container and JSONL persistence."""

import random

from repro.workload import LogEntry, QueryLog


def _log():
    return QueryLog([
        LogEntry("SELECT * FROM T", "alice", 1),
        LogEntry("SELECT * FROM S", "bob", 1),
        LogEntry("SELECT * FROM R", "alice", 2),
        LogEntry("SELCT nope", "eve", LogEntry.MALFORMED),
    ])


class TestContainer:
    def test_len_iter_getitem(self):
        log = _log()
        assert len(log) == 4
        assert log[0].user == "alice"
        assert sum(1 for _ in log) == 4

    def test_statements(self):
        assert _log().statements()[0] == "SELECT * FROM T"

    def test_statements_with_users(self):
        assert _log().statements_with_users()[1] == ("SELECT * FROM S",
                                                     "bob")

    def test_users(self):
        assert _log().users() == {"alice", "bob", "eve"}

    def test_family_counts(self):
        counts = _log().family_counts()
        assert counts == {1: 2, 2: 1, LogEntry.MALFORMED: 1}

    def test_filter_family(self):
        filtered = _log().filter_family(1)
        assert len(filtered) == 2

    def test_sample(self):
        log = _log()
        sample = log.sample(2, random.Random(0))
        assert len(sample) == 2
        full = log.sample(100, random.Random(0))
        assert len(full) == 4


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        log = _log()
        path = tmp_path / "log.jsonl"
        log.save(path)
        loaded = QueryLog.load(path)
        assert loaded.statements() == log.statements()
        assert [e.family_id for e in loaded] == \
            [e.family_id for e in log]
        assert [e.user for e in loaded] == [e.user for e in log]

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"sql": "SELECT 1", "user": "u"}\n\n\n')
        loaded = QueryLog.load(path)
        assert len(loaded) == 1
        assert loaded[0].family_id == 0
