"""Log generation: composition, determinism, scaling."""

import random

from repro.workload import (LogEntry, WorkloadConfig, family_allocation,
                            generate_workload, table1_families)


class TestAllocation:
    def test_sublinear_scaling_compresses_spread(self):
        config = WorkloadConfig(n_queries=10_000, scale_exponent=0.5)
        allocation = family_allocation(config, table1_families())
        largest = max(allocation.values())
        smallest = min(allocation.values())
        # Table 1 spread is ~825:1; sqrt compresses to < 40:1.
        assert largest / smallest < 40

    def test_min_family_size_enforced(self):
        config = WorkloadConfig(n_queries=1000, min_family_size=12)
        allocation = family_allocation(config, table1_families())
        assert min(allocation.values()) >= 12

    def test_order_preserved(self):
        config = WorkloadConfig(n_queries=50_000)
        allocation = family_allocation(config, table1_families())
        assert allocation[1] > allocation[9] > allocation[24]


class TestGeneration:
    def test_total_size_near_target(self):
        workload = generate_workload(WorkloadConfig(n_queries=2000))
        assert abs(len(workload.log) - 2000) / 2000 < 0.2

    def test_composition(self):
        workload = generate_workload(WorkloadConfig(n_queries=2000))
        counts = workload.log.family_counts()
        assert counts.get(LogEntry.NOISE, 0) > 0
        assert counts.get(LogEntry.ERROR, 0) > 0
        assert counts.get(LogEntry.MALFORMED, 0) > 0
        for fid in range(1, 25):
            assert counts.get(fid, 0) >= 12

    def test_deterministic(self):
        a = generate_workload(WorkloadConfig(n_queries=500, seed=5))
        b = generate_workload(WorkloadConfig(n_queries=500, seed=5))
        assert a.log.statements() == b.log.statements()

    def test_seed_changes_output(self):
        a = generate_workload(WorkloadConfig(n_queries=500, seed=5))
        b = generate_workload(WorkloadConfig(n_queries=500, seed=6))
        assert a.log.statements() != b.log.statements()

    def test_mostly_distinct_users(self):
        workload = generate_workload(WorkloadConfig(n_queries=1000))
        # "the cardinality of each cluster is approximately equal to the
        #  number of users"
        assert len(workload.log.users()) > 0.8 * len(workload.log)

    def test_shuffled(self):
        workload = generate_workload(WorkloadConfig(n_queries=1000))
        families = [e.family_id for e in workload.log]
        # Families interleave rather than appearing in contiguous blocks.
        changes = sum(1 for a, b in zip(families, families[1:]) if a != b)
        assert changes > len(families) * 0.5

    def test_bot_traffic(self):
        workload = generate_workload(
            WorkloadConfig(n_queries=500, n_bots=3, bot_queries=25))
        bot_entries = [e for e in workload.log
                       if e.user.startswith("bot")]
        assert len(bot_entries) == 75
        # Each bot repeats ONE statement verbatim.
        by_bot: dict[str, set[str]] = {}
        for entry in bot_entries:
            by_bot.setdefault(entry.user, set()).add(entry.sql)
        assert all(len(stmts) == 1 for stmts in by_bot.values())

    def test_bots_detectable_by_analytics(self):
        from repro.analysis import UserQuery, analyze_users
        from repro.core import AccessAreaExtractor
        from repro.schema import skyserver_schema
        workload = generate_workload(
            WorkloadConfig(n_queries=300, n_bots=2, bot_queries=30))
        extractor = AccessAreaExtractor(skyserver_schema())
        queries = []
        for entry in workload.log:
            try:
                area = extractor.extract(entry.sql).area
            except Exception:
                continue
            queries.append(UserQuery(entry.user, area, entry.sql))
        analytics = analyze_users(queries)
        assert set(analytics.bots) == {"bot000", "bot001"}
