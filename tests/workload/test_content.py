"""Synthetic database content: footprint shape vs. CONTENT_BOUNDS."""

import pytest

from repro.schema import CONTENT_BOUNDS, skyserver_schema
from repro.schema import skyserver as sky
from repro.workload import ContentConfig, build_database


@pytest.fixture(scope="module")
def db():
    return build_database(ContentConfig(photo_rows=800, spec_rows=700,
                                        satellite_rows=400, seed=7))


class TestRowCounts:
    def test_all_tables_populated(self, db):
        for relation in skyserver_schema():
            assert db.row_count(relation.name) > 0, relation.name


class TestFootprintShape:
    def test_content_within_declared_bounds(self, db):
        for (relation, column), interval in CONTENT_BOUNDS.items():
            values = [v for v in db.table(relation).column_values(column)
                      if v is not None]
            if not values:
                continue
            assert min(values) >= interval.lo, f"{relation}.{column}"
            assert max(values) <= interval.hi, f"{relation}.{column}"

    def test_corner_pinning_makes_bounds_tight(self, db):
        plates = db.table("SpecObjAll").column_values("plate")
        assert min(plates) == sky.PLATE_LO and max(plates) == sky.PLATE_HI

    def test_no_far_southern_photometry(self, db):
        decs = db.table("PhotoObjAll").column_values("dec")
        assert min(decs) >= sky.PHOTO_DEC_LO
        # The Figure 1(b) empty area is genuinely empty.
        assert not any(d <= -50 for d in decs)

    def test_zoo_stripe(self, db):
        decs = db.table("zooSpec").column_values("dec")
        assert min(decs) >= sky.ZOO_DEC_LO and max(decs) <= sky.ZOO_DEC_HI

    def test_photoz_in_unit_range(self, db):
        zs = db.table("Photoz").column_values("z")
        assert min(zs) >= 0.0 and max(zs) <= 1.0

    def test_plate_mjd_diagonal_band(self, db):
        table = db.table("SpecObjAll")
        plates = table.column_values("plate")
        mjds = table.column_values("mjd")
        # Correlation of the Figure 1(a) band.
        n = len(plates)
        mean_p = sum(plates) / n
        mean_m = sum(mjds) / n
        cov = sum((p - mean_p) * (m - mean_m)
                  for p, m in zip(plates, mjds)) / n
        var_p = sum((p - mean_p) ** 2 for p in plates) / n
        var_m = sum((m - mean_m) ** 2 for m in mjds) / n
        correlation = cov / (var_p ** 0.5 * var_m ** 0.5)
        assert correlation > 0.9

    def test_referential_links(self, db):
        photo_ids = set(db.table("PhotoObjAll").column_values("objid"))
        best = db.table("SpecObjAll").column_values("bestobjid")
        matching = sum(1 for b in best if b in photo_ids)
        assert matching / len(best) > 0.95


class TestDeterminism:
    def test_same_seed_same_content(self):
        a = build_database(ContentConfig(photo_rows=100, spec_rows=100,
                                         satellite_rows=50, seed=3))
        b = build_database(ContentConfig(photo_rows=100, spec_rows=100,
                                         satellite_rows=50, seed=3))
        assert a.table("PhotoObjAll").rows == b.table("PhotoObjAll").rows
