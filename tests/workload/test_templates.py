"""Query-family templates: parseability, planted ranges, error classes."""

import random

import pytest

from repro.core import AccessAreaExtractor
from repro.schema import skyserver_schema
from repro.sqlparser import SqlError, parse
from repro.workload import (generate_error_query,
                            generate_malformed_statement,
                            generate_noise_query, table1_families)


@pytest.fixture(scope="module")
def extractor():
    return AccessAreaExtractor(skyserver_schema())


class TestFamilyRegistry:
    def test_24_families(self):
        families = table1_families()
        assert len(families) == 24
        assert [f.family_id for f in families] == list(range(1, 25))

    def test_cardinalities_match_table1(self):
        by_id = {f.family_id: f for f in table1_families()}
        assert by_id[1].cardinality == 179_072
        assert by_id[9].cardinality == 18_904
        assert by_id[24].cardinality == 217

    def test_empty_area_flags(self):
        by_id = {f.family_id: f for f in table1_families()}
        for fid in range(18, 25):
            assert by_id[fid].empty_area, fid
        for fid in range(1, 18):
            assert not by_id[fid].empty_area, fid


class TestGeneratedStatements:
    @pytest.mark.parametrize("family", table1_families(),
                             ids=lambda f: f.name)
    def test_family_statements_extract(self, family, extractor):
        rng = random.Random(family.family_id)
        for _ in range(25):
            sql = family.generate(rng)
            area = extractor.extract(sql).area  # must not raise
            lowered = {r.lower() for r in area.relations}
            assert {r.lower() for r in family.relations} <= lowered, sql

    def test_family1_constants_in_hot_range(self, extractor):
        family = next(f for f in table1_families() if f.family_id == 1)
        rng = random.Random(0)
        from repro.algebra.predicates import ColumnRef
        for _ in range(20):
            area = extractor.extract(family.generate(rng)).area
            hull = area.footprint_hull(ColumnRef("Photoz", "objid"))
            assert hull is not None
            assert 1_237_657_855_534_432_934 <= hull.lo
            assert hull.hi <= 1_237_666_210_342_830_434

    def test_family18_in_empty_south(self, extractor):
        family = next(f for f in table1_families() if f.family_id == 18)
        rng = random.Random(0)
        from repro.algebra.predicates import ColumnRef
        for _ in range(20):
            area = extractor.extract(family.generate(rng)).area
            hull = area.footprint_hull(ColumnRef("PhotoObjAll", "dec"))
            assert hull.hi <= -50.0

    def test_family22_produces_out_of_domain_dec(self, extractor):
        family = next(f for f in table1_families() if f.family_id == 22)
        rng = random.Random(0)
        from repro.algebra.predicates import ColumnRef
        lows = []
        for _ in range(40):
            area = extractor.extract(family.generate(rng)).area
            hull = area.footprint_hull(ColumnRef("zooSpec", "dec"))
            lows.append(hull.lo)
        assert min(lows) == -100.0  # the paper's dec = -100 curiosity


class TestNoiseAndPathological:
    def test_noise_queries_parse(self, extractor):
        rng = random.Random(1)
        for _ in range(50):
            extractor.extract(generate_noise_query(rng))

    def test_error_queries_parse_but_fail_on_server(self, extractor):
        # Extraction succeeds (that is the paper's point)...
        rng = random.Random(2)
        statements = [generate_error_query(rng) for _ in range(20)]
        for sql in statements:
            extractor.extract(sql)
        # ...and at least one of them is MySQL-dialect LIMIT.
        assert any("LIMIT" in sql for sql in statements)

    def test_malformed_statements_rejected(self):
        rng = random.Random(3)
        rejected = 0
        for _ in range(40):
            sql = generate_malformed_statement(rng)
            try:
                parse(sql)
            except SqlError:
                rejected += 1
        assert rejected == 40
