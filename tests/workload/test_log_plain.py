"""Plain-text log format (real public logs ship as flat text)."""

from repro.workload import LogEntry, QueryLog


class TestPlainFormat:
    def test_roundtrip_statements(self, tmp_path):
        log = QueryLog([
            LogEntry("SELECT * FROM T WHERE u > 1", "alice", 1),
            LogEntry("SELECT *\n  FROM S\n  WHERE v < 2", "bob", 2),
        ])
        path = tmp_path / "log.sql"
        log.save_plain(path)
        loaded = QueryLog.load_plain(path)
        assert len(loaded) == 2
        # Embedded newlines collapse to single-line statements.
        assert loaded[1].sql == "SELECT * FROM S WHERE v < 2"

    def test_metadata_not_preserved(self, tmp_path):
        log = QueryLog([LogEntry("SELECT 1 FROM T", "alice", 7)])
        path = tmp_path / "log.sql"
        log.save_plain(path)
        loaded = QueryLog.load_plain(path)
        assert loaded[0].user == "anonymous"
        assert loaded[0].family_id == 0

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "log.sql"
        path.write_text(
            "# header comment\n"
            "\n"
            "SELECT * FROM T\n"
            "   \n"
            "SELECT * FROM S\n")
        loaded = QueryLog.load_plain(path)
        assert len(loaded) == 2

    def test_plain_log_feeds_pipeline(self, tmp_path):
        from repro.core import process_log
        path = tmp_path / "log.sql"
        path.write_text("SELECT * FROM T WHERE T.u > 1\nSELCT broken\n")
        loaded = QueryLog.load_plain(path)
        report = process_log(loaded.statements())
        assert report.extraction_count == 1
        assert report.parse_errors == 1


class TestMultiLineStatements:
    def test_indented_lines_fold_into_statement(self, tmp_path):
        path = tmp_path / "log.sql"
        path.write_text(
            "SELECT *\n"
            "  FROM T\n"
            "  WHERE T.u > 1\n"
            "SELECT * FROM S\n")
        loaded = QueryLog.load_plain(path)
        assert len(loaded) == 2
        assert loaded[0].sql == "SELECT * FROM T WHERE T.u > 1"
        assert loaded[1].sql == "SELECT * FROM S"
        assert loaded.continuation_lines == 2

    def test_semicolon_terminates_statement(self, tmp_path):
        path = tmp_path / "log.sql"
        path.write_text(
            "SELECT *\n"
            "  FROM T;\n"
            "  WHERE dangling > 1\n")
        loaded = QueryLog.load_plain(path)
        # The ; closes the first statement; the indented leftover starts
        # its own (it will fail extraction downstream, not here).
        assert len(loaded) == 2
        assert loaded[0].sql == "SELECT * FROM T;"
        assert loaded.continuation_lines == 1

    def test_blank_line_terminates_statement(self, tmp_path):
        path = tmp_path / "log.sql"
        path.write_text(
            "SELECT *\n"
            "  FROM T\n"
            "\n"
            "  FROM S\n")
        loaded = QueryLog.load_plain(path)
        assert len(loaded) == 2
        assert loaded[0].sql == "SELECT * FROM T"
        assert loaded[1].sql == "FROM S"

    def test_flat_log_has_no_continuations(self, tmp_path):
        path = tmp_path / "log.sql"
        path.write_text("SELECT * FROM T\nSELECT * FROM S\n")
        loaded = QueryLog.load_plain(path)
        assert len(loaded) == 2
        assert loaded.continuation_lines == 0

    def test_comment_inside_statement_skipped(self, tmp_path):
        path = tmp_path / "log.sql"
        path.write_text(
            "SELECT *\n"
            "# a stray comment\n"
            "  FROM T\n")
        loaded = QueryLog.load_plain(path)
        assert len(loaded) == 1
        assert loaded[0].sql == "SELECT * FROM T"

    def test_multiline_feeds_pipeline_without_parse_errors(self, tmp_path):
        from repro.core import process_log
        path = tmp_path / "log.sql"
        path.write_text(
            "SELECT *\n"
            "  FROM T\n"
            "  WHERE T.u > 1\n"
            "SELECT * FROM T WHERE T.u > 2\n")
        loaded = QueryLog.load_plain(path)
        report = process_log(loaded.statements())
        report.continuation_lines = loaded.continuation_lines
        # Folded continuation lines are taxonomy, not parse errors.
        assert report.parse_errors == 0
        assert report.extraction_count == 2
        assert report.continuation_lines == 2


class TestLoadAuto:
    def test_detects_jsonl(self, tmp_path):
        log = QueryLog([LogEntry("SELECT 1 FROM T", "alice", 3)])
        path = tmp_path / "log.jsonl"
        log.save(path)
        loaded = QueryLog.load_auto(path)
        assert loaded[0].user == "alice"
        assert loaded[0].family_id == 3

    def test_detects_plain(self, tmp_path):
        path = tmp_path / "log.sql"
        path.write_text("# header\nSELECT *\n  FROM T\n")
        loaded = QueryLog.load_auto(path)
        assert len(loaded) == 1
        assert loaded[0].user == "anonymous"
        assert loaded.continuation_lines == 1

    def test_empty_file_is_empty_log(self, tmp_path):
        path = tmp_path / "log.sql"
        path.write_text("")
        assert len(QueryLog.load_auto(path)) == 0
