"""Plain-text log format (real public logs ship as flat text)."""

from repro.workload import LogEntry, QueryLog


class TestPlainFormat:
    def test_roundtrip_statements(self, tmp_path):
        log = QueryLog([
            LogEntry("SELECT * FROM T WHERE u > 1", "alice", 1),
            LogEntry("SELECT *\n  FROM S\n  WHERE v < 2", "bob", 2),
        ])
        path = tmp_path / "log.sql"
        log.save_plain(path)
        loaded = QueryLog.load_plain(path)
        assert len(loaded) == 2
        # Embedded newlines collapse to single-line statements.
        assert loaded[1].sql == "SELECT * FROM S WHERE v < 2"

    def test_metadata_not_preserved(self, tmp_path):
        log = QueryLog([LogEntry("SELECT 1 FROM T", "alice", 7)])
        path = tmp_path / "log.sql"
        log.save_plain(path)
        loaded = QueryLog.load_plain(path)
        assert loaded[0].user == "anonymous"
        assert loaded[0].family_id == 0

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "log.sql"
        path.write_text(
            "# header comment\n"
            "\n"
            "SELECT * FROM T\n"
            "   \n"
            "SELECT * FROM S\n")
        loaded = QueryLog.load_plain(path)
        assert len(loaded) == 2

    def test_plain_log_feeds_pipeline(self, tmp_path):
        from repro.core import process_log
        path = tmp_path / "log.sql"
        path.write_text("SELECT * FROM T WHERE T.u > 1\nSELCT broken\n")
        loaded = QueryLog.load_plain(path)
        report = process_log(loaded.statements())
        assert report.extraction_count == 1
        assert report.parse_errors == 1
