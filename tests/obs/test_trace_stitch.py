"""Cross-process trace stitching: context propagation, grafting,
parallel/serial tree parity, crash-time flushing.

The contract under test: a parallel matrix build produces ONE span
tree — the parent's ``distance_matrix`` root with per-chunk children
minted inside the workers, shipped back on :class:`BlockInfo`, and
grafted under the parent-side ``fill`` span with the root's trace id.
"""

import io
import json

import pytest

from repro.distance.matrix import DistanceMatrix
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (Span, TraceContext, Tracer, new_span_id,
                             use_tracer)


def _metric(a: float, b: float) -> float:
    return abs(a - b)


class TestSpanIds:
    def test_ids_are_unique_and_hex(self):
        ids = {new_span_id() for _ in range(500)}
        assert len(ids) == 500
        for span_id in ids:
            assert len(span_id) == 16
            int(span_id, 16)  # parses as hex

    def test_root_span_defines_trace_id(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                assert child.span.trace_id == root.span.span_id
        assert root.span.trace_id == root.span.span_id

    def test_span_ids_serialize(self):
        tracer = Tracer(sink=(buffer := io.StringIO()))
        with tracer.span("root"):
            pass
        record = json.loads(buffer.getvalue())
        assert record["span_id"]
        assert record["trace_id"] == record["span_id"]


class TestTraceContext:
    def test_current_context_names_innermost_span(self):
        tracer = Tracer()
        with tracer.span("root"), tracer.span("fill") as fill:
            ctx = tracer.current_context()
            assert isinstance(ctx, TraceContext)
            assert ctx.parent_span_id == fill.span.span_id
            assert ctx.trace_id == fill.span.trace_id

    def test_no_open_span_means_no_context(self):
        assert Tracer().current_context() is None

    def test_context_survives_pickling(self):
        import pickle
        ctx = TraceContext(trace_id="t" * 16, parent_span_id="p" * 16)
        assert pickle.loads(pickle.dumps(ctx)) == ctx


class TestAttach:
    def test_dict_tree_grafts_under_open_span(self):
        tracer = Tracer()
        shipped = {"name": "distance_chunk", "span_id": "f" * 16,
                   "duration_s": 0.25, "status": "ok",
                   "attrs": {"pid": 12345},
                   "children": [{"name": "inner", "span_id": "e" * 16,
                                 "duration_s": 0.1, "status": "ok"}]}
        with tracer.span("root") as root:
            grafted = tracer.attach(shipped)
        child = root.span.children[0]
        assert child is grafted
        assert child.name == "distance_chunk"
        assert child.span_id == "f" * 16
        assert child.duration == pytest.approx(0.25)
        assert child.trace_id == root.span.span_id
        assert child.children[0].name == "inner"

    def test_attach_without_open_span_becomes_root(self):
        tracer = Tracer(sink=(buffer := io.StringIO()))
        tracer.attach(Span("orphan"))
        assert [r.name for r in tracer.roots] == ["orphan"]
        assert json.loads(buffer.getvalue())["name"] == "orphan"

    def test_module_level_attach_tolerates_none(self):
        from repro.obs.trace import attach
        assert attach(None) is None


class TestParallelStitching:
    # 150 items → 11175 pairs → 6 chunks of DEFAULT_CHUNK_PAIRS=2048.
    ITEMS = [float(v) for v in range(150)]

    def _tree(self, n_jobs: int) -> Span:
        tracer = Tracer()
        with use_tracer(tracer):
            DistanceMatrix.compute(self.ITEMS, _metric, n_jobs=n_jobs,
                                   registry=MetricsRegistry())
        assert len(tracer.roots) == 1, "must be ONE stitched tree"
        return tracer.roots[0]

    def test_parallel_build_yields_one_stitched_tree(self):
        root = self._tree(n_jobs=2)
        assert root.name == "distance_matrix"
        fill = root.find("fill")
        chunks = [c for c in fill.children
                  if c.name == "distance_chunk"]
        assert len(chunks) == 6  # ceil(11175 / 2048)
        for chunk in chunks:
            assert chunk.trace_id == root.span_id
            assert chunk.attrs["pid"]  # minted worker-side
            assert chunk.attrs["parent_span_id"] == fill.span_id

    def test_worker_spans_sum_within_parent_envelope(self):
        root = self._tree(n_jobs=2)
        fill = root.find("fill")
        chunks = [c for c in fill.children
                  if c.name == "distance_chunk"]
        total = sum(c.duration for c in chunks)
        # Two workers run concurrently, so the summed child time is
        # bounded by the fill duration times the worker count (plus
        # slack for timer granularity); each single chunk must fit
        # inside the parent wall-clock.
        assert total <= fill.duration * 2 * 1.5 + 0.05
        for chunk in chunks:
            assert chunk.duration <= fill.duration + 0.05

    def test_serial_and_parallel_block_trees_have_same_shape(self):
        # The partitioned evaluator mints the same span protocol on
        # both paths: serial and parallel runs must yield identical
        # stitched tree shapes (chunk order aside).
        from repro.distance.parallel import compute_blocks
        from repro.obs import trace as trace_mod

        members = [[0, 1, 2, 3], [4, 5, 6], [7, 8]]
        items = [float(v) for v in range(9)]

        def tree(n_jobs):
            tracer = Tracer()
            with use_tracer(tracer), tracer.span("fill"):
                _, infos = compute_blocks(items, _metric, members,
                                          n_jobs)
                for info in infos:
                    trace_mod.attach(info.span)
            return tracer.roots[0]

        def normalized(span):
            return (span.name, tuple(sorted(
                normalized(c) for c in span.children)))

        assert normalized(tree(1)) == normalized(tree(2))

    def test_serial_chunks_carry_no_worker_metrics(self):
        # The serial path records into the live registry directly; a
        # shipped snapshot would double-count on merge.
        from repro.distance.parallel import compute_pairs
        pairs = [(k, i, j) for k, (i, j) in enumerate(
            (i, j) for i in range(10) for j in range(i + 1, 10))]
        _, infos = compute_pairs(self.ITEMS[:10], _metric, pairs,
                                 n_jobs=1, chunk_pairs=20)
        assert all(info.metrics is None for info in infos)


class TestFlushOpen:
    def test_open_roots_flush_as_partial(self):
        buffer = io.StringIO()
        tracer = Tracer(sink=buffer)
        tracer.span("doomed")  # entered, never exited
        assert tracer.flush_open() == 1
        record = json.loads(buffer.getvalue())
        assert record["name"] == "doomed"
        assert record["status"] == "partial"

    def test_flushed_roots_not_rewritten_on_close(self):
        buffer = io.StringIO()
        tracer = Tracer(sink=buffer)
        handle = tracer.span("slow")
        tracer.flush_open()
        handle.__exit__(None, None, None)  # closes normally afterwards
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 1

    def test_error_status_survives_flush(self):
        buffer = io.StringIO()
        tracer = Tracer(sink=buffer)
        with tracer.span("root"):
            inner = tracer.span("inner").span
            inner.status = "error"
            root = tracer.open_roots[0]
            root.status = "error"
            tracer.flush_open()
        record = json.loads(buffer.getvalue().splitlines()[0])
        assert record["status"] == "error"

    def test_flush_all_open_covers_sink_tracers(self):
        from repro.obs.trace import flush_all_open
        buffer = io.StringIO()
        tracer = Tracer(sink=buffer)
        tracer.span("hanging")
        assert flush_all_open() >= 1
        assert json.loads(buffer.getvalue())["status"] == "partial"

    def test_close_flushes_open_roots(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(sink=str(path))
        tracer.span("open_at_exit")
        tracer.close()
        record = json.loads(path.read_text().strip())
        assert record["status"] == "partial"

    def test_atexit_flush_in_subprocess(self, tmp_path):
        # A run killed by sys.exit mid-span still leaves its partial
        # trace via the atexit hook.
        import subprocess
        import sys
        path = tmp_path / "crash.jsonl"
        code = (
            "import sys\n"
            "from repro.obs.trace import Tracer, set_tracer\n"
            f"tracer = Tracer(sink={str(path)!r})\n"
            "set_tracer(tracer)\n"
            "tracer.span('interrupted')\n"
            "sys.exit(3)\n")
        result = subprocess.run([sys.executable, "-c", code],
                                capture_output=True, text=True)
        assert result.returncode == 3
        record = json.loads(path.read_text().strip())
        assert record["name"] == "interrupted"
        assert record["status"] == "partial"


class TestPipelineStageExemplars:
    def test_stage_histograms_link_slow_queries_to_spans(self):
        from repro.core import AccessAreaExtractor, process_log
        from repro.obs.metrics import use_registry
        from repro.schema import skyserver_schema

        registry = MetricsRegistry()
        tracer = Tracer(keep=True)
        statements = ["SELECT objid FROM PhotoObjAll WHERE ra > %d" % i
                      for i in range(5)]
        with use_registry(registry), use_tracer(tracer):
            report = process_log(statements,
                                 AccessAreaExtractor(skyserver_schema()))
        assert report.extraction_count == 5
        root = next(r for r in tracer.roots if r.name == "process_log")
        query_ids = {child.span_id for child in root.children
                     if child.name == "query"}
        histogram = registry.histogram("repro_pipeline_stage_seconds",
                                       stage="parse")
        assert histogram.exemplars
        assert {span_id for _, span_id in histogram.exemplars} <= query_ids

    def test_untraced_runs_record_no_exemplars(self):
        from repro.core import AccessAreaExtractor, process_log
        from repro.obs.metrics import use_registry
        from repro.schema import skyserver_schema

        registry = MetricsRegistry()
        with use_registry(registry):
            process_log(["SELECT objid FROM PhotoObjAll WHERE ra > 1"],
                        AccessAreaExtractor(skyserver_schema()))
        histogram = registry.histogram("repro_pipeline_stage_seconds",
                                       stage="parse")
        assert histogram.count == 1
        assert histogram.exemplars == []
