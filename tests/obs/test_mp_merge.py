"""Worker-metric aggregation across the multiprocessing fan-out.

Workers cannot share the parent's :class:`MetricsRegistry`; instead each
evaluated chunk ships a :class:`BlockInfo` back over the existing IPC
channel and the parent folds them into its own registry.  These tests
pin that protocol — plus the snapshot/merge picklability it rests on —
and the zero-overhead claim for the disabled (null) instruments.
"""

import pickle
import time

import numpy as np
import pytest

from repro.distance.matrix import DistanceMatrix
from repro.distance.parallel import BlockInfo, compute_pairs
from repro.obs.metrics import (MetricsRegistry, NullRegistry,
                               use_registry)
from repro.obs.trace import NULL_TRACER


def _metric(a: float, b: float) -> float:
    return abs(a - b)


def _pairs(n: int) -> list[tuple[int, int, int]]:
    pairs, k = [], 0
    for i in range(n):
        for j in range(i + 1, n):
            pairs.append((k, i, j))
            k += 1
    return pairs


class TestComputePairsBlockInfo:
    def test_serial_reports_one_info_per_chunk(self):
        items = [float(v) for v in range(10)]
        pairs = _pairs(10)  # 45 pairs
        entries, infos = compute_pairs(items, _metric, pairs,
                                       n_jobs=1, chunk_pairs=20)
        assert len(entries) == 45
        assert [info.pairs for info in infos] == [20, 20, 5]
        assert all(info.seconds >= 0.0 for info in infos)
        assert all(isinstance(info, BlockInfo) for info in infos)

    def test_parallel_infos_cover_every_pair(self):
        items = [float(v) for v in range(12)]
        pairs = _pairs(12)  # 66 pairs
        entries, infos = compute_pairs(items, _metric, pairs,
                                       n_jobs=2, chunk_pairs=16)
        assert sum(info.pairs for info in infos) == 66
        # Values match the serial evaluation exactly, order aside.
        serial, _ = compute_pairs(items, _metric, pairs, n_jobs=1)
        assert dict(entries) == dict(serial)

    def test_empty_work_is_fine(self):
        entries, infos = compute_pairs([], _metric, [], n_jobs=4)
        assert entries == []
        assert infos == []


class TestRegistryMergeAcrossProcesses:
    def test_snapshot_is_picklable(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", kind="a").inc(3)
        registry.histogram("repro_seconds").observe(0.5)
        snapshot = registry.snapshot(include_reservoir=True)
        restored = pickle.loads(pickle.dumps(snapshot))
        parent = MetricsRegistry()
        parent.merge(restored)
        assert parent.counter("repro_x_total", kind="a").value == 3
        assert parent.histogram("repro_seconds").count == 1

    def test_simulated_worker_fanout(self):
        # Each "worker" fills its own registry; the parent merges all
        # snapshots — counters add, histogram stats pool.
        snapshots = []
        for worker in range(3):
            registry = MetricsRegistry()
            registry.counter("repro_pairs_computed_total").inc(10)
            for value in range(worker + 1):
                registry.histogram("repro_chunk_seconds").observe(
                    0.1 * (value + 1))
            snapshots.append(pickle.loads(
                pickle.dumps(registry.snapshot())))
        parent = MetricsRegistry()
        for snapshot in snapshots:
            parent.merge(snapshot)
        assert parent.counter("repro_pairs_computed_total").value == 30
        histogram = parent.histogram("repro_chunk_seconds")
        assert histogram.count == 6  # 1 + 2 + 3
        assert histogram.minimum == pytest.approx(0.1)
        assert histogram.maximum == pytest.approx(0.3)


class TestDistanceMatrixParallelMetrics:
    def test_parallel_run_lands_in_parent_registry(self):
        registry = MetricsRegistry()
        items = [float(v) for v in range(30)]  # 435 pairs
        with use_registry(registry):
            matrix = DistanceMatrix.compute(items, _metric, n_jobs=2)
        assert registry.counter(
            "repro_distance_pairs_computed_total").value == 435
        chunk = registry.histogram("repro_distance_chunk_seconds",
                                   mode="parallel")
        assert chunk.count >= 1
        matrix_seconds = registry.histogram(
            "repro_distance_matrix_seconds")
        assert matrix_seconds.count == 1
        # And the values themselves match the serial path.
        serial = DistanceMatrix.compute(items, _metric, n_jobs=1,
                                        registry=MetricsRegistry())
        np.testing.assert_array_equal(matrix.condensed, serial.condensed)

    def test_explicit_registry_bypasses_global(self):
        global_registry = MetricsRegistry()
        private = MetricsRegistry()
        items = [float(v) for v in range(8)]
        with use_registry(global_registry):
            DistanceMatrix.compute(items, _metric, registry=private)
        assert global_registry.snapshot()["counters"] == []
        assert private.counter(
            "repro_distance_pairs_computed_total").value == 28


class TestMergeOrderIndependence:
    """Worker snapshots arrive in scheduler order; the merged quantiles
    must not depend on it.

    ``merge_all`` sorts snapshots by a canonical key before merging and
    the reservoir downsample re-seeds deterministically from (name,
    merged count), so any arrival permutation of the same snapshots
    produces the identical pooled reservoir."""

    @staticmethod
    def _worker_snapshot(worker: int, observations: int):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_chunk_seconds")
        for i in range(observations):
            histogram.observe(0.001 * (worker * 1000 + i))
        registry.counter("repro_pairs_total").inc(observations)
        return registry.snapshot(include_reservoir=True)

    def _merged(self, snapshots):
        parent = MetricsRegistry()
        # A parent-side observation too, so the pool pre-exists.
        parent.histogram("repro_chunk_seconds").observe(5.0)
        parent.merge_all(snapshots)
        return parent

    def test_permuted_merge_orders_agree_exactly(self):
        import itertools
        # Three over-capacity snapshots: each worker alone overflows
        # the 1024-slot default reservoir, forcing the downsample path.
        snapshots = [self._worker_snapshot(w, 700) for w in range(3)]
        reference = None
        for order in itertools.permutations(range(3)):
            merged = self._merged([snapshots[i] for i in order])
            histogram = merged.histogram("repro_chunk_seconds")
            key = (tuple(histogram.reservoir), histogram.count,
                   histogram.p50, histogram.p95, histogram.p99)
            if reference is None:
                reference = key
            else:
                assert key == reference, f"order {order} diverged"
        assert reference[1] == 3 * 700 + 1

    def test_merge_all_skips_empty_snapshots(self):
        parent = MetricsRegistry()
        merged = parent.merge_all(
            [None, self._worker_snapshot(0, 5), None])
        assert merged == 1
        assert parent.counter("repro_pairs_total").value == 5

    def test_exemplars_survive_merge(self):
        worker = MetricsRegistry()
        worker.histogram("repro_chunk_seconds").observe(
            9.0, exemplar="slow-span")
        parent = MetricsRegistry()
        parent.merge_all([worker.snapshot(include_reservoir=True)])
        snapshot = parent.snapshot(include_reservoir=True)
        entry = snapshot["histograms"][0]
        assert {"value": 9.0, "span_id": "slow-span"} \
            in entry["exemplars"]


class TestNoOpOverhead:
    """Disabled instruments must stay within noise of bare code.

    The bound is deliberately loose (20×) — CI boxes are noisy and the
    point is to catch accidental allocation/IO on the null paths, not
    to benchmark them.
    """

    ROUNDS = 20_000

    @staticmethod
    def _time(fn) -> float:
        best = float("inf")
        for _ in range(5):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        return best

    def test_null_tracer_spans_are_cheap(self):
        def bare():
            total = 0
            for i in range(self.ROUNDS):
                total += i
            return total

        def traced():
            total = 0
            for i in range(self.ROUNDS):
                with NULL_TRACER.span("step"):
                    total += i
            return total

        baseline = self._time(bare)
        instrumented = self._time(traced)
        assert instrumented < baseline * 20 + 0.05

    def test_null_registry_instruments_are_cheap(self):
        registry = NullRegistry()
        counter = registry.counter("repro_x_total")
        histogram = registry.histogram("repro_seconds")

        def bare():
            total = 0
            for i in range(self.ROUNDS):
                total += i
            return total

        def instrumented_loop():
            total = 0
            for i in range(self.ROUNDS):
                counter.inc()
                histogram.observe(i)
                total += i
            return total

        baseline = self._time(bare)
        instrumented = self._time(instrumented_loop)
        assert instrumented < baseline * 20 + 0.05
