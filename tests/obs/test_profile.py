"""Profiling hooks: section capture, hotspot digests, folded stacks,
process-wide installation, and the no-op overhead pin."""

import time

from repro.obs.profile import (NULL_PROFILER, NullProfiler, Profiler,
                               get_profiler, profile_section,
                               set_profiler, use_profiler)


def _busy(n: int = 40_000) -> int:
    total = 0
    for i in range(n):
        total += i * i
    return total


def _helper_burn() -> int:
    return _busy(15_000)


class TestSectionCapture:
    def test_section_records_hotspots(self):
        profiler = Profiler(top_n=10)
        with profiler.section("work"):
            _busy()
            _helper_burn()
        assert len(profiler.sections) == 1
        section = profiler.sections[0]
        assert section.name == "work"
        assert section.seconds > 0.0
        assert section.calls >= 2
        functions = [row["function"] for row in section.hotspots]
        assert any("_busy" in f for f in functions)
        for row in section.hotspots:
            assert row["cumtime_s"] >= row["tottime_s"] >= 0.0

    def test_hotspots_sorted_by_cumtime(self):
        profiler = Profiler()
        with profiler.section("work"):
            _busy()
        cumtimes = [row["cumtime_s"]
                    for row in profiler.sections[0].hotspots]
        assert cumtimes == sorted(cumtimes, reverse=True)

    def test_exception_still_closes_section(self):
        profiler = Profiler()
        try:
            with profiler.section("doomed"):
                _busy(1000)
                raise ValueError("mid-profile")
        except ValueError:
            pass
        assert [s.name for s in profiler.sections] == ["doomed"]

    def test_report_is_json_ready(self):
        import json
        profiler = Profiler()
        with profiler.section("a"):
            _busy(1000)
        report = profiler.report()
        parsed = json.loads(json.dumps(report))
        assert parsed[0]["name"] == "a"
        assert "hotspots" in parsed[0]


class TestFoldedStacks:
    def test_folded_lines_have_weights_and_prefix(self):
        profiler = Profiler()
        with profiler.section("sec"):
            _helper_burn()
        lines = profiler.folded_lines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack.startswith("sec;")
            assert int(weight) > 0
        assert any("_helper_burn" in line and "_busy" in line
                   for line in lines)

    def test_write_folded(self, tmp_path):
        profiler = Profiler()
        with profiler.section("sec"):
            _busy(5000)
        path = tmp_path / "run.folded"
        profiler.write_folded(path)
        text = path.read_text()
        assert text.endswith("\n")
        assert "sec;" in text

    def test_format_table(self):
        profiler = Profiler()
        with profiler.section("sec"):
            _busy(5000)
        table = profiler.format_table()
        assert "section sec" in table
        assert "cumtime" in table
        assert Profiler().format_table() == "(no sections profiled)"


class TestProcessWideHooks:
    def test_default_is_null(self):
        assert get_profiler() is NULL_PROFILER
        with profile_section("anything"):
            pass
        assert NULL_PROFILER.report() == []

    def test_use_profiler_restores(self):
        profiler = Profiler()
        with use_profiler(profiler):
            assert get_profiler() is profiler
            with profile_section("captured"):
                _busy(1000)
        assert get_profiler() is NULL_PROFILER
        assert [s.name for s in profiler.sections] == ["captured"]

    def test_set_profiler_none_resets(self):
        previous = set_profiler(Profiler())
        try:
            assert get_profiler() is not NULL_PROFILER
        finally:
            set_profiler(None)
        assert previous is NULL_PROFILER
        assert get_profiler() is NULL_PROFILER

    def test_null_profiler_shares_one_section(self):
        null = NullProfiler()
        assert null.section("a") is null.section("b")
        assert not null.enabled
        assert null.folded_lines() == []


class TestNoOpOverhead:
    """The disabled path must stay within noise of bare code — same
    loose 20x bound as the null tracer/registry (we are catching
    accidental cProfile activation, not benchmarking)."""

    ROUNDS = 20_000

    @staticmethod
    def _time(fn) -> float:
        best = float("inf")
        for _ in range(5):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        return best

    def test_disabled_sections_are_cheap(self):
        def bare():
            total = 0
            for i in range(self.ROUNDS):
                total += i
            return total

        def instrumented():
            total = 0
            for i in range(self.ROUNDS):
                with NULL_PROFILER.section("step"):
                    total += i
            return total

        baseline = self._time(bare)
        wrapped = self._time(instrumented)
        assert wrapped < baseline * 20 + 0.05
