"""Span tracer: nesting, exception safety, sinks, process-wide hooks."""

import io
import json
import threading

import pytest

from repro.obs.trace import (NULL_TRACER, NullTracer, Tracer,
                             format_span_tree, get_tracer, load_trace,
                             set_tracer, span, use_tracer)


class TestNesting:
    def test_children_attach_to_open_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        assert [c.name for c in root.span.children] == ["child_a",
                                                        "child_b"]
        assert root.span.children[0].children[0].name == "grandchild"
        assert tracer.roots == [root.span]

    def test_sibling_roots_do_not_nest(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]
        assert tracer.roots[0].children == []

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer"):
            assert tracer.current().name == "outer"
            with tracer.span("inner"):
                assert tracer.current().name == "inner"
            assert tracer.current().name == "outer"
        assert tracer.current() is None

    def test_durations_are_monotone(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        root = tracer.roots[0]
        assert root.end is not None
        assert root.duration >= root.children[0].duration >= 0.0

    def test_set_attaches_attributes(self):
        tracer = Tracer()
        with tracer.span("work", n=3) as handle:
            handle.set(clusters=2, n=4)
        assert tracer.roots[0].attrs == {"n": 4, "clusters": 2}

    def test_find_descendant(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("mid"):
                with tracer.span("leaf"):
                    pass
        assert tracer.roots[0].find("leaf").name == "leaf"
        assert tracer.roots[0].find("missing") is None


class TestExceptionSafety:
    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("root"):
                with tracer.span("child"):
                    raise RuntimeError("boom")
        root = tracer.roots[0]
        assert root.status == "error"
        assert "RuntimeError: boom" in root.error
        child = root.children[0]
        assert child.status == "error"
        assert child.end is not None

    def test_dangling_children_closed_when_parent_exits(self):
        # A child whose __exit__ never runs (e.g. generator abandoned)
        # must not corrupt the stack for subsequent spans.
        tracer = Tracer()
        with tracer.span("root"):
            tracer.span("abandoned")  # entered onto stack, never exited
        with tracer.span("next_root"):
            pass
        assert [r.name for r in tracer.roots] == ["root", "next_root"]
        abandoned = tracer.roots[0].children[0]
        assert abandoned.end is not None

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait(timeout=5)

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Both spans are roots — neither nested under the other.
        assert sorted(r.name for r in tracer.roots) == ["t0", "t1"]


class TestSink:
    def test_roots_stream_to_jsonl(self):
        buffer = io.StringIO()
        tracer = Tracer(sink=buffer)
        with tracer.span("a", n=1):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "a"
        assert first["attrs"] == {"n": 1}
        assert first["children"][0]["name"] == "b"
        assert json.loads(lines[1])["name"] == "c"

    def test_keep_false_bounds_memory(self):
        tracer = Tracer(sink=io.StringIO(), keep=False)
        with tracer.span("a"):
            pass
        assert tracer.roots == []

    def test_path_sink_round_trips_through_load_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=str(path))
        with tracer.span("root", stage="fill"):
            with tracer.span("chunk"):
                pass
        tracer.close()
        roots = load_trace(str(path))
        assert len(roots) == 1
        assert roots[0]["name"] == "root"
        rendered = format_span_tree(roots[0])
        assert "root" in rendered
        assert "chunk" in rendered
        assert "stage=fill" in rendered

    def test_non_json_attrs_fall_back_to_repr(self):
        buffer = io.StringIO()
        tracer = Tracer(sink=buffer)
        with tracer.span("root", obj={1, 2}):
            pass
        record = json.loads(buffer.getvalue())
        assert record["attrs"]["obj"] == repr({1, 2})

    def test_format_span_tree_truncates_children(self):
        node = {"name": "root", "duration_s": 0.001,
                "children": [{"name": f"c{i}", "duration_s": 0.0}
                             for i in range(20)]}
        rendered = format_span_tree(node, max_children=5)
        assert "c4" in rendered
        assert "c5" not in rendered
        assert "15 more children" in rendered


class TestProcessWideHooks:
    def test_default_is_null_tracer(self):
        assert get_tracer() is NULL_TRACER
        # Module-level span() on the null tracer is a usable no-op.
        with span("anything", n=1) as handle:
            handle.set(more=2)
        assert NULL_TRACER.roots == []

    def test_null_tracer_shares_one_context(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        assert not NULL_TRACER.enabled
        assert NullTracer().current() is None

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with span("captured"):
                pass
        assert get_tracer() is NULL_TRACER
        assert [r.name for r in tracer.roots] == ["captured"]

    def test_set_tracer_none_resets_to_null(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert previous is NULL_TRACER
        assert get_tracer() is NULL_TRACER
