"""Structured logging: formatters, idempotent configure, env fallback."""

import io
import json
import logging

import pytest

from repro.obs.logs import (JsonFormatter, ROOT_LOGGER_NAME,
                            configure_logging, get_logger)


@pytest.fixture(autouse=True)
def _restore_root_logger():
    """Leave the shared ``repro`` logger as the session found it."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    handlers = list(root.handlers)
    level = root.level
    propagate = root.propagate
    yield
    root.handlers[:] = handlers
    root.setLevel(level)
    root.propagate = propagate


def _our_handlers(root):
    return [h for h in root.handlers
            if getattr(h, "_repro_obs_handler", False)]


class TestGetLogger:
    def test_prefixes_repro_namespace(self):
        assert get_logger("distance.matrix").name == "repro.distance.matrix"

    def test_passthrough_for_qualified_names(self):
        assert get_logger("repro.core.pipeline").name == \
            "repro.core.pipeline"

    def test_empty_name_is_root(self):
        assert get_logger().name == ROOT_LOGGER_NAME


class TestConfigure:
    def test_installs_exactly_one_handler(self):
        root = configure_logging("info", "human", stream=io.StringIO())
        assert len(_our_handlers(root)) == 1
        # Re-configuring replaces, never stacks.
        root = configure_logging("debug", "json", stream=io.StringIO())
        assert len(_our_handlers(root)) == 1
        assert root.level == logging.DEBUG

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("verbose")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown log format"):
            configure_logging("info", "xml")

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        monkeypatch.setenv("REPRO_LOG_FORMAT", "json")
        stream = io.StringIO()
        root = configure_logging(stream=stream)
        assert root.level == logging.DEBUG
        get_logger("envtest").debug("hello")
        assert json.loads(stream.getvalue())["msg"] == "hello"

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        root = configure_logging("error", stream=io.StringIO())
        assert root.level == logging.ERROR

    def test_human_format_lines(self):
        stream = io.StringIO()
        configure_logging("info", "human", stream=stream)
        get_logger("fmt").info("message body")
        line = stream.getvalue().strip()
        assert "INFO" in line
        assert "repro.fmt" in line
        assert line.endswith("message body")


class TestJsonFormatter:
    def format_record(self, **extra):
        logger = logging.getLogger("repro.test.jsonfmt")
        record = logger.makeRecord(
            logger.name, logging.WARNING, __file__, 1,
            "hit %d", (3,), None, extra=extra)
        return json.loads(JsonFormatter().format(record))

    def test_core_fields(self):
        payload = self.format_record()
        assert payload["level"] == "warning"
        assert payload["logger"] == "repro.test.jsonfmt"
        assert payload["msg"] == "hit 3"
        assert isinstance(payload["ts"], float)

    def test_extra_fields_ride_along(self):
        payload = self.format_record(stage="cnf", pairs=42)
        assert payload["stage"] == "cnf"
        assert payload["pairs"] == 42

    def test_unserialisable_extra_becomes_repr(self):
        payload = self.format_record(obj={1, 2})
        assert payload["obj"] == repr({1, 2})

    def test_exception_info_included(self):
        logger = logging.getLogger("repro.test.jsonfmt")
        try:
            raise ValueError("bad input")
        except ValueError:
            record = logger.makeRecord(
                logger.name, logging.ERROR, __file__, 1, "failed", (),
                __import__("sys").exc_info())
        payload = json.loads(JsonFormatter().format(record))
        assert "ValueError: bad input" in payload["exc"]


class TestImportBehaviour:
    def test_import_installs_null_handler(self):
        # Importing the library must leave a NullHandler on the repro
        # root so unconfigured applications never hit the stdlib
        # "lastResort" stderr fallback.
        root = logging.getLogger(ROOT_LOGGER_NAME)
        assert any(isinstance(h, logging.NullHandler)
                   for h in root.handlers)
