"""Run manifests: schema, lifecycle, resolution, diffing, rendering."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.runrec import (RUN_RECORD_SCHEMA_VERSION, RunRecorder,
                              diff_runs, environment_info, format_diff,
                              format_run, format_runs_table, list_runs,
                              resolve_run, waterfall_from_roots)
from repro.obs.trace import Tracer


def _record(tmp_path, command="process", **config) -> dict:
    with RunRecorder(command, runs_dir=tmp_path,
                     config=config, argv=["x"]) as recorder:
        recorder.set(exit_code=0)
    return json.loads(recorder.path.read_text())


class TestRecorderLifecycle:
    def test_record_schema_and_core_fields(self, tmp_path):
        record = _record(tmp_path, eps=0.12, n_jobs=2)
        assert record["schema_version"] == RUN_RECORD_SCHEMA_VERSION
        assert record["command"] == "process"
        assert record["config"] == {"eps": 0.12, "n_jobs": 2}
        assert record["status"] == "ok"
        assert record["error"] is None
        assert record["duration_s"] >= 0.0
        assert record["argv"] == ["x"]
        assert record["environment"]["python"]
        assert record["started"] <= record["finished"]

    def test_run_ids_unique_with_sortable_timestamp(self, tmp_path):
        ids = [RunRecorder("qa", runs_dir=tmp_path).run_id
               for _ in range(5)]
        assert len(set(ids)) == 5
        # Microsecond timestamp prefix: chronological even for
        # back-to-back runs, which 'latest'/'prev' rely on.
        stamps = [run_id.split("-")[0] for run_id in ids]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 5
        for run_id in ids:
            assert len(run_id) == len("20260101T000000123456-abcdef")

    def test_exception_writes_error_record(self, tmp_path):
        with pytest.raises(RuntimeError):
            with RunRecorder("process", runs_dir=tmp_path):
                raise RuntimeError("matrix exploded")
        record = list_runs(tmp_path)[0]
        assert record["status"] == "error"
        assert record["error"] == "RuntimeError: matrix exploded"

    def test_metrics_snapshot_is_compact(self, tmp_path):
        registry = MetricsRegistry()
        registry.histogram("repro_seconds").observe(0.5)
        with RunRecorder("process", runs_dir=tmp_path) as recorder:
            recorder.set_metrics(registry)
        record = list_runs(tmp_path)[0]
        entry = record["metrics"]["histograms"][0]
        assert entry["count"] == 1
        assert "reservoir" not in entry

    def test_non_json_config_values_coerced(self, tmp_path):
        record = _record(tmp_path, weird={1, 2}, path=None)
        assert record["config"]["weird"] == repr({1, 2})
        assert record["config"]["path"] is None


class TestWaterfall:
    def _roots(self):
        tracer = Tracer()
        with tracer.span("process_log"):
            with tracer.span("parse"):
                pass
            with tracer.span("extract"):
                pass
        with tracer.span("distance_matrix"):
            with tracer.span("fill"):
                with tracer.span("distance_chunk"):
                    pass
        return tracer.roots

    def test_waterfall_keeps_two_levels_by_default(self):
        waterfall = waterfall_from_roots(self._roots())
        assert [node["name"] for node in waterfall] == \
            ["process_log", "distance_matrix"]
        fill = waterfall[1]["children"][0]
        assert fill["name"] == "fill"
        assert [c["name"] for c in fill["children"]] == \
            ["distance_chunk"]
        # Depth 2 means grandchildren are leaves.
        assert "children" not in fill["children"][0]

    def test_recorder_embeds_waterfall(self, tmp_path):
        with RunRecorder("process", runs_dir=tmp_path) as recorder:
            recorder.set_waterfall(self._roots())
        record = list_runs(tmp_path)[0]
        assert record["waterfall"][0]["name"] == "process_log"
        assert record["waterfall"][0]["seconds"] >= 0.0


class TestResolution:
    def test_latest_prev_and_prefix(self, tmp_path):
        first = _record(tmp_path, seed=1)
        second = _record(tmp_path, seed=2)
        assert resolve_run("latest", tmp_path)["run_id"] == \
            second["run_id"]
        assert resolve_run("prev", tmp_path)["run_id"] == \
            first["run_id"]
        assert resolve_run(first["run_id"][:23], tmp_path)["config"] \
            == {"seed": 1}

    def test_missing_and_ambiguous_are_key_errors(self, tmp_path):
        with pytest.raises(KeyError, match="no run records"):
            resolve_run("latest", tmp_path / "void")
        _record(tmp_path)
        _record(tmp_path)
        with pytest.raises(KeyError, match="no run record matching"):
            resolve_run("zzz", tmp_path)
        with pytest.raises(KeyError, match="ambiguous"):
            resolve_run("2", tmp_path)  # both ids start with "2"

    def test_unreadable_files_skipped(self, tmp_path):
        _record(tmp_path)
        (tmp_path / "junk.json").write_text("{not json")
        assert len(list_runs(tmp_path)) == 1


class TestDiff:
    def _pair(self, tmp_path):
        registry_a = MetricsRegistry()
        registry_a.counter("repro_pairs_total").inc(100)
        with RunRecorder("process", runs_dir=tmp_path,
                         config={"eps": 0.12}) as rec_a:
            rec_a.set_metrics(registry_a)
        registry_b = MetricsRegistry()
        registry_b.counter("repro_pairs_total").inc(50)
        with RunRecorder("process", runs_dir=tmp_path,
                         config={"eps": 0.2}) as rec_b:
            rec_b.set_metrics(registry_b)
        records = list_runs(tmp_path)
        return records[0], records[1]

    def test_config_and_metric_deltas(self, tmp_path):
        a, b = self._pair(tmp_path)
        diff = diff_runs(a, b)
        assert diff["config_changes"] == {
            "eps": {"a": 0.12, "b": 0.2}}
        row = next(r for r in diff["metrics"]
                   if r["key"] == "repro_pairs_total")
        assert row["delta"] == -50
        assert row["ratio"] == pytest.approx(0.5)

    def test_format_diff_renders(self, tmp_path):
        a, b = self._pair(tmp_path)
        text = format_diff(diff_runs(a, b))
        assert "eps: 0.12 -> 0.2" in text
        assert "repro_pairs_total" in text
        assert "(0.50x)" in text


class TestRendering:
    def test_table_and_show(self, tmp_path):
        record = _record(tmp_path, eps=0.12)
        table = format_runs_table([record])
        assert record["run_id"] in table
        assert "process" in table
        shown = format_run(record)
        assert "eps=0.12" in shown
        assert "status   : ok" in shown

    def test_empty_table(self):
        assert format_runs_table([]) == "(no run records)"

    def test_environment_info_shape(self):
        env = environment_info()
        assert set(env) >= {"python", "system", "machine", "cpus",
                            "pid"}
