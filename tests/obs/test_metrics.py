"""Registry, counter/gauge/histogram semantics, quantiles, exporters."""

import json
import math

import pytest

from repro.obs.export import (load_json, render_table, to_json,
                              to_prometheus, write_json)
from repro.obs.metrics import (Counter, Histogram, MetricsRegistry,
                               NullRegistry, RunningStats, get_registry,
                               set_registry, use_registry)


class TestRunningStats:
    def test_empty_is_finite_and_symmetric(self):
        stats = RunningStats()
        assert stats.minimum == 0.0
        assert stats.maximum == 0.0
        assert stats.mean == 0.0
        assert math.isfinite(stats.minimum)

    def test_first_value_sets_both_bounds(self):
        stats = RunningStats()
        stats.add(0.5)
        assert stats.minimum == 0.5
        assert stats.maximum == 0.5

    def test_accumulation(self):
        stats = RunningStats()
        for value in (3.0, 1.0, 2.0):
            stats.add(value)
        assert stats.count == 3
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.total == 6.0
        assert stats.mean == 2.0


class TestCounter:
    def test_inc(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestHistogram:
    def test_exact_quantiles_below_reservoir_size(self):
        histogram = Histogram("h")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 100.0
        assert histogram.p50 == pytest.approx(50.5)
        assert histogram.p95 == pytest.approx(95.05)
        assert histogram.p99 == pytest.approx(99.01)

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_reservoir_sampling_is_deterministic_and_bounded(self):
        h1 = Histogram("same-name", reservoir_size=64)
        h2 = Histogram("same-name", reservoir_size=64)
        for value in range(10_000):
            h1.observe(value)
            h2.observe(value)
        assert len(h1.reservoir) == 64
        assert h1.reservoir == h2.reservoir  # seeded from the name
        assert h1.count == 10_000
        # The sampled p50 of a uniform ramp stays near the middle.
        assert 2_000 < h1.p50 < 8_000


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", stage="parse")
        b = registry.counter("repro_x_total", stage="parse")
        c = registry.counter("repro_x_total", stage="cnf")
        assert a is b
        assert a is not c

    def test_instrument_kinds_are_separate_namespaces(self):
        registry = MetricsRegistry()
        registry.counter("repro_x")
        registry.gauge("repro_x")
        registry.histogram("repro_x")
        snapshot = registry.snapshot()
        assert len(snapshot["counters"]) == 1
        assert len(snapshot["gauges"]) == 1
        assert len(snapshot["histograms"]) == 1

    def test_default_registry_injection(self):
        replacement = MetricsRegistry()
        with use_registry(replacement):
            assert get_registry() is replacement
            get_registry().counter("repro_inside_total").inc()
        assert get_registry() is not replacement
        assert replacement.counter("repro_inside_total").value == 1

    def test_set_registry_returns_previous(self):
        original = get_registry()
        replacement = MetricsRegistry()
        previous = set_registry(replacement)
        try:
            assert previous is original
        finally:
            set_registry(original)

    def test_merge_adds_counters_and_pools_histograms(self):
        worker = MetricsRegistry()
        worker.counter("repro_pairs_total").inc(10)
        for value in (1.0, 2.0, 3.0):
            worker.histogram("repro_seconds").observe(value)
        worker.gauge("repro_g").set(7)

        parent = MetricsRegistry()
        parent.counter("repro_pairs_total").inc(5)
        parent.histogram("repro_seconds").observe(10.0)

        parent.merge(worker.snapshot())
        assert parent.counter("repro_pairs_total").value == 15
        histogram = parent.histogram("repro_seconds")
        assert histogram.count == 4
        assert histogram.minimum == 1.0
        assert histogram.maximum == 10.0
        assert histogram.total == 16.0
        assert parent.gauge("repro_g").value == 7

    def test_merge_without_reservoir_keeps_summary_stats(self):
        worker = MetricsRegistry()
        for value in (1.0, 5.0):
            worker.histogram("repro_seconds").observe(value)
        snapshot = worker.snapshot(include_reservoir=False)
        parent = MetricsRegistry()
        parent.merge(snapshot)
        histogram = parent.histogram("repro_seconds")
        assert histogram.count == 2
        assert histogram.minimum == 1.0
        assert histogram.maximum == 5.0


class TestNullRegistry:
    def test_all_instruments_are_noops(self):
        registry = NullRegistry()
        registry.counter("repro_x").inc(5)
        registry.gauge("repro_x").set(5)
        registry.histogram("repro_x").observe(5)
        assert registry.counter("repro_x").value == 0
        assert registry.snapshot() == {
            "counters": [], "gauges": [], "histograms": []}
        assert not registry.enabled


class TestPrometheusExport:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("repro_pipeline_statements_total").inc(414)
        registry.counter("repro_pipeline_failures_total",
                         kind="parse").inc(2)
        registry.gauge("repro_clustering_clusters",
                       algorithm="dbscan").set(28)
        histogram = registry.histogram("repro_pipeline_stage_seconds",
                                       stage="cnf")
        for value in range(100):
            histogram.observe(value / 1000)
        return registry

    def test_type_lines_and_samples(self):
        text = to_prometheus(self.build())
        assert "# TYPE repro_pipeline_statements_total counter" in text
        assert "repro_pipeline_statements_total 414" in text
        assert ('repro_pipeline_failures_total{kind="parse"} 2'
                in text)
        assert "# TYPE repro_clustering_clusters gauge" in text
        assert "# TYPE repro_pipeline_stage_seconds histogram" in text
        assert ('repro_pipeline_stage_seconds_quantiles{quantile="0.95",'
                'stage="cnf"}') in text
        assert 'repro_pipeline_stage_seconds_count{stage="cnf"} 100' in text

    def test_help_lines_accompany_every_type(self):
        text = to_prometheus(self.build())
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                name = line.split()[2]
                assert f"# HELP {name} " in text

    def test_bucket_series_cumulative_and_terminated(self):
        text = to_prometheus(self.build())
        buckets = [line for line in text.splitlines()
                   if line.startswith("repro_pipeline_stage_seconds_"
                                      "bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)  # cumulative → monotone
        assert buckets[-1].startswith(
            'repro_pipeline_stage_seconds_bucket{le="+Inf"')
        assert counts[-1] == 100
        # The 0...0.099 ladder: everything fits under le="0.1".
        le_01 = next(line for line in buckets if 'le="0.1"' in line)
        assert le_01.endswith(" 100")

    def test_exemplars_annotate_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_chunk_seconds")
        histogram.observe(0.2, exemplar="span-slow")
        histogram.observe(0.01)
        text = to_prometheus(registry)
        annotated = [line for line in text.splitlines()
                     if '# {span_id="span-slow"}' in line]
        assert len(annotated) == 1
        assert 'le="0.25"' in annotated[0]

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", detail='say "hi"\n').inc()
        text = to_prometheus(registry)
        assert r'detail="say \"hi\"\n"' in text

    def test_every_line_is_sample_or_comment(self):
        for line in to_prometheus(self.build()).strip().splitlines():
            assert line.startswith(("# TYPE ", "# HELP ")) or " " in line

    def test_compact_snapshot_without_reservoir_still_valid(self):
        registry = self.build()
        compact = registry.snapshot(include_reservoir=False)
        text = to_prometheus(compact)
        assert ('repro_pipeline_stage_seconds_bucket{le="+Inf",'
                'stage="cnf"} 100') in text


class TestJsonExport:
    def test_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc(3)
        registry.histogram("repro_seconds").observe(1.5)
        path = tmp_path / "metrics.json"
        write_json(registry, path)
        snapshot = load_json(path)
        assert snapshot["counters"][0]["value"] == 3
        assert snapshot["histograms"][0]["count"] == 1
        # Compact dump omits the raw reservoir.
        assert "reservoir" not in snapshot["histograms"][0]
        # And the text form is valid JSON.
        assert json.loads(to_json(registry)) == snapshot


class TestTableExport:
    def test_renders_all_sections(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", kind="a").inc(2)
        registry.gauge("repro_g").set(1.5)
        registry.histogram("repro_seconds").observe(0.25)
        table = render_table(registry)
        assert "repro_x_total{kind=a}" in table
        assert "repro_g" in table
        assert "repro_seconds" in table
        assert "p95" in table

    def test_empty_registry(self):
        assert render_table(MetricsRegistry()) == "(no metrics recorded)"
