"""Perf-regression guard: flattening, trajectory store, budgets,
robust statistics, and the check verdicts."""

import json

import pytest

from repro.obs.perf import (Budget, append_entry, check_regressions,
                            collect_bench_metrics, entries_for_label,
                            flatten_numeric, format_check,
                            load_budgets, load_trajectory,
                            robust_z_score)


class TestFlatten:
    def test_nested_paths_and_indices(self):
        payload = {"total_seconds": 1.5, "smoke": True,
                   "sizes": [{"n": 100, "kernel_seconds": 0.2},
                             {"n": 200, "kernel_seconds": 0.9}],
                   "label": "tiny"}
        flat = flatten_numeric(payload)
        assert flat == {"total_seconds": 1.5,
                        "sizes[0].n": 100.0,
                        "sizes[0].kernel_seconds": 0.2,
                        "sizes[1].n": 200.0,
                        "sizes[1].kernel_seconds": 0.9}

    def test_booleans_and_skip_keys_excluded(self):
        flat = flatten_numeric({"ok": False, "reservoir": [1, 2],
                                "metrics": {"x": 1}, "value": 3})
        assert flat == {"value": 3.0}

    def test_collect_prefixes_family_and_skips_store(self, tmp_path):
        (tmp_path / "BENCH_alpha.json").write_text(
            json.dumps({"seconds": 2.0}))
        (tmp_path / "BENCH_trajectory.json").write_text(
            json.dumps({"schema_version": 1, "entries": []}))
        (tmp_path / "BENCH_broken.json").write_text("{nope")
        metrics = collect_bench_metrics(tmp_path)
        assert metrics == {"BENCH_alpha:seconds": 2.0}


class TestTrajectoryStore:
    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        append_entry(path, {"a:x": 1.0}, label="baseline",
                     git_sha="abc")
        append_entry(path, {"a:x": 2.0}, label="candidate")
        trajectory = load_trajectory(path)
        assert trajectory["schema_version"] == 1
        assert len(trajectory["entries"]) == 2
        baseline = entries_for_label(trajectory, "baseline")
        assert baseline[0]["metrics"] == {"a:x": 1.0}
        assert baseline[0]["git_sha"] == "abc"
        assert baseline[0]["recorded"]

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"schema_version": 99}))
        with pytest.raises(ValueError, match="unsupported trajectory"):
            load_trajectory(path)


class TestBudgets:
    def test_toml_defaults_and_overrides(self, tmp_path):
        path = tmp_path / "budgets.toml"
        path.write_text(
            '[defaults]\n'
            'max_ratio = 2.0\n'
            'robust_z = 3.5\n'
            '\n'
            '[[budget]]\n'
            'pattern = "*:*seconds*"\n'
            '\n'
            '[[budget]]\n'
            'pattern = "*:*_per_second"\n'
            'direction = "down"\n'
            'max_ratio = 1.5\n')
        budgets = load_budgets(path)
        assert len(budgets) == 2
        assert budgets[0].max_ratio == 2.0
        assert budgets[0].robust_z == 3.5
        assert budgets[0].direction == "up"
        assert budgets[1].direction == "down"
        assert budgets[1].max_ratio == 1.5
        assert budgets[0].matches("BENCH_kernel:sizes[0].kernel_seconds")
        assert not budgets[0].matches("BENCH_kernel:sizes[0].n")

    def test_minimal_parser_agrees_with_tomllib(self, tmp_path):
        # The 3.10 fallback must parse the real budget file to the
        # same structure tomllib produces.
        import tomllib
        from repro.obs.perf import _parse_toml_minimal
        from pathlib import Path
        text = (Path(__file__).parents[2]
                / "perf_budgets.toml").read_text()
        assert _parse_toml_minimal(text) == tomllib.loads(text)

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            Budget("*", direction="sideways")

    def test_repo_budget_file_loads(self):
        from pathlib import Path
        budgets = load_budgets(
            Path(__file__).parents[2] / "perf_budgets.toml")
        assert any(b.matches("BENCH_kernel:sizes[0].kernel_seconds")
                   for b in budgets)


class TestRobustZ:
    def test_needs_history_and_spread(self):
        assert robust_z_score(5.0, [1.0, 1.1]) is None
        assert robust_z_score(5.0, [2.0, 2.0, 2.0]) is None

    def test_scales_with_mad(self):
        history = [1.0, 1.1, 0.9, 1.05, 0.95]
        near = robust_z_score(1.1, history)
        far = robust_z_score(3.0, history)
        assert near < 2.0
        assert far > 10.0


def _trajectory(baselines, candidate):
    entries = [{"recorded": f"t{i}", "label": "baseline",
                "git_sha": None, "metrics": m}
               for i, m in enumerate(baselines)]
    entries.append({"recorded": "tc", "label": "candidate",
                    "git_sha": None, "metrics": candidate})
    return {"schema_version": 1, "entries": entries}


class TestCheck:
    BUDGETS = [Budget("*:*seconds*", max_ratio=1.5,
                      min_abs_delta=0.005, robust_z=4.0),
               Budget("*:*_per_second", direction="down",
                      max_ratio=1.5, min_abs_delta=1.0)]

    def test_clean_rerun_passes(self):
        baselines = [{"b:run_seconds": 1.0, "b:ops_per_second": 100.0}
                     for _ in range(3)]
        result = check_regressions(
            _trajectory(baselines, dict(baselines[0])), self.BUDGETS)
        assert result["ok"]
        assert result["findings"] == []
        assert result["checked"] == 2

    def test_injected_2x_slowdown_detected(self):
        baselines = [{"b:run_seconds": 1.0 + 0.01 * i}
                     for i in range(3)]
        result = check_regressions(
            _trajectory(baselines, {"b:run_seconds": 2.0}),
            self.BUDGETS)
        assert not result["ok"]
        finding = result["findings"][0]
        assert finding["verdict"] == "regression"
        assert finding["ratio"] == pytest.approx(2.0, rel=0.05)

    def test_direction_down_flags_throughput_collapse(self):
        baselines = [{"b:ops_per_second": 100.0 + i}
                     for i in range(3)]
        result = check_regressions(
            _trajectory(baselines, {"b:ops_per_second": 40.0}),
            self.BUDGETS)
        assert not result["ok"]

    def test_improvement_never_flags(self):
        baselines = [{"b:run_seconds": 1.0} for _ in range(3)]
        result = check_regressions(
            _trajectory(baselines, {"b:run_seconds": 0.2}),
            self.BUDGETS)
        assert result["ok"]

    def test_small_absolute_delta_ignored(self):
        # 3x ratio but only 3ms absolute: below min_abs_delta.
        baselines = [{"b:tiny_seconds": 0.001} for _ in range(3)]
        result = check_regressions(
            _trajectory(baselines, {"b:tiny_seconds": 0.003}),
            self.BUDGETS)
        assert result["ok"]

    def test_noisy_metric_downgraded_not_failed(self):
        # Baseline history is wildly spread: the ratio trips but the
        # robust z stays inside the noise band.
        baselines = [{"b:jitter_seconds": v}
                     for v in (0.5, 2.0, 1.0, 3.0, 0.2)]
        result = check_regressions(
            _trajectory(baselines, {"b:jitter_seconds": 4.0}),
            self.BUDGETS)
        assert result["ok"]
        assert result["findings"][0]["verdict"] == "noisy"

    def test_short_history_falls_back_to_ratio(self):
        # Two baseline runs: no robust z yet, the ratio alone decides.
        baselines = [{"b:run_seconds": 1.0}, {"b:run_seconds": 1.02}]
        result = check_regressions(
            _trajectory(baselines, {"b:run_seconds": 2.0}),
            self.BUDGETS)
        assert not result["ok"]

    def test_median_of_k_absorbs_one_bad_baseline(self):
        baselines = [{"b:run_seconds": v}
                     for v in (1.0, 1.01, 9.0, 0.99, 1.02)]
        result = check_regressions(
            _trajectory(baselines, {"b:run_seconds": 1.05}),
            self.BUDGETS)
        assert result["ok"]

    def test_missing_candidate_metric_reported_not_failed(self):
        baselines = [{"b:gone_seconds": 1.0} for _ in range(3)]
        result = check_regressions(
            _trajectory(baselines, {}), self.BUDGETS)
        assert result["ok"]
        assert result["findings"][0]["verdict"] == "missing"

    def test_unknown_labels_raise(self):
        with pytest.raises(KeyError, match="baseline"):
            check_regressions({"schema_version": 1, "entries": []},
                              self.BUDGETS)

    def test_format_check_renders_verdicts(self):
        baselines = [{"b:run_seconds": 1.0} for _ in range(3)]
        result = check_regressions(
            _trajectory(baselines, {"b:run_seconds": 2.5}),
            self.BUDGETS)
        text = format_check(result)
        assert "REGRESSION" in text
        assert "b:run_seconds" in text
        assert "RESULT: REGRESSION DETECTED" in text
