"""Interned vs non-interned pipeline parity.

The tentpole guarantee: clustering the interned unique areas with
multiplicity weights and expanding the labels yields *bitwise-identical*
results to clustering the full duplicated population — while the
distance stage only pays u(u−1)/2 pairs.  Checked on the seed synthetic
workload end-to-end and on hypothesis-generated repeat-heavy
populations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.analysis.experiments import CaseStudyConfig, run_case_study
from repro.clustering import partitioned_dbscan
from repro.clustering.aggregation import aggregate_cluster
from repro.core.area import AccessArea
from repro.core.pipeline import dedupe_areas, expand_labels
from repro.distance import QueryDistance
from repro.distance.block_sparse import compute_matrix
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)
from repro.workload import ContentConfig, WorkloadConfig


@pytest.fixture(scope="module")
def paired_runs():
    """The same scaled-down case study with and without interning."""
    base = dict(
        workload=WorkloadConfig(n_queries=900, seed=13),
        content=ContentConfig(photo_rows=600, spec_rows=500,
                              satellite_rows=400, seed=7),
        sample_size=600,
        eps=0.12,
        min_pts=4,
        seed=99,
    )
    interned = run_case_study(CaseStudyConfig(**base, intern=True))
    plain = run_case_study(CaseStudyConfig(**base, intern=False))
    return interned, plain


class TestSeedWorkloadParity:
    def test_expanded_labels_identical(self, paired_runs):
        interned, plain = paired_runs
        assert interned.clustering.labels == plain.clustering.labels

    def test_aggregated_areas_identical(self, paired_runs):
        interned, plain = paired_runs
        assert len(interned.rows) == len(plain.rows)
        for got, want in zip(interned.rows, plain.rows):
            assert got.cluster_id == want.cluster_id
            assert got.cardinality == want.cardinality
            assert got.aggregated == want.aggregated
            assert got.description == want.description
            assert got.n_users == want.n_users

    def test_sample_identical(self, paired_runs):
        interned, plain = paired_runs
        assert [s.area for s in interned.sample] \
            == [s.area for s in plain.sample]

    def test_intern_stats_populated(self, paired_runs):
        interned, plain = paired_runs
        assert interned.report.interner is not None
        assert plain.report.interner is None
        stats = interned.report.intern_stats
        assert stats.pool_size > 0
        assert stats.dedup_ratio >= 1.0


def _stats():
    schema = Schema("parity")
    for name in ("T", "S"):
        schema.add(Relation(name, (
            Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    return StatisticsCatalog.from_exact_content(schema, {
        ("T", "x"): Interval(0.0, 100.0),
        ("S", "x"): Interval(0.0, 100.0),
    })


def _window(relation, lo, hi):
    ref = ColumnRef(relation, "x")
    return AccessArea((relation,), CNF.of([
        Clause.of([ColumnConstantPredicate(ref, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(ref, Op.LE, hi)]),
    ]))


# A pool of areas SkyServer-style: two dense template families plus
# rarer one-off windows, on two different table sets.
_POOL = (
    [_window("T", float(i), float(i + 10)) for i in range(6)]
    + [_window("S", float(40 + 3 * i), float(55 + 3 * i))
       for i in range(4)]
)


class TestMatrixShrinks:
    def test_distance_stage_pays_unique_pairs_only(self):
        source = [_POOL[i] for i in
                  [0, 0, 1, 0, 2, 1, 0, 6, 6, 7, 0, 1, 6]]
        unique, weights, inverse = dedupe_areas(source)
        u = len(unique)
        distance = QueryDistance(_stats())
        matrix = compute_matrix(unique, distance, mode="dense")
        matrix.stats.n_source_items = len(source)
        assert matrix.stats.pairs_total == u * (u - 1) // 2
        assert matrix.stats.pairs_total \
            < len(source) * (len(source) - 1) // 2
        assert matrix.stats.dedup_ratio \
            == pytest.approx(len(source) / u)
        assert "interned from 13 source areas" in matrix.stats.summary()

    def test_dedup_ratio_defaults_to_one(self):
        distance = QueryDistance(_stats())
        matrix = compute_matrix(_POOL[:3], distance, mode="dense")
        assert matrix.stats.dedup_ratio == 1.0
        assert "interned" not in matrix.stats.summary()


@st.composite
def repeat_heavy_population(draw):
    """Indices into _POOL with SkyServer-shaped repeat skew: a few
    templates dominate, the tail is rare."""
    length = draw(st.integers(min_value=4, max_value=40))
    hot = draw(st.integers(min_value=0, max_value=len(_POOL) - 1))
    indices = draw(st.lists(
        st.one_of(st.just(hot),
                  st.integers(min_value=0, max_value=len(_POOL) - 1)),
        min_size=length, max_size=length))
    return indices


class TestHypothesisParity:
    @settings(max_examples=30, deadline=None)
    @given(indices=repeat_heavy_population(),
           min_pts=st.integers(min_value=2, max_value=6))
    def test_weighted_labels_expand_identically(self, indices, min_pts):
        source = [_POOL[i] for i in indices]
        distance = QueryDistance(_stats())
        want = partitioned_dbscan(source, distance, eps=0.12,
                                  min_pts=min_pts).labels
        unique, weights, inverse = dedupe_areas(source)
        deduped = partitioned_dbscan(unique, distance, eps=0.12,
                                     min_pts=min_pts, weights=weights)
        assert expand_labels(deduped.labels, inverse) == want

    @settings(max_examples=15, deadline=None)
    @given(indices=repeat_heavy_population())
    def test_weighted_aggregates_match_expanded(self, indices):
        source = [_POOL[i] for i in indices]
        unique, weights, inverse = dedupe_areas(source)
        # Expand in unique order: integer bounds make repeated addition
        # exact, so aggregates must match bitwise.
        expanded = []
        for member, weight in zip(unique, weights):
            expanded.extend([member] * weight)
        want = aggregate_cluster(0, expanded)
        got = aggregate_cluster(0, unique, weights=weights)
        assert got == want
