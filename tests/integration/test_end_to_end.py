"""End-to-end integration: the full pipeline and baseline comparisons."""

import random

from repro.baselines import (RequeryBaseline, fragmentation,
                             raw_access_area, requery_log)
from repro.clustering import partitioned_dbscan
from repro.distance import QueryDistance
from repro.workload import LogEntry


class TestPipelineConsistency:
    def test_sample_ground_truth_attached(self, small_case_study):
        families = {s.family_id for s in small_case_study.sample}
        assert families & set(range(1, 25))

    def test_error_queries_extracted(self, small_case_study):
        # MySQL-LIMIT statements still get areas (Section 6.6 "quality").
        error_samples = [s for s in small_case_study.sample
                        if s.family_id == LogEntry.ERROR]
        assert error_samples

    def test_access_stats_widened_by_log(self, small_case_study):
        from repro.algebra.predicates import ColumnRef
        ref = ColumnRef("zooSpec", "dec")
        access = small_case_study.stats.access_interval(ref)
        # The log queries dec = -100, below any content.
        assert access.lo <= -100.0


class TestOlapClusComparison:
    def test_fragmentation_vs_our_single_cluster(self, small_case_study):
        """Section 6.4 at small scale: one overlap cluster, many
        exact-match groups for the point-lookup family."""
        family1 = [s.area for s in small_case_study.sample
                   if s.family_id == 1]
        assert len(family1) >= 20
        groups = fragmentation(family1, min_pts=2)
        assert groups > 0.8 * len(family1)  # nearly one per constant

        our_labels = [
            small_case_study.clustering.labels[i]
            for i, s in enumerate(small_case_study.sample)
            if s.family_id == 1
        ]
        our_clusters = {label for label in our_labels if label >= 0}
        assert 1 <= len(our_clusters) <= max(1, groups // 4)


class TestRawQueryComparison:
    def test_raw_clustering_breaks_transformed_families(
            self, small_case_study):
        """Section 6.5 at small scale: the NOT/HAVING-phrased family 19
        splits when predicates are used as-is."""
        result = small_case_study
        sample = [
            (i, s) for i, s in enumerate(result.sample)
            if s.family_id == 19
        ]
        indices = [i for i, _ in sample]
        ours = {result.clustering.labels[i] for i in indices
                if result.clustering.labels[i] >= 0}
        assert len(ours) == 1  # our method: one cluster

        raw_areas = []
        workload_by_family = [
            e.sql for e in result.workload.log if e.family_id == 19
        ]
        for sql in workload_by_family[:120]:
            raw_areas.append(raw_access_area(sql, result.schema))
        distance = QueryDistance(result.stats, resolution=0.05)
        raw_result = partitioned_dbscan(raw_areas, distance,
                                        eps=0.12, min_pts=4)
        raw_groups = raw_result.n_clusters
        # As-is predicates split the family (NOT phrasing + HAVING atoms).
        assert raw_groups >= 2 or raw_result.noise_count > \
            0.2 * len(raw_areas)


class TestRequeryComparison:
    def test_requery_misses_empty_areas_and_errors(self, small_case_study):
        """Section 6.6 at small scale."""
        result = small_case_study
        rng = random.Random(0)
        entries = [e for e in result.workload.log
                   if e.family_id in (19, 20, 21, 23, 24, LogEntry.ERROR)]
        entries = rng.sample(entries, min(60, len(entries)))
        baseline = RequeryBaseline(result.db)
        report = requery_log(baseline, [e.sql for e in entries])
        empty_family = sum(1 for e in entries if e.family_id in
                           (19, 20, 21, 23, 24))
        # No empty-area query yields an area; error queries error out.
        assert report.empty_results >= 0.8 * empty_family
        assert report.errored >= 1
        assert report.succeeded < len(entries) * 0.3
