"""The installed console entry point, exercised as a real subprocess."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, timeout=timeout)


class TestSubprocess:
    def test_extract(self):
        proc = run_cli("extract",
                       "SELECT * FROM Photoz WHERE z BETWEEN 0 AND 0.1")
        assert proc.returncode == 0
        assert "Photoz.z <= 0.1" in proc.stdout

    def test_extract_error_exit_code(self):
        proc = run_cli("extract", "DROP TABLE PhotoObjAll")
        assert proc.returncode == 1
        assert "cannot extract" in proc.stderr

    def test_generate_and_process_pipeline(self, tmp_path):
        log_path = tmp_path / "log.jsonl"
        proc = run_cli("generate", "--queries", "200",
                       "--out", str(log_path))
        assert proc.returncode == 0, proc.stderr
        assert log_path.exists()

        proc = run_cli("process", str(log_path))
        assert proc.returncode == 0, proc.stderr
        assert "areas extracted" in proc.stdout

    def test_help(self):
        proc = run_cli("--help")
        assert proc.returncode == 0
        assert "extract" in proc.stdout and "casestudy" in proc.stdout

    @pytest.mark.slow
    def test_module_invocation_matches_entry_point(self):
        proc = run_cli("extract", "SELECT * FROM SpecObjAll "
                                  "WHERE plate > 300")
        assert proc.returncode == 0
        assert "SpecObjAll.plate > 300" in proc.stdout
