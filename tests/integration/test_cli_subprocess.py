"""The installed console entry point, exercised as a real subprocess."""

import json
import subprocess
import sys

import pytest


def run_cli(*args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, timeout=timeout)


class TestSubprocess:
    def test_extract(self):
        proc = run_cli("extract",
                       "SELECT * FROM Photoz WHERE z BETWEEN 0 AND 0.1")
        assert proc.returncode == 0
        assert "Photoz.z <= 0.1" in proc.stdout

    def test_extract_error_exit_code(self):
        proc = run_cli("extract", "DROP TABLE PhotoObjAll")
        assert proc.returncode == 1
        assert "cannot extract" in proc.stderr

    def test_generate_and_process_pipeline(self, tmp_path):
        log_path = tmp_path / "log.jsonl"
        proc = run_cli("generate", "--queries", "200",
                       "--out", str(log_path))
        assert proc.returncode == 0, proc.stderr
        assert log_path.exists()

        proc = run_cli("process", str(log_path))
        assert proc.returncode == 0, proc.stderr
        assert "areas extracted" in proc.stdout

    def test_help(self):
        proc = run_cli("--help")
        assert proc.returncode == 0
        assert "extract" in proc.stdout and "casestudy" in proc.stdout

    @pytest.mark.slow
    def test_module_invocation_matches_entry_point(self):
        proc = run_cli("extract", "SELECT * FROM SpecObjAll "
                                  "WHERE plate > 300")
        assert proc.returncode == 0
        assert "SpecObjAll.plate > 300" in proc.stdout


class TestObservability:
    @pytest.fixture(scope="class")
    def small_log(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "log.jsonl"
        proc = run_cli("generate", "--queries", "150", "--out", str(path))
        assert proc.returncode == 0, proc.stderr
        return path

    def test_process_writes_metrics_and_trace(self, small_log, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        proc = run_cli("process", str(small_log),
                       "--metrics-out", str(metrics_path),
                       "--trace-out", str(trace_path),
                       "--sample", "80")
        assert proc.returncode == 0, proc.stderr
        assert "clusters found" in proc.stdout

        snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
        counters = {c["name"] for c in snapshot["counters"]}
        histograms = {h["name"] for h in snapshot["histograms"]}
        assert "repro_pipeline_statements_total" in counters
        assert "repro_distance_pairs_total" in counters
        assert "repro_clustering_runs_total" in counters
        assert "repro_pipeline_stage_seconds" in histograms
        assert "repro_clustering_iterations" in histograms
        stages = {h["labels"].get("stage")
                  for h in snapshot["histograms"]
                  if h["name"] == "repro_pipeline_stage_seconds"}
        assert stages == {"parse", "extract", "cnf", "consolidate"}

        roots = [json.loads(line) for line
                 in trace_path.read_text(encoding="utf-8").splitlines()
                 if line.strip()]
        names = {root["name"] for root in roots}
        assert "process_log" in names
        # auto matrix mode picks the block-sparse layout at the default
        # eps; either matrix span proves the distance stage was traced.
        assert any(root["name"] in ("distance_matrix",
                                    "block_sparse_matrix")
                   for root in roots)

    def test_no_cluster_skips_clustering_metrics(self, small_log,
                                                 tmp_path):
        metrics_path = tmp_path / "metrics.json"
        proc = run_cli("process", str(small_log), "--no-cluster",
                       "--metrics-out", str(metrics_path))
        assert proc.returncode == 0, proc.stderr
        assert "clusters found" not in proc.stdout
        snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
        counters = {c["name"] for c in snapshot["counters"]}
        assert "repro_pipeline_statements_total" in counters
        assert "repro_clustering_runs_total" not in counters

    def test_stats_renders_table_prometheus_and_trace(self, small_log,
                                                      tmp_path):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        proc = run_cli("process", str(small_log),
                       "--metrics-out", str(metrics_path),
                       "--trace-out", str(trace_path),
                       "--sample", "60")
        assert proc.returncode == 0, proc.stderr

        table = run_cli("stats", str(metrics_path))
        assert table.returncode == 0, table.stderr
        assert "repro_pipeline_statements_total" in table.stdout
        assert "p95" in table.stdout

        prom = run_cli("stats", str(metrics_path),
                       "--format", "prometheus")
        assert prom.returncode == 0, prom.stderr
        assert ("# TYPE repro_pipeline_statements_total counter"
                in prom.stdout)
        assert 'quantile="0.95"' in prom.stdout

        tree = run_cli("stats", "--trace", str(trace_path))
        assert tree.returncode == 0, tree.stderr
        assert "root span(s)" in tree.stdout
        assert "process_log" in tree.stdout

    def test_stats_without_inputs_fails(self):
        proc = run_cli("stats")
        assert proc.returncode == 2

    def test_log_level_routes_diagnostics_to_stderr(self, small_log):
        proc = run_cli("process", str(small_log), "--no-cluster",
                       "--log-level", "info", "--log-format", "json")
        assert proc.returncode == 0, proc.stderr
        diagnostics = [json.loads(line) for line
                       in proc.stderr.splitlines() if line.strip()]
        assert any(record["logger"].startswith("repro")
                   for record in diagnostics)
        # stdout stays the clean user-facing report.
        assert "areas extracted" in proc.stdout
        assert not any(line.startswith("{") for line
                       in proc.stdout.splitlines())
