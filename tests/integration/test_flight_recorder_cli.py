"""End-to-end flight recorder: run records, runs CLI, profiling, and
the perf guard — exercised through ``repro.cli.main`` and real
subprocesses where process death matters."""

import json
import subprocess
import sys

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def small_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("fr") / "log.jsonl"
    assert main(["generate", "--queries", "150",
                 "--out", str(path)]) == 0
    return path


def _run_record(runs_dir, index=-1) -> dict:
    paths = sorted(runs_dir.glob("*.json"))
    assert paths, f"no run records under {runs_dir}"
    return json.loads(paths[index].read_text())


class TestRunRecords:
    def test_process_writes_record_with_waterfall(self, small_log,
                                                  tmp_path, capsys):
        runs = tmp_path / "runs"
        assert main(["process", str(small_log), "--sample", "120",
                     "--runs-dir", str(runs)]) == 0
        capsys.readouterr()
        record = _run_record(runs)
        assert record["command"] == "process"
        assert record["status"] == "ok"
        assert record["config"]["sample"] == 120
        assert record["exit_code"] == 0
        stages = {node["name"] for node in record["waterfall"]}
        assert "process_log" in stages
        counters = {c["name"] for c in record["metrics"]["counters"]}
        assert "repro_pipeline_statements_total" in counters

    def test_parallel_run_stitches_worker_spans(self, small_log,
                                                tmp_path, capsys):
        runs = tmp_path / "runs"
        trace_path = tmp_path / "trace.jsonl"
        assert main(["process", str(small_log), "--sample", "120",
                     "--n-jobs", "2", "--runs-dir", str(runs),
                     "--trace-out", str(trace_path)]) == 0
        capsys.readouterr()
        roots = [json.loads(line) for line
                 in trace_path.read_text().splitlines()]
        matrix_roots = [r for r in roots
                        if "matrix" in r["name"]]
        assert len(matrix_roots) == 1, "one stitched tree expected"
        root = matrix_roots[0]

        def collect(node, out):
            out.append(node)
            for child in node.get("children", ()):
                collect(child, out)

        nodes = []
        collect(root, nodes)
        worker_spans = [n for n in nodes
                        if (n.get("attrs") or {}).get("pid")]
        assert worker_spans, "worker-side spans must be stitched in"
        assert {n.get("trace_id") for n in worker_spans} \
            == {root["trace_id"]}

    def test_no_run_record_opts_out(self, small_log, tmp_path,
                                    capsys):
        runs = tmp_path / "runs"
        assert main(["process", str(small_log), "--no-cluster",
                     "--runs-dir", str(runs),
                     "--no-run-record"]) == 0
        capsys.readouterr()
        assert not runs.exists()

    def test_crashed_run_leaves_error_record(self, tmp_path):
        runs = tmp_path / "runs"
        with pytest.raises(FileNotFoundError):
            main(["process", str(tmp_path / "missing.jsonl"),
                  "--runs-dir", str(runs)])
        record = _run_record(runs)
        assert record["status"] == "error"
        assert "FileNotFoundError" in record["error"]


class TestRunsCli:
    @pytest.fixture()
    def two_runs(self, small_log, tmp_path, capsys):
        runs = tmp_path / "runs"
        assert main(["process", str(small_log), "--sample", "100",
                     "--runs-dir", str(runs)]) == 0
        assert main(["process", str(small_log), "--sample", "120",
                     "--runs-dir", str(runs)]) == 0
        capsys.readouterr()
        return runs

    def test_list_show_diff(self, two_runs, capsys):
        assert main(["runs", "list",
                     "--runs-dir", str(two_runs)]) == 0
        listing = capsys.readouterr().out
        assert listing.count("process") == 2

        assert main(["runs", "show", "latest",
                     "--runs-dir", str(two_runs)]) == 0
        shown = capsys.readouterr().out
        assert "sample=120" in shown
        assert "stage waterfall:" in shown

        assert main(["runs", "diff", "prev", "latest",
                     "--runs-dir", str(two_runs)]) == 0
        diffed = capsys.readouterr().out
        assert "sample: 100 -> 120" in diffed

    def test_show_json_round_trips(self, two_runs, capsys):
        assert main(["runs", "show", "latest", "--json",
                     "--runs-dir", str(two_runs)]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["config"]["sample"] == 120

    def test_unknown_run_exits_2(self, two_runs, capsys):
        assert main(["runs", "show", "zzz",
                     "--runs-dir", str(two_runs)]) == 2
        assert "no run record" in capsys.readouterr().err


class TestProfiling:
    def test_profile_embeds_hotspots_and_folded(self, small_log,
                                                tmp_path, capsys):
        runs = tmp_path / "runs"
        assert main(["process", str(small_log), "--sample", "100",
                     "--profile", "--runs-dir", str(runs)]) == 0
        capsys.readouterr()
        record = _run_record(runs)
        sections = {s["name"] for s in record["profile"]}
        assert "extract" in sections
        assert "cluster" in sections
        extract = next(s for s in record["profile"]
                       if s["name"] == "extract")
        assert extract["hotspots"]
        folded = sorted(runs.glob("*.folded"))
        assert len(folded) == 1
        assert folded[0].stem == record["run_id"]
        assert "extract;" in folded[0].read_text()

    def test_unprofiled_record_has_no_profile_key(self, small_log,
                                                  tmp_path, capsys):
        runs = tmp_path / "runs"
        assert main(["process", str(small_log), "--no-cluster",
                     "--runs-dir", str(runs)]) == 0
        capsys.readouterr()
        assert "profile" not in _run_record(runs)


class TestPerfGuard:
    def _bench_dir(self, tmp_path, kernel_seconds=0.1):
        bench = tmp_path / "bench"
        bench.mkdir(exist_ok=True)
        (bench / "BENCH_mini.json").write_text(json.dumps({
            "sizes": [{"n": 100, "kernel_seconds": kernel_seconds,
                       "queries_per_second": 5000.0}],
            "total_seconds": kernel_seconds * 12}))
        return bench

    def test_record_then_clean_check_passes(self, tmp_path, capsys):
        bench = self._bench_dir(tmp_path)
        trajectory = tmp_path / "BENCH_trajectory.json"
        for _ in range(3):
            assert main(["perf", "record", "--bench-dir", str(bench),
                         "--trajectory", str(trajectory),
                         "--label", "baseline"]) == 0
        assert main(["perf", "record", "--bench-dir", str(bench),
                     "--trajectory", str(trajectory),
                     "--label", "candidate"]) == 0
        capsys.readouterr()
        assert main(["perf", "check",
                     "--trajectory", str(trajectory)]) == 0
        assert "RESULT: ok" in capsys.readouterr().out

    def test_injected_2x_regression_exits_nonzero(self, tmp_path,
                                                  capsys):
        bench = self._bench_dir(tmp_path)
        trajectory = tmp_path / "BENCH_trajectory.json"
        for _ in range(3):
            assert main(["perf", "record", "--bench-dir", str(bench),
                         "--trajectory", str(trajectory),
                         "--label", "baseline"]) == 0
        self._bench_dir(tmp_path, kernel_seconds=0.2)  # 2x slower
        assert main(["perf", "record", "--bench-dir", str(bench),
                     "--trajectory", str(trajectory),
                     "--label", "candidate"]) == 0
        capsys.readouterr()
        assert main(["perf", "check",
                     "--trajectory", str(trajectory)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "kernel_seconds" in out

    def test_missing_trajectory_exits_2(self, tmp_path, capsys):
        assert main(["perf", "check", "--trajectory",
                     str(tmp_path / "nope.json")]) == 2
        assert "perf check:" in capsys.readouterr().err

    def test_empty_bench_dir_exits_2(self, tmp_path, capsys):
        assert main(["perf", "record",
                     "--bench-dir", str(tmp_path / "void"),
                     "--trajectory",
                     str(tmp_path / "t.json")]) == 2
        assert "no BENCH_" in capsys.readouterr().err


class TestSubprocessDeath:
    def test_sigint_mid_run_leaves_partial_trace(self, small_log,
                                                 tmp_path):
        # A run killed by an in-band exception (simulated operator
        # abort) still flushes partial span trees and an error record.
        runs = tmp_path / "runs"
        trace_path = tmp_path / "t.jsonl"
        code = (
            "import repro.core.pipeline as pipeline\n"
            "from repro.cli import main\n"
            "original = pipeline.process_log\n"
            "def bomb(*a, **k):\n"
            "    raise KeyboardInterrupt\n"
            "pipeline.process_log = bomb\n"
            "import repro.cli as cli\n"
            "cli.process_log = bomb\n"
            f"main(['process', {str(small_log)!r},"
            f" '--runs-dir', {str(runs)!r},"
            f" '--trace-out', {str(trace_path)!r}])\n")
        result = subprocess.run([sys.executable, "-c", code],
                                capture_output=True, text=True)
        assert result.returncode != 0
        record = _run_record(runs)
        assert record["status"] == "error"
        assert "KeyboardInterrupt" in record["error"]
