"""End-to-end cross-backend label parity.

The kernel and vptree backends claim *bitwise* agreement with the
dense oracle path, so every clustering algorithm must produce
**identical labels** — not merely similar clusterings — whichever
backend computed its distances.  Checked for all four algorithms
(DBSCAN, partitioned DBSCAN, OPTICS, single linkage) across the
dense / sparse / kernel matrix modes and the vptree neighbour backend,
with interning on and off, on two very different populations: the
SkyServer workload generator (the paper's case-study shape) and a
QA-harness random profile (adversarially unstructured schemas and
predicates, the ``repro qa`` generator).
"""

import pytest

np = pytest.importorskip("numpy")

import random

from repro.clustering import (DBSCAN, OPTICS, SingleLinkage,
                              partitioned_dbscan)
from repro.core.extractor import AccessAreaExtractor
from repro.core.pipeline import dedupe_areas, expand_labels, process_log
from repro.distance import QueryDistance
from repro.distance.block_sparse import compute_matrix
from repro.distance.metric_index import VPTreeIndex
from repro.qa import qa_families, random_schema
from repro.schema import StatisticsCatalog, skyserver_schema
from repro.schema.skyserver import CONTENT_BOUNDS
from repro.workload import WorkloadConfig, generate_workload

EPS = 0.12
MIN_PTS = 3

#: (matrix_mode, neighbor_backend) triples under test; dense/matrix is
#: the reference.
BACKENDS = [("dense", "matrix"), ("sparse", "matrix"),
            ("kernel", "matrix"), ("auto", "vptree")]


def _skyserver_population():
    workload = generate_workload(WorkloadConfig(n_queries=400, seed=5))
    schema = skyserver_schema()
    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)
    report = process_log(workload.log.statements_with_users(),
                         AccessAreaExtractor(schema))
    for extracted in report.extracted:
        stats.observe_cnf(extracted.area.cnf)
    areas = [item.area for item in report.extracted]
    rng = random.Random(99)
    if len(areas) > 250:
        areas = rng.sample(areas, 250)
    return areas, stats


def _qa_population():
    rng = random.Random(17)
    schema = random_schema(rng)
    stats = StatisticsCatalog.from_exact_content(schema, {})
    config = WorkloadConfig(
        n_queries=180, seed=23, noise_fraction=0.0, error_fraction=0.0,
        malformed_fraction=0.0, min_family_size=1,
        repeat_user_fraction=0.0)
    workload = generate_workload(config, qa_families(schema))
    report = process_log(workload.log.statements_with_users(),
                         AccessAreaExtractor(schema))
    for extracted in report.extracted:
        stats.observe_cnf(extracted.area.cnf)
    areas = [item.area for item in report.extracted]
    assert areas, "QA profile produced no extractable areas"
    return areas, stats


@pytest.fixture(scope="module", params=["skyserver", "qa"])
def population(request):
    if request.param == "skyserver":
        return _skyserver_population()
    return _qa_population()


def _labels_all_algorithms(areas, stats, mode, backend):
    """Labels (and the full OPTICS result) from every algorithm, with
    distances served by the requested backend."""
    metric = QueryDistance(stats)
    matrix = compute_matrix(areas, metric, mode=mode, eps=EPS,
                            neighbor_backend=backend)
    if backend == "vptree":
        assert isinstance(matrix, VPTreeIndex), \
            "vptree preconditions unexpectedly failed for this population"
    optics = OPTICS(max_eps=EPS, min_pts=MIN_PTS).fit(areas,
                                                      matrix=matrix)
    return {
        "dbscan": DBSCAN(eps=EPS, min_pts=MIN_PTS).fit(
            areas, matrix=matrix).labels,
        "partitioned": partitioned_dbscan(
            areas, metric, EPS, MIN_PTS, matrix=matrix).labels,
        "optics": (optics.ordering, optics.reachability,
                   optics.core_distance),
        "single_linkage": SingleLinkage(
            threshold=EPS, min_size=MIN_PTS).fit(
                areas, matrix=matrix).labels,
    }


class TestCrossBackendParity:
    def test_all_algorithms_all_backends(self, population):
        areas, stats = population
        reference = None
        for mode, backend in BACKENDS:
            got = _labels_all_algorithms(areas, stats, mode, backend)
            if reference is None:
                reference = got
                continue
            for algorithm, labels in got.items():
                assert labels == reference[algorithm], (
                    f"{algorithm} labels diverge on "
                    f"mode={mode} backend={backend}")

    def test_interned_runs_expand_identically(self, population):
        areas, stats = population
        unique, weights, inverse = dedupe_areas(areas)
        metric = QueryDistance(stats)
        want = partitioned_dbscan(areas, metric, EPS, MIN_PTS).labels
        for mode, backend in BACKENDS:
            matrix = compute_matrix(unique, metric, mode=mode, eps=EPS,
                                    neighbor_backend=backend)
            deduped = partitioned_dbscan(unique, metric, EPS, MIN_PTS,
                                         matrix=matrix, weights=weights)
            assert expand_labels(deduped.labels, inverse) == want, (
                f"interned labels diverge on mode={mode} "
                f"backend={backend}")
