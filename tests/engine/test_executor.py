"""The mini SQL executor: selection, joins, grouping, subqueries, errors."""

import pytest

from repro.engine import (Database, DialectError, QueryExecutor,
                          ResultLimitError)
from repro.engine.executor import UnknownRelationError
from repro.schema import Column, ColumnType, Relation, Schema


@pytest.fixture()
def db():
    schema = Schema("test")
    schema.add(Relation("T", (Column("u", ColumnType.INT),
                              Column("v", ColumnType.INT),
                              Column("s", ColumnType.VARCHAR))))
    schema.add(Relation("S", (Column("u", ColumnType.INT),
                              Column("w", ColumnType.INT))))
    database = Database(schema)
    database.insert("T", [
        {"u": i, "v": i * 2, "s": "even" if i % 2 == 0 else "odd"}
        for i in range(10)
    ])
    database.insert("S", [{"u": i, "w": i + 100}
                          for i in range(0, 10, 2)])
    return database


@pytest.fixture()
def ex(db):
    return QueryExecutor(db)


class TestSelection:
    def test_where_filters(self, ex):
        assert len(ex.execute_sql("SELECT * FROM T WHERE u >= 5")) == 5

    def test_between(self, ex):
        assert len(ex.execute_sql(
            "SELECT * FROM T WHERE u BETWEEN 2 AND 4")) == 3

    def test_in_list(self, ex):
        assert len(ex.execute_sql(
            "SELECT * FROM T WHERE u IN (1, 3, 99)")) == 2

    def test_string_predicate(self, ex):
        assert len(ex.execute_sql(
            "SELECT * FROM T WHERE s = 'even'")) == 5

    def test_like(self, ex):
        assert len(ex.execute_sql(
            "SELECT * FROM T WHERE s LIKE 'ev%'")) == 5

    def test_not(self, ex):
        assert len(ex.execute_sql(
            "SELECT * FROM T WHERE NOT (u < 5)")) == 5

    def test_projection_labels(self, ex):
        result = ex.execute_sql("SELECT u AS x FROM T WHERE u = 3")
        assert result.rows == [{"x": 3}]

    def test_star_is_qualified(self, ex):
        result = ex.execute_sql("SELECT * FROM T WHERE u = 0")
        assert "T.u" in result.rows[0]

    def test_arithmetic(self, ex):
        result = ex.execute_sql("SELECT u + v AS total FROM T WHERE u = 3")
        assert result.rows[0]["total"] == 9

    def test_distinct(self, ex):
        result = ex.execute_sql("SELECT DISTINCT s FROM T")
        assert len(result) == 2

    def test_top_with_order(self, ex):
        result = ex.execute_sql("SELECT TOP 3 u FROM T ORDER BY u DESC")
        assert [r["u"] for r in result.rows] == [9, 8, 7]


class TestJoins:
    def test_inner_join(self, ex):
        assert len(ex.execute_sql(
            "SELECT * FROM T JOIN S ON T.u = S.u")) == 5

    def test_comma_join_with_where(self, ex):
        assert len(ex.execute_sql(
            "SELECT * FROM T, S WHERE T.u = S.u")) == 5

    def test_cross_join(self, ex):
        assert len(ex.execute_sql("SELECT * FROM T CROSS JOIN S")) == 50

    def test_left_join_pads(self, ex):
        result = ex.execute_sql(
            "SELECT * FROM T LEFT JOIN S ON T.u = S.u")
        assert len(result) == 10
        unmatched = [r for r in result.rows if r["S.u"] is None]
        assert len(unmatched) == 5

    def test_right_join(self, ex):
        assert len(ex.execute_sql(
            "SELECT * FROM T RIGHT JOIN S ON T.u = S.u")) == 5

    def test_full_outer_join(self, ex):
        result = ex.execute_sql(
            "SELECT * FROM T FULL OUTER JOIN S ON T.u = S.u + 1")
        # 5 matches (u = 1,3,5,7,9), 5 unmatched T, 0 unmatched S... S.u+1
        # gives odd targets; every S row matches some T row.
        matched = [r for r in result.rows
                   if r["T.u"] is not None and r["S.u"] is not None]
        assert len(matched) == 5
        assert len(result) == 10

    def test_natural_join(self, ex):
        # Common column u.
        assert len(ex.execute_sql("SELECT * FROM T NATURAL JOIN S")) == 5

    def test_alias_resolution(self, ex):
        result = ex.execute_sql(
            "SELECT a.u FROM T a JOIN S b ON a.u = b.u WHERE a.u > 4")
        assert sorted(r["a.u"] for r in result.rows) == [6, 8]


class TestAggregates:
    def test_group_by_having(self, ex):
        result = ex.execute_sql(
            "SELECT s, COUNT(*) AS n FROM T GROUP BY s HAVING COUNT(*) > 1")
        assert {r["n"] for r in result.rows} == {5}

    def test_sum_avg_min_max(self, ex):
        result = ex.execute_sql(
            "SELECT SUM(u) AS s, AVG(u) AS a, MIN(u) AS lo, "
            "MAX(u) AS hi FROM T")
        row = result.rows[0]
        assert row == {"s": 45, "a": 4.5, "lo": 0, "hi": 9}

    def test_having_filters_groups(self, ex):
        result = ex.execute_sql(
            "SELECT u, SUM(v) FROM T GROUP BY u HAVING SUM(v) > 10")
        assert len(result) == 4  # u in 6..9 (v = 12, 14, 16, 18)

    def test_count_on_empty(self, ex):
        result = ex.execute_sql(
            "SELECT COUNT(*) AS n FROM T WHERE u > 100")
        assert result.rows[0]["n"] == 0


class TestSubqueries:
    def test_exists_correlated(self, ex):
        result = ex.execute_sql(
            "SELECT * FROM T WHERE u > 3 AND EXISTS "
            "(SELECT * FROM S WHERE S.u = T.u)")
        assert len(result) == 3  # u in {4, 6, 8}

    def test_not_exists(self, ex):
        result = ex.execute_sql(
            "SELECT * FROM T WHERE NOT EXISTS "
            "(SELECT * FROM S WHERE S.u = T.u)")
        assert len(result) == 5  # odd u

    def test_in_subquery(self, ex):
        result = ex.execute_sql(
            "SELECT * FROM T WHERE u IN (SELECT S.u FROM S WHERE w > 103)")
        assert sorted(r["T.u"] for r in result.rows) == [4, 6, 8]

    def test_scalar_subquery(self, ex):
        result = ex.execute_sql(
            "SELECT * FROM T WHERE u = (SELECT MIN(S.u) FROM S)")
        assert len(result) == 1

    def test_any(self, ex):
        result = ex.execute_sql(
            "SELECT * FROM T WHERE u > ANY (SELECT S.u FROM S WHERE w >= 106)")
        assert sorted(r["T.u"] for r in result.rows) == [7, 8, 9]

    def test_all(self, ex):
        result = ex.execute_sql(
            "SELECT * FROM T WHERE u > ALL (SELECT S.u FROM S)")
        assert [r["T.u"] for r in result.rows] == [9]


class TestErrors:
    def test_limit_rejected_in_strict_mode(self, ex):
        with pytest.raises(DialectError):
            ex.execute_sql("SELECT * FROM T LIMIT 5")

    def test_limit_allowed_when_lenient(self, db):
        lenient = QueryExecutor(db, strict_mssql=False)
        assert len(lenient.execute_sql("SELECT * FROM T LIMIT 5")) == 10

    def test_result_cap(self, db):
        capped = QueryExecutor(db, max_result_rows=10)
        with pytest.raises(ResultLimitError):
            capped.execute_sql("SELECT * FROM T, S")

    def test_unknown_relation(self, ex):
        with pytest.raises(UnknownRelationError):
            ex.execute_sql("SELECT * FROM Galaxies")

    def test_null_comparison_filters(self, ex, db):
        db.insert("T", [{"u": None, "v": 1, "s": "x"}])
        assert len(ex.execute_sql("SELECT * FROM T WHERE u >= 0")) == 10
