"""Executor corner cases beyond the main behaviour suite."""

import pytest

from repro.engine import Database, QueryExecutor
from repro.engine.executor import ExecutionError
from repro.schema import Column, ColumnType, Relation, Schema


@pytest.fixture()
def db():
    schema = Schema("edge")
    schema.add(Relation("T", (Column("u", ColumnType.INT),
                              Column("v", ColumnType.REAL),
                              Column("s", ColumnType.VARCHAR))))
    schema.add(Relation("Empty", (Column("x", ColumnType.INT),)))
    database = Database(schema)
    database.insert("T", [
        {"u": 1, "v": 1.5, "s": "a"},
        {"u": 2, "v": None, "s": None},
        {"u": 3, "v": 3.5, "s": "b"},
    ])
    return database


@pytest.fixture()
def ex(db):
    return QueryExecutor(db)


class TestNullSemantics:
    def test_null_never_matches(self, ex):
        assert len(ex.execute_sql("SELECT * FROM T WHERE v > 0")) == 2
        assert len(ex.execute_sql("SELECT * FROM T WHERE v <> 1.5")) == 1

    def test_is_null(self, ex):
        assert len(ex.execute_sql("SELECT * FROM T WHERE v IS NULL")) == 1
        assert len(ex.execute_sql(
            "SELECT * FROM T WHERE s IS NOT NULL")) == 2

    def test_null_in_arithmetic(self, ex):
        result = ex.execute_sql("SELECT v + 1 AS w FROM T WHERE u = 2")
        assert result.rows[0]["w"] is None

    def test_aggregates_skip_nulls(self, ex):
        result = ex.execute_sql(
            "SELECT COUNT(v) AS n, SUM(v) AS s FROM T")
        assert result.rows[0] == {"n": 2, "s": 5.0}

    def test_avg_of_all_null_group(self, ex, db):
        db.insert("T", [{"u": 9, "v": None, "s": None}])
        result = ex.execute_sql(
            "SELECT AVG(v) AS a FROM T WHERE u = 9")
        assert result.rows[0]["a"] is None

    def test_order_by_with_nulls(self, ex):
        result = ex.execute_sql("SELECT u, v FROM T ORDER BY v")
        assert [r["u"] for r in result.rows][0] == 2  # NULL sorts first


class TestEmptyInputs:
    def test_empty_table_scan(self, ex):
        assert len(ex.execute_sql("SELECT * FROM Empty")) == 0

    def test_join_with_empty_table(self, ex):
        assert len(ex.execute_sql(
            "SELECT * FROM T, Empty WHERE T.u = Empty.x")) == 0

    def test_left_join_empty_right(self, ex):
        result = ex.execute_sql(
            "SELECT * FROM T LEFT JOIN Empty ON T.u = Empty.x")
        assert len(result) == 3

    def test_exists_over_empty(self, ex):
        assert len(ex.execute_sql(
            "SELECT * FROM T WHERE EXISTS (SELECT * FROM Empty)")) == 0

    def test_scalar_subquery_empty_is_null(self, ex):
        assert len(ex.execute_sql(
            "SELECT * FROM T WHERE u = (SELECT x FROM Empty)")) == 0

    def test_all_over_empty_is_true(self, ex):
        assert len(ex.execute_sql(
            "SELECT * FROM T WHERE u > ALL (SELECT x FROM Empty)")) == 3

    def test_any_over_empty_is_false(self, ex):
        assert len(ex.execute_sql(
            "SELECT * FROM T WHERE u > ANY (SELECT x FROM Empty)")) == 0


class TestArithmetic:
    def test_division_by_zero_integer(self, ex):
        result = ex.execute_sql("SELECT u / 0 AS q FROM T WHERE u = 1")
        assert result.rows[0]["q"] is None

    def test_modulo(self, ex):
        result = ex.execute_sql("SELECT u % 2 AS m FROM T ORDER BY u")
        assert [r["m"] for r in result.rows] == [1, 0, 1]

    def test_precedence(self, ex):
        result = ex.execute_sql(
            "SELECT 2 + 3 * 4 AS a FROM T WHERE u = 1")
        assert result.rows[0]["a"] == 14


class TestLike:
    def test_case_insensitive(self, ex):
        assert len(ex.execute_sql("SELECT * FROM T WHERE s LIKE 'A'")) == 1

    def test_underscore_wildcard(self, ex, db):
        db.insert("T", [{"u": 7, "v": 0.0, "s": "ab"}])
        assert len(ex.execute_sql(
            "SELECT * FROM T WHERE s LIKE '_b'")) == 1

    def test_not_like(self, ex):
        # NULL s rows never match NOT LIKE either.
        assert len(ex.execute_sql(
            "SELECT * FROM T WHERE NOT (s LIKE 'a%')")) == 2


class TestMisc:
    def test_select_without_from(self, ex):
        result = ex.execute_sql("SELECT 1 AS one")
        assert result.rows == [{"one": 1}]

    def test_unsupported_function(self, ex):
        with pytest.raises(ExecutionError):
            ex.execute_sql("SELECT FLOOR(v) FROM T")

    def test_group_by_string_column(self, ex):
        result = ex.execute_sql(
            "SELECT s, COUNT(*) AS n FROM T GROUP BY s")
        assert len(result) == 3  # 'a', 'b', NULL groups

    def test_correlated_scalar_in_projection(self, ex):
        result = ex.execute_sql(
            "SELECT u, (SELECT MAX(x) FROM Empty) AS m FROM T")
        assert all(r["m"] is None for r in result.rows)
