"""In-memory tables and the database container."""

import pytest

from repro.engine import Database, Table
from repro.schema import Column, ColumnType, Relation, Schema


def _relation():
    return Relation("T", (Column("u", ColumnType.INT),
                          Column("Name", ColumnType.VARCHAR)))


def _schema():
    schema = Schema("test")
    schema.add(_relation())
    return schema


class TestTable:
    def test_insert_normalizes_column_case(self):
        table = Table(_relation())
        table.insert({"U": 1, "name": "x"})
        assert table.rows[0] == {"u": 1, "Name": "x"}

    def test_insert_unknown_column_raises(self):
        table = Table(_relation())
        with pytest.raises(KeyError):
            table.insert({"nope": 1})

    def test_get_value_case_insensitive(self):
        table = Table(_relation())
        table.insert({"u": 1, "Name": "x"})
        assert table.get_value(table.rows[0], "NAME") == "x"

    def test_column_values(self):
        table = Table(_relation())
        table.insert_many([{"u": i} for i in range(3)])
        assert table.column_values("u") == [0, 1, 2]
        assert table.column_values("name") == [None, None, None]

    def test_len_and_iter(self):
        table = Table(_relation())
        table.insert_many([{"u": i} for i in range(5)])
        assert len(table) == 5
        assert sum(1 for _ in table) == 5


class TestDatabase:
    def test_tables_created_from_schema(self):
        db = Database(_schema())
        assert db.has_table("t") and db.has_table("T")
        assert not db.has_table("S")

    def test_missing_table_raises(self):
        with pytest.raises(KeyError):
            Database(_schema()).table("S")

    def test_insert_and_count(self):
        db = Database(_schema())
        db.insert("T", [{"u": 1}, {"u": 2}])
        assert db.row_count("T") == 2

    def test_sample_column_small_table_returns_all(self):
        db = Database(_schema())
        db.insert("T", [{"u": i} for i in range(5)])
        assert sorted(db.sample_column("T", "u", 100)) == [0, 1, 2, 3, 4]

    def test_sample_column_respects_size(self):
        db = Database(_schema())
        db.insert("T", [{"u": i} for i in range(500)])
        sample = db.sample_column("T", "u", 100)
        assert len(sample) == 100

    def test_sample_deterministic_given_seed(self):
        def build():
            db = Database(_schema(), seed=42)
            db.insert("T", [{"u": i} for i in range(500)])
            return db.sample_column("T", "u", 50)

        assert build() == build()
