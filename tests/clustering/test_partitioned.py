"""Table-set partitioned DBSCAN: exactness vs. plain DBSCAN."""

import pytest

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core.area import AccessArea
from repro.clustering import DBSCAN, partitioned_dbscan
from repro.distance import QueryDistance, partition_exactness_bound
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)


def _stats():
    schema = Schema("part")
    for name in ("T", "S"):
        schema.add(Relation(name, (
            Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    return StatisticsCatalog.from_exact_content(schema, {
        ("T", "x"): Interval(0.0, 100.0),
        ("S", "x"): Interval(0.0, 100.0),
    })


def window(relation, lo, hi):
    ref = ColumnRef(relation, "x")
    return AccessArea((relation,), CNF.of([
        Clause.of([ColumnConstantPredicate(ref, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(ref, Op.LE, hi)]),
    ]))


def joined_window(lo, hi):
    """A two-table area {T, S} constrained on T.x."""
    ref = ColumnRef("T", "x")
    return AccessArea(("T", "S"), CNF.of([
        Clause.of([ColumnConstantPredicate(ref, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(ref, Op.LE, hi)]),
    ]))


def _areas():
    areas = []
    for i in range(6):
        areas.append(window("T", 10 + i * 0.1, 20 + i * 0.1))
    for i in range(6):
        areas.append(window("S", 50 + i * 0.1, 60 + i * 0.1))
    for i in range(6):
        areas.append(window("T", 80 + i * 0.1, 90 + i * 0.1))
    areas.append(window("T", 0, 1))  # noise
    return areas


class TestEquivalence:
    def test_matches_plain_dbscan_up_to_renumbering(self):
        areas = _areas()
        distance = QueryDistance(_stats(), resolution=0.0)
        plain = DBSCAN(eps=0.3, min_pts=3).fit(areas, distance)
        partitioned = partitioned_dbscan(areas, distance, eps=0.3,
                                         min_pts=3)
        # Same grouping structure (labels may be renumbered).
        def canonical(labels):
            groups = {}
            for index, label in enumerate(labels):
                groups.setdefault(label, []).append(index)
            noise = tuple(sorted(groups.pop(-1, [])))
            return noise, frozenset(
                tuple(sorted(v)) for v in groups.values())

        assert canonical(plain.labels) == canonical(partitioned.labels)

    def test_three_clusters_one_noise(self):
        areas = _areas()
        distance = QueryDistance(_stats(), resolution=0.0)
        result = partitioned_dbscan(areas, distance, eps=0.3, min_pts=3)
        assert result.n_clusters == 3
        assert result.noise_count == 1

    def test_small_partition_is_noise(self):
        areas = [window("T", 0, 1)] * 10 + [window("S", 0, 1)] * 2
        distance = QueryDistance(_stats(), resolution=0.0)
        result = partitioned_dbscan(areas, distance, eps=0.3, min_pts=5)
        assert result.labels[-1] == -1
        assert result.labels[-2] == -1
        assert result.labels[0] >= 0

    def test_eps_guard_uses_population_bound(self):
        # {T} vs {T, S}: d_tables = 1 − 1/2 = 0.5, so eps = 0.5 already
        # breaks exactness and must be rejected.
        areas = [window("T", 0, 1), joined_window(0, 1)]
        with pytest.raises(ValueError, match="only exact for eps <"):
            partitioned_dbscan(areas, lambda a, b: 0.0, eps=0.5)

    def test_eps_guard_tightens_with_larger_unions(self):
        # {T, S} vs {T, S, R}: d_tables = 1 − 2/3 = 1/3 < 0.5 — the old
        # fixed 0.5 guard silently mis-clustered populations like this.
        a = window("T", 0, 1)
        b = joined_window(0, 1)
        c = AccessArea(("T", "S", "R"), CNF.true())
        with pytest.raises(ValueError, match="only exact"):
            partitioned_dbscan([a, b, c], lambda x, y: 0.0, eps=0.4)
        # Below the true 1/3 bound the same population is fine.
        partitioned_dbscan([a, b, c], lambda x, y: 0.0, eps=0.3,
                           min_pts=1)

    def test_single_partition_has_no_bound(self):
        # One table set → no cross-partition pair → any eps is exact.
        areas = [window("T", i, i + 1) for i in range(4)]
        result = partitioned_dbscan(areas, lambda a, b: 0.0, eps=0.9,
                                    min_pts=2)
        assert result.n_clusters == 1

    def test_fallback_warns_and_matches_plain_dbscan(self):
        areas = _areas()
        distance = QueryDistance(_stats(), resolution=0.0)
        bound = partition_exactness_bound(a.table_set for a in areas)
        eps = bound  # exactly at the bound: no longer exact
        plain = DBSCAN(eps=eps, min_pts=3).fit(areas, distance)
        with pytest.warns(RuntimeWarning, match="falling back"):
            result = partitioned_dbscan(areas, distance, eps=eps,
                                        min_pts=3,
                                        on_inexact="fallback")
        assert result.labels == plain.labels

    def test_on_inexact_validated(self):
        with pytest.raises(ValueError, match="on_inexact"):
            partitioned_dbscan([], lambda a, b: 0.0, eps=0.1,
                               on_inexact="ignore")

    def test_cluster_ids_globally_unique(self):
        areas = _areas()
        distance = QueryDistance(_stats(), resolution=0.0)
        result = partitioned_dbscan(areas, distance, eps=0.3, min_pts=3)
        labels = {l for l in result.labels if l >= 0}
        assert labels == {0, 1, 2}


# -- exactness-boundary property ------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.distance.query_distance import jaccard_distance  # noqa: E402

_TABLES = ("t", "s", "r", "q", "p")

table_sets = st.sets(st.sampled_from(_TABLES), min_size=1,
                     max_size=len(_TABLES)).map(frozenset)
populations = st.lists(table_sets, min_size=2, max_size=24)


def _table_distance(a, b):
    """d = d_tables exactly (unconstrained areas: d_conj = 0)."""
    return jaccard_distance(a.table_set, b.table_set)


@settings(max_examples=60, deadline=None)
@given(populations, st.integers(min_value=1, max_value=3))
def test_boundary_property(table_set_list, min_pts):
    """Below the bound partitioned == plain; at/above it, it refuses.

    Unconstrained areas make the metric collapse to ``d_tables``, so the
    population's exactness bound is itself a realized distance — the
    sharpest possible boundary check.
    """
    areas = [AccessArea(tuple(sorted(ts)), CNF.true())
             for ts in table_set_list]
    bound = partition_exactness_bound(a.table_set for a in areas)
    if bound == float("inf"):
        return  # single partition: nothing to check
    below = bound * (1.0 - 1e-9)

    plain = DBSCAN(eps=below, min_pts=min_pts).fit(areas,
                                                   _table_distance)
    part = partitioned_dbscan(areas, _table_distance, eps=below,
                              min_pts=min_pts)

    def canonical(labels):
        groups = {}
        for index, label in enumerate(labels):
            groups.setdefault(label, []).append(index)
        noise = tuple(sorted(groups.pop(-1, [])))
        return noise, frozenset(tuple(sorted(v))
                                for v in groups.values())

    assert canonical(plain.labels) == canonical(part.labels)
    with pytest.raises(ValueError, match="only exact"):
        partitioned_dbscan(areas, _table_distance, eps=bound,
                           min_pts=min_pts)
