"""Table-set partitioned DBSCAN: exactness vs. plain DBSCAN."""

import pytest

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core.area import AccessArea
from repro.clustering import DBSCAN, partitioned_dbscan
from repro.distance import QueryDistance
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)


def _stats():
    schema = Schema("part")
    for name in ("T", "S"):
        schema.add(Relation(name, (
            Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    return StatisticsCatalog.from_exact_content(schema, {
        ("T", "x"): Interval(0.0, 100.0),
        ("S", "x"): Interval(0.0, 100.0),
    })


def window(relation, lo, hi):
    ref = ColumnRef(relation, "x")
    return AccessArea((relation,), CNF.of([
        Clause.of([ColumnConstantPredicate(ref, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(ref, Op.LE, hi)]),
    ]))


def _areas():
    areas = []
    for i in range(6):
        areas.append(window("T", 10 + i * 0.1, 20 + i * 0.1))
    for i in range(6):
        areas.append(window("S", 50 + i * 0.1, 60 + i * 0.1))
    for i in range(6):
        areas.append(window("T", 80 + i * 0.1, 90 + i * 0.1))
    areas.append(window("T", 0, 1))  # noise
    return areas


class TestEquivalence:
    def test_matches_plain_dbscan_up_to_renumbering(self):
        areas = _areas()
        distance = QueryDistance(_stats(), resolution=0.0)
        plain = DBSCAN(eps=0.3, min_pts=3).fit(areas, distance)
        partitioned = partitioned_dbscan(areas, distance, eps=0.3,
                                         min_pts=3)
        # Same grouping structure (labels may be renumbered).
        def canonical(labels):
            groups = {}
            for index, label in enumerate(labels):
                groups.setdefault(label, []).append(index)
            noise = tuple(sorted(groups.pop(-1, [])))
            return noise, frozenset(
                tuple(sorted(v)) for v in groups.values())

        assert canonical(plain.labels) == canonical(partitioned.labels)

    def test_three_clusters_one_noise(self):
        areas = _areas()
        distance = QueryDistance(_stats(), resolution=0.0)
        result = partitioned_dbscan(areas, distance, eps=0.3, min_pts=3)
        assert result.n_clusters == 3
        assert result.noise_count == 1

    def test_small_partition_is_noise(self):
        areas = [window("T", 0, 1)] * 10 + [window("S", 0, 1)] * 2
        distance = QueryDistance(_stats(), resolution=0.0)
        result = partitioned_dbscan(areas, distance, eps=0.3, min_pts=5)
        assert result.labels[-1] == -1
        assert result.labels[-2] == -1
        assert result.labels[0] >= 0

    def test_eps_guard(self):
        with pytest.raises(ValueError):
            partitioned_dbscan([], lambda a, b: 0.0, eps=0.5)

    def test_cluster_ids_globally_unique(self):
        areas = _areas()
        distance = QueryDistance(_stats(), resolution=0.0)
        result = partitioned_dbscan(areas, distance, eps=0.3, min_pts=3)
        labels = {l for l in result.labels if l >= 0}
        assert labels == {0, 1, 2}
