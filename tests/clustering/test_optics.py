"""OPTICS ordering and DBSCAN extraction."""

import math

from repro.clustering import DBSCAN, OPTICS, extract_dbscan


def euclid(a, b):
    return abs(a - b)


TWO_BLOBS = [0.0, 0.1, 0.2, 0.3, 10.0, 10.1, 10.2, 10.3]


class TestOrdering:
    def test_all_points_ordered_once(self):
        result = OPTICS(max_eps=5.0, min_pts=3).fit(TWO_BLOBS, euclid)
        assert sorted(result.ordering) == list(range(len(TWO_BLOBS)))

    def test_core_distances(self):
        result = OPTICS(max_eps=5.0, min_pts=3).fit(TWO_BLOBS, euclid)
        # Within a blob, the 2nd-nearest neighbour is 0.2 away.
        assert math.isclose(result.core_distance[0], 0.2)

    def test_sparse_points_undefined_core(self):
        points = [0.0, 100.0, 200.0]
        result = OPTICS(max_eps=5.0, min_pts=2).fit(points, euclid)
        assert all(math.isinf(cd) for cd in result.core_distance)

    def test_reachability_plot_shape(self):
        result = OPTICS(max_eps=5.0, min_pts=3).fit(TWO_BLOBS, euclid)
        plot = result.reachability_plot()
        assert len(plot) == len(TWO_BLOBS)
        # The jump between blobs shows as an infinite reachability at the
        # second blob's entry point.
        reachabilities = [r for _, r in plot]
        assert any(math.isinf(r) for r in reachabilities)


class TestExtraction:
    def test_matches_dbscan_grouping(self):
        points = TWO_BLOBS + [50.0]
        optics = OPTICS(max_eps=5.0, min_pts=3).fit(points, euclid)
        extracted = extract_dbscan(optics, eps=0.5)
        direct = DBSCAN(eps=0.5, min_pts=3).fit(points, euclid)

        def canonical(labels):
            groups = {}
            for index, label in enumerate(labels):
                groups.setdefault(label, []).append(index)
            noise = tuple(sorted(groups.pop(-1, [])))
            return noise, frozenset(
                tuple(sorted(v)) for v in groups.values())

        assert canonical(extracted.labels) == canonical(direct.labels)

    def test_multiple_eps_from_one_run(self):
        # Hierarchical blobs: [0, 0.1, 0.2], [1.0, 1.1, 1.2] close pair,
        # [10, 10.1, 10.2] far blob.
        points = [0.0, 0.1, 0.2, 1.0, 1.1, 1.2, 10.0, 10.1, 10.2]
        optics = OPTICS(max_eps=5.0, min_pts=3).fit(points, euclid)
        fine = extract_dbscan(optics, eps=0.3)
        coarse = extract_dbscan(optics, eps=1.5)
        assert fine.n_clusters == 3
        assert coarse.n_clusters == 2

    def test_noise_extraction(self):
        points = [0.0, 0.1, 0.2, 50.0]
        optics = OPTICS(max_eps=100.0, min_pts=3).fit(points, euclid)
        result = extract_dbscan(optics, eps=0.5)
        assert result.labels[3] == -1

    def test_empty_input(self):
        optics = OPTICS(max_eps=1.0, min_pts=2).fit([], euclid)
        assert extract_dbscan(optics, eps=0.5).labels == []


class TestOnAccessAreas:
    def test_access_area_clustering(self):
        from repro.algebra.cnf import CNF, Clause
        from repro.algebra.intervals import Interval
        from repro.algebra.predicates import (ColumnConstantPredicate,
                                              ColumnRef, Op)
        from repro.core.area import AccessArea
        from repro.distance import QueryDistance
        from repro.schema import (Column, ColumnType, Relation, Schema,
                                  StatisticsCatalog)

        schema = Schema("o")
        schema.add(Relation("T", (
            Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
        stats = StatisticsCatalog.from_exact_content(
            schema, {("T", "x"): Interval(0.0, 100.0)})
        ref = ColumnRef("T", "x")

        def window(lo, hi):
            return AccessArea(("T",), CNF.of([
                Clause.of([ColumnConstantPredicate(ref, Op.GE, lo)]),
                Clause.of([ColumnConstantPredicate(ref, Op.LE, hi)]),
            ]))

        areas = ([window(10 + i * 0.1, 20) for i in range(5)]
                 + [window(70 + i * 0.1, 80) for i in range(5)])
        distance = QueryDistance(stats, resolution=0.0)
        optics = OPTICS(max_eps=2.0, min_pts=3).fit(areas, distance)
        result = extract_dbscan(optics, eps=0.2)
        assert result.n_clusters == 2
