"""Density contrast (Section 6.3 refinement)."""

import math

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core.area import AccessArea
from repro.clustering import aggregate_cluster, density_contrast
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)

T_U = ColumnRef("T", "u")


def _stats():
    schema = Schema("dens")
    schema.add(Relation("T", (
        Column("u", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    return StatisticsCatalog.from_exact_content(
        schema, {("T", "u"): Interval(0.0, 100.0)})


def window(lo, hi):
    return AccessArea(("T",), CNF.of([
        Clause.of([ColumnConstantPredicate(T_U, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(T_U, Op.LE, hi)]),
    ]))


class TestContrast:
    def test_dense_cluster_in_sparse_surroundings(self):
        stats = _stats()
        members = [window(40 + i * 0.1, 42 + i * 0.1) for i in range(30)]
        # A thin background elsewhere; one query in the shell.
        background = [window(10, 11), window(80, 81), window(43.5, 44)]
        agg = aggregate_cluster(0, members, stats)
        report = density_contrast(agg, members, members + background,
                                  stats)
        assert report.contrast > 5

    def test_uniform_population_low_contrast(self):
        stats = _stats()
        # Same rate inside and outside: windows every 2 units everywhere.
        population = [window(i * 2.0, i * 2.0 + 1) for i in range(50)]
        members = population[20:25]  # an arbitrary slice of the uniform mix
        agg = aggregate_cluster(0, members, stats)
        report = density_contrast(agg, members, population, stats)
        assert math.isfinite(report.contrast)
        assert report.contrast < 5

    def test_no_shell_queries_gives_infinite_contrast(self):
        stats = _stats()
        members = [window(40, 42)] * 10
        agg = aggregate_cluster(0, members, stats)
        report = density_contrast(agg, members, members, stats)
        assert math.isinf(report.contrast)

    def test_describe(self):
        stats = _stats()
        members = [window(40, 42)] * 5
        agg = aggregate_cluster(7, members, stats)
        report = density_contrast(agg, members, members, stats)
        text = report.describe()
        assert "cluster 7" in text and "denser" in text

    def test_unconstrained_cluster(self):
        stats = _stats()
        members = [AccessArea(("T",), CNF.true())] * 4
        agg = aggregate_cluster(0, members, stats)
        report = density_contrast(agg, members, members, stats)
        assert report.contrast == 1.0
        assert report.columns == ()

    def test_per_column_details(self):
        stats = _stats()
        members = [window(40, 42)] * 10
        shell = [window(42.2, 42.4)]
        agg = aggregate_cluster(0, members, stats)
        report = density_contrast(agg, members, members + shell, stats)
        column = report.columns[0]
        assert column.inside_count == 10
        assert column.shell_count == 1
        assert column.contrast > 1
