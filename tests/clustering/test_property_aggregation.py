"""Property-based invariants of cluster aggregation."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.cnf import CNF, Clause
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core.area import AccessArea
from repro.clustering import aggregate_cluster

REF = ColumnRef("T", "x")


@st.composite
def window_areas(draw):
    lo = draw(st.floats(min_value=0, max_value=99, allow_nan=False))
    hi = draw(st.floats(min_value=lo, max_value=100, allow_nan=False))
    return AccessArea(("T",), CNF.of([
        Clause.of([ColumnConstantPredicate(REF, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(REF, Op.LE, hi)]),
    ]))


members_strategy = st.lists(window_areas(), min_size=1, max_size=12)


@settings(max_examples=80, deadline=None)
@given(members_strategy)
def test_untrimmed_mbr_contains_all_members(members):
    agg = aggregate_cluster(0, members, sigma=math.inf)
    bound = agg.bound_for(REF)
    assert bound is not None
    for area in members:
        hull = area.footprint_hull(REF)
        assert bound.interval.lo <= hull.lo
        assert bound.interval.hi >= hull.hi


@settings(max_examples=80, deadline=None)
@given(members_strategy)
def test_trimmed_mbr_within_untrimmed(members):
    trimmed = aggregate_cluster(0, members, sigma=3.0).bound_for(REF)
    untrimmed = aggregate_cluster(0, members,
                                  sigma=math.inf).bound_for(REF)
    assert untrimmed.interval.lo <= trimmed.interval.lo
    assert trimmed.interval.hi <= untrimmed.interval.hi


@settings(max_examples=80, deadline=None)
@given(members_strategy)
def test_cardinality_and_relations(members):
    agg = aggregate_cluster(0, members)
    assert agg.cardinality == len(members)
    assert agg.relations == ("T",)


@settings(max_examples=50, deadline=None)
@given(members_strategy)
def test_aggregation_order_invariant(members):
    forward = aggregate_cluster(0, members)
    backward = aggregate_cluster(0, list(reversed(members)))
    assert forward.describe() == backward.describe()


@settings(max_examples=50, deadline=None)
@given(members_strategy)
def test_to_sql_parses_and_reextracts(members):
    from repro.core import AccessAreaExtractor
    agg = aggregate_cluster(0, members)
    area = AccessAreaExtractor(None).extract(agg.to_sql()).area
    # No schema on re-extraction: relation names canonicalize lowercase.
    assert area.relations == ("t",)
    bound = agg.bound_for(REF)
    hull = area.footprint_hull(ColumnRef("t", "x"))
    if hull is not None:
        assert math.isclose(hull.lo, bound.interval.lo, rel_tol=1e-9)
        assert math.isclose(hull.hi, bound.interval.hi, rel_tol=1e-9)
