"""Single-linkage agglomerative clustering."""

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core.area import AccessArea
from repro.clustering import SingleLinkage, partitioned_dbscan
from repro.distance import QueryDistance
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)


def _stats():
    schema = Schema("agg2")
    for name in ("T", "S"):
        schema.add(Relation(name, (
            Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    return StatisticsCatalog.from_exact_content(schema, {
        ("T", "x"): Interval(0.0, 100.0),
        ("S", "x"): Interval(0.0, 100.0),
    })


def window(relation, lo, hi):
    ref = ColumnRef(relation, "x")
    return AccessArea((relation,), CNF.of([
        Clause.of([ColumnConstantPredicate(ref, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(ref, Op.LE, hi)]),
    ]))


class TestSingleLinkage:
    def test_two_clusters(self):
        areas = ([window("T", 10 + i * 0.1, 20) for i in range(5)]
                 + [window("T", 70 + i * 0.1, 80) for i in range(5)])
        distance = QueryDistance(_stats(), resolution=0.0)
        result = SingleLinkage(threshold=0.3).fit(areas, distance)
        assert result.n_clusters == 2

    def test_chaining_merges(self):
        # A corridor of windows: single linkage merges the whole chain.
        areas = [window("T", i * 3.0, i * 3.0 + 10) for i in range(12)]
        distance = QueryDistance(_stats(), resolution=0.0)
        result = SingleLinkage(threshold=0.35).fit(areas, distance)
        assert result.n_clusters == 1

    def test_min_size_noise(self):
        areas = [window("T", 10, 20)] * 5 + [window("T", 90, 95)]
        distance = QueryDistance(_stats(), resolution=0.0)
        result = SingleLinkage(threshold=0.2, min_size=2).fit(
            areas, distance)
        assert result.labels[-1] == -1
        assert result.n_clusters == 1

    def test_partitions_by_table_set(self):
        areas = ([window("T", 10, 20)] * 3 + [window("S", 10, 20)] * 3)
        distance = QueryDistance(_stats(), resolution=0.0)
        result = SingleLinkage(threshold=0.2).fit(areas, distance)
        assert result.n_clusters == 2
        assert result.labels[0] != result.labels[3]

    def test_large_threshold_skips_partitioning(self):
        areas = [window("T", 10, 20), window("S", 10, 20)]
        distance = QueryDistance(_stats(), resolution=0.0)
        # Threshold above the table-Jaccard bound: cross-table merges
        # become possible (here d ≈ 1 + 0.99, so 2.0 merges everything).
        result = SingleLinkage(threshold=2.0, min_size=1).fit(
            areas, distance)
        assert result.n_clusters == 1

    def test_agrees_with_dbscan_on_clean_data(self):
        areas = ([window("T", 10 + i * 0.05, 20 + i * 0.05)
                  for i in range(8)]
                 + [window("T", 70 + i * 0.05, 80 + i * 0.05)
                    for i in range(8)])
        distance = QueryDistance(_stats(), resolution=0.0)
        linkage = SingleLinkage(threshold=0.12, min_size=4).fit(
            areas, distance)
        dbscan = partitioned_dbscan(areas, distance, eps=0.12, min_pts=4)
        assert linkage.n_clusters == dbscan.n_clusters == 2
