"""Multiplicity-weighted clustering: weights ≡ expanded duplicates.

The interning layer collapses a repeat-heavy population to unique areas
with integer weights; every algorithm's weighted path must label those
unique areas exactly as its unweighted path labels the expanded
population.  Also pins the neighbourhood self-inclusion convention
across all distance-source implementations (satellite audit).
"""

import numpy as np
import pytest

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.clustering import (DBSCAN, NOISE, OPTICS, SingleLinkage,
                              extract_dbscan, pairwise_matrix,
                              partitioned_dbscan)
from repro.clustering.aggregation import aggregate_cluster
from repro.core.area import AccessArea
from repro.core.pipeline import dedupe_areas, expand_labels
from repro.distance.matrix import DistanceMatrix
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)


def euclid(a, b):
    return abs(a - b)


def expand(points, weights):
    """The duplicated population a weighted input stands for."""
    out = []
    for point, weight in zip(points, weights):
        out.extend([point] * weight)
    return out


class TestWeightedDBSCAN:
    def test_weights_reach_core_condition(self):
        # Mass of the {0.0, 0.1} neighbourhood is 3+1 = 4 >= min_pts.
        points = [0.0, 0.1, 5.0]
        result = DBSCAN(eps=0.5, min_pts=4).fit(
            points, euclid, weights=[3, 1, 1])
        assert result.labels[0] == result.labels[1] == 0
        assert result.labels[2] == NOISE

    def test_unweighted_row_count_unchanged(self):
        points = [0.0, 0.1, 5.0]
        plain = DBSCAN(eps=0.5, min_pts=4).fit(points, euclid)
        ones = DBSCAN(eps=0.5, min_pts=4).fit(points, euclid,
                                              weights=[1, 1, 1])
        assert plain.labels == [NOISE] * 3
        assert ones.labels == plain.labels

    def test_self_weight_alone_makes_core(self):
        result = DBSCAN(eps=0.5, min_pts=5).fit([0.0, 9.0], euclid,
                                                weights=[5, 1])
        assert result.labels == [0, NOISE]

    @pytest.mark.parametrize("weights", [
        [1, 1, 1, 1], [4, 1, 1, 1], [1, 3, 2, 1], [7, 7, 1, 2],
    ])
    def test_matches_expanded_population(self, weights):
        points = [0.0, 0.4, 5.0, 5.3]
        expanded = expand(points, weights)
        unique, uw, inverse = dedupe_areas(expanded)
        assert unique == points and uw == weights
        clf = DBSCAN(eps=0.5, min_pts=3)
        want = DBSCAN(eps=0.5, min_pts=3).fit(expanded, euclid).labels
        got = clf.fit(points, euclid, weights=weights).labels
        assert expand_labels(got, inverse) == want

    def test_weighted_matrix_paths_agree(self):
        points = [0.0, 0.3, 0.9, 7.0]
        weights = [2, 1, 1, 3]
        square = pairwise_matrix(points, euclid)
        condensed = DistanceMatrix.compute(points, euclid)
        by_callable = DBSCAN(eps=0.5, min_pts=3).fit(
            points, euclid, weights=weights)
        by_square = DBSCAN(eps=0.5, min_pts=3).fit(
            points, matrix=square, weights=weights)
        by_condensed = DBSCAN(eps=0.5, min_pts=3).fit(
            points, matrix=condensed, weights=weights)
        assert (by_callable.labels == by_square.labels
                == by_condensed.labels)

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=0.5).fit([0.0, 1.0], euclid, weights=[1])
        with pytest.raises(ValueError):
            DBSCAN(eps=0.5).fit([0.0, 1.0], euclid, weights=[1, 0])
        with pytest.raises(ValueError):
            DBSCAN(eps=0.5).fit([0.0, 1.0], euclid, weights=[1, -2])


class TestWeightedOPTICS:
    def test_core_distance_cumulates_weight(self):
        # From 0.0: self weight 2, then 0.3 (w=1) at d=0.3 reaches 3,
        # then 0.5 (w=2) at d=0.5 reaches 5.
        points = [0.0, 0.3, 0.5]
        weights = [2, 1, 2]
        result = OPTICS(max_eps=2.0, min_pts=4).fit(points, euclid,
                                                    weights=weights)
        assert result.core_distance[0] == 0.5

    def test_self_weight_alone_core_distance_zero(self):
        result = OPTICS(max_eps=2.0, min_pts=3).fit(
            [0.0, 9.0], euclid, weights=[3, 1])
        assert result.core_distance[0] == 0.0

    def test_unit_weights_match_unweighted(self):
        points = [0.0, 0.2, 0.4, 3.0, 3.1, 3.3, 9.0]
        plain = OPTICS(max_eps=1.0, min_pts=3).fit(points, euclid)
        ones = OPTICS(max_eps=1.0, min_pts=3).fit(
            points, euclid, weights=[1] * len(points))
        assert plain.ordering == ones.ordering
        assert plain.core_distance == ones.core_distance
        assert plain.reachability == ones.reachability

    @pytest.mark.parametrize("weights", [
        [3, 1, 1, 1], [1, 2, 2, 5],
    ])
    def test_extraction_matches_expanded_dbscan(self, weights):
        points = [0.0, 0.4, 5.0, 5.3]
        expanded = expand(points, weights)
        want = DBSCAN(eps=0.5, min_pts=3).fit(expanded, euclid).labels
        optics = OPTICS(max_eps=2.0, min_pts=3).fit(points, euclid,
                                                    weights=weights)
        got = extract_dbscan(optics, eps=0.5).labels
        _, _, inverse = dedupe_areas(expanded)
        expanded_got = expand_labels(got, inverse)
        # Same partition of points into clusters/noise.
        assert ([label == NOISE for label in expanded_got]
                == [label == NOISE for label in want])
        mapping = {}
        for got_label, want_label in zip(expanded_got, want):
            if got_label != NOISE:
                assert mapping.setdefault(got_label, want_label) \
                    == want_label

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            OPTICS(max_eps=1.0).fit([0.0, 1.0], euclid, weights=[1])
        with pytest.raises(ValueError):
            OPTICS(max_eps=1.0).fit([0.0, 1.0], euclid, weights=[0, 1])


def window(relation, lo, hi):
    ref = ColumnRef(relation, "x")
    return AccessArea((relation,), CNF.of([
        Clause.of([ColumnConstantPredicate(ref, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(ref, Op.LE, hi)]),
    ]))


def _stats():
    schema = Schema("weighted")
    for name in ("T", "S"):
        schema.add(Relation(name, (
            Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    return StatisticsCatalog.from_exact_content(schema, {
        ("T", "x"): Interval(0.0, 100.0),
        ("S", "x"): Interval(0.0, 100.0),
    })


class TestWeightedSingleLinkage:
    def test_component_weight_meets_min_size(self):
        areas = [window("T", 0, 10), window("T", 0.0, 10.0),
                 window("S", 50, 60)]
        # Areas 0 and 1 are identical (distance 0); area 2 is far.
        from repro.distance import QueryDistance
        distance = QueryDistance(_stats())
        unique, weights, inverse = dedupe_areas(areas)
        assert len(unique) == 2 and weights == [2, 1]
        unweighted = SingleLinkage(threshold=0.05, min_size=2).fit(
            unique, distance)
        assert unweighted.labels == [NOISE, NOISE]
        weighted = SingleLinkage(threshold=0.05, min_size=2).fit(
            unique, distance, weights=weights)
        assert weighted.labels == [0, NOISE]
        want = SingleLinkage(threshold=0.05, min_size=2).fit(
            areas, distance).labels
        assert expand_labels(weighted.labels, inverse) == want

    def test_weights_validated(self):
        areas = [window("T", 0, 10)]
        from repro.distance import QueryDistance
        distance = QueryDistance(_stats())
        with pytest.raises(ValueError):
            SingleLinkage(threshold=0.1).fit(areas, distance,
                                             weights=[1, 2])
        with pytest.raises(ValueError):
            SingleLinkage(threshold=0.1).fit(areas, distance,
                                             weights=[-1.0])


class TestWeightedPartitionedDBSCAN:
    def test_light_partition_skip_uses_weight_sum(self):
        """A one-area partition whose weight carries min_pts must not be
        skipped by the small-partition guard."""
        from repro.distance import QueryDistance
        distance = QueryDistance(_stats())
        areas = [window("T", 0, 10), window("S", 50, 60)]
        weights = [5, 1]
        result = partitioned_dbscan(areas, distance, eps=0.1, min_pts=5,
                                    weights=weights)
        assert result.labels[0] == 0
        assert result.labels[1] == NOISE
        # Unweighted, both partitions are too small and are skipped.
        plain = partitioned_dbscan(areas, distance, eps=0.1, min_pts=5)
        assert plain.labels == [NOISE, NOISE]

    def test_matches_expanded_population(self):
        from repro.distance import QueryDistance
        distance = QueryDistance(_stats())
        pool = [window("T", 0, 10), window("T", 1, 11),
                window("S", 50, 60), window("S", 80, 90)]
        source = [pool[i] for i in
                  [0, 0, 1, 2, 0, 2, 3, 1, 0, 2, 1, 3]]
        unique, weights, inverse = dedupe_areas(source)
        want = partitioned_dbscan(source, distance, eps=0.12,
                                  min_pts=4).labels
        deduped = partitioned_dbscan(unique, distance, eps=0.12,
                                     min_pts=4, weights=weights)
        assert expand_labels(deduped.labels, inverse) == want

    def test_weights_length_validated(self):
        from repro.distance import QueryDistance
        distance = QueryDistance(_stats())
        with pytest.raises(ValueError):
            partitioned_dbscan([window("T", 0, 10)], distance, eps=0.1,
                               weights=[1, 2])


class TestWeightedAggregation:
    def test_cardinality_is_total_weight(self):
        members = [window("T", 0, 10), window("T", 2, 12)]
        agg = aggregate_cluster(0, members, weights=[3, 2])
        assert agg.cardinality == 5

    def test_matches_repeated_members(self):
        # Integer bounds: repeated addition is exact, so the weighted
        # aggregate must equal the expanded-members aggregate bitwise.
        members = [window("T", 0, 10), window("T", 2, 12),
                   window("T", 1000, 2000)]
        weights = [4, 3, 1]
        expanded = expand(members, weights)
        want = aggregate_cluster(7, expanded, sigma=1.0)
        got = aggregate_cluster(7, members, sigma=1.0, weights=weights)
        assert got == want

    def test_majority_relations_weighted(self):
        members = [window("T", 0, 10), window("S", 0, 10)]
        agg = aggregate_cluster(0, members, weights=[1, 5])
        assert agg.relations == ("S",)

    def test_weights_validated(self):
        members = [window("T", 0, 10)]
        with pytest.raises(ValueError):
            aggregate_cluster(0, members, weights=[1, 2])
        with pytest.raises(ValueError):
            aggregate_cluster(0, members, weights=[0])


class TestSelfInclusionConvention:
    """Every distance source agrees: a point is in its own
    eps-neighbourhood, and min_pts counts it."""

    def test_region_query_includes_self_everywhere(self):
        points = [0.0, 0.3, 0.9, 7.0]
        square = pairwise_matrix(points, euclid)
        condensed = DistanceMatrix.compute(points, euclid)
        for point in range(len(points)):
            clf = DBSCAN(eps=0.5, min_pts=2)
            clf._region_queries = 0
            by_callable = clf._region_query(point, points, euclid, None)
            by_square = clf._region_query(point, points, None, square)
            by_condensed = clf._region_query(point, points, None,
                                             condensed)
            assert point in by_callable
            assert sorted(by_callable) == sorted(by_square) \
                == sorted(by_condensed)

    def test_condensed_neighbors_includes_self(self):
        condensed = DistanceMatrix.compute([0.0, 0.3, 9.0], euclid)
        assert 0 in condensed.neighbors(0, 0.5)
        assert condensed.neighbors(2, 0.5) == [2]

    def test_isolated_pair_core_at_min_pts_two(self):
        # min_pts includes self in every implementation: two mutually
        # close points are a cluster at min_pts=2 via all paths.
        points = [0.0, 0.4]
        square = pairwise_matrix(points, euclid)
        condensed = DistanceMatrix.compute(points, euclid)
        for kwargs in ({"distance": euclid}, {"matrix": square},
                       {"matrix": condensed}):
            assert DBSCAN(eps=0.5, min_pts=2).fit(
                points, **kwargs).labels == [0, 0]
        optics = OPTICS(max_eps=1.0, min_pts=2).fit(points, euclid)
        assert extract_dbscan(optics, eps=0.5).labels == [0, 0]

    def test_optics_core_distance_compensates_self_exclusion(self):
        # OPTICS' neighbour list excludes self; at min_pts=k the core
        # distance is the (k-1)-th closest other point — i.e. self
        # counts toward min_pts, matching DBSCAN.
        points = [0.0, 0.2, 0.7]
        optics = OPTICS(max_eps=2.0, min_pts=3).fit(points, euclid)
        assert optics.core_distance[0] == 0.7
        optics2 = OPTICS(max_eps=2.0, min_pts=2).fit(points, euclid)
        assert optics2.core_distance[0] == 0.2

    def test_optics_extraction_matches_dbscan_on_mixed_density(self):
        points = [0.0, 0.2, 0.4, 3.0, 3.1, 3.3, 9.0]
        dbscan = DBSCAN(eps=0.5, min_pts=3).fit(points, euclid)
        optics = OPTICS(max_eps=2.0, min_pts=3).fit(points, euclid)
        extracted = extract_dbscan(optics, eps=0.5)
        assert ([label == NOISE for label in extracted.labels]
                == [label == NOISE for label in dbscan.labels])

    def test_square_matrix_row_vs_condensed_neighbors(self):
        # The audited off-by-one: dense rows carry an explicit 0.0
        # diagonal, condensed storage has no diagonal at all — both
        # must still report the point itself as a neighbour.
        points = [0.0, 0.3, 0.9]
        square = pairwise_matrix(points, euclid)
        condensed = DistanceMatrix.compute(points, euclid)
        for point in range(len(points)):
            dense_row = list(np.flatnonzero(square[point] <= 0.5))
            assert sorted(condensed.neighbors(point, 0.5)) == dense_row
