"""DBSCAN: textbook semantics on synthetic point sets."""

import numpy as np
import pytest

from repro.clustering import DBSCAN, NOISE, pairwise_matrix


def euclid(a, b):
    return abs(a - b)


class TestBasicClustering:
    def test_two_blobs(self):
        points = [0.0, 0.1, 0.2, 0.3, 10.0, 10.1, 10.2, 10.3]
        result = DBSCAN(eps=0.5, min_pts=3).fit(points, euclid)
        assert result.n_clusters == 2
        labels = result.labels
        assert len({labels[0], labels[1], labels[2], labels[3]}) == 1
        assert len({labels[4], labels[5], labels[6], labels[7]}) == 1
        assert labels[0] != labels[4]

    def test_noise_detection(self):
        points = [0.0, 0.1, 0.2, 5.0, 10.0, 10.1, 10.2]
        result = DBSCAN(eps=0.5, min_pts=3).fit(points, euclid)
        assert result.labels[3] == NOISE
        assert result.noise_count == 1

    def test_all_noise_when_sparse(self):
        points = [0.0, 5.0, 10.0, 15.0]
        result = DBSCAN(eps=1.0, min_pts=2).fit(points, euclid)
        assert result.n_clusters == 0
        assert result.noise_count == 4

    def test_min_pts_includes_self(self):
        # Two mutually-close points are core at min_pts=2.
        result = DBSCAN(eps=1.0, min_pts=2).fit([0.0, 0.5], euclid)
        assert result.n_clusters == 1

    def test_single_point(self):
        result = DBSCAN(eps=1.0, min_pts=2).fit([0.0], euclid)
        assert result.labels == [NOISE]

    def test_empty_input(self):
        result = DBSCAN(eps=1.0, min_pts=2).fit([], euclid)
        assert result.labels == []

    def test_chaining(self):
        # Density-reachability chains through a corridor of points even
        # though the endpoints are far apart.
        points = [float(i) * 0.4 for i in range(20)]
        result = DBSCAN(eps=0.5, min_pts=2).fit(points, euclid)
        assert result.n_clusters == 1

    def test_border_point_joins_cluster(self):
        # 2.4 is within eps of a core point but is not core itself.
        points = [0.0, 0.2, 0.4, 0.9]
        result = DBSCAN(eps=0.5, min_pts=3).fit(points, euclid)
        assert result.labels[3] == result.labels[0]


class TestMatrixInput:
    def test_precomputed_matrix_matches_callable(self):
        points = [0.0, 0.1, 0.2, 5.0, 5.1, 5.2, 9.0]
        matrix = pairwise_matrix(points, euclid)
        by_callable = DBSCAN(eps=0.5, min_pts=2).fit(points, euclid)
        by_matrix = DBSCAN(eps=0.5, min_pts=2).fit(points, matrix=matrix)
        assert by_callable.labels == by_matrix.labels

    def test_matrix_shape_validated(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=1.0).fit([1, 2, 3], matrix=np.zeros((2, 2)))

    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=1.0).fit([1, 2], euclid, matrix=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            DBSCAN(eps=1.0).fit([1, 2])


class TestResultAccessors:
    def test_clusters_mapping(self):
        points = [0.0, 0.1, 10.0, 10.1, 50.0]
        result = DBSCAN(eps=0.5, min_pts=2).fit(points, euclid)
        clusters = result.clusters()
        assert sorted(len(v) for v in clusters.values()) == [2, 2]

    def test_members(self):
        points = [0.0, 0.1, 10.0]
        result = DBSCAN(eps=0.5, min_pts=2).fit(points, euclid)
        assert result.members(result.labels[0]) == [0, 1]

    def test_distance_cache_reused(self):
        calls = {"n": 0}

        def counting(a, b):
            calls["n"] += 1
            return abs(a - b)

        points = [0.0, 0.1, 0.2, 0.3]
        DBSCAN(eps=1.0, min_pts=2).fit(points, counting)
        # Each unordered pair computed at most once: C(4,2) = 6.
        assert calls["n"] <= 6


class TestPairwiseMatrix:
    def test_symmetric_zero_diagonal(self):
        matrix = pairwise_matrix([1.0, 4.0, 6.0], euclid)
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)
        assert matrix[0, 1] == 3.0
