"""Incremental DBSCAN parity with batch weighted DBSCAN.

The load-bearing property: after *every* prefix of a shuffled arrival
stream, :meth:`IncrementalDBSCAN.labels` equals a from-scratch
``DBSCAN.fit`` over the same population and weights — exactly,
including cluster numbering, because both derive labels from the same
canonical form (core-graph components ranked by minimal core index;
borders take the minimal neighbouring cluster id).  Checked by
hypothesis with interning on and off and across the dense and
block-sparse neighbourhood backends; the vptree backend (same
neighbour contract, certified-bound tree) is pinned deterministically
to keep the property-test budget sane.

Structural repair is pinned separately: core promotion by weight bump,
cluster merge through a bridging arrival, and — on the :meth:`remove`
path — demotion with a component split re-check.
"""

import math

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.clustering import DBSCAN, NOISE, IncrementalDBSCAN
from repro.core.area import AccessArea
from repro.distance import QueryDistance
from repro.obs.metrics import MetricsRegistry
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)


def _stats():
    schema = Schema("inc")
    for name in ("T", "S"):
        schema.add(Relation(name, (
            Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    return StatisticsCatalog.from_exact_content(schema, {
        ("T", "x"): Interval(0.0, 100.0),
        ("S", "x"): Interval(0.0, 100.0),
    })


def _window(relation, lo, hi):
    ref = ColumnRef(relation, "x")
    return AccessArea((relation,), CNF.of([
        Clause.of([ColumnConstantPredicate(ref, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(ref, Op.LE, hi)]),
    ]))


def _half(relation, op, value):
    ref = ColumnRef(relation, "x")
    return AccessArea((relation,), CNF.of([
        Clause.of([ColumnConstantPredicate(ref, op, value)]),
    ]))


windows = st.builds(
    lambda rel, lo, width: _window("T" if rel else "S", lo, lo + width),
    st.booleans(),
    st.floats(min_value=0.0, max_value=80.0),
    st.floats(min_value=0.5, max_value=20.0))

half_windows = st.builds(
    lambda value, le: _half("T", Op.LE if le else Op.GE, value),
    st.floats(min_value=0.0, max_value=100.0),
    st.booleans())

areas = st.one_of(windows, half_windows)

#: Arrival streams with heavy repetition (SkyServer-style): a small
#: base vocabulary sampled with replacement, order shuffled by the
#: index sequence.
streams = st.builds(
    lambda base, picks: [base[p % len(base)] for p in picks],
    st.lists(areas, min_size=1, max_size=8),
    st.lists(st.integers(min_value=0, max_value=1_000_000),
             min_size=1, max_size=25))


def _batch_labels(metric, population, weights, eps, min_pts):
    result = DBSCAN(eps=eps, min_pts=min_pts).fit(
        population, distance=metric, weights=weights)
    return list(result.labels)


def _assert_prefix_parity(stream, *, eps, min_pts, intern, backend):
    metric = QueryDistance(_stats())
    inc = IncrementalDBSCAN(metric, eps=eps, min_pts=min_pts,
                            intern=intern, backend=backend,
                            registry=MetricsRegistry())
    seen = []
    for arrival in stream:
        inc.add(arrival)
        seen.append(arrival)
        if intern:
            population, weights = inc.areas(), inc.weights()
        else:
            population, weights = list(seen), [1.0] * len(seen)
        want = _batch_labels(metric, population, weights, eps, min_pts)
        assert inc.labels() == want
        for i in range(len(population)):
            assert inc.label_of(i) == want[i]
        expanded = inc.expanded_labels()
        assert len(expanded) == len(seen)
        assert expanded[-1] == inc.labels()[inc.inverse()[-1]]


class TestPrefixParity:
    @settings(max_examples=40, deadline=None)
    @given(stream=streams,
           eps=st.sampled_from([0.05, 0.15, 0.3]),
           min_pts=st.integers(min_value=1, max_value=4),
           intern=st.booleans())
    def test_dense_backend(self, stream, eps, min_pts, intern):
        _assert_prefix_parity(stream, eps=eps, min_pts=min_pts,
                              intern=intern, backend="dense")

    @settings(max_examples=40, deadline=None)
    @given(stream=streams,
           eps=st.sampled_from([0.05, 0.15, 0.3]),
           min_pts=st.integers(min_value=1, max_value=4),
           intern=st.booleans())
    def test_sparse_backend(self, stream, eps, min_pts, intern):
        _assert_prefix_parity(stream, eps=eps, min_pts=min_pts,
                              intern=intern, backend="sparse")

    def test_vptree_backend(self):
        base = ([_window("T", lo, lo + 4.0) for lo in
                 (0.0, 1.0, 2.0, 40.0, 41.0, 80.0)]
                + [_half("T", Op.LE, 30.0), _half("S", Op.GE, 10.0)])
        stream = [base[(7 * k) % len(base)] for k in range(40)]
        for intern in (True, False):
            _assert_prefix_parity(stream, eps=0.15, min_pts=3,
                                  intern=intern, backend="vptree")


class TestStructuralRepair:
    def _clusterer(self, eps=0.1, min_pts=3, **kwargs):
        return IncrementalDBSCAN(QueryDistance(_stats()), eps=eps,
                                 min_pts=min_pts,
                                 registry=MetricsRegistry(), **kwargs)

    def test_weight_bump_promotes_core(self):
        inc = self._clusterer(min_pts=3)
        update = inc.add(_window("T", 10, 20))
        assert update.label == NOISE and update.new_point
        inc.add(_window("T", 10, 20))
        update = inc.add(_window("T", 10, 20))
        assert update.interned_hit and not update.new_point
        assert update.promotions == 1 and update.new_clusters == 1
        assert update.label == 0
        assert inc.n_unique == 1 and inc.n_clusters == 1

    def test_bridging_arrival_merges_clusters(self):
        # d(left, bridge) ≈ 0.163, d(bridge, right) ≈ 0.142, but
        # d(left, right) ≈ 0.277: at eps=0.2 the ends only connect
        # through the bridge.
        inc = self._clusterer(eps=0.2, min_pts=2)
        left, right = _window("T", 10, 20), _window("T", 24, 34)
        inc.add(left, count=2)
        inc.add(right, count=2)
        assert inc.n_clusters == 2
        # A window overlapping both ends up within eps of each side.
        update = inc.add(_window("T", 17, 27), count=2)
        assert update.merges >= 1
        assert update.structure_changed
        assert inc.n_clusters == 1
        assert len(set(inc.labels())) == 1

    def test_remove_demotes_and_splits(self):
        # A five-window chain A1–A2–B–C1–C2 at eps=0.215 (B–C2 is
        # 0.221, A1–B 0.270, so only consecutive windows are
        # neighbours).  Weights make every point core (min_pts=6) but
        # leave the bridge B one retraction away from demotion while
        # the flanks keep their heavy outer anchors.
        eps, min_pts = 0.215, 6
        inc = self._clusterer(eps=eps, min_pts=min_pts)
        chain = [(_window("T", 0, 10), 4), (_window("T", 2, 12), 2),
                 (_window("T", 9, 19), 2), (_window("T", 16, 26), 2),
                 (_window("T", 19, 29), 4)]
        for area, count in chain:
            inc.add(area, count=count)
        assert all(inc._core) and inc.n_clusters == 1
        bridge = chain[2][0]
        update = inc.remove(bridge, count=1)
        assert update.demotions == 1 and update.splits == 1
        assert inc.n_clusters == 2
        want = _batch_labels(QueryDistance(_stats()), inc.areas(),
                             inc.weights(), eps, min_pts)
        assert inc.labels() == want

    def test_remove_requires_intern_and_surplus_weight(self):
        area = _window("T", 10, 20)
        inc = self._clusterer(intern=False)
        inc.add(area)
        with pytest.raises(ValueError, match="intern"):
            inc.remove(area)
        inc = self._clusterer()
        inc.add(area)
        with pytest.raises(KeyError):
            inc.remove(_window("T", 50, 60))
        with pytest.raises(ValueError, match="full deletion"):
            inc.remove(area)

    def test_randomized_remove_parity(self):
        rng = np.random.default_rng(5)
        metric = QueryDistance(_stats())
        base = [_window("T", float(lo), float(lo) + 6.0)
                for lo in (0, 2, 4, 30, 32, 70)]
        inc = IncrementalDBSCAN(metric, eps=0.12, min_pts=3,
                                backend="dense",
                                registry=MetricsRegistry())
        counts: dict = {}
        for pick in rng.integers(0, len(base), size=40):
            area = base[int(pick)]
            inc.add(area)
            counts[area] = counts.get(area, 0) + 1
        for _ in range(12):
            removable = [a for a, c in counts.items() if c > 1]
            if not removable:
                break
            area = removable[int(rng.integers(len(removable)))]
            inc.remove(area)
            counts[area] -= 1
            want = _batch_labels(metric, inc.areas(), inc.weights(),
                                 0.12, 3)
            assert inc.labels() == want


class TestExactnessRefusal:
    def test_new_partition_below_eps_is_refused_pre_mutation(self):
        # d_tables({T}, {T,S}) = 0.5, so eps=0.6 cannot admit the
        # two-table area without breaking partition-local neighbours.
        both = AccessArea(("T", "S"), CNF.of([Clause.of([
            ColumnConstantPredicate(ColumnRef("T", "x"), Op.GE, 1.0)])]))
        for backend in ("sparse", "vptree"):
            inc = IncrementalDBSCAN(QueryDistance(_stats()), eps=0.6,
                                    min_pts=2, backend=backend,
                                    registry=MetricsRegistry())
            inc.add(_window("T", 0, 10))
            with pytest.raises(ValueError, match="bound"):
                inc.add(both)
            # The refusal must leave the clusterer fully usable.
            assert inc.n_unique == 1
            update = inc.add(_window("T", 0, 10))
            assert update.promotions == 1
            assert inc.labels() == [0]

    def test_dense_backend_has_no_exactness_precondition(self):
        both = AccessArea(("T", "S"), CNF.of([Clause.of([
            ColumnConstantPredicate(ColumnRef("T", "x"), Op.GE, 1.0)])]))
        inc = IncrementalDBSCAN(QueryDistance(_stats()), eps=0.6,
                                min_pts=1, backend="dense",
                                registry=MetricsRegistry())
        inc.add(_window("T", 0, 10))
        update = inc.add(both)
        assert update.new_point


class TestTelemetryAndValidation:
    def test_metrics_flow_through_registry(self):
        registry = MetricsRegistry()
        inc = IncrementalDBSCAN(QueryDistance(_stats()), eps=0.1,
                                min_pts=2, registry=registry)
        area = _window("T", 10, 20)
        inc.add(area)
        inc.add(area)
        def value(name):
            return registry.counter(name).value
        assert value("repro_incremental_arrivals_total") == 2
        assert value("repro_incremental_inserts_total") == 1
        assert value("repro_incremental_hits_total") == 1
        assert value("repro_incremental_promotions_total") == 1
        assert registry.gauge("repro_incremental_population").value == 1
        assert registry.gauge("repro_incremental_clusters").value == 1
        hist = registry.histogram("repro_incremental_update_seconds")
        assert hist.count == 2

    def test_parameter_validation(self):
        metric = QueryDistance(_stats())
        with pytest.raises(ValueError, match="backend"):
            IncrementalDBSCAN(metric, eps=0.1, backend="ball-tree")
        with pytest.raises(ValueError, match="eps"):
            IncrementalDBSCAN(metric, eps=-0.1)
        with pytest.raises(ValueError, match="min_pts"):
            IncrementalDBSCAN(metric, eps=0.1, min_pts=0)
        inc = IncrementalDBSCAN(metric, eps=0.1,
                                registry=MetricsRegistry())
        with pytest.raises(ValueError, match="count"):
            inc.add(_window("T", 0, 10), count=0)

    def test_summary_mentions_population(self):
        inc = IncrementalDBSCAN(QueryDistance(_stats()), eps=0.1,
                                min_pts=1, registry=MetricsRegistry())
        inc.add(_window("T", 10, 20), count=3)
        text = inc.summary()
        assert "1 unique" in text and "3 arrivals" in text
