"""Cluster aggregation: MBRs, 3σ trimming, categorical/join constraints."""

import math

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnColumnPredicate,
                                      ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core.area import AccessArea
from repro.clustering import aggregate_all, aggregate_cluster
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)

T_U = ColumnRef("T", "u")
T_S = ColumnRef("T", "s")


def window(lo, hi):
    return AccessArea(("T",), CNF.of([
        Clause.of([ColumnConstantPredicate(T_U, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(T_U, Op.LE, hi)]),
    ]))


def _stats():
    schema = Schema("agg")
    schema.add(Relation("T", (
        Column("u", ColumnType.FLOAT, Interval(0.0, 100.0)),
        Column("s", ColumnType.VARCHAR, categories=("a", "b")),
    )))
    return StatisticsCatalog.from_exact_content(
        schema, {("T", "u"): Interval(0.0, 100.0)})


class TestMBR:
    def test_mbr_of_windows(self):
        members = [window(1, 9), window(2, 8), window(1.5, 9.5)]
        agg = aggregate_cluster(0, members)
        bound = agg.bound_for(T_U)
        assert bound.interval == Interval(1, 9.5)
        assert agg.cardinality == 3

    def test_majority_relations(self):
        members = [window(1, 9), window(2, 8),
                   AccessArea(("S",), CNF.true())]
        agg = aggregate_cluster(0, members)
        assert agg.relations == ("T",)

    def test_point_lookups_aggregate_to_range(self):
        members = [
            AccessArea(("T",), CNF.of([Clause.of([
                ColumnConstantPredicate(T_U, Op.EQ, value)])]))
            for value in [5, 7, 6, 5.5, 6.5]
        ]
        agg = aggregate_cluster(0, members)
        assert agg.bound_for(T_U).interval == Interval(5, 7)


class TestSigmaTrimming:
    def test_outlier_bound_trimmed(self):
        members = [window(10, 20) for _ in range(30)] + [window(10, 2000)]
        trimmed = aggregate_cluster(0, members, sigma=3.0)
        assert trimmed.bound_for(T_U).interval.hi == 20

    def test_trimming_disabled_with_inf_sigma(self):
        members = [window(10, 20) for _ in range(30)] + [window(10, 2000)]
        untrimmed = aggregate_cluster(0, members, sigma=math.inf)
        assert untrimmed.bound_for(T_U).interval.hi == 2000

    def test_uniform_bounds_survive(self):
        members = [window(10, 20)] * 10
        agg = aggregate_cluster(0, members, sigma=3.0)
        assert agg.bound_for(T_U).interval == Interval(10, 20)


class TestColumnSupport:
    def test_rare_column_dropped(self):
        extra = AccessArea(("T",), CNF.of([
            Clause.of([ColumnConstantPredicate(T_U, Op.GE, 1)]),
            Clause.of([ColumnConstantPredicate(
                ColumnRef("T", "v"), Op.LE, 5)]),
        ]))
        members = [window(1, 9)] * 9 + [extra]
        agg = aggregate_cluster(0, members, column_support=0.5)
        assert agg.bound_for(ColumnRef("T", "v")) is None
        assert agg.bound_for(T_U) is not None


class TestOneSidedBounds:
    def test_lower_bound_only(self):
        members = [
            AccessArea(("T",), CNF.of([Clause.of([
                ColumnConstantPredicate(T_U, Op.GT, value)])]))
            for value in [50, 52, 51]
        ]
        agg = aggregate_cluster(0, members, stats=_stats())
        bound = agg.bound_for(T_U)
        assert bound.lower_bounded and not bound.upper_bounded
        # The open side closes at access(a).
        assert bound.interval.hi == 100.0
        assert ">=" in bound.describe()


class TestCategoricalAndJoins:
    def test_categorical_values_unioned(self):
        def cat(value):
            return AccessArea(("T",), CNF.of([Clause.of([
                ColumnConstantPredicate(T_S, Op.EQ, value)])]))

        agg = aggregate_cluster(0, [cat("a"), cat("a"), cat("b")])
        assert agg.categorical[0].values == frozenset({"a", "b"})

    def test_join_predicate_kept_when_common(self):
        join = ColumnColumnPredicate(T_U, Op.EQ, ColumnRef("S", "u"))
        members = [
            AccessArea(("S", "T"), CNF.of([Clause.of([join])]))
            for _ in range(4)
        ]
        agg = aggregate_cluster(0, members)
        assert agg.joins == (join,)

    def test_rare_join_dropped(self):
        join = ColumnColumnPredicate(T_U, Op.EQ, ColumnRef("S", "u"))
        with_join = AccessArea(("S", "T"), CNF.of([Clause.of([join])]))
        members = [window(1, 9)] * 9 + [with_join]
        agg = aggregate_cluster(0, members)
        assert agg.joins == ()


class TestDescribe:
    def test_description_format(self):
        agg = aggregate_cluster(0, [window(10, 20)] * 3)
        assert agg.describe() == "10 <= T.u <= 20"

    def test_unconstrained_cluster(self):
        agg = aggregate_cluster(0, [AccessArea(("T",), CNF.true())] * 3)
        assert agg.describe() == "all of T"


class TestToSql:
    def test_window_to_between(self):
        agg = aggregate_cluster(0, [window(10, 20)] * 3)
        assert agg.to_sql() == \
            "SELECT * FROM T WHERE T.u BETWEEN 10 AND 20"

    def test_unconstrained(self):
        agg = aggregate_cluster(0, [AccessArea(("T",), CNF.true())] * 3)
        assert agg.to_sql() == "SELECT * FROM T"

    def test_categorical_in_list(self):
        def cat(value):
            return AccessArea(("T",), CNF.of([Clause.of([
                ColumnConstantPredicate(T_S, Op.EQ, value)])]))

        agg = aggregate_cluster(0, [cat("a"), cat("b"), cat("a")])
        assert "T.s IN ('a', 'b')" in agg.to_sql()

    def test_join_predicate_rendered(self):
        join = ColumnColumnPredicate(T_U, Op.EQ, ColumnRef("S", "u"))
        members = [AccessArea(("S", "T"), CNF.of([Clause.of([join])]))] * 3
        agg = aggregate_cluster(0, members)
        sql = agg.to_sql()
        assert "FROM S, T" in sql and "S.u = T.u" in sql

    def test_one_sided_bound(self):
        members = [
            AccessArea(("T",), CNF.of([Clause.of([
                ColumnConstantPredicate(T_U, Op.GT, 50)])]))
            for _ in range(3)
        ]
        agg = aggregate_cluster(0, members)  # no stats: open side stays
        assert "T.u >= 50" in agg.to_sql()

    def test_generated_sql_reparses_and_extracts(self):
        from repro.core import AccessAreaExtractor
        agg = aggregate_cluster(0, [window(10, 20)] * 3)
        area = AccessAreaExtractor(None).extract(agg.to_sql()).area
        # No schema: relation names canonicalize to lowercase.
        assert str(area.cnf) == "t.u <= 20 AND t.u >= 10"


class TestAggregateAll:
    def test_sorted_by_cardinality(self):
        clusters = {
            0: [window(1, 2)] * 2,
            1: [window(3, 4)] * 5,
        }
        aggs = aggregate_all(clusters)
        assert [a.cluster_id for a in aggs] == [1, 0]


class TestTrimRobustness:
    """Regression battery for the degenerate cases of ``_trim``: no
    input may ever erase a bound or raise."""

    def _trim(self, values, sigma=3.0):
        from repro.clustering.aggregation import _trim
        return _trim(list(values), sigma)

    def test_empty_passthrough(self):
        assert self._trim([]) == []

    def test_under_three_values_passthrough(self):
        assert self._trim([1.0]) == [1.0]
        assert self._trim([1.0, 1e12]) == [1.0, 1e12]

    def test_identical_values_zero_std(self):
        values = [5.0] * 10
        assert self._trim(values) == values

    def test_inf_sigma_disables(self):
        values = [1.0, 2.0, 1e12]
        assert self._trim(values, math.inf) == values

    def test_nan_value_passthrough(self):
        # A NaN poisons mean/std; trimming must bail out, not drop all.
        values = [1.0, 2.0, math.nan]
        assert self._trim(values) == values

    def test_overflowing_values_passthrough(self):
        # Squaring 1e200 overflows the variance accumulator to inf.
        values = [1e200, -1e200, 0.0]
        assert self._trim(values) == values

    def test_everything_outlier_falls_back(self):
        # sigma so tight nothing survives: return the original list,
        # never an empty bound.
        values = [0.0, 1.0, 10.0, 11.0]
        trimmed = self._trim(values, sigma=1e-9)
        assert trimmed == values

    def test_normal_case_still_trims(self):
        values = [10.0] * 30 + [2000.0]
        assert 2000.0 not in self._trim(values)

    def test_aggregate_with_nan_bound_does_not_raise(self):
        members = [window(10, 20), window(10, 21),
                   window(10, math.nan)]
        agg = aggregate_cluster(0, members, sigma=3.0)
        assert agg.cardinality == 3

    def test_aggregate_constant_cluster_keeps_bound(self):
        members = [window(10, 20)] * 5
        agg = aggregate_cluster(0, members, sigma=1e-12)
        assert agg.bound_for(T_U).interval == Interval(10, 20)
