"""Area and object coverage metrics (Table 1 columns 3-4)."""

import pytest

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core.area import AccessArea
from repro.clustering import (aggregate_cluster, area_coverage,
                              coverage, object_coverage)
from repro.engine import Database
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)

T_U = ColumnRef("T", "u")


@pytest.fixture()
def setup():
    schema = Schema("cov")
    schema.add(Relation("T", (
        Column("u", ColumnType.FLOAT, Interval(-1000.0, 1000.0)),
        Column("s", ColumnType.VARCHAR, categories=("a", "b")),
    )))
    stats = StatisticsCatalog.from_exact_content(
        schema, {("T", "u"): Interval(0.0, 100.0)})
    db = Database(schema)
    db.insert("T", [{"u": float(i), "s": "a" if i % 2 == 0 else "b"}
                    for i in range(101)])  # u = 0..100 uniform
    return stats, db


def agg_window(lo, hi):
    area = AccessArea(("T",), CNF.of([
        Clause.of([ColumnConstantPredicate(T_U, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(T_U, Op.LE, hi)]),
    ]))
    return aggregate_cluster(0, [area] * 3)


class TestAreaCoverage:
    def test_quarter_window(self, setup):
        stats, _ = setup
        assert area_coverage(agg_window(0, 25), stats) == \
            pytest.approx(0.25)

    def test_window_outside_content_is_zero(self, setup):
        stats, _ = setup
        # Content MBR is [0, 100]; the window is in empty space.
        assert area_coverage(agg_window(200, 300), stats) == 0.0

    def test_window_partially_outside(self, setup):
        stats, _ = setup
        # [50, 150] overlaps [0, 100] over [50, 100]: half of content.
        assert area_coverage(agg_window(50, 150), stats) == \
            pytest.approx(0.5)

    def test_unconstrained_is_full(self, setup):
        stats, _ = setup
        agg = aggregate_cluster(0, [AccessArea(("T",), CNF.true())] * 3)
        assert area_coverage(agg, stats) == 1.0


class TestObjectCoverage:
    def test_fraction_of_rows(self, setup):
        _, db = setup
        assert object_coverage(agg_window(0, 25), db) == \
            pytest.approx(26 / 101)

    def test_empty_area_zero_objects(self, setup):
        _, db = setup
        assert object_coverage(agg_window(200, 300), db) == 0.0

    def test_unknown_relation(self, setup):
        _, db = setup
        area = AccessArea(("Mystery",), CNF.true())
        agg = aggregate_cluster(0, [area] * 2)
        assert object_coverage(agg, db) == 0.0

    def test_categorical_filter(self, setup):
        _, db = setup
        area = AccessArea(("T",), CNF.of([Clause.of([
            ColumnConstantPredicate(ColumnRef("T", "s"), Op.EQ, "a")])]))
        agg = aggregate_cluster(0, [area] * 3)
        assert object_coverage(agg, db) == pytest.approx(51 / 101)


class TestCombined:
    def test_coverage_report(self, setup):
        stats, db = setup
        report = coverage(agg_window(0, 50), stats, db)
        assert report.area_coverage == pytest.approx(0.5)
        assert report.object_coverage == pytest.approx(51 / 101)

    def test_empty_area_cluster_shape(self, setup):
        # The Table 1 Clusters 18-24 signature: 0.0 / 0.0.
        stats, db = setup
        report = coverage(agg_window(500, 700), stats, db)
        assert report.area_coverage == 0.0
        assert report.object_coverage == 0.0
