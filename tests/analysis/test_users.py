"""User analytics: bot/mortal split and test-vs-final classification."""

from repro.analysis import (UserQuery, analyze_users,
                            classify_test_queries, format_user_report)
from repro.core import AccessAreaExtractor
from repro.schema import skyserver_schema

EXTRACTOR = AccessAreaExtractor(skyserver_schema())


def uq(user, sql):
    return UserQuery(user, EXTRACTOR.extract(sql).area, sql)


def _bot_queries(n=25):
    return [uq("bot1", "SELECT z FROM Photoz WHERE objid = 12345")
            for _ in range(n)]


def _mortal_queries():
    return [
        uq("alice", "SELECT * FROM Photoz WHERE z < 0.1"),
        uq("alice", "SELECT * FROM SpecObjAll WHERE plate > 300"),
        uq("alice", "SELECT * FROM zooSpec WHERE dec > 30"),
    ]


class TestAnalyzeUsers:
    def test_bot_detected(self):
        analytics = analyze_users(_bot_queries() + _mortal_queries())
        assert analytics.bots == ["bot1"]
        assert "alice" in analytics.mortals

    def test_profiles(self):
        analytics = analyze_users(_bot_queries(25) + _mortal_queries())
        bot = analytics.profile("bot1")
        assert bot.query_count == 25
        assert bot.distinct_signatures == 1
        assert bot.repetition_ratio == 1.0
        alice = analytics.profile("alice")
        assert alice.repetition_ratio == 0.0
        assert len(alice.relations) == 3

    def test_varied_heavy_user_is_mortal(self):
        queries = [
            uq("prof", f"SELECT z FROM Photoz WHERE objid = {i}")
            for i in range(30)
        ]
        analytics = analyze_users(queries)
        # Many queries but all-distinct constants: below the repetition
        # threshold under exact signatures.
        assert analytics.bots == ["prof"] or analytics.mortals == ["prof"]
        profile = analytics.profile("prof")
        assert profile.distinct_signatures == 30
        assert profile.repetition_ratio == 0.0
        assert "prof" in analytics.mortals

    def test_single_query_user(self):
        analytics = analyze_users(_mortal_queries()[:1])
        assert analytics.profile("alice").repetition_ratio == 0.0

    def test_report_format(self):
        analytics = analyze_users(_bot_queries() + _mortal_queries())
        text = format_user_report(analytics)
        assert "bot1" in text and "bots" in text


class TestTestQueryClassification:
    def test_burst_marks_test_queries(self):
        queries = [
            uq("u", f"SELECT * FROM Photoz WHERE z < 0.{i}")
            for i in range(1, 6)
        ] + [uq("u", "SELECT * FROM SpecObjAll WHERE plate > 300")]
        roles = classify_test_queries(queries, burst_threshold=3)
        photoz_roles = roles[:5]
        assert [r.is_final for r in photoz_roles] == \
            [False, False, False, False, True]
        assert all(r.burst_size == 5 for r in photoz_roles)
        assert roles[5].is_final  # short run: no iteration evidence

    def test_short_runs_all_final(self):
        queries = [
            uq("u", "SELECT * FROM Photoz WHERE z < 0.1"),
            uq("u", "SELECT * FROM SpecObjAll WHERE plate > 300"),
        ]
        roles = classify_test_queries(queries)
        assert all(r.is_final for r in roles)

    def test_empty_input(self):
        assert classify_test_queries([]) == []

    def test_multiple_bursts(self):
        queries = (
            [uq("u", f"SELECT * FROM Photoz WHERE z < 0.{i}")
             for i in range(1, 5)]
            + [uq("u", f"SELECT * FROM zooSpec WHERE dec > {i}")
               for i in range(3)]
        )
        roles = classify_test_queries(queries, burst_threshold=3)
        finals = [r for r in roles if r.is_final]
        assert len(finals) == 2
