"""Figure 1 data series and ASCII rendering."""

from repro.analysis import figure1a, figure1b, figure1c
from repro.analysis.figures import FigureData, Rect
from repro.schema import skyserver as sky


class TestFigure1a:
    def test_content_band(self, small_case_study):
        fig = figure1a(small_case_study)
        assert fig.points, "no content points"
        xs = [p[0] for p in fig.points]
        ys = [p[1] for p in fig.points]
        assert min(xs) >= sky.PLATE_LO and max(xs) <= sky.PLATE_HI
        assert min(ys) >= sky.MJD_LO and max(ys) <= sky.MJD_HI

    def test_accessed_subarea_inside_content(self, small_case_study):
        fig = figure1a(small_case_study)
        inside = [r for r in fig.rects if not r.empty]
        assert inside, "no accessed plate/mjd rectangle"
        rect = inside[0]
        assert rect.x_lo >= sky.PLATE_LO and rect.x_hi <= sky.PLATE_HI


class TestFigure1b:
    def test_empty_southern_rect(self, small_case_study):
        fig = figure1b(small_case_study)
        empty = fig.empty_rects
        assert empty, "the Figure 1(b) empty-area rectangle is missing"
        assert any(r.y_hi <= -40 for r in empty)

    def test_content_stops_north_of_empty_area(self, small_case_study):
        fig = figure1b(small_case_study)
        min_content_dec = min(p[1] for p in fig.points)
        assert min_content_dec >= sky.PHOTO_DEC_LO


class TestFigure1c:
    def test_non_contiguous_access(self, small_case_study):
        fig = figure1c(small_case_study)
        # Northern in-content window plus southern empty window.
        assert any(not r.empty for r in fig.rects)
        assert any(r.empty for r in fig.rects)

    def test_southern_rect_below_content(self, small_case_study):
        fig = figure1c(small_case_study)
        south = [r for r in fig.empty_rects if r.y_hi < 0]
        assert south
        assert min(r.y_lo for r in south) <= -95  # the dec=-100 queries


class TestAsciiRendering:
    def test_render_contains_marks(self, small_case_study):
        fig = figure1b(small_case_study)
        text = fig.render_ascii(width=60, height=16)
        assert "." in text
        assert "E" in text or "#" in text
        assert len(text.splitlines()) == 17

    def test_render_empty_figure(self):
        fig = FigureData("empty", "x", "y")
        assert "(no data)" in fig.render_ascii()

    def test_render_rect_only(self):
        fig = FigureData("r", "x", "y",
                         rects=[Rect(0, 1, 0, 1, "c", empty=False)])
        assert "#" in fig.render_ascii(width=20, height=8)
