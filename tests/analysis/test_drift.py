"""Temporal interest drift ("trending research directions")."""

import pytest

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.analysis import TrendKind, mine_drift, split_by_time
from repro.core.area import AccessArea
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)

REF = ColumnRef("T", "x")


def _stats():
    schema = Schema("drift")
    schema.add(Relation("T", (
        Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    return StatisticsCatalog.from_exact_content(
        schema, {("T", "x"): Interval(0.0, 100.0)})


def window_area(lo, hi):
    return AccessArea(("T",), CNF.of([
        Clause.of([ColumnConstantPredicate(REF, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(REF, Op.LE, hi)]),
    ]))


def family(lo, hi, n, jitter=0.05):
    return [window_area(lo + i * jitter, hi + i * jitter)
            for i in range(n)]


class TestMineDrift:
    def test_emerged_interest(self):
        w0 = family(10, 20, 10)
        w1 = family(10, 20, 10) + family(70, 80, 10)
        report = mine_drift([w0, w1], _stats(), eps=0.15, min_pts=4)
        emerged = report.emerged()
        assert len(emerged) == 1
        assert emerged[0].current.aggregated.bounds[0].interval.lo >= 60

    def test_vanished_interest(self):
        w0 = family(10, 20, 10) + family(70, 80, 10)
        w1 = family(10, 20, 10)
        report = mine_drift([w0, w1], _stats(), eps=0.15, min_pts=4)
        assert len(report.vanished()) == 1

    def test_persisted_with_growth(self):
        w0 = family(10, 20, 8)
        w1 = family(10, 20, 16)
        report = mine_drift([w0, w1], _stats(), eps=0.15, min_pts=4)
        persisted = report.persisted()
        assert len(persisted) == 1
        assert persisted[0].growth == pytest.approx(2.0)

    def test_three_windows(self):
        w0 = family(10, 20, 10)
        w1 = family(10, 20, 10) + family(70, 80, 10)
        w2 = family(70, 80, 10)
        report = mine_drift([w0, w1, w2], _stats(), eps=0.15, min_pts=4)
        kinds = [(t.window, t.kind) for t in report.trends]
        assert (1, TrendKind.EMERGED) in kinds
        assert (2, TrendKind.VANISHED) in kinds
        assert (2, TrendKind.PERSISTED) in kinds

    def test_describe(self):
        report = mine_drift([family(10, 20, 8), family(10, 20, 8)],
                            _stats(), eps=0.15, min_pts=4)
        text = report.describe()
        assert "windows analysed : 2" in text
        assert "persisted" in text


class TestSplitByTime:
    def test_equal_windows(self):
        pairs = [(window_area(0, 1), float(t)) for t in range(100)]
        windows = split_by_time(pairs, 4)
        assert [len(w) for w in windows] == [25, 25, 25, 25]

    def test_last_window_inclusive(self):
        pairs = [(window_area(0, 1), 0.0), (window_area(0, 1), 10.0)]
        windows = split_by_time(pairs, 2)
        assert len(windows[0]) == 1 and len(windows[1]) == 1

    def test_empty_input(self):
        assert split_by_time([], 3) == [[], [], []]


class TestEndToEndDrift:
    def test_generated_workload_drift(self):
        """Families confined to eras surface as emerged/vanished trends."""
        from repro.core import AccessAreaExtractor, process_log
        from repro.schema import skyserver_schema
        from repro.workload import WorkloadConfig, generate_workload

        schema = skyserver_schema()
        workload = generate_workload(WorkloadConfig(
            n_queries=1200, seed=5,
            emerging_families=(9,), fading_families=(10,)))
        extractor = AccessAreaExtractor(schema)
        report = process_log(workload.log.statements(), extractor)
        stats = StatisticsCatalog.from_exact_content(
            schema, __import__("repro.schema.skyserver",
                               fromlist=["CONTENT_BOUNDS"]).CONTENT_BOUNDS)
        for extracted in report.extracted:
            stats.observe_cnf(extracted.area.cnf)

        pairs = [
            (item.area, workload.log[item.index].timestamp)
            for item in report.extracted
        ]
        windows = split_by_time(pairs, 2)
        drift = mine_drift(windows, stats, eps=0.12, min_pts=5)

        emerged_rel = {
            r for t in drift.emerged()
            for r in t.current.aggregated.relations
        }
        vanished_rel = {
            r for t in drift.vanished()
            for r in t.previous.aggregated.relations
        }
        # Family 9 = SpecObjAll star/plate/mjd; family 10 = DBObjects.
        assert "SpecObjAll" in emerged_rel
        assert "DBObjects" in vanished_rel
