"""Interest-area recommendation (QueRIE-style)."""

import math

import pytest

from repro.algebra.intervals import Interval
from repro.clustering import partitioned_dbscan
from repro.core import AccessAreaExtractor
from repro.recommend import InterestRecommender
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)


@pytest.fixture(scope="module")
def fitted():
    schema = Schema("rec")
    schema.add(Relation("T", (
        Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    schema.add(Relation("S", (
        Column("y", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    stats = StatisticsCatalog.from_exact_content(schema, {
        ("T", "x"): Interval(0.0, 100.0),
        ("S", "y"): Interval(0.0, 100.0),
    })
    extractor = AccessAreaExtractor(schema)
    areas = []
    # Popular cluster: T.x around [10, 20] (12 queries).
    for i in range(12):
        areas.append(extractor.extract(
            f"SELECT * FROM T WHERE x BETWEEN {10 + i * 0.1:.1f} "
            f"AND {20 + i * 0.1:.1f}").area)
    # Second cluster: T.x around [60, 70] (8 queries).
    for i in range(8):
        areas.append(extractor.extract(
            f"SELECT * FROM T WHERE x BETWEEN {60 + i * 0.1:.1f} "
            f"AND {70 + i * 0.1:.1f}").area)
    # Cluster on another relation (6 queries).
    for i in range(6):
        areas.append(extractor.extract(
            f"SELECT * FROM S WHERE y BETWEEN {40 + i * 0.1:.1f} "
            f"AND {50 + i * 0.1:.1f}").area)
    distance_stats = stats
    clustering = partitioned_dbscan(
        areas,
        __import__("repro.distance", fromlist=["QueryDistance"])
        .QueryDistance(distance_stats, resolution=0.02),
        eps=0.2, min_pts=4)
    recommender = InterestRecommender(stats, extractor=extractor,
                                      resolution=0.02,
                                      min_cluster_size=4)
    recommender.fit(areas, clustering)
    return recommender


class TestFitting:
    def test_clusters_indexed(self, fitted):
        assert fitted.n_clusters == 3

    def test_popular_ordering(self, fitted):
        top = fitted.popular(k=3)
        assert [r.popularity for r in top] == \
            sorted((r.popularity for r in top), reverse=True)
        assert top[0].popularity == 12


class TestRecommendation:
    def test_nearest_cluster_first(self, fitted):
        area = fitted.extractor.extract(
            "SELECT * FROM T WHERE x BETWEEN 12 AND 19").area
        recs = fitted.recommend(area, k=3)
        assert recs
        first = recs[0].aggregated
        assert first.bounds[0].interval.lo < 25  # the [10,20] cluster

    def test_other_relation_ranked_last(self, fitted):
        area = fitted.extractor.extract(
            "SELECT * FROM T WHERE x BETWEEN 12 AND 19").area
        recs = fitted.recommend(area, k=3, max_distance=2.0)
        assert recs[-1].aggregated.relations == ("S",)

    def test_recommend_for_sql(self, fitted):
        recs = fitted.recommend_for_sql(
            "SELECT * FROM T WHERE x BETWEEN 58 AND 72", k=1)
        assert recs
        assert recs[0].aggregated.bounds[0].interval.lo > 50

    def test_max_distance_filters(self, fitted):
        area = fitted.extractor.extract(
            "SELECT * FROM T WHERE x BETWEEN 12 AND 19").area
        recs = fitted.recommend(area, k=5, max_distance=0.3)
        assert all(r.distance <= 0.3 for r in recs)

    def test_suggested_sql_is_executable_syntax(self, fitted):
        from repro.sqlparser import parse
        for rec in fitted.popular(k=3):
            parse(rec.suggested_sql)  # must not raise

    def test_exclude_exact_drops_own_cluster(self, fitted):
        medoid = fitted.popular(k=1)[0].medoid
        recs = fitted.recommend(medoid, k=5, exclude_exact=True)
        assert all(r.distance > 1e-9 for r in recs)

    def test_describe(self, fitted):
        rec = fitted.popular(k=1)[0]
        text = rec.describe()
        assert "queries" in text

    def test_requires_extractor_for_sql(self):
        schema = Schema("empty")
        stats = StatisticsCatalog.from_exact_content(schema, {})
        bare = InterestRecommender(stats)
        with pytest.raises(ValueError):
            bare.recommend_for_sql("SELECT 1")

    def test_popular_distance_is_nan(self, fitted):
        assert math.isnan(fitted.popular(k=1)[0].distance)
