"""Interest-area recommendation (QueRIE-style)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.intervals import Interval
from repro.clustering import partitioned_dbscan
from repro.core import AccessAreaExtractor
from repro.recommend import InterestRecommender
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)


@pytest.fixture(scope="module")
def fitted():
    schema = Schema("rec")
    schema.add(Relation("T", (
        Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    schema.add(Relation("S", (
        Column("y", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    stats = StatisticsCatalog.from_exact_content(schema, {
        ("T", "x"): Interval(0.0, 100.0),
        ("S", "y"): Interval(0.0, 100.0),
    })
    extractor = AccessAreaExtractor(schema)
    areas = []
    # Popular cluster: T.x around [10, 20] (12 queries).
    for i in range(12):
        areas.append(extractor.extract(
            f"SELECT * FROM T WHERE x BETWEEN {10 + i * 0.1:.1f} "
            f"AND {20 + i * 0.1:.1f}").area)
    # Second cluster: T.x around [60, 70] (8 queries).
    for i in range(8):
        areas.append(extractor.extract(
            f"SELECT * FROM T WHERE x BETWEEN {60 + i * 0.1:.1f} "
            f"AND {70 + i * 0.1:.1f}").area)
    # Cluster on another relation (6 queries).
    for i in range(6):
        areas.append(extractor.extract(
            f"SELECT * FROM S WHERE y BETWEEN {40 + i * 0.1:.1f} "
            f"AND {50 + i * 0.1:.1f}").area)
    distance_stats = stats
    clustering = partitioned_dbscan(
        areas,
        __import__("repro.distance", fromlist=["QueryDistance"])
        .QueryDistance(distance_stats, resolution=0.02),
        eps=0.2, min_pts=4)
    recommender = InterestRecommender(stats, extractor=extractor,
                                      resolution=0.02,
                                      min_cluster_size=4)
    recommender.fit(areas, clustering)
    return recommender


class TestFitting:
    def test_clusters_indexed(self, fitted):
        assert fitted.n_clusters == 3

    def test_popular_ordering(self, fitted):
        top = fitted.popular(k=3)
        assert [r.popularity for r in top] == \
            sorted((r.popularity for r in top), reverse=True)
        assert top[0].popularity == 12


class TestRecommendation:
    def test_nearest_cluster_first(self, fitted):
        area = fitted.extractor.extract(
            "SELECT * FROM T WHERE x BETWEEN 12 AND 19").area
        recs = fitted.recommend(area, k=3)
        assert recs
        first = recs[0].aggregated
        assert first.bounds[0].interval.lo < 25  # the [10,20] cluster

    def test_other_relation_ranked_last(self, fitted):
        area = fitted.extractor.extract(
            "SELECT * FROM T WHERE x BETWEEN 12 AND 19").area
        recs = fitted.recommend(area, k=3, max_distance=2.0)
        assert recs[-1].aggregated.relations == ("S",)

    def test_recommend_for_sql(self, fitted):
        recs = fitted.recommend_for_sql(
            "SELECT * FROM T WHERE x BETWEEN 58 AND 72", k=1)
        assert recs
        assert recs[0].aggregated.bounds[0].interval.lo > 50

    def test_max_distance_filters(self, fitted):
        area = fitted.extractor.extract(
            "SELECT * FROM T WHERE x BETWEEN 12 AND 19").area
        recs = fitted.recommend(area, k=5, max_distance=0.3)
        assert all(r.distance <= 0.3 for r in recs)

    def test_suggested_sql_is_executable_syntax(self, fitted):
        from repro.sqlparser import parse
        for rec in fitted.popular(k=3):
            parse(rec.suggested_sql)  # must not raise

    def test_exclude_exact_drops_own_cluster(self, fitted):
        medoid = fitted.popular(k=1)[0].medoid
        recs = fitted.recommend(medoid, k=5, exclude_exact=True)
        assert all(r.distance > 1e-9 for r in recs)

    def test_describe(self, fitted):
        rec = fitted.popular(k=1)[0]
        text = rec.describe()
        assert "queries" in text

    def test_requires_extractor_for_sql(self):
        schema = Schema("empty")
        stats = StatisticsCatalog.from_exact_content(schema, {})
        bare = InterestRecommender(stats)
        with pytest.raises(ValueError):
            bare.recommend_for_sql("SELECT 1")

    def test_popular_distance_is_none(self, fitted):
        # Regression: popular() used to stamp float("nan"), which
        # breaks JSON serialization and every == comparison downstream.
        rec = fitted.popular(k=1)[0]
        assert rec.distance is None

    def test_popular_describe_renders_popular(self, fitted):
        text = fitted.popular(k=1)[0].describe()
        assert text.startswith("(popular, ")
        assert "nan" not in text

    def test_recommend_describe_renders_distance(self, fitted):
        area = fitted.extractor.extract(
            "SELECT * FROM T WHERE x BETWEEN 12 AND 19").area
        text = fitted.recommend(area, k=1)[0].describe()
        assert text.startswith("(d=")


def _interval_area(extractor, relation, column, lo, hi):
    return extractor.extract(
        f"SELECT * FROM {relation} WHERE {column} BETWEEN "
        f"{lo:.2f} AND {hi:.2f}").area


@pytest.fixture(scope="module")
def small_world():
    schema = Schema("recw")
    schema.add(Relation("T", (
        Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    stats = StatisticsCatalog.from_exact_content(schema, {
        ("T", "x"): Interval(0.0, 100.0),
    })
    return schema, stats, AccessAreaExtractor(schema)


class TestWeightedFit:
    """``fit(..., weights=...)`` must treat a weight-w unique area
    exactly like w expanded copies — aggregation support, medoid cost,
    popularity, and min_cluster_size all count multiplicity."""

    def _fit(self, stats, extractor, areas, labels, weights=None,
             min_cluster_size=4):
        from repro.clustering.dbscan import DBSCANResult
        rec = InterestRecommender(stats, extractor=extractor,
                                  resolution=0.02,
                                  min_cluster_size=min_cluster_size)
        rec.fit(areas, DBSCANResult(list(labels)), weights=weights)
        return rec

    def test_popularity_is_weighted_cardinality(self, small_world):
        _, stats, extractor = small_world
        areas = [_interval_area(extractor, "T", "x", 10 + i, 20 + i)
                 for i in range(3)]
        rec = self._fit(stats, extractor, areas, [0, 0, 0],
                        weights=[7, 2, 1], min_cluster_size=4)
        assert rec.popular(k=1)[0].popularity == 10

    def test_min_cluster_size_counts_weights(self, small_world):
        _, stats, extractor = small_world
        areas = [_interval_area(extractor, "T", "x", 10, 20),
                 _interval_area(extractor, "T", "x", 11, 21)]
        starved = self._fit(stats, extractor, areas, [0, 0],
                            weights=[1, 1], min_cluster_size=4)
        assert starved.n_clusters == 0
        fed = self._fit(stats, extractor, areas, [0, 0],
                        weights=[3, 2], min_cluster_size=4)
        assert fed.n_clusters == 1

    def test_weights_length_validated(self, small_world):
        _, stats, extractor = small_world
        areas = [_interval_area(extractor, "T", "x", 10, 20)]
        with pytest.raises(ValueError, match="weights"):
            self._fit(stats, extractor, areas, [0], weights=[1, 2])

    def test_weighted_medoid_follows_multiplicity(self, small_world):
        """A dominant-weight member drags the medoid to itself."""
        _, stats, extractor = small_world
        areas = [_interval_area(extractor, "T", "x", 10, 20),
                 _interval_area(extractor, "T", "x", 30, 40),
                 _interval_area(extractor, "T", "x", 31, 41)]
        heavy_first = self._fit(stats, extractor, areas, [0, 0, 0],
                                weights=[50, 1, 1], min_cluster_size=1)
        assert heavy_first.popular(k=1)[0].medoid == areas[0]
        heavy_last = self._fit(stats, extractor, areas, [0, 0, 0],
                               weights=[1, 50, 50], min_cluster_size=1)
        assert heavy_last.popular(k=1)[0].medoid in (areas[1], areas[2])


class TestInternedExpandedParity:
    """Weighted-unique fits must be *bitwise identical* to fits over
    the expanded population (the intern-pool contract of PR 4, now
    extended through the recommender)."""

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=5),
                  st.integers(min_value=1, max_value=6)),
        min_size=2, max_size=10, unique_by=lambda t: t[0]))
    def test_bitwise_parity(self, spec):
        schema = Schema("parity")
        schema.add(Relation("T", (
            Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
        stats = StatisticsCatalog.from_exact_content(schema, {
            ("T", "x"): Interval(0.0, 100.0),
        })
        extractor = AccessAreaExtractor(schema)
        from repro.clustering.dbscan import DBSCANResult

        unique_areas, counts, unique_labels = [], [], []
        expanded_areas, expanded_labels = [], []
        for slot, count in spec:
            # Two well-separated groups of overlapping ranges.
            lo = 10.0 + slot if slot < 3 else 60.0 + slot
            area = _interval_area(extractor, "T", "x", lo, lo + 10)
            label = 0 if slot < 3 else 1
            unique_areas.append(area)
            counts.append(count)
            unique_labels.append(label)
            expanded_areas.extend([area] * count)
            expanded_labels.extend([label] * count)

        def fit(areas, labels, weights):
            rec = InterestRecommender(stats, extractor=extractor,
                                      resolution=0.02,
                                      min_cluster_size=1)
            rec.fit(areas, DBSCANResult(list(labels)), weights=weights)
            return rec

        weighted = fit(unique_areas, unique_labels, counts)
        expanded = fit(expanded_areas, expanded_labels, None)

        assert weighted.n_clusters == expanded.n_clusters
        w_pop = weighted.popular(k=10)
        e_pop = expanded.popular(k=10)
        assert [r.popularity for r in w_pop] == \
            [r.popularity for r in e_pop]
        assert [r.describe() for r in w_pop] == \
            [r.describe() for r in e_pop]
        assert [r.medoid for r in w_pop] == [r.medoid for r in e_pop]

        probe = _interval_area(extractor, "T", "x", 12.0, 23.0)
        w_recs = weighted.recommend(probe, k=10, exclude_exact=False)
        e_recs = expanded.recommend(probe, k=10, exclude_exact=False)
        assert [r.distance for r in w_recs] == \
            [r.distance for r in e_recs]  # bitwise, not approx
        assert [r.suggested_sql for r in w_recs] == \
            [r.suggested_sql for r in e_recs]
