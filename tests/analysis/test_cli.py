"""The command-line interface."""

import pytest

from repro.cli import main
from repro.workload import WorkloadConfig, generate_workload


class TestExtract:
    def test_extract_prints_area(self, capsys):
        code = main(["extract",
                     "SELECT * FROM Photoz WHERE z BETWEEN 0 AND 0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Photoz" in out
        assert "Photoz.z <= 0.1" in out

    def test_extract_failure_exit_code(self, capsys):
        code = main(["extract", "CREATE TABLE x (a int)"])
        err = capsys.readouterr().err
        assert code == 1
        assert "cannot extract" in err

    def test_no_consolidate_flag(self, capsys):
        code = main(["extract", "--no-consolidate",
                     "SELECT * FROM Photoz WHERE z > 5 AND z < 1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FALSE" not in out  # contradiction left in place


class TestGenerateAndProcess:
    def test_generate_then_process(self, tmp_path, capsys):
        path = tmp_path / "log.jsonl"
        assert main(["generate", "--queries", "300",
                     "--out", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()

        assert main(["process", str(path)]) == 0
        out = capsys.readouterr().out
        assert "areas extracted" in out
        assert "99" in out  # the >99% rate

    def test_stream_command(self, tmp_path, capsys):
        path = tmp_path / "log.jsonl"
        workload = generate_workload(WorkloadConfig(n_queries=200, seed=3))
        workload.log.save(path)
        assert main(["stream", str(path), "--warmup", "50",
                     "--events", "5"]) == 0
        out = capsys.readouterr().out
        assert "statements processed" in out


class TestCaseStudy:
    @pytest.mark.slow
    def test_casestudy_command(self, capsys):
        code = main(["casestudy", "--queries", "800", "--sample", "400",
                     "--rows", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "clusters found" in out
        assert "Cluster" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestRecommend:
    @pytest.fixture(scope="class")
    def log_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("reclog") / "log.jsonl"
        workload = generate_workload(WorkloadConfig(n_queries=300,
                                                    seed=11))
        workload.log.save(path)
        return str(path)

    def test_recommend_for_sql(self, log_path, capsys):
        code = main(["recommend", log_path, "--sql",
                     "SELECT * FROM PhotoObjAll "
                     "WHERE ra BETWEEN 100 AND 120",
                     "-k", "3", "--min-cluster-size", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "recommendation(s)" in out
        assert "(d=" in out
        assert "try: SELECT" in out

    def test_recommend_popular(self, log_path, capsys):
        code = main(["recommend", log_path, "-k", "2",
                     "--min-cluster-size", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "popular interest area(s)" in out
        assert "(popular," in out
        assert "nan" not in out

    def test_recommend_bad_sql_exit_code(self, log_path, capsys):
        code = main(["recommend", log_path, "--sql", "NOT SQL",
                     "--min-cluster-size", "3"])
        err = capsys.readouterr().err
        assert code == 1
        assert "cannot extract" in err


class TestServeParser:
    def test_serve_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["serve", "--backend", "frobnicate"])
