"""CSV export of experiment artifacts."""

import csv

from repro.analysis import (export_extraction_report_csv,
                            export_figure_csv, export_table1_csv,
                            figure1b)


def _read(path):
    with open(path, newline="", encoding="utf-8") as handle:
        return list(csv.reader(handle))


class TestTable1Export:
    def test_one_row_per_cluster(self, small_case_study, tmp_path):
        path = tmp_path / "table1.csv"
        export_table1_csv(small_case_study, path)
        rows = _read(path)
        assert rows[0][0] == "cluster_id"
        assert len(rows) == 1 + len(small_case_study.rows)

    def test_coverage_values_parse(self, small_case_study, tmp_path):
        path = tmp_path / "table1.csv"
        export_table1_csv(small_case_study, path)
        rows = _read(path)
        header = rows[0]
        area_index = header.index("area_coverage")
        for row in rows[1:]:
            value = float(row[area_index])
            assert 0.0 <= value <= 1.0

    def test_density_column_handles_inf(self, small_case_study, tmp_path):
        path = tmp_path / "table1.csv"
        export_table1_csv(small_case_study, path)
        rows = _read(path)
        density_index = rows[0].index("density_contrast")
        for row in rows[1:]:
            assert row[density_index] == "inf" or \
                float(row[density_index]) >= 0


class TestFigureExport:
    def test_points_and_rects(self, small_case_study, tmp_path):
        figure = figure1b(small_case_study)
        points_path = tmp_path / "points.csv"
        rects_path = tmp_path / "rects.csv"
        export_figure_csv(figure, points_path, rects_path)
        points = _read(points_path)
        assert points[0] == ["ra", "dec"]
        assert len(points) == 1 + len(figure.points)
        rects = _read(rects_path)
        assert rects[0][:4] == ["x_lo", "x_hi", "y_lo", "y_hi"]
        assert len(rects) == 1 + len(figure.rects)

    def test_empty_flag_roundtrip(self, small_case_study, tmp_path):
        figure = figure1b(small_case_study)
        rects_path = tmp_path / "rects.csv"
        export_figure_csv(figure, tmp_path / "p.csv", rects_path)
        rects = _read(rects_path)
        empties = [row for row in rects[1:] if row[5] == "1"]
        assert len(empties) == len(figure.empty_rects)


class TestReportExport:
    def test_metrics_present(self, small_case_study, tmp_path):
        path = tmp_path / "report.csv"
        export_extraction_report_csv(small_case_study, path)
        rows = dict((row[0], row[1]) for row in _read(path)[1:])
        assert int(rows["total"]) == small_case_study.report.total
        assert float(rows["extraction_rate"]) > 0.98
        assert "parse_mean_s" in rows
