"""SDSS-Log-Viewer-style query categorization."""

import pytest

from repro.analysis import (IntentKind, SkyAreaKind, categorize_sql)
from repro.core import AccessAreaExtractor
from repro.schema import skyserver_schema


@pytest.fixture(scope="module")
def extractor():
    return AccessAreaExtractor(skyserver_schema())


class TestSkyAreaKinds:
    def test_rectangular(self, extractor):
        category = categorize_sql(
            "SELECT * FROM PhotoObjAll WHERE ra BETWEEN 10 AND 20 "
            "AND dec BETWEEN -5 AND 5", extractor)
        assert category.sky_area is SkyAreaKind.RECTANGULAR

    def test_band_counts_as_rectangular(self, extractor):
        category = categorize_sql(
            "SELECT * FROM SpecObjAll WHERE ra >= 54 AND ra <= 115",
            extractor)
        assert category.sky_area is SkyAreaKind.RECTANGULAR

    def test_single_point(self, extractor):
        category = categorize_sql(
            "SELECT * FROM PhotoObjAll WHERE ra = 180.5 AND dec = 1.25",
            extractor)
        assert category.sky_area is SkyAreaKind.SINGLE_POINT

    def test_circular_via_cone_udf(self, extractor):
        category = categorize_sql(
            "SELECT dbo.fGetNearbyObjEq(180.0, 0.5, 3.0) "
            "FROM PhotoObjAll", extractor)
        assert category.sky_area is SkyAreaKind.CIRCULAR

    def test_no_sky_columns_is_other(self, extractor):
        category = categorize_sql(
            "SELECT * FROM Photoz WHERE z < 0.1", extractor)
        assert category.sky_area is SkyAreaKind.OTHER


class TestIntentKinds:
    def test_scan(self, extractor):
        category = categorize_sql("SELECT * FROM PhotoObjAll", extractor)
        assert category.intent is IntentKind.SCAN

    def test_search(self, extractor):
        category = categorize_sql(
            "SELECT * FROM PhotoObjAll WHERE dec < -50", extractor)
        assert category.intent is IntentKind.SEARCH

    def test_retrieve(self, extractor):
        category = categorize_sql(
            "SELECT z FROM Photoz WHERE objid = 1237657855534432934",
            extractor)
        assert category.intent is IntentKind.RETRIEVE

    def test_retrieve_on_specobjid(self, extractor):
        category = categorize_sql(
            "SELECT * FROM SpecObjAll "
            "WHERE specobjid = 1115887524498139136", extractor)
        assert category.intent is IntentKind.RETRIEVE


class TestCombined:
    def test_str(self, extractor):
        category = categorize_sql(
            "SELECT * FROM PhotoObjAll WHERE ra = 1 AND dec = 2",
            extractor)
        assert "single-point" in str(category)

    def test_distribution_over_log(self, extractor):
        from collections import Counter
        from repro.workload import WorkloadConfig, generate_workload
        workload = generate_workload(WorkloadConfig(n_queries=400,
                                                    seed=9))
        counts = Counter()
        for entry in workload.log:
            try:
                counts[categorize_sql(entry.sql, extractor).sky_area] += 1
            except Exception:
                continue
        # The synthetic log contains all major kinds.
        assert counts[SkyAreaKind.RECTANGULAR] > 0
        assert counts[SkyAreaKind.OTHER] > 0
