"""Session splitting and statistics."""

from repro.analysis import split_sessions
from repro.workload import LogEntry, QueryLog, WorkloadConfig, \
    generate_workload


def entry(user, t, sql="SELECT * FROM T"):
    return LogEntry(sql, user, 0, timestamp=t)


class TestSplitting:
    def test_gap_splits(self):
        entries = [entry("u", 0), entry("u", 10), entry("u", 5000),
                   entry("u", 5010)]
        stats = split_sessions(entries, idle_gap=1800)
        assert stats.n_sessions == 2
        assert [s.size for s in stats.sessions] == [2, 2]

    def test_no_gap_one_session(self):
        entries = [entry("u", t) for t in range(0, 100, 10)]
        stats = split_sessions(entries, idle_gap=1800)
        assert stats.n_sessions == 1
        assert stats.sessions[0].duration == 90

    def test_users_independent(self):
        entries = [entry("a", 0), entry("b", 1), entry("a", 2),
                   entry("b", 3)]
        stats = split_sessions(entries)
        assert stats.n_sessions == 2
        assert stats.n_users == 2

    def test_unsorted_input_handled(self):
        entries = [entry("u", 50), entry("u", 0), entry("u", 25)]
        stats = split_sessions(entries)
        session = stats.sessions[0]
        assert session.start == 0 and session.end == 50

    def test_custom_gap(self):
        entries = [entry("u", 0), entry("u", 100)]
        assert split_sessions(entries, idle_gap=50).n_sessions == 2
        assert split_sessions(entries, idle_gap=200).n_sessions == 1


class TestStatistics:
    def test_means(self):
        entries = [entry("u", 0), entry("u", 10),
                   entry("v", 0)]
        stats = split_sessions(entries)
        assert stats.mean_session_size == 1.5
        assert stats.mean_session_duration == 5.0
        assert stats.single_query_sessions == 1

    def test_histogram(self):
        entries = ([entry("u", t) for t in range(7)]
                   + [entry("v", 0)])
        stats = split_sessions(entries)
        histogram = stats.size_histogram(buckets=(1, 2, 5, 10))
        assert histogram["1-1"] == 1
        assert histogram["5-9"] == 1

    def test_describe(self):
        stats = split_sessions([entry("u", 0)])
        assert "sessions" in stats.describe()

    def test_empty(self):
        stats = split_sessions([])
        assert stats.n_sessions == 0
        assert stats.mean_session_size == 0.0


class TestGeneratedLogSessions:
    def test_workload_timestamps_monotone(self):
        workload = generate_workload(WorkloadConfig(n_queries=300,
                                                    seed=4))
        times = [e.timestamp for e in workload.log]
        assert times == sorted(times)
        assert times[0] > 0

    def test_sessions_from_generated_log(self):
        workload = generate_workload(
            WorkloadConfig(n_queries=500, seed=4,
                           repeat_user_fraction=0.3))
        stats = split_sessions(workload.log.entries, idle_gap=120)
        assert stats.n_sessions >= stats.n_users
        assert stats.mean_session_size >= 1.0

    def test_timestamp_roundtrip(self, tmp_path):
        log = QueryLog([entry("u", 42.5)])
        path = tmp_path / "log.jsonl"
        log.save(path)
        loaded = QueryLog.load(path)
        assert loaded[0].timestamp == 42.5
