"""The case-study driver: headline Section 6 observations at small scale."""

from repro.analysis import CaseStudyConfig


class TestExtractionHeadlines:
    def test_extraction_rate_above_99_percent(self, small_case_study):
        # Section 6.1: >99.4% of statements yield an access area.
        assert small_case_study.report.extraction_rate > 0.98

    def test_failure_taxonomy_present(self, small_case_study):
        report = small_case_study.report
        assert report.parse_errors > 0
        assert report.unsupported_statements > 0


class TestClusteringHeadlines:
    def test_clusters_found(self, small_case_study):
        assert small_case_study.n_clusters >= 15

    def test_most_families_recovered(self, small_case_study):
        recovered = small_case_study.recovered_families()
        assert len(recovered) >= 18  # of 24 planted

    def test_empty_area_clusters_exist(self, small_case_study):
        empty = [row for row in small_case_study.rows
                 if row.is_empty_area and row.dominant_family >= 18]
        assert empty, "no empty-area cluster recovered"

    def test_empty_area_clusters_have_zero_object_coverage(
            self, small_case_study):
        for row in small_case_study.rows:
            if row.dominant_family in range(19, 25) and row.purity > 0.9:
                assert row.object_coverage <= 0.01

    def test_hot_clusters_cover_fraction_of_content(self,
                                                    small_case_study):
        # Table 1's headline: interest areas are small parts of content.
        fractions = [
            row.area_coverage for row in small_case_study.rows
            if 1 <= row.dominant_family <= 9 and row.purity > 0.9
        ]
        assert fractions
        assert min(fractions) < 0.5

    def test_cardinality_tracks_users(self, small_case_study):
        # "most queries in each cluster are issued by different users"
        for row in small_case_study.rows[:10]:
            assert row.n_users >= 0.7 * row.cardinality

    def test_rows_sorted_by_cardinality(self, small_case_study):
        cards = [row.cardinality for row in small_case_study.rows]
        assert cards == sorted(cards, reverse=True)


class TestResultAccessors:
    def test_rows_for_family(self, small_case_study):
        rows = small_case_study.rows_for_family(1)
        assert all(row.dominant_family == 1 for row in rows)

    def test_cluster_members_consistent(self, small_case_study):
        clusters = small_case_study.clustering.clusters()
        total = sum(len(v) for v in clusters.values())
        total += small_case_study.clustering.noise_count
        assert total == len(small_case_study.sample)

    def test_config_defaults(self):
        config = CaseStudyConfig()
        assert config.eps < 0.5  # partitioned DBSCAN validity
        assert config.predicate_cap == 35
