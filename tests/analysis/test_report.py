"""Report formatting."""

from repro.analysis import format_summary, format_table1
from repro.analysis.report import _cov


class TestTable1Format:
    def test_contains_all_columns(self, small_case_study):
        text = format_table1(small_case_study.rows, max_rows=5)
        assert "Cluster" in text and "Cardinality" in text
        assert "Area" in text and "Object" in text
        lines = text.splitlines()
        assert len(lines) == 2 + min(5, len(small_case_study.rows))

    def test_show_truth_appends_diagnostics(self, small_case_study):
        text = format_table1(small_case_study.rows, max_rows=3,
                             show_truth=True)
        assert "[" in text.splitlines()[-1]

    def test_all_rows_by_default(self, small_case_study):
        text = format_table1(small_case_study.rows)
        assert len(text.splitlines()) == 2 + len(small_case_study.rows)


class TestSummary:
    def test_summary_fields(self, small_case_study):
        text = format_summary(small_case_study)
        assert "areas extracted" in text
        assert "clusters found" in text
        assert "empty-area clusters" in text


class TestDensityColumn:
    def test_density_column_rendered(self, small_case_study):
        text = format_table1(small_case_study.rows, max_rows=5,
                             show_density=True)
        assert "Density" in text.splitlines()[0]
        assert "x" in text.splitlines()[2] or "inf" in text

    def test_density_off_by_default(self, small_case_study):
        text = format_table1(small_case_study.rows, max_rows=3)
        assert "Density" not in text


class TestCoverageFormatting:
    def test_zero(self):
        assert _cov(0.0) == "0.0"

    def test_tiny_values_marked(self):
        # Table 1 Cluster 17 prints "<0.001".
        assert _cov(0.0004) == "<0.001"

    def test_regular(self):
        assert _cov(0.24) == "0.24"
