"""Session-wide fixtures: one small case-study run shared by many tests."""

import pytest

from repro import CaseStudyConfig, run_case_study
from repro.workload import ContentConfig, WorkloadConfig


@pytest.fixture(scope="session")
def small_case_study():
    """A scaled-down but complete Section-6 pipeline run."""
    config = CaseStudyConfig(
        workload=WorkloadConfig(n_queries=1500, seed=13),
        content=ContentConfig(photo_rows=1200, spec_rows=1000,
                              satellite_rows=700, seed=7),
        sample_size=900,
        eps=0.12,
        min_pts=4,
        resolution=0.05,
        seed=99,
    )
    return run_case_study(config)
