"""Session-wide fixtures: one small case-study run shared by many tests."""

import os

import pytest

from repro import CaseStudyConfig, run_case_study
from repro.workload import ContentConfig, WorkloadConfig


@pytest.fixture(scope="session", autouse=True)
def _runs_dir_in_tmp(tmp_path_factory):
    """Route flight-recorder run records into a session tmp dir.

    CLI subcommands write a run record by default; during the test
    suite (in-process ``main()`` calls and subprocess invocations,
    which inherit the environment) those must not accumulate in the
    developer's ``runs/`` directory."""
    directory = tmp_path_factory.mktemp("runs")
    previous = os.environ.get("REPRO_RUNS_DIR")
    os.environ["REPRO_RUNS_DIR"] = str(directory)
    yield directory
    if previous is None:
        os.environ.pop("REPRO_RUNS_DIR", None)
    else:
        os.environ["REPRO_RUNS_DIR"] = previous


@pytest.fixture(scope="session")
def small_case_study():
    """A scaled-down but complete Section-6 pipeline run."""
    config = CaseStudyConfig(
        workload=WorkloadConfig(n_queries=1500, seed=13),
        content=ContentConfig(photo_rows=1200, spec_rows=1000,
                              satellite_rows=700, seed=7),
        sample_size=900,
        eps=0.12,
        min_pts=4,
        resolution=0.05,
        seed=99,
    )
    return run_case_study(config)
