"""Re-query baseline (Section 6.6): result MBRs, empty areas, errors."""

import pytest

from repro.baselines import RequeryBaseline, requery_log
from repro.algebra.predicates import ColumnRef
from repro.engine import Database
from repro.schema import Column, ColumnType, Relation, Schema
from repro.algebra.intervals import Interval


@pytest.fixture()
def baseline():
    schema = Schema("rq")
    schema.add(Relation("T", (
        Column("u", ColumnType.FLOAT, Interval(0.0, 1000.0)),
        Column("v", ColumnType.FLOAT, Interval(0.0, 1000.0)),
    )))
    db = Database(schema)
    db.insert("T", [{"u": float(i), "v": float(100 - i)}
                    for i in range(101)])
    return RequeryBaseline(db)


class TestResultMBR:
    def test_mbr_of_result(self, baseline):
        outcome = baseline.area_of(
            "SELECT u, v FROM T WHERE u >= 10 AND u <= 20")
        assert outcome.succeeded
        hull = outcome.area.footprint_hull(ColumnRef("T", "u"))
        assert hull == Interval(10.0, 20.0)

    def test_mbr_reflects_content_not_intent(self, baseline):
        # The user asked for u <= 500 but content stops at 100: the
        # result-based area underestimates the intent.
        outcome = baseline.area_of("SELECT u FROM T WHERE u <= 500")
        hull = outcome.area.footprint_hull(ColumnRef("T", "u"))
        assert hull.hi == 100.0

    def test_star_output(self, baseline):
        outcome = baseline.area_of("SELECT * FROM T WHERE u = 5")
        assert outcome.succeeded
        assert outcome.area.footprint_hull(ColumnRef("T", "v")) == \
            Interval.point(95.0)


class TestFailureModes:
    def test_empty_area_query_invisible(self, baseline):
        # The decisive weakness: empty-area intent yields nothing.
        outcome = baseline.area_of("SELECT * FROM T WHERE u > 900")
        assert not outcome.succeeded
        assert outcome.empty_result

    def test_dialect_error(self, baseline):
        outcome = baseline.area_of("SELECT * FROM T LIMIT 10")
        assert outcome.error is not None
        assert "LIMIT" in outcome.error

    def test_parse_error(self, baseline):
        outcome = baseline.area_of("SELCT * FROM T")
        assert outcome.error is not None and outcome.area is None

    def test_unknown_relation(self, baseline):
        outcome = baseline.area_of("SELECT * FROM Galaxies")
        assert outcome.error is not None


class TestReport:
    def test_aggregate_counts(self, baseline):
        report = requery_log(baseline, [
            "SELECT * FROM T WHERE u <= 10",     # ok
            "SELECT * FROM T WHERE u > 900",     # empty
            "SELECT * FROM T LIMIT 5",           # dialect error
            "SELECT u FROM T WHERE u = 50",      # ok
        ])
        assert report.total == 4
        assert report.succeeded == 2
        assert report.empty_results == 1
        assert report.errored == 1
        assert len(report.areas()) == 2
