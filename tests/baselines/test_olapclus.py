"""OLAPClus baseline (Section 6.4): exact matching fragments point lookups."""

import random

import pytest

from repro.baselines import (ExactMatchDistance, area_signature,
                             fragmentation, olapclus_cluster)
from repro.core import AccessAreaExtractor
from repro.schema import skyserver_schema


@pytest.fixture(scope="module")
def extractor():
    return AccessAreaExtractor(skyserver_schema())


def lookup_areas(extractor, n, distinct_constants):
    rng = random.Random(7)
    constants = [1_237_660_000_000_000_000 + i
                 for i in range(distinct_constants)]
    return [
        extractor.extract(
            f"SELECT z FROM Photoz WHERE objid = "
            f"{rng.choice(constants)}").area
        for _ in range(n)
    ]


class TestExactMatchDistance:
    def test_identical_zero(self, extractor):
        areas = lookup_areas(extractor, 2, 1)
        assert ExactMatchDistance().distance(areas[0], areas[1]) == 0.0

    def test_different_constants_maximal_conj(self, extractor):
        d = ExactMatchDistance()
        a1 = extractor.extract(
            "SELECT * FROM Photoz WHERE objid = 1").area
        a2 = extractor.extract(
            "SELECT * FROM Photoz WHERE objid = 2").area
        # Same table (d_tables 0) but no predicate matches (d_conj 1).
        assert d.distance(a1, a2) == 1.0

    def test_different_tables(self, extractor):
        d = ExactMatchDistance()
        a1 = extractor.extract("SELECT * FROM Photoz").area
        a2 = extractor.extract("SELECT * FROM SpecObjAll").area
        assert d.distance(a1, a2) == 1.0

    def test_overlapping_ranges_not_matched(self, extractor):
        # The defining OLAPClus weakness: overlap does not count.
        d = ExactMatchDistance()
        a1 = extractor.extract(
            "SELECT * FROM Photoz WHERE z >= 0 AND z <= 0.5").area
        a2 = extractor.extract(
            "SELECT * FROM Photoz WHERE z >= 0.01 AND z <= 0.49").area
        assert d.distance(a1, a2) == 1.0


class TestSignature:
    def test_signature_equality_iff_distance_zero(self, extractor):
        areas = lookup_areas(extractor, 20, 5)
        d = ExactMatchDistance()
        for a in areas[:8]:
            for b in areas[:8]:
                same_sig = area_signature(a) == area_signature(b)
                assert same_sig == (d.distance(a, b) == 0.0)


class TestFragmentation:
    def test_shatters_distinct_constants(self, extractor):
        # 60 queries over 30 distinct constants: OLAPClus sees ~30 groups.
        areas = lookup_areas(extractor, 60, 30)
        groups = fragmentation(areas, min_pts=2)
        distinct = len({area_signature(a) for a in areas})
        assert groups == distinct
        assert groups >= 20

    def test_our_method_would_find_one(self, extractor):
        # Contrast: the same population has ONE dense signature-region
        # under the overlap distance (verified in integration tests);
        # here we only check OLAPClus produces >> 1.
        areas = lookup_areas(extractor, 60, 30)
        result = olapclus_cluster(areas, min_pts=2)
        assert result.n_clusters + result.noise_count > 10

    def test_duplicates_do_cluster(self, extractor):
        areas = lookup_areas(extractor, 40, 2)
        result = olapclus_cluster(areas, min_pts=2)
        assert result.n_clusters == 2
        assert result.noise_count == 0

    def test_min_pts_respected(self, extractor):
        # Five all-distinct constants: every area is its own signature.
        areas = [
            extractor.extract(
                f"SELECT z FROM Photoz WHERE objid = {10 ** 18 + i}").area
            for i in range(5)
        ]
        result = olapclus_cluster(areas, min_pts=2)
        assert result.n_clusters == 0
        assert result.noise_count == 5
