"""Raw-query extraction (Section 6.5): predicates as-is, no transformation."""

import pytest

from repro.baselines import raw_access_area
from repro.core import AccessAreaExtractor
from repro.schema import skyserver_schema


@pytest.fixture(scope="module")
def schema():
    return skyserver_schema()


@pytest.fixture(scope="module")
def extractor(schema):
    return AccessAreaExtractor(schema)


class TestAsIsSemantics:
    def test_simple_query_matches_transformed(self, schema, extractor):
        sql = "SELECT * FROM Photoz WHERE z >= 0 AND z <= 0.1"
        raw = raw_access_area(sql, schema)
        ours = extractor.extract(sql).area
        assert {str(p) for p in raw.cnf.predicates()} == \
            {str(p) for p in ours.cnf.predicates()}

    def test_not_is_not_pushed(self, schema, extractor):
        sql = ("SELECT * FROM Photoz WHERE NOT (z < 0.2 OR z > 0.8)")
        raw = raw_access_area(sql, schema)
        ours = extractor.extract(sql).area
        raw_preds = {str(p) for p in raw.cnf.predicates()}
        our_preds = {str(p) for p in ours.cnf.predicates()}
        # Raw keeps the complement's atoms; the transformation inverts.
        assert "Photoz.z < 0.2" in raw_preds
        assert "Photoz.z >= 0.2" in our_preds
        assert raw_preds != our_preds

    def test_having_kept_as_pseudo_predicate(self, schema):
        raw = raw_access_area(
            "SELECT plate, COUNT(*) FROM SpecObjAll GROUP BY plate "
            "HAVING COUNT(*) > 42", schema)
        preds = [str(p) for p in raw.cnf.predicates()]
        assert any("COUNT" in p and "42" in p for p in preds)

    def test_having_with_column_argument(self, schema):
        raw = raw_access_area(
            "SELECT plate, SUM(mjd) FROM SpecObjAll GROUP BY plate "
            "HAVING SUM(mjd) > 1000", schema)
        preds = [str(p) for p in raw.cnf.predicates()]
        assert any("SUM(mjd)" in p for p in preds)

    def test_subquery_relations_not_added(self, schema):
        raw = raw_access_area(
            "SELECT * FROM PhotoObjAll WHERE ra < 10 AND EXISTS "
            "(SELECT * FROM SpecObjAll WHERE "
            "SpecObjAll.bestobjid = PhotoObjAll.objid)", schema)
        assert raw.relations == ("PhotoObjAll",)
        # ... but the inner predicates are still collected as-is.
        preds = [str(p) for p in raw.cnf.predicates()]
        assert any("bestobjid" in p for p in preds)

    def test_between_split_syntactically(self, schema):
        raw = raw_access_area(
            "SELECT * FROM Photoz WHERE z BETWEEN 0 AND 0.1", schema)
        preds = {str(p) for p in raw.cnf.predicates()}
        assert preds == {"Photoz.z >= 0", "Photoz.z <= 0.1"}

    def test_flat_conjunction_structure(self, schema):
        # Raw CNF is all-unit clauses: OR structure is flattened away.
        raw = raw_access_area(
            "SELECT * FROM Photoz WHERE z < 0.1 OR z > 0.9", schema)
        assert all(clause.is_unit for clause in raw.cnf)
        assert len(raw.cnf) == 2

    def test_outer_join_condition_as_is(self, schema):
        raw = raw_access_area(
            "SELECT * FROM galSpecExtra FULL OUTER JOIN galSpecIndx "
            "ON galSpecExtra.specobjid = galSpecIndx.specObjID", schema)
        # The transformation drops this condition (Example 2); raw keeps it.
        assert len(raw.cnf) == 1

    def test_marked_as_raw(self, schema):
        raw = raw_access_area("SELECT * FROM Photoz", schema)
        assert "raw" in raw.notes


class TestClusterBreakage:
    def test_phrasings_disagree_under_raw(self, schema):
        """The §6.5 mechanism: equivalent queries get different raw areas."""
        plain = "SELECT * FROM Photoz WHERE z >= 0.2 AND z <= 0.8"
        not_phrased = "SELECT * FROM Photoz WHERE NOT (z < 0.2 OR z > 0.8)"
        raw_plain = raw_access_area(plain, schema)
        raw_not = raw_access_area(not_phrased, schema)
        assert {str(p) for p in raw_plain.cnf.predicates()} != \
            {str(p) for p in raw_not.cnf.predicates()}

    def test_transformation_reconciles_phrasings(self, schema, extractor):
        plain = extractor.extract(
            "SELECT * FROM Photoz WHERE z >= 0.2 AND z <= 0.8").area
        not_phrased = extractor.extract(
            "SELECT * FROM Photoz WHERE NOT (z < 0.2 OR z > 0.8)").area
        assert str(plain.cnf) == str(not_phrased.cnf)
