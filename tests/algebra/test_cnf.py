"""NNF and CNF conversion, incl. the 35-predicate workaround."""

import pytest

from repro.algebra.boolexpr import (FALSE, TRUE, Not, atom, make_and,
                                    make_not, make_or)
from repro.algebra.cnf import (CNF, Clause, CNFConversionError, to_cnf,
                               truncate_predicates)
from repro.algebra.nnf import to_nnf
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)


def p(col: str, op: Op, value):
    return atom(ColumnConstantPredicate(ColumnRef("T", col), op, value))


class TestNNF:
    def test_pushes_not_through_and(self):
        expr = to_nnf(make_not(make_and([p("u", Op.GT, 5),
                                         p("v", Op.LE, 10)])))
        # De Morgan: OR of inverted atoms.
        assert str(expr) == "T.u <= 5 OR T.v > 10"

    def test_pushes_not_through_or(self):
        expr = to_nnf(Not(make_or([p("u", Op.GT, 5), p("v", Op.LE, 10)])))
        assert str(expr) == "T.u <= 5 AND T.v > 10"

    def test_no_not_nodes_remain(self):
        expr = Not(make_or([Not(p("u", Op.GT, 1)),
                            make_and([p("v", Op.LT, 2),
                                      Not(p("w", Op.EQ, 3))])]))
        nnf = to_nnf(expr)

        def has_not(node):
            if isinstance(node, Not):
                return True
            children = getattr(node, "children", ())
            return any(has_not(c) for c in children)

        assert not has_not(nnf)

    def test_constants(self):
        assert to_nnf(Not(TRUE)) is FALSE
        assert to_nnf(Not(FALSE)) is TRUE


class TestClause:
    def test_of_deduplicates(self):
        pred = ColumnConstantPredicate(ColumnRef("T", "u"), Op.GT, 1)
        clause = Clause.of([pred, pred])
        assert len(clause) == 1

    def test_subsumes(self):
        a = ColumnConstantPredicate(ColumnRef("T", "u"), Op.GT, 1)
        b = ColumnConstantPredicate(ColumnRef("T", "v"), Op.LT, 2)
        assert Clause.of([a]).subsumes(Clause.of([a, b]))
        assert not Clause.of([a, b]).subsumes(Clause.of([a]))

    def test_str_empty_clause_is_false(self):
        assert str(Clause(())) == "FALSE"


class TestToCNF:
    def test_atom(self):
        cnf = to_cnf(p("u", Op.GT, 1))
        assert len(cnf) == 1 and cnf.clauses[0].is_unit

    def test_conjunction(self):
        cnf = to_cnf(make_and([p("u", Op.GT, 1), p("v", Op.LT, 2)]))
        assert len(cnf) == 2

    def test_disjunction_single_clause(self):
        cnf = to_cnf(make_or([p("u", Op.GT, 1), p("v", Op.LT, 2)]))
        assert len(cnf) == 1 and len(cnf.clauses[0]) == 2

    def test_distribution(self):
        # (a AND b) OR c  ==>  (a OR c) AND (b OR c)
        cnf = to_cnf(make_or([
            make_and([p("u", Op.GT, 1), p("v", Op.LT, 2)]),
            p("w", Op.EQ, 3),
        ]))
        assert len(cnf) == 2
        assert all(len(clause) == 2 for clause in cnf)

    def test_true_yields_empty_cnf(self):
        assert to_cnf(TRUE).is_true

    def test_false_yields_empty_clause(self):
        cnf = to_cnf(FALSE)
        assert len(cnf) == 1 and len(cnf.clauses[0]) == 0

    def test_subsumed_clauses_dropped(self):
        # (a) AND (a OR b) simplifies to (a).
        a = p("u", Op.GT, 1)
        b = p("v", Op.LT, 2)
        cnf = to_cnf(make_and([a, make_or([a, b])]))
        assert len(cnf) == 1

    def test_not_handled_via_nnf(self):
        cnf = to_cnf(make_not(make_and([p("u", Op.GT, 5),
                                        p("v", Op.LE, 10)])))
        assert str(cnf) == "(T.u <= 5 OR T.v > 10)"

    def test_equivalence_by_truth_table(self):
        # Distribution over a nontrivial tree must preserve semantics.
        a, b, c, d = (p(col, Op.GT, 0) for col in "uvwx")
        expr = make_or([make_and([a, b]), make_and([c, d])])
        cnf = to_cnf(expr, max_predicates=None)
        preds = sorted({str(q) for q in expr.atoms()})
        for mask in range(2 ** len(preds)):
            env = {name: bool(mask >> i & 1)
                   for i, name in enumerate(preds)}
            assert _eval_expr(expr, env) == _eval_cnf(cnf, env)


class TestPredicateCap:
    def _wide_or(self, n: int):
        return make_or([p("u", Op.EQ, i) for i in range(n)])

    def test_truncation_widens(self):
        expr = make_and([self._wide_or(3), p("v", Op.GT, 0)])
        truncated = truncate_predicates(expr, 3)
        # The 4th predicate leaf became TRUE, absorbing nothing fatal.
        assert truncated.count_atoms() <= 3

    def test_cap_applies(self):
        # AND of many ORs would blow up; the cap keeps it bounded.
        expr = make_and([
            make_or([p("u", Op.EQ, i), p("v", Op.EQ, i)])
            for i in range(40)
        ])
        cnf = to_cnf(expr, max_predicates=35)
        assert cnf.count_predicates() <= 36

    def test_no_cap_raises_on_blowup(self):
        # OR of ANDs: CNF size is 2^n clauses; must hit the safety limit.
        expr = make_or([
            make_and([p("u", Op.EQ, i), p("v", Op.EQ, i)])
            for i in range(25)
        ])
        with pytest.raises(CNFConversionError):
            to_cnf(expr, max_predicates=None, max_clauses=10_000)

    def test_cap_none_small_input_ok(self):
        cnf = to_cnf(make_and([p("u", Op.GT, 1)]), max_predicates=None)
        assert len(cnf) == 1


class TestCNFContainer:
    def test_conjoin(self):
        a = to_cnf(p("u", Op.GT, 1))
        b = to_cnf(p("v", Op.LT, 2))
        assert len(a.conjoin(b)) == 2

    def test_roundtrip_boolexpr(self):
        expr = make_and([p("u", Op.GT, 1),
                         make_or([p("v", Op.LT, 2), p("w", Op.EQ, 3)])])
        cnf = to_cnf(expr)
        again = to_cnf(cnf.to_boolexpr())
        assert str(cnf) == str(again)

    def test_of_deduplicates_clauses(self):
        clause = Clause.of(
            [ColumnConstantPredicate(ColumnRef("T", "u"), Op.GT, 1)])
        cnf = CNF.of([clause, clause])
        assert len(cnf) == 1


def _eval_expr(expr, env) -> bool:
    from repro.algebra.boolexpr import And, Atom, Or
    if expr is TRUE:
        return True
    if expr is FALSE:
        return False
    if isinstance(expr, Atom):
        return env[str(expr.predicate)]
    if isinstance(expr, And):
        return all(_eval_expr(c, env) for c in expr.children)
    if isinstance(expr, Or):
        return any(_eval_expr(c, env) for c in expr.children)
    raise AssertionError(f"unexpected node {expr}")


def _eval_cnf(cnf, env) -> bool:
    return all(any(env[str(pred)] for pred in clause) for clause in cnf)
