"""Boolean expression construction and simplification."""

from repro.algebra.boolexpr import (FALSE, TRUE, And, Atom, Not, Or, atom,
                                    make_and, make_not, make_or,
                                    relations_of)
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)


def p(col: str, op: Op, value) -> Atom:
    return atom(ColumnConstantPredicate(ColumnRef("T", col), op, value))


class TestConstructors:
    def test_and_flattens(self):
        expr = make_and([make_and([p("u", Op.GT, 1), p("v", Op.GT, 2)]),
                         p("w", Op.GT, 3)])
        assert isinstance(expr, And)
        assert len(expr.children) == 3

    def test_and_drops_true(self):
        expr = make_and([TRUE, p("u", Op.GT, 1), TRUE])
        assert isinstance(expr, Atom)

    def test_and_collapses_on_false(self):
        assert make_and([p("u", Op.GT, 1), FALSE]) is FALSE

    def test_empty_and_is_true(self):
        assert make_and([]) is TRUE

    def test_or_flattens(self):
        expr = make_or([make_or([p("u", Op.GT, 1), p("v", Op.GT, 2)]),
                        p("w", Op.GT, 3)])
        assert isinstance(expr, Or)
        assert len(expr.children) == 3

    def test_or_drops_false(self):
        assert isinstance(make_or([FALSE, p("u", Op.GT, 1)]), Atom)

    def test_or_collapses_on_true(self):
        assert make_or([p("u", Op.GT, 1), TRUE]) is TRUE

    def test_empty_or_is_false(self):
        assert make_or([]) is FALSE

    def test_not_constants(self):
        assert make_not(TRUE) is FALSE
        assert make_not(FALSE) is TRUE

    def test_not_atom_inverts_operator(self):
        expr = make_not(p("u", Op.GT, 5))
        assert isinstance(expr, Atom)
        assert expr.predicate.op is Op.LE

    def test_double_negation(self):
        inner = make_and([p("u", Op.GT, 1), p("v", Op.LT, 2)])
        assert make_not(make_not(inner)) == inner

    def test_not_wraps_connectives(self):
        expr = make_not(make_and([p("u", Op.GT, 1), p("v", Op.LT, 2)]))
        assert isinstance(expr, Not)


class TestAccessors:
    def test_atoms_iteration(self):
        expr = make_and([p("u", Op.GT, 1),
                         make_or([p("v", Op.LT, 2), p("w", Op.EQ, 3)])])
        assert expr.count_atoms() == 3

    def test_operators(self):
        expr = p("u", Op.GT, 1) & p("v", Op.LT, 2) | p("w", Op.EQ, 3)
        assert isinstance(expr, Or)

    def test_invert_operator(self):
        expr = ~p("u", Op.GT, 1)
        assert isinstance(expr, Atom)

    def test_relations_of(self):
        expr = make_and([
            p("u", Op.GT, 1),
            atom(ColumnConstantPredicate(ColumnRef("S", "v"), Op.LT, 2)),
        ])
        assert relations_of(expr) == frozenset({"T", "S"})

    def test_str_parenthesizes(self):
        expr = make_and([make_or([p("u", Op.GT, 1), p("v", Op.LT, 2)]),
                         p("w", Op.EQ, 3)])
        assert "(" in str(expr)
