"""Property-based tests of the algebra layer (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.boolexpr import FALSE, TRUE, And, Atom, Or, atom
from repro.algebra.cnf import to_cnf
from repro.algebra.consolidate import consolidate
from repro.algebra.intervals import Interval, IntervalSet
from repro.algebra.nnf import to_nnf
from repro.algebra.boolexpr import make_and, make_not, make_or
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)

# -- strategies ---------------------------------------------------------------

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


@st.composite
def intervals(draw):
    lo = draw(finite)
    hi = draw(st.floats(min_value=lo, max_value=101, allow_nan=False))
    if lo == hi:
        return Interval(lo, hi)
    return Interval(lo, hi, draw(st.booleans()), draw(st.booleans()))


interval_sets = st.lists(intervals(), max_size=5).map(IntervalSet)

_COLS = ["u", "v", "w"]
_VALUES = [-2, 0, 1, 3]


@st.composite
def predicates(draw):
    col = draw(st.sampled_from(_COLS))
    op = draw(st.sampled_from(list(Op)))
    value = draw(st.sampled_from(_VALUES))
    return ColumnConstantPredicate(ColumnRef("T", col), op, value)


@st.composite
def bool_exprs(draw, depth=3):
    if depth == 0:
        return atom(draw(predicates()))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return atom(draw(predicates()))
    if kind == 1:
        return make_not(draw(bool_exprs(depth=depth - 1)))
    children = draw(st.lists(bool_exprs(depth=depth - 1),
                             min_size=1, max_size=3))
    return make_and(children) if kind == 2 else make_or(children)


def _eval(expr, row: dict) -> bool:
    if expr is TRUE:
        return True
    if expr is FALSE:
        return False
    if isinstance(expr, Atom):
        pred = expr.predicate
        return pred.evaluate(row[pred.ref.column])
    if isinstance(expr, And):
        return all(_eval(c, row) for c in expr.children)
    if isinstance(expr, Or):
        return any(_eval(c, row) for c in expr.children)
    # Not node
    return not _eval(expr.child, row)


def _rows():
    grid = [-3, -2, -1, 0, 0.5, 1, 2, 3, 4]
    for u in grid:
        for v in grid[::2]:
            for w in grid[::3]:
                yield {"u": u, "v": v, "w": w}


# -- interval properties ------------------------------------------------------

@given(intervals(), intervals())
def test_intersect_commutative(a, b):
    assert a.intersect(b) == b.intersect(a)


@given(intervals(), intervals())
def test_hull_contains_both(a, b):
    hull = a.hull(b)
    assert hull.contains_interval(a)
    assert hull.contains_interval(b)


@given(intervals(), intervals(), st.floats(min_value=-100, max_value=101,
                                           allow_nan=False))
def test_intersection_membership(a, b, probe):
    inter = a.intersect(b)
    in_both = a.contains(probe) and b.contains(probe)
    if inter is None:
        assert not in_both
    else:
        assert inter.contains(probe) == in_both


@given(interval_sets, interval_sets,
       st.floats(min_value=-100, max_value=101, allow_nan=False))
def test_set_union_membership(a, b, probe):
    assert a.union(b).contains(probe) == (a.contains(probe)
                                          or b.contains(probe))


@given(interval_sets, interval_sets,
       st.floats(min_value=-100, max_value=101, allow_nan=False))
def test_set_difference_membership(a, b, probe):
    assert a.difference(b).contains(probe) == (a.contains(probe)
                                               and not b.contains(probe))


@given(interval_sets)
def test_set_total_width_nonnegative(s):
    assert s.total_width >= 0


# -- predicate properties ---------------------------------------------------

@given(predicates(), st.sampled_from([-3, -2, -1, 0, 0.5, 1, 2, 3, 4]))
def test_negation_complements_evaluation(pred, probe):
    assert pred.evaluate(probe) != pred.negate().evaluate(probe)


@given(predicates(), st.sampled_from([-3.0, -2.0, 0.0, 0.5, 1.0, 3.5]))
def test_footprint_matches_evaluation(pred, probe):
    assert pred.to_interval_set().contains(probe) == pred.evaluate(probe)


# -- normal-form semantics -----------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(bool_exprs())
def test_nnf_preserves_semantics(expr):
    nnf = to_nnf(expr)
    for row in _rows():
        assert _eval(expr, row) == _eval(nnf, row)


@settings(max_examples=60, deadline=None)
@given(bool_exprs())
def test_cnf_preserves_semantics(expr):
    cnf = to_cnf(expr, max_predicates=None, max_clauses=500_000)
    for row in _rows():
        expected = _eval(expr, row)
        actual = all(
            any(p.evaluate(row[p.ref.column]) for p in clause)
            for clause in cnf)
        assert expected == actual


@settings(max_examples=60, deadline=None)
@given(bool_exprs())
def test_consolidation_preserves_semantics(expr):
    cnf = to_cnf(expr, max_predicates=None, max_clauses=500_000)
    result = consolidate(cnf)
    for row in _rows():
        before = all(
            any(p.evaluate(row[p.ref.column]) for p in clause)
            for clause in cnf)
        after = all(
            any(p.evaluate(row[p.ref.column]) for p in clause)
            for clause in result.cnf)
        assert before == after


@settings(max_examples=40, deadline=None)
@given(bool_exprs())
def test_cap_only_widens(expr):
    """Truncation must over-approximate: capped TRUE ⊇ uncapped TRUE."""
    full = to_cnf(expr, max_predicates=None, max_clauses=500_000)
    capped = to_cnf(expr, max_predicates=3, max_clauses=500_000)
    for row in _rows():
        full_sat = all(
            any(p.evaluate(row[p.ref.column]) for p in clause)
            for clause in full)
        capped_sat = all(
            any(p.evaluate(row[p.ref.column]) for p in clause)
            for clause in capped)
        if full_sat:
            assert capped_sat
