"""Consolidation: redundancy removal, merging, contradiction detection."""

from repro.algebra.boolexpr import atom, make_and, make_or
from repro.algebra.cnf import to_cnf
from repro.algebra.consolidate import consolidate
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)

T_U = ColumnRef("T", "u")
T_V = ColumnRef("T", "v")
T_S = ColumnRef("T", "s")


def p(ref, op, value):
    return ColumnConstantPredicate(ref, op, value)


def consolidated(expr):
    return consolidate(to_cnf(expr))


class TestContradictions:
    def test_numeric_gap(self):
        result = consolidated(make_and([atom(p(T_U, Op.GT, 5)),
                                        atom(p(T_U, Op.LT, 3))]))
        assert result.stats.contradiction

    def test_open_boundary(self):
        # u > 3 AND u < 3 is empty; u >= 3 AND u <= 3 is the point 3.
        empty = consolidated(make_and([atom(p(T_U, Op.GT, 3)),
                                       atom(p(T_U, Op.LT, 3))]))
        assert empty.stats.contradiction
        point = consolidated(make_and([atom(p(T_U, Op.GE, 3)),
                                       atom(p(T_U, Op.LE, 3))]))
        assert not point.stats.contradiction
        assert str(point.cnf) == "T.u = 3"

    def test_categorical_double_equality(self):
        result = consolidated(make_and([atom(p(T_S, Op.EQ, "a")),
                                        atom(p(T_S, Op.EQ, "b"))]))
        assert result.stats.contradiction

    def test_categorical_eq_vs_ne(self):
        result = consolidated(make_and([atom(p(T_S, Op.EQ, "a")),
                                        atom(p(T_S, Op.NE, "a"))]))
        assert result.stats.contradiction

    def test_consistent_categorical(self):
        result = consolidated(make_and([atom(p(T_S, Op.EQ, "a")),
                                        atom(p(T_S, Op.NE, "b"))]))
        assert not result.stats.contradiction
        assert "T.s = 'a'" in str(result.cnf)


class TestMerging:
    def test_tightens_bounds(self):
        result = consolidated(make_and([
            atom(p(T_U, Op.GE, 1)), atom(p(T_U, Op.GE, 3)),
            atom(p(T_U, Op.LE, 10)), atom(p(T_U, Op.LE, 7)),
        ]))
        assert str(result.cnf) == "T.u <= 7 AND T.u >= 3"
        assert result.stats.merged_bounds > 0

    def test_merges_to_point(self):
        result = consolidated(make_and([atom(p(T_U, Op.GE, 4)),
                                        atom(p(T_U, Op.LE, 4))]))
        assert str(result.cnf) == "T.u = 4"

    def test_keeps_independent_columns(self):
        result = consolidated(make_and([atom(p(T_U, Op.GE, 1)),
                                        atom(p(T_V, Op.LE, 2))]))
        assert len(result.cnf) == 2

    def test_eq_with_consistent_range(self):
        result = consolidated(make_and([atom(p(T_U, Op.EQ, 5)),
                                        atom(p(T_U, Op.LE, 10))]))
        assert str(result.cnf) == "T.u = 5"

    def test_eq_with_contradicting_range(self):
        result = consolidated(make_and([atom(p(T_U, Op.EQ, 50)),
                                        atom(p(T_U, Op.LE, 10))]))
        assert result.stats.contradiction


class TestClauseSimplification:
    def test_redundant_disjunct_dropped(self):
        # (u < 5 OR u < 3): the second footprint is inside the first.
        result = consolidated(make_or([atom(p(T_U, Op.LT, 5)),
                                       atom(p(T_U, Op.LT, 3))]))
        assert str(result.cnf) == "T.u < 5"
        assert result.stats.dropped_redundant == 1

    def test_tautological_clause_removed(self):
        # (u < 5 OR u >= 5) covers the whole axis: clause is TRUE.
        result = consolidated(make_or([atom(p(T_U, Op.LT, 5)),
                                       atom(p(T_U, Op.GE, 5))]))
        assert result.cnf.is_true
        assert result.stats.removed_true_clauses == 1

    def test_non_tautological_gap_kept(self):
        # (u < 5 OR u > 5) leaves the point 5 out: not TRUE.
        result = consolidated(make_or([atom(p(T_U, Op.LT, 5)),
                                       atom(p(T_U, Op.GT, 5))]))
        assert not result.cnf.is_true
        assert len(result.cnf) == 1

    def test_mixed_clause_untouched(self):
        expr = make_or([atom(p(T_U, Op.LT, 5)), atom(p(T_S, Op.EQ, "a"))])
        result = consolidated(expr)
        assert len(result.cnf.clauses[0]) == 2


class TestIdempotence:
    def test_consolidating_twice_is_stable(self):
        expr = make_and([
            atom(p(T_U, Op.GE, 1)), atom(p(T_U, Op.LE, 9)),
            make_or([atom(p(T_V, Op.LT, 2)), atom(p(T_V, Op.GT, 8))]),
        ])
        once = consolidate(to_cnf(expr))
        twice = consolidate(once.cnf)
        assert str(once.cnf) == str(twice.cnf)

    def test_big_int_roundtrip(self):
        big = 1_237_657_855_534_432_934
        result = consolidated(make_and([atom(p(T_U, Op.GE, big)),
                                        atom(p(T_U, Op.LE, big + 10))]))
        text = str(result.cnf)
        assert str(big) in text and str(big + 10) in text
