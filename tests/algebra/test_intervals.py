"""Interval and IntervalSet algebra."""

import math

import pytest

from repro.algebra.intervals import Interval, IntervalSet


class TestIntervalConstruction:
    def test_simple(self):
        iv = Interval(1, 5)
        assert iv.lo == 1 and iv.hi == 5
        assert not iv.lo_open and not iv.hi_open

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Interval(5, 1)

    def test_degenerate_open_raises(self):
        with pytest.raises(ValueError):
            Interval(3, 3, lo_open=True)

    def test_make_returns_none_for_empty(self):
        assert Interval.make(5, 1) is None
        assert Interval.make(3, 3, lo_open=True) is None
        assert Interval.make(3, 3) == Interval.point(3)

    def test_infinite_bounds_forced_open(self):
        iv = Interval(-math.inf, 5)
        assert iv.lo_open

    def test_everything(self):
        iv = Interval.everything()
        assert iv.contains(0) and iv.contains(1e300)

    def test_point(self):
        iv = Interval.point(4)
        assert iv.is_point and iv.width == 0
        assert iv.contains(4) and not iv.contains(4.1)


class TestIntervalOps:
    def test_contains_open_bounds(self):
        iv = Interval(1, 5, lo_open=True, hi_open=True)
        assert not iv.contains(1)
        assert not iv.contains(5)
        assert iv.contains(3)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 5))
        assert not Interval(2, 5).contains_interval(Interval(0, 10))

    def test_contains_interval_openness(self):
        closed = Interval(1, 5)
        open_ = Interval(1, 5, lo_open=True)
        assert closed.contains_interval(open_)
        assert not open_.contains_interval(closed)

    def test_intersect_overlapping(self):
        assert Interval(0, 5).intersect(Interval(3, 8)) == Interval(3, 5)

    def test_intersect_disjoint(self):
        assert Interval(0, 2).intersect(Interval(3, 5)) is None

    def test_intersect_touching_closed(self):
        assert Interval(0, 3).intersect(Interval(3, 5)) == Interval.point(3)

    def test_intersect_touching_open(self):
        a = Interval(0, 3, hi_open=True)
        b = Interval(3, 5)
        assert a.intersect(b) is None

    def test_hull(self):
        assert Interval(0, 2).hull(Interval(5, 7)) == Interval(0, 7)

    def test_overlap_width(self):
        assert Interval(0, 5).overlap_width(Interval(3, 8)) == 2
        assert Interval(0, 2).overlap_width(Interval(3, 8)) == 0

    def test_touches_or_overlaps(self):
        assert Interval(0, 3).touches_or_overlaps(Interval(3, 5))
        a = Interval(0, 3, hi_open=True)
        b = Interval(3, 5, lo_open=True)
        assert not a.touches_or_overlaps(b)  # (..,3) and (3,..) leave a gap
        assert a.touches_or_overlaps(Interval(3, 5))


class TestIntervalSet:
    def test_normalizes_merges(self):
        s = IntervalSet([Interval(0, 2), Interval(1, 5)])
        assert s.intervals == (Interval(0, 5),)

    def test_merges_adjacent(self):
        s = IntervalSet([Interval(0, 2), Interval(2, 5)])
        assert len(s) == 1

    def test_keeps_disjoint(self):
        s = IntervalSet([Interval(0, 1), Interval(3, 5)])
        assert len(s) == 2
        assert s.total_width == 3

    def test_union(self):
        s = IntervalSet([Interval(0, 1)]).union(Interval(0.5, 4))
        assert s.intervals == (Interval(0, 4),)

    def test_intersect(self):
        a = IntervalSet([Interval(0, 2), Interval(4, 8)])
        b = IntervalSet([Interval(1, 5)])
        inter = a.intersect(b)
        assert inter.intervals == (Interval(1, 2), Interval(4, 5))

    def test_difference_splits(self):
        s = IntervalSet([Interval(0, 10)]).difference(
            Interval(3, 4, lo_open=True, hi_open=True))
        assert s.intervals == (Interval(0, 3), Interval(4, 10))

    def test_difference_openness_exact(self):
        s = IntervalSet([Interval(0, 10)]).difference(Interval(3, 4))
        first, second = s.intervals
        assert first.hi == 3 and first.hi_open
        assert second.lo == 4 and second.lo_open

    def test_difference_everything(self):
        s = IntervalSet([Interval(2, 5)]).difference(Interval(0, 10))
        assert s.is_empty

    def test_hull(self):
        s = IntervalSet([Interval(0, 1), Interval(5, 9)])
        assert s.hull() == Interval(0, 9)
        assert IntervalSet().hull() is None

    def test_contains(self):
        s = IntervalSet([Interval(0, 1), Interval(3, 4)])
        assert s.contains(0.5)
        assert not s.contains(2)

    def test_equality_and_hash(self):
        a = IntervalSet([Interval(0, 1), Interval(1, 2)])
        b = IntervalSet([Interval(0, 2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_empty_set(self):
        s = IntervalSet()
        assert s.is_empty and s.total_width == 0
        assert str(s) == "{}"
