"""Atomic predicates: negation, footprints, evaluation, canonical order."""

import pytest

from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnColumnPredicate,
                                      ColumnConstantPredicate, ColumnRef,
                                      Op)

T_U = ColumnRef("T", "u")
S_U = ColumnRef("S", "u")


class TestOp:
    def test_negations_are_involutions(self):
        for op in Op:
            assert op.negate().negate() is op

    def test_negate_table(self):
        assert Op.LT.negate() is Op.GE
        assert Op.LE.negate() is Op.GT
        assert Op.EQ.negate() is Op.NE

    def test_flip(self):
        assert Op.LT.flip() is Op.GT
        assert Op.GE.flip() is Op.LE
        assert Op.EQ.flip() is Op.EQ
        assert Op.NE.flip() is Op.NE


class TestColumnConstantPredicate:
    def test_negate_inverts_operator(self):
        pred = ColumnConstantPredicate(T_U, Op.GT, 5)
        assert pred.negate() == ColumnConstantPredicate(T_U, Op.LE, 5)

    def test_footprint_lt(self):
        fp = ColumnConstantPredicate(T_U, Op.LT, 3).to_interval_set()
        assert fp.contains(2.999) and not fp.contains(3)

    def test_footprint_le(self):
        fp = ColumnConstantPredicate(T_U, Op.LE, 3).to_interval_set()
        assert fp.contains(3) and not fp.contains(3.001)

    def test_footprint_eq_is_point(self):
        fp = ColumnConstantPredicate(T_U, Op.EQ, 3).to_interval_set()
        assert fp.contains(3) and not fp.contains(3.0001)
        assert fp.total_width == 0

    def test_footprint_ne_has_two_pieces(self):
        fp = ColumnConstantPredicate(T_U, Op.NE, 3).to_interval_set()
        assert len(fp) == 2
        assert fp.contains(2) and fp.contains(4) and not fp.contains(3)

    def test_footprint_preserves_big_ints(self):
        # int64 ids exceed the float mantissa; the footprint must not
        # round them.
        big = 1_237_657_855_534_432_934
        fp = ColumnConstantPredicate(T_U, Op.EQ, big).to_interval_set()
        assert fp.intervals[0].lo == big

    def test_footprint_categorical_raises(self):
        pred = ColumnConstantPredicate(T_U, Op.EQ, "star")
        with pytest.raises(TypeError):
            pred.to_interval_set()

    def test_is_numeric(self):
        assert ColumnConstantPredicate(T_U, Op.EQ, 1).is_numeric
        assert ColumnConstantPredicate(T_U, Op.EQ, 1.5).is_numeric
        assert not ColumnConstantPredicate(T_U, Op.EQ, "x").is_numeric
        assert not ColumnConstantPredicate(T_U, Op.EQ, True).is_numeric

    @pytest.mark.parametrize("op,value,probe,expected", [
        (Op.LT, 5, 4, True), (Op.LT, 5, 5, False),
        (Op.LE, 5, 5, True), (Op.GT, 5, 5, False),
        (Op.GE, 5, 5, True), (Op.EQ, 5, 5, True),
        (Op.NE, 5, 4, True), (Op.NE, 5, 5, False),
    ])
    def test_evaluate(self, op, value, probe, expected):
        assert ColumnConstantPredicate(T_U, op, value) \
            .evaluate(probe) is expected

    def test_evaluate_null_is_false(self):
        pred = ColumnConstantPredicate(T_U, Op.NE, 5)
        assert pred.evaluate(None) is False

    def test_str(self):
        assert str(ColumnConstantPredicate(T_U, Op.GT, 5)) == "T.u > 5"
        assert str(ColumnConstantPredicate(T_U, Op.EQ, "x")) == "T.u = 'x'"


class TestColumnColumnPredicate:
    def test_canonical_operand_order(self):
        a = ColumnColumnPredicate(T_U, Op.EQ, S_U)
        b = ColumnColumnPredicate(S_U, Op.EQ, T_U)
        assert a == b
        assert hash(a) == hash(b)

    def test_canonical_order_flips_operator(self):
        pred = ColumnColumnPredicate(T_U, Op.LT, S_U)
        # S.u sorts before T.u, so the stored form is S.u > T.u.
        assert pred.left == S_U and pred.op is Op.GT

    def test_negate(self):
        pred = ColumnColumnPredicate(S_U, Op.EQ, T_U)
        assert pred.negate().op is Op.NE

    def test_relations(self):
        pred = ColumnColumnPredicate(T_U, Op.EQ, S_U)
        assert pred.relations == frozenset({"T", "S"})

    def test_is_equijoin(self):
        assert ColumnColumnPredicate(T_U, Op.EQ, S_U).is_equijoin
        assert not ColumnColumnPredicate(T_U, Op.LT, S_U).is_equijoin

    def test_evaluate(self):
        pred = ColumnColumnPredicate(S_U, Op.EQ, T_U)
        assert pred.evaluate(3, 3)
        assert not pred.evaluate(3, 4)
        assert not pred.evaluate(None, 3)
