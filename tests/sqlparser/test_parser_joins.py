"""Parsing FROM clauses: comma lists, join flavours, aliases."""

import pytest

from repro.sqlparser import ast, parse
from repro.sqlparser.errors import ParseError, UnsupportedStatementError


class TestFromList:
    def test_single_table(self):
        stmt = parse("SELECT * FROM T")
        assert stmt.table_refs()[0].name == "T"

    def test_comma_list(self):
        stmt = parse("SELECT * FROM T, S, R")
        assert [r.name for r in stmt.table_refs()] == ["T", "S", "R"]

    def test_aliases(self):
        stmt = parse("SELECT * FROM PhotoObjAll p, SpecObjAll AS s")
        refs = stmt.table_refs()
        assert refs[0].alias == "p" and refs[1].alias == "s"
        assert refs[0].binding == "p"

    def test_schema_qualified_name(self):
        stmt = parse("SELECT * FROM dbo.PhotoObjAll")
        assert stmt.table_refs()[0].name == "PhotoObjAll"


class TestJoins:
    @pytest.mark.parametrize("sql,join_type", [
        ("SELECT * FROM T JOIN S ON T.u = S.u", ast.JoinType.INNER),
        ("SELECT * FROM T INNER JOIN S ON T.u = S.u", ast.JoinType.INNER),
        ("SELECT * FROM T LEFT JOIN S ON T.u = S.u", ast.JoinType.LEFT),
        ("SELECT * FROM T LEFT OUTER JOIN S ON T.u = S.u",
         ast.JoinType.LEFT),
        ("SELECT * FROM T RIGHT OUTER JOIN S ON T.u = S.u",
         ast.JoinType.RIGHT),
        ("SELECT * FROM T FULL OUTER JOIN S ON T.u = S.u",
         ast.JoinType.FULL),
    ])
    def test_join_types(self, sql, join_type):
        stmt = parse(sql)
        join = stmt.from_items[0]
        assert isinstance(join, ast.Join)
        assert join.join_type is join_type
        assert join.condition is not None

    def test_cross_join_no_condition(self):
        stmt = parse("SELECT * FROM T CROSS JOIN S")
        join = stmt.from_items[0]
        assert join.join_type is ast.JoinType.CROSS
        assert join.condition is None

    def test_natural_join(self):
        stmt = parse("SELECT * FROM T NATURAL JOIN S")
        assert stmt.from_items[0].join_type is ast.JoinType.NATURAL

    def test_inner_join_requires_on(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM T JOIN S")

    def test_chained_joins(self):
        stmt = parse("SELECT * FROM T JOIN S ON T.u = S.u "
                     "JOIN R ON S.v = R.v")
        outer = stmt.from_items[0]
        assert isinstance(outer.left, ast.Join)
        assert [r.name for r in stmt.table_refs()] == ["T", "S", "R"]

    def test_join_with_parenthesized_condition(self):
        stmt = parse("SELECT * FROM T JOIN S ON (T.u = S.u)")
        assert isinstance(stmt.from_items[0].condition, ast.Comparison)

    def test_join_with_compound_condition(self):
        stmt = parse("SELECT * FROM T JOIN S ON T.u = S.u AND S.v > 3")
        assert isinstance(stmt.from_items[0].condition, ast.AndCondition)

    def test_mixed_commas_and_joins(self):
        stmt = parse("SELECT * FROM T, S JOIN R ON S.v = R.v")
        assert len(stmt.from_items) == 2
        assert len(stmt.table_refs()) == 3

    def test_derived_table_unsupported(self):
        with pytest.raises(UnsupportedStatementError):
            parse("SELECT * FROM (SELECT * FROM T) x")
