"""Tokenizer behaviour across the SkyServer lexical variety."""

import pytest

from repro.sqlparser.errors import LexError
from repro.sqlparser.lexer import Token, TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers(self):
        tokens = tokenize("PhotoObjAll objid _x my_table2")
        assert all(t.type is TokenType.IDENT for t in tokens[:-1])

    def test_eof_token(self):
        assert tokenize("")[0].type is TokenType.EOF

    def test_punctuation(self):
        values = [t.value for t in tokenize("( ) , . * ;")[:-1]]
        assert values == ["(", ")", ",", ".", "*", ";"]


class TestNumbers:
    @pytest.mark.parametrize("text", ["1", "123", "1.5", ".5", "1e10",
                                      "2.5E-3", "1237657855534432934"])
    def test_number_forms(self, text):
        token = tokenize(text)[0]
        assert token.type is TokenType.NUMBER
        assert token.value == text

    def test_number_followed_by_dot_not_greedy(self):
        tokens = tokenize("1.5.6")
        assert tokens[0].type is TokenType.NUMBER


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'star'")[0]
        assert token.type is TokenType.STRING and token.value == "star"

    def test_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_unterminated_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")


class TestQuotedIdentifiers:
    def test_bracketed(self):
        token = tokenize("[My Table]")[0]
        assert token.type is TokenType.IDENT and token.value == "My Table"

    def test_double_quoted(self):
        token = tokenize('"PhotoObjAll"')[0]
        assert token.type is TokenType.IDENT

    def test_unterminated_bracket(self):
        with pytest.raises(LexError):
            tokenize("[oops")


class TestOperators:
    @pytest.mark.parametrize("text,expected", [
        ("<", "<"), ("<=", "<="), ("=", "="), (">", ">"), (">=", ">="),
        ("<>", "<>"), ("!=", "<>"),
    ])
    def test_comparison_operators(self, text, expected):
        token = tokenize(text)[0]
        assert token.type is TokenType.OPERATOR
        assert token.value == expected

    def test_le_not_split(self):
        tokens = tokenize("a<=5")
        assert [t.value for t in tokens[:-1]] == ["a", "<=", "5"]


class TestComments:
    def test_line_comment(self):
        tokens = tokenize("SELECT -- a comment\n1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]

    def test_block_comment(self):
        tokens = tokenize("SELECT /* skip\nthis */ 1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("SELECT /* oops")


class TestErrors:
    def test_illegal_character(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("SELECT ~ FROM T")
        assert excinfo.value.position == 7

    def test_is_keyword_helper(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("WHERE")
