"""Parsing plain SELECT statements."""

import pytest

from repro.sqlparser import ast, parse
from repro.sqlparser.errors import ParseError


class TestSelectList:
    def test_star(self):
        stmt = parse("SELECT * FROM T")
        assert isinstance(stmt.select_items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse("SELECT T.* FROM T")
        star = stmt.select_items[0].expr
        assert isinstance(star, ast.Star) and star.table == "T"

    def test_columns_with_aliases(self):
        stmt = parse("SELECT u AS a, v b, w FROM T")
        assert stmt.select_items[0].alias == "a"
        assert stmt.select_items[1].alias == "b"
        assert stmt.select_items[2].alias is None

    def test_distinct_and_top(self):
        stmt = parse("SELECT DISTINCT TOP 50 u FROM T")
        assert stmt.distinct and stmt.top == 50

    def test_function_call(self):
        stmt = parse("SELECT COUNT(*), SUM(v) FROM T")
        count = stmt.select_items[0].expr
        assert isinstance(count, ast.FunctionCall)
        assert isinstance(count.args[0], ast.Star)

    def test_select_into_dropped(self):
        stmt = parse("SELECT u INTO mydb.results FROM T WHERE u > 1")
        assert stmt.where is not None

    def test_arithmetic_select_item(self):
        stmt = parse("SELECT u + v * 2 FROM T")
        expr = stmt.select_items[0].expr
        assert isinstance(expr, ast.Arithmetic) and expr.op == "+"


class TestWhere:
    def test_comparison(self):
        stmt = parse("SELECT * FROM T WHERE u >= 1")
        cond = stmt.where
        assert isinstance(cond, ast.Comparison) and cond.op == ">="

    def test_and_or_precedence(self):
        stmt = parse("SELECT * FROM T WHERE a > 1 OR b > 2 AND c > 3")
        assert isinstance(stmt.where, ast.OrCondition)
        right = stmt.where.children[1]
        assert isinstance(right, ast.AndCondition)

    def test_parenthesized_condition(self):
        stmt = parse("SELECT * FROM T WHERE (a > 1 OR b > 2) AND c > 3")
        assert isinstance(stmt.where, ast.AndCondition)
        assert isinstance(stmt.where.children[0], ast.OrCondition)

    def test_parenthesized_expression_not_condition(self):
        stmt = parse("SELECT * FROM T WHERE (a + b) > 5")
        assert isinstance(stmt.where, ast.Comparison)
        assert isinstance(stmt.where.left, ast.Arithmetic)

    def test_between(self):
        stmt = parse("SELECT * FROM T WHERE u BETWEEN 1 AND 8")
        assert isinstance(stmt.where, ast.Between)

    def test_not_between(self):
        stmt = parse("SELECT * FROM T WHERE u NOT BETWEEN 1 AND 8")
        assert stmt.where.negated

    def test_in_list(self):
        stmt = parse("SELECT * FROM T WHERE u IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.values) == 3

    def test_not_in_list(self):
        stmt = parse("SELECT * FROM T WHERE u NOT IN (1, 2)")
        assert stmt.where.negated

    def test_like(self):
        stmt = parse("SELECT * FROM T WHERE name LIKE 'gal%'")
        assert isinstance(stmt.where, ast.Like)
        assert stmt.where.pattern == "gal%"

    def test_is_null(self):
        stmt = parse("SELECT * FROM T WHERE u IS NULL")
        assert isinstance(stmt.where, ast.IsNull) and not stmt.where.negated

    def test_is_not_null(self):
        stmt = parse("SELECT * FROM T WHERE u IS NOT NULL")
        assert stmt.where.negated

    def test_not_condition(self):
        stmt = parse("SELECT * FROM T WHERE NOT (u > 5)")
        assert isinstance(stmt.where, ast.NotCondition)

    def test_negative_literal(self):
        stmt = parse("SELECT * FROM T WHERE dec >= -90")
        assert stmt.where.right.value == -90

    def test_bang_equals_normalized(self):
        stmt = parse("SELECT * FROM T WHERE u != 5")
        assert stmt.where.op == "<>"

    def test_constant_on_left(self):
        stmt = parse("SELECT * FROM T WHERE 5 < u")
        assert isinstance(stmt.where.left, ast.Literal)


class TestOtherClauses:
    def test_group_by_having(self):
        stmt = parse("SELECT u, SUM(v) FROM T GROUP BY u "
                     "HAVING SUM(v) > 10")
        assert len(stmt.group_by) == 1
        assert isinstance(stmt.having, ast.Comparison)

    def test_order_by(self):
        stmt = parse("SELECT * FROM T ORDER BY u DESC, v")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending

    def test_limit_recorded(self):
        stmt = parse("SELECT * FROM T LIMIT 10")
        assert stmt.limit == 10

    def test_limit_offset(self):
        stmt = parse("SELECT * FROM T LIMIT 10 OFFSET 5")
        assert stmt.limit == 10

    def test_trailing_semicolon(self):
        assert parse("SELECT * FROM T;").from_items

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM T garbage extra tokens ,")


class TestExpressions:
    def test_qualified_udf_call(self):
        stmt = parse("SELECT dbo.fGetNearbyObjEq(180.0, 0.5, 3) FROM T")
        call = stmt.select_items[0].expr
        assert isinstance(call, ast.FunctionCall)
        assert call.name == "dbo.fGetNearbyObjEq"

    def test_null_literal(self):
        stmt = parse("SELECT * FROM T WHERE u = NULL")
        assert stmt.where.right.value is None

    def test_string_roundtrip(self):
        stmt = parse("SELECT * FROM T WHERE class = 'star'")
        assert stmt.where.right.value == "star"

    def test_scientific_number(self):
        stmt = parse("SELECT * FROM T WHERE u > 1.5e3")
        assert stmt.where.right.value == 1500.0

    def test_count_distinct(self):
        stmt = parse("SELECT COUNT(DISTINCT u) FROM T")
        assert isinstance(stmt.select_items[0].expr, ast.FunctionCall)
