"""Parsing nested queries: EXISTS, IN, ANY/ALL/SOME, scalar subqueries."""

from repro.sqlparser import ast, parse


class TestExists:
    def test_exists(self):
        stmt = parse("SELECT * FROM T WHERE EXISTS "
                     "(SELECT * FROM S WHERE S.u = T.u)")
        assert isinstance(stmt.where, ast.Exists)
        inner = stmt.where.query
        assert inner.table_refs()[0].name == "S"

    def test_not_exists(self):
        stmt = parse("SELECT * FROM T WHERE NOT EXISTS "
                     "(SELECT * FROM S)")
        assert isinstance(stmt.where, ast.NotCondition)
        assert isinstance(stmt.where.child, ast.Exists)

    def test_multiple_exists(self):
        stmt = parse(
            "SELECT * FROM T WHERE T.u > 1 "
            "AND EXISTS (SELECT * FROM S WHERE S.v < 2) "
            "AND EXISTS (SELECT * FROM S WHERE S.v > 7)")
        assert isinstance(stmt.where, ast.AndCondition)
        exists_children = [c for c in stmt.where.children
                           if isinstance(c, ast.Exists)]
        assert len(exists_children) == 2

    def test_nested_exists_two_levels(self):
        stmt = parse(
            "SELECT * FROM T WHERE EXISTS (SELECT * FROM S WHERE "
            "S.u = T.u AND EXISTS (SELECT * FROM R WHERE R.v = S.v))")
        outer = stmt.where.query
        inner_exists = outer.where.children[1]
        assert isinstance(inner_exists, ast.Exists)
        assert inner_exists.query.table_refs()[0].name == "R"


class TestInSubquery:
    def test_in_subquery(self):
        stmt = parse("SELECT * FROM T WHERE T.u IN (SELECT S.u FROM S)")
        assert isinstance(stmt.where, ast.InSubquery)
        assert not stmt.where.negated

    def test_not_in_subquery(self):
        stmt = parse("SELECT * FROM T WHERE T.u NOT IN "
                     "(SELECT S.u FROM S)")
        assert stmt.where.negated

    def test_in_subquery_with_where(self):
        stmt = parse("SELECT * FROM T WHERE T.u IN "
                     "(SELECT S.u FROM S WHERE S.v = 12)")
        assert stmt.where.query.where is not None


class TestQuantified:
    def test_any(self):
        stmt = parse("SELECT * FROM T WHERE T.u > ANY (SELECT S.u FROM S)")
        cond = stmt.where
        assert isinstance(cond, ast.QuantifiedComparison)
        assert cond.quantifier == "ANY" and cond.op == ">"

    def test_some_normalizes_to_any(self):
        stmt = parse("SELECT * FROM T WHERE T.u = SOME (SELECT S.u FROM S)")
        assert stmt.where.quantifier == "ANY"

    def test_all(self):
        stmt = parse("SELECT * FROM T WHERE T.u >= ALL "
                     "(SELECT S.u FROM S)")
        assert stmt.where.quantifier == "ALL"


class TestScalarSubquery:
    def test_scalar_comparison(self):
        stmt = parse("SELECT * FROM T WHERE T.u = "
                     "(SELECT S.u FROM S WHERE S.v = 12)")
        assert isinstance(stmt.where, ast.Comparison)
        assert isinstance(stmt.where.right, ast.ScalarSubquery)

    def test_scalar_on_left(self):
        stmt = parse("SELECT * FROM T WHERE (SELECT MAX(S.u) FROM S) > T.u")
        assert isinstance(stmt.where.left, ast.ScalarSubquery)

    def test_scalar_in_select_list(self):
        stmt = parse("SELECT (SELECT COUNT(*) FROM S) FROM T")
        assert isinstance(stmt.select_items[0].expr, ast.ScalarSubquery)


class TestDeepNesting:
    def test_three_levels(self):
        stmt = parse(
            "SELECT * FROM T WHERE EXISTS (SELECT * FROM S WHERE EXISTS "
            "(SELECT * FROM R WHERE R.x IN (SELECT Q.x FROM Q)))")
        level1 = stmt.where.query
        level2 = level1.where.query
        level3 = level2.where.query
        assert level3.table_refs()[0].name == "Q"

    def test_subquery_with_aggregates(self):
        stmt = parse(
            "SELECT * FROM T WHERE T.u IN (SELECT S.u FROM S "
            "GROUP BY S.u HAVING COUNT(*) > 5)")
        inner = stmt.where.query
        assert inner.having is not None
