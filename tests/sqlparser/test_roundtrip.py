"""Property test: printing a parsed statement reparses to the same AST.

``str(SelectStatement)`` is used in diagnostics and tests; this guards
both the printer and the parser against drift — for every generated AST,
``parse(str(ast))`` must be structurally identical (ASTs are frozen
dataclasses, so ``==`` is deep).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlparser import ast, parse

_idents = st.sampled_from(["T", "S", "PhotoObjAll", "x1"])
_columns = st.sampled_from(["u", "v", "ra", "dec"])
_numbers = st.sampled_from([0, 1, 5, -3, 2.5, 1000])
_strings = st.sampled_from(["star", "galaxy", "it's"])
_ops = st.sampled_from(["<", "<=", "=", ">", ">=", "<>"])


@st.composite
def scalar_exprs(draw, depth=1):
    kind = draw(st.integers(0, 3 if depth > 0 else 2))
    if kind == 0:
        return ast.ColumnExpr(draw(st.none() | _idents), draw(_columns))
    if kind == 1:
        return ast.Literal(draw(_numbers))
    if kind == 2:
        return ast.Literal(draw(_strings))
    op = draw(st.sampled_from(["+", "-", "*", "/"]))
    return ast.Arithmetic(op, draw(scalar_exprs(depth=depth - 1)),
                          draw(scalar_exprs(depth=depth - 1)))


@st.composite
def conditions(draw, depth=2):
    if depth == 0 or draw(st.integers(0, 2)) == 0:
        kind = draw(st.integers(0, 3))
        column = ast.ColumnExpr(draw(st.none() | _idents),
                                draw(_columns))
        if kind == 0:
            return ast.Comparison(column, draw(_ops),
                                  ast.Literal(draw(_numbers)))
        if kind == 1:
            lo, hi = sorted([draw(_numbers), draw(_numbers)],
                            key=lambda v: float(v))
            return ast.Between(column, ast.Literal(lo), ast.Literal(hi),
                               draw(st.booleans()))
        if kind == 2:
            values = tuple(ast.Literal(v) for v in
                           draw(st.lists(_numbers, min_size=1,
                                         max_size=3)))
            return ast.InList(column, values, draw(st.booleans()))
        return ast.IsNull(column, draw(st.booleans()))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return ast.NotCondition(draw(conditions(depth=depth - 1)))
    children = tuple(draw(st.lists(conditions(depth=depth - 1),
                                   min_size=2, max_size=3)))
    if kind == 1:
        return ast.AndCondition(children)
    return ast.OrCondition(children)


@st.composite
def statements(draw):
    n_tables = draw(st.integers(1, 2))
    names = draw(st.lists(_idents, min_size=n_tables, max_size=n_tables,
                          unique=True))
    from_items = tuple(ast.TableRef(name) for name in names)
    select_items = (ast.SelectItem(ast.Star()),)
    where = draw(st.none() | conditions())
    order_by = ()
    if draw(st.booleans()):
        order_by = (ast.OrderItem(
            ast.ColumnExpr(None, draw(_columns)),
            draw(st.booleans())),)
    return ast.SelectStatement(
        select_items=select_items,
        from_items=from_items,
        where=where,
        order_by=order_by,
        top=draw(st.none() | st.integers(1, 100)),
        distinct=draw(st.booleans()),
    )


@settings(max_examples=120, deadline=None)
@given(statements())
def test_print_parse_roundtrip(statement):
    printed = str(statement)
    reparsed = parse(printed)
    assert reparsed == statement, printed


@settings(max_examples=60, deadline=None)
@given(statements())
def test_roundtrip_is_fixed_point(statement):
    once = str(parse(str(statement)))
    twice = str(parse(once))
    assert once == twice


def test_roundtrip_nested_query():
    sql = ("SELECT * FROM T WHERE T.u > 3 AND EXISTS "
           "(SELECT * FROM S WHERE S.u = T.u AND S.v < 2)")
    statement = parse(sql)
    assert parse(str(statement)) == statement


def test_roundtrip_joins():
    sql = ("SELECT * FROM T LEFT JOIN S ON T.u = S.u "
           "JOIN R ON S.v = R.v")
    statement = parse(sql)
    assert parse(str(statement)) == statement


def test_roundtrip_group_having():
    sql = ("SELECT T.u, SUM(T.v) FROM T GROUP BY T.u "
           "HAVING SUM(T.v) > 10")
    statement = parse(sql)
    assert parse(str(statement)) == statement
