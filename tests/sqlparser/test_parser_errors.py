"""Failure taxonomy: the paper's three classes of unparseable statements."""

import pytest

from repro.sqlparser import parse
from repro.sqlparser.errors import (LexError, ParseError, SqlError,
                                    UnsupportedStatementError)


class TestUnsupportedStatements:
    @pytest.mark.parametrize("sql,keyword", [
        ("CREATE TABLE x (a int)", "CREATE"),
        ("DECLARE @ra float", "DECLARE"),
        ("INSERT INTO T VALUES (1)", "INSERT"),
        ("UPDATE T SET u = 1", "UPDATE"),
        ("DELETE FROM T", "DELETE"),
        ("DROP TABLE T", "DROP"),
        ("EXEC spMyProc 1", "EXEC"),
        ("WITH cte AS (SELECT 1) SELECT * FROM cte", "WITH"),
    ])
    def test_statement_keywords(self, sql, keyword):
        with pytest.raises(UnsupportedStatementError) as excinfo:
            parse(sql)
        assert excinfo.value.keyword == keyword

    def test_union_unsupported(self):
        with pytest.raises(UnsupportedStatementError):
            parse("SELECT u FROM T UNION SELECT u FROM S")

    def test_case_expression_unsupported(self):
        with pytest.raises(UnsupportedStatementError):
            parse("SELECT CASE WHEN u > 1 THEN 1 ELSE 0 END FROM T")


class TestParseErrors:
    @pytest.mark.parametrize("sql", [
        "SELECT FROM T",
        "SELECT * FROM",
        "SELECT * FROM T WHERE",
        "SELECT * FROM T WHERE u >",
        "SELECT * FROM T WHERE u BETWEEN 1",
        "SELECT * FROM T GROUP",
        "SELECT * FROM T ORDER u",
        "SELECT * FROM T WHERE u IN (",
        "SELECT TOP FROM T",
        "SELECT * FROM T LIMIT x",
        "SELCT * FROM T",
    ])
    def test_malformed(self, sql):
        with pytest.raises(ParseError):
            parse(sql)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("SELECT FROM T")
        assert excinfo.value.position >= 0

    def test_dangling_not(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM T WHERE u NOT 5")


class TestLexErrors:
    def test_illegal_character(self):
        with pytest.raises(LexError):
            parse("SELECT ? FROM T")

    def test_all_errors_are_sql_errors(self):
        for bad in ["CREATE TABLE x (a int)", "SELECT FROM",
                    "SELECT 'oops FROM T"]:
            with pytest.raises(SqlError):
                parse(bad)


class TestRobustness:
    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse("")

    def test_whitespace_only(self):
        with pytest.raises(ParseError):
            parse("   \n\t ")

    def test_comment_only(self):
        with pytest.raises(ParseError):
            parse("-- just a comment")

    def test_deeply_parenthesized(self):
        depth = 30
        sql = ("SELECT * FROM T WHERE " + "(" * depth + "u > 1"
               + ")" * depth)
        stmt = parse(sql)
        assert stmt.where is not None
