"""Differential conformance battery: vectorized kernel vs oracle.

The kernel's contract is *bitwise* agreement with the pure-Python
:class:`PredicateDistance`/:class:`QueryDistance` oracle, not just
closeness: hypothesis generates predicate populations across every
supported kind — numeric intervals and rays (GE/GT/LE/LT), equality and
inequality points, categorical EQ/NE and ordered LT–GE footprints,
column-column joins, multi-predicate and empty (FALSE) clauses, TRUE
(empty-CNF) areas, duplicate spelling variants (``x = 5`` vs
``x = 5.0``) — and every condensed block entry must equal the oracle's
per-pair evaluation exactly (the issue's 1e-12 budget is therefore met
with zero slack).

Edge cases the kernel must *refuse* rather than approximate — NaN/inf
constants, bool constants whose ``True == 1`` identity makes even the
oracle order-dependent, > 2^53 integers at resolution 0, footprint
widths that overflow float64 — are pinned separately: the partition
falls back to the oracle path and the produced block still matches by
construction.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnColumnPredicate,
                                      ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core.area import AccessArea
from repro.distance import QueryDistance, condensed_index
from repro.distance.kernel import (KernelUnsupported, PackedPartition,
                                   compute_kernel_blocks,
                                   kernel_available)
from repro.distance.parallel import _evaluate_partition
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)

pytestmark = pytest.mark.skipif(not kernel_available(),
                                reason="kernel requires numpy")

def _dist_stats():
    """The conftest ``stats`` catalog, rebuilt per hypothesis example
    (function-scoped fixtures are off-limits under ``@given``)."""
    schema = Schema("dist")
    schema.add(Relation("T", (
        Column("a", ColumnType.FLOAT, Interval(0.0, 5.0)),
        Column("a1", ColumnType.FLOAT, Interval(0.0, 5.0)),
        Column("a2", ColumnType.FLOAT, Interval(0.0, 5.0)),
        Column("s", ColumnType.VARCHAR, categories=("x", "y", "z")),
    )))
    schema.add(Relation("S", (
        Column("b", ColumnType.FLOAT, Interval(0.0, 10.0)),
        Column("u", ColumnType.FLOAT, Interval(0.0, 10.0)),
    )))
    return StatisticsCatalog.from_exact_content(schema, {
        ("T", "a"): Interval(0.0, 5.0),
        ("T", "a1"): Interval(0.0, 5.0),
        ("T", "a2"): Interval(0.0, 5.0),
        ("S", "b"): Interval(0.0, 10.0),
        ("S", "u"): Interval(0.0, 10.0),
    })


T_A = ColumnRef("T", "a")
T_A1 = ColumnRef("T", "a1")
T_A2 = ColumnRef("T", "a2")
T_S = ColumnRef("T", "s")

OPS = list(Op)


def _oracle_block(stats, areas, resolution):
    """Per-pair pure-Python condensed block with a fresh metric (no
    cache cross-talk with the kernel's pack-time oracle calls)."""
    metric = QueryDistance(stats, resolution=resolution)
    values, _ = _evaluate_partition(metric, areas, range(len(areas)))
    return values


def _assert_block_matches(stats, areas, resolution, *,
                          expect_packed=None):
    metric = QueryDistance(stats, resolution=resolution)
    blocks, kstats = compute_kernel_blocks(
        areas, metric, [list(range(len(areas)))])
    if expect_packed is True:
        assert kstats.partitions_packed == 1, kstats.summary()
    if expect_packed is False:
        assert kstats.partitions_fallback == 1, kstats.summary()
    want = _oracle_block(stats, areas, resolution)
    got = list(blocks[0])
    assert len(got) == len(want)
    for pair, (value, reference) in enumerate(zip(got, want)):
        assert value == reference, (
            f"pair {pair}: kernel {value!r} != oracle {reference!r}")
    return kstats


# -- strategies --------------------------------------------------------------

numeric_values = st.one_of(
    st.floats(min_value=-10.0, max_value=15.0, allow_nan=False),
    st.integers(min_value=-5, max_value=10),
    st.sampled_from([5, 5.0, 2.5, 0.0, -0.0]))

numeric_predicates = st.builds(
    ColumnConstantPredicate,
    st.sampled_from([T_A, T_A1, T_A2]),
    st.sampled_from(OPS),
    numeric_values)

categorical_predicates = st.builds(
    ColumnConstantPredicate,
    st.just(T_S),
    st.sampled_from(OPS),
    st.sampled_from(["x", "y", "z", "w", ""]))

# Strings on a numeric column: the oracle's mixed-type and empty-
# vocabulary branches.
mixed_type_predicates = st.builds(
    ColumnConstantPredicate,
    st.just(T_A),
    st.sampled_from([Op.EQ, Op.NE, Op.LT]),
    st.sampled_from(["x", "q"]))

join_predicates = st.builds(
    lambda pair, op: ColumnColumnPredicate(pair[0], op, pair[1]),
    st.sampled_from([(T_A, T_A1), (T_A, T_A2), (T_A1, T_A2)]),
    st.sampled_from([Op.EQ, Op.LT, Op.GE]))

predicates = st.one_of(
    numeric_predicates, numeric_predicates, numeric_predicates,
    categorical_predicates, join_predicates, mixed_type_predicates)

clauses = st.lists(predicates, min_size=0, max_size=3).map(Clause.of)

areas = st.lists(clauses, min_size=0, max_size=4).map(
    lambda cl: AccessArea(("T",), CNF.of(cl)))

populations = st.lists(areas, min_size=1, max_size=10)

resolutions = st.sampled_from([0.0, 0.01, 0.05])


class TestHypothesisConformance:
    @settings(max_examples=60, deadline=None)
    @given(population=populations, resolution=resolutions)
    def test_block_values_match_oracle_bitwise(self, population,
                                               resolution):
        _assert_block_matches(_dist_stats(), population, resolution,
                              expect_packed=True)

    @settings(max_examples=30, deadline=None)
    @given(population=st.lists(areas, min_size=2, max_size=8),
           resolution=resolutions)
    def test_pair_rows_match_condensed_block(self, population,
                                             resolution):
        metric = QueryDistance(_dist_stats(), resolution=resolution)
        pack = PackedPartition(population, metric)
        block = pack.condensed_block()
        m = len(population)
        for i in range(m):
            others = [j for j in range(m) if j != i]
            row = pack.pair_rows(i, others)
            for j, value in zip(others, row):
                assert value == block[condensed_index(i, j, m)]
            assert pack.pair_rows(i, [i])[0] == 0.0


def _area(*clause_preds):
    return AccessArea(("T",), CNF.of(
        [Clause.of(list(preds)) for preds in clause_preds]))


class TestSpellingVariants:
    """Value-equal predicate spellings must share one packed row the
    way they share one oracle memo entry."""

    def test_int_float_duplicates_in_one_cnf(self, stats):
        # CNF.of dedupes clauses by *string*, so ``a = 5`` and
        # ``a = 5.0`` survive as distinct clauses that are value-equal:
        # the pack must keep both positions.
        a1 = _area([ColumnConstantPredicate(T_A, Op.EQ, 5)],
                   [ColumnConstantPredicate(T_A, Op.EQ, 5.0)])
        a2 = _area([ColumnConstantPredicate(T_A, Op.GE, 2.0)])
        _assert_block_matches(stats, [a1, a2, a1], 0.01,
                              expect_packed=True)


class TestUnsupportedFallsBackExactly:
    """Kinds the kernel refuses: the partition falls back to the
    per-pair oracle and still matches it (trivially, but the plumbing —
    stats, block shapes, mixed populations — is what's under test)."""

    def test_nan_constant(self, stats):
        bad = _area([ColumnConstantPredicate(T_A, Op.EQ, math.nan)])
        good = _area([ColumnConstantPredicate(T_A, Op.LE, 3.0)])
        kstats = _assert_block_matches(stats, [bad, good], 0.01,
                                       expect_packed=False)
        assert kstats.pairs_fallback == 1

    def test_inf_constant(self, stats):
        bad = _area([ColumnConstantPredicate(T_A, Op.LT, math.inf)])
        good = _area([ColumnConstantPredicate(T_A, Op.GT, 1.0)])
        _assert_block_matches(stats, [bad, good], 0.01,
                              expect_packed=False)

    def test_bool_constant(self, stats):
        bad = _area([ColumnConstantPredicate(T_A, Op.EQ, True)])
        good = _area([ColumnConstantPredicate(T_A, Op.EQ, 1)])
        _assert_block_matches(stats, [bad, good], 0.01,
                              expect_packed=False)

    def test_huge_int_at_resolution_zero(self, stats):
        # > 2^53: not exactly representable in float64, so the width
        # arithmetic the oracle does in exact int space cannot be
        # replayed; at resolution 0 the pack must refuse.
        huge = 2 ** 60 + 1
        a1 = _area([ColumnConstantPredicate(T_A, Op.EQ, huge)])
        a2 = _area([ColumnConstantPredicate(T_A, Op.EQ, huge + 2)])
        _assert_block_matches(stats, [a1, a2], 0.0)

    def test_unsupported_reported_not_raised(self, stats):
        metric = QueryDistance(stats)
        with pytest.raises(KernelUnsupported):
            PackedPartition(
                [_area([ColumnConstantPredicate(T_A, Op.EQ, math.nan)])],
                metric)

    def test_subclassed_metric_refused(self, stats):
        class Tweaked(QueryDistance):
            def d_conj(self, cnf1, cnf2):  # pragma: no cover
                return 0.0

        with pytest.raises(KernelUnsupported):
            PackedPartition(
                [_area([ColumnConstantPredicate(T_A, Op.EQ, 1.0)])],
                Tweaked(stats))


class TestDegenerateAccessWidths:
    """The ``_same_column_numeric`` guard ladder: infinite access width
    → structural (op, value) equality; zero width → value equality."""

    @staticmethod
    def _catalog(interval):
        schema = Schema("edge")
        schema.add(Relation("T", (
            Column("a", ColumnType.FLOAT, Interval(0.0, 5.0)),)))
        content = {} if interval is None else {("T", "a"): interval}
        return StatisticsCatalog.from_exact_content(schema, content)

    def test_zero_width_access(self):
        stats = self._catalog(Interval(2.0, 2.0))
        areas_ = [
            _area([ColumnConstantPredicate(T_A, Op.LT, 3.0)]),
            _area([ColumnConstantPredicate(T_A, Op.GT, 3)]),
            _area([ColumnConstantPredicate(T_A, Op.GE, 3.0)]),
        ]
        _assert_block_matches(stats, areas_, 0.01, expect_packed=True)

    def test_unknown_column_infinite_width(self):
        schema = Schema("edge")
        schema.add(Relation("T", (
            Column("a", ColumnType.FLOAT, Interval(0.0, 5.0)),)))
        stats = StatisticsCatalog.from_exact_content(schema, {})
        ghost = ColumnRef("T", "ghost")
        areas_ = [
            _area([ColumnConstantPredicate(ghost, Op.LT, 3.0)]),
            _area([ColumnConstantPredicate(ghost, Op.LT, 3)]),
            _area([ColumnConstantPredicate(ghost, Op.GE, 3.0)]),
        ]
        _assert_block_matches(stats, areas_, 0.01, expect_packed=True)

    def test_overflowing_footprint_widths_fall_back(self):
        # Near-max access width: widened footprint widths add past
        # float64, where numpy and Python disagree on NaN propagation —
        # the pack must refuse rather than approximate.
        stats = self._catalog(Interval(-8.0e307, 8.0e307))
        areas_ = [
            _area([ColumnConstantPredicate(T_A, Op.NE, 0.0)]),
            _area([ColumnConstantPredicate(T_A, Op.LE, 1.0)]),
        ]
        _assert_block_matches(stats, areas_, 0.01)


class TestKernelMatrixMode:
    def test_kernel_mode_equals_sparse_mode(self, stats):
        from repro.distance.block_sparse import compute_matrix
        population = [
            _area([ColumnConstantPredicate(T_A, Op.LE, float(i))])
            for i in range(5)
        ] + [
            AccessArea(("S",), CNF.of([Clause.of(
                [ColumnConstantPredicate(ColumnRef("S", "b"), Op.GE,
                                         float(i))])]))
            for i in range(4)
        ]
        sparse = compute_matrix(population, QueryDistance(stats),
                                mode="sparse", eps=0.12)
        kernel = compute_matrix(population, QueryDistance(stats),
                                mode="kernel", eps=0.12)
        assert type(sparse) is type(kernel)
        for i in range(len(population)):
            assert list(sparse.row(i)) == list(kernel.row(i))
            assert sparse.neighbors(i, 0.12) == kernel.neighbors(i, 0.12)
