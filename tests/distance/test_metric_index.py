"""VP-tree neighbour index correctness.

The load-bearing property: subtree pruning never drops a true
eps-neighbour.  This is sharper than it sounds because the access-area
distance is only a **semi-metric** — the triangle inequality fails
(``TestSemiMetric`` pins a concrete violation), so the tree must prune
with certified lower bounds rather than pivot/threshold triangle
arithmetic.  Checked by hypothesis against brute-force rows at
randomized radii with a tiny leaf size (so real prune structure exists
even for small populations) over populations that mix one- and
two-clause CNFs — exactly the shape that produces triangle violations
— plus the degenerate shapes the tree must survive: all points
identical (distance 0 everywhere — the split degenerates and the tree
must fall back to a scanned leaf), singleton partitions, and radii at
or above the partition exactness bound, where the index must refuse
rather than silently under-report (mirroring the block-sparse
contract, including ``partitioned_dbscan``'s ``on_inexact``
behaviour).
"""

import math

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.clustering import DBSCAN, partitioned_dbscan
from repro.core.area import AccessArea
from repro.distance import QueryDistance
from repro.distance.block_sparse import (BlockSparseDistanceMatrix,
                                         compute_matrix)
from repro.distance.kernel import PackedPartition
from repro.distance.metric_index import (VPTree, VPTreeIndex,
                                         VPTreeStats)
from repro.obs import get_registry
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)

T_X = ColumnRef("T", "x")
S_X = ColumnRef("S", "x")


def _stats():
    schema = Schema("vp")
    for name in ("T", "S"):
        schema.add(Relation(name, (
            Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    return StatisticsCatalog.from_exact_content(schema, {
        ("T", "x"): Interval(0.0, 100.0),
        ("S", "x"): Interval(0.0, 100.0),
    })


def _window(relation, lo, hi):
    ref = ColumnRef(relation, "x")
    return AccessArea((relation,), CNF.of([
        Clause.of([ColumnConstantPredicate(ref, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(ref, Op.LE, hi)]),
    ]))


def _half(relation, op, value):
    ref = ColumnRef(relation, "x")
    return AccessArea((relation,), CNF.of([
        Clause.of([ColumnConstantPredicate(ref, op, value)]),
    ]))


windows = st.builds(
    lambda lo, width: _window("T", lo, lo + width),
    st.floats(min_value=0.0, max_value=80.0),
    st.floats(min_value=0.5, max_value=20.0))

#: Single-clause half-lines: mixing these with the two-clause windows
#: produces the unequal-clause-count populations where the distance
#: violates the triangle inequality, so the pruning property is
#: exercised where triangle-based pruning would be unsound.
half_windows = st.builds(
    lambda value, le: _half("T", Op.LE if le else Op.GE, value),
    st.floats(min_value=0.0, max_value=100.0),
    st.booleans())

areas = st.one_of(windows, half_windows)


class TestPruningNeverDropsNeighbours:
    @settings(max_examples=60, deadline=None)
    @given(population=st.lists(areas, min_size=2, max_size=30),
           eps=st.floats(min_value=0.0, max_value=1.0),
           probe=st.integers(min_value=0, max_value=1_000_000))
    def test_query_equals_brute_force(self, population, eps, probe):
        metric = QueryDistance(_stats())
        pack = PackedPartition(population, metric)
        tree = VPTree(pack, leaf_size=2)
        m = len(population)
        i = probe % m
        row = pack.pair_rows(i, np.arange(m))
        want = [(int(j), float(row[j]))
                for j in np.flatnonzero(row <= eps)]
        assert tree.query(i, eps) == want

    def test_pruning_actually_happens(self):
        # Two tight families far apart: querying inside one must prune
        # the other's subtree (otherwise the tree is a slow scan).
        population = [_window("T", float(i) / 10, 5.0 + i / 10)
                      for i in range(20)]
        population += [_window("T", 80.0 + i / 10, 90.0 + i / 10)
                       for i in range(20)]
        stats = VPTreeStats()
        pack = PackedPartition(population, QueryDistance(_stats()))
        tree = VPTree(pack, leaf_size=2, stats=stats)
        tree.query(0, 0.05)
        assert stats.pruned > 0
        assert stats.queries == 1
        assert 0 < stats.prune_rate < 1


class TestSemiMetric:
    """The distance is a semi-metric: symmetric with identity (proved
    by the PR 1 metric-laws battery) but **not** triangle-inequal.
    These tests pin a concrete violation — the population shape that
    made triangle-based VP pruning silently drop a true neighbour —
    and check the certified-bound tree stays exact on it."""

    def _abc(self):
        # A = one clause near the left edge, C = one clause near the
        # right edge, B = one clause near each: d(A,C) ≈ 1 while
        # d(A,B) ≈ d(B,C) ≈ 1/3, violating d(A,C) ≤ d(A,B) + d(B,C).
        a = _half("T", Op.LE, 5.0)
        c = _half("T", Op.GE, 95.0)
        b = AccessArea(("T",), CNF.of([
            Clause.of([ColumnConstantPredicate(T_X, Op.LE, 5.5)]),
            Clause.of([ColumnConstantPredicate(T_X, Op.GE, 94.5)]),
        ]))
        return a, b, c

    def test_triangle_inequality_fails(self):
        metric = QueryDistance(_stats())
        a, b, c = self._abc()
        direct = metric.distance(a, c)
        two_hop = metric.distance(a, b) + metric.distance(b, c)
        assert direct > two_hop, \
            "expected a triangle violation; the distance became a " \
            "metric — revisit whether triangle pruning is now sound"

    def test_tree_exact_on_triangle_violating_population(self):
        # Embed the violating triple in a larger mixed population and
        # check every query against brute force at radii bracketing
        # the violating distances.
        a, b, c = self._abc()
        population = [a, b, c]
        population += [_window("T", float(7 * k % 60),
                               float(7 * k % 60) + 10.0)
                       for k in range(12)]
        population += [_half("T", Op.GE, float(90 - 3 * k))
                       for k in range(6)]
        metric = QueryDistance(_stats())
        pack = PackedPartition(population, metric)
        tree = VPTree(pack, leaf_size=2)
        m = len(population)
        for i in range(m):
            row = pack.pair_rows(i, np.arange(m))
            for eps in (0.1, 0.34, 0.5, 0.99):
                want = [(int(j), float(row[j]))
                        for j in np.flatnonzero(row <= eps)]
                assert tree.query(i, eps) == want


class TestDegenerateShapes:
    def test_all_duplicates_distance_zero(self):
        population = [_window("T", 1.0, 2.0)] * 25
        pack = PackedPartition(population, QueryDistance(_stats()))
        tree = VPTree(pack, leaf_size=2)
        # The split degenerates (every distance is 0): the tree must
        # still answer, via an oversized scanned leaf.
        assert [j for j, _ in tree.query(7, 0.0)] == list(range(25))
        assert tree.query(0, 0.5) == [(j, 0.0) for j in range(25)]

    def test_singleton_partition(self):
        index = VPTreeIndex.compute([_window("T", 0.0, 1.0)],
                                    QueryDistance(_stats()))
        assert len(index) == 1
        assert index.neighbors(0, 0.1) == [0]
        assert index.value(0, 0) == 0.0
        assert math.isinf(index.exactness_bound)

    def test_zero_eps_returns_self_and_duplicates(self):
        population = [_window("T", 0.0, 10.0), _window("T", 50.0, 60.0),
                      _window("T", 0.0, 10.0)]
        index = VPTreeIndex.compute(population, QueryDistance(_stats()))
        assert index.neighbors(1, 0.0) == [1]
        assert index.neighbors(0, 0.0) == [0, 2]


class TestExactnessBoundContract:
    def _mixed_population(self):
        return ([_window("T", float(i), float(i) + 5.0)
                 for i in range(6)]
                + [_window("S", float(i), float(i) + 5.0)
                   for i in range(5)])

    def test_neighbors_raises_at_bound(self):
        population = self._mixed_population()
        index = VPTreeIndex.compute(population, QueryDistance(_stats()))
        assert index.exactness_bound == 1.0  # disjoint table sets
        with pytest.raises(ValueError, match="exactness bound"):
            index.neighbors(0, 1.0)

    def test_compute_refuses_cutoff_at_bound(self):
        with pytest.raises(ValueError, match="exactness bound"):
            VPTreeIndex.compute(self._mixed_population(),
                                QueryDistance(_stats()), cutoff=1.0)

    @pytest.mark.filterwarnings("ignore:partitioned DBSCAN")
    def test_compute_matrix_falls_back_above_bound(self):
        # The factory never hands out a vptree it would have to refuse:
        # at eps >= bound the matrix backend serves the request, so
        # partitioned_dbscan's on_inexact="fallback" whole-population
        # rerun still works.
        population = self._mixed_population()
        matrix = compute_matrix(population, QueryDistance(_stats()),
                                mode="auto", eps=1.5,
                                neighbor_backend="vptree")
        assert not isinstance(matrix, VPTreeIndex)
        labels = partitioned_dbscan(
            population, QueryDistance(_stats()), eps=1.5, min_pts=2,
            matrix=matrix, on_inexact="fallback").labels
        assert len(labels) == len(population)

    def test_partitioned_dbscan_on_inexact_raise(self):
        population = self._mixed_population()
        index = VPTreeIndex.compute(population, QueryDistance(_stats()))
        with pytest.raises(ValueError, match="only exact for eps"):
            partitioned_dbscan(population, QueryDistance(_stats()),
                               eps=1.0, min_pts=2, matrix=index,
                               on_inexact="raise")


class TestIndexMatrixParity:
    """The index is the block-sparse matrix behind a different engine:
    value/row/neighbors/submatrix must agree entry for entry."""

    def _pair(self):
        population = ([_window("T", float(3 * i), float(3 * i) + 10.0)
                       for i in range(9)]
                      + [_window("S", float(2 * i), float(2 * i) + 8.0)
                         for i in range(7)])
        metric = QueryDistance(_stats())
        index = VPTreeIndex.compute(population, metric)
        sparse = BlockSparseDistanceMatrix.compute(population, metric)
        return population, index, sparse

    def test_values_rows_neighbors(self):
        population, index, sparse = self._pair()
        n = len(population)
        assert index.exactness_bound == sparse.exactness_bound
        for i in range(n):
            assert list(index.row(i)) == list(sparse.row(i))
            assert index.neighbors(i, 0.12) == sparse.neighbors(i, 0.12)
            for j in range(n):
                assert index.value(i, j) == sparse.value(i, j)

    def test_range_query_pairs(self):
        population, index, sparse = self._pair()
        for i in range(len(population)):
            row = sparse.row(i)
            want = [(int(j), float(row[j]))
                    for j in np.flatnonzero(row <= 0.2)]
            assert index.range_query(i, 0.2) == want

    def test_submatrix_single_partition_view(self):
        population, index, sparse = self._pair()
        indices = [k for k, area in enumerate(population)
                   if area.table_set == frozenset({"T"})]
        view = index.submatrix(indices)
        block = sparse.submatrix(indices)
        assert len(view) == len(block)
        for a in range(len(indices)):
            assert list(view.row(a)) == list(block.row(a))
            assert view.neighbors(a, 0.3) \
                == list(np.flatnonzero(block.row(a) <= 0.3))

    def test_submatrix_subset_and_mixed(self):
        population, index, sparse = self._pair()
        subset = [0, 2, 5]  # proper subset of the T partition
        view = index.submatrix(subset)
        block = sparse.submatrix(subset)
        for a in range(3):
            for b in range(3):
                if a != b:
                    assert view.value(a, b) == block.value(a, b)
        assert view.neighbors(0, 0.4) \
            == list(np.flatnonzero(block.row(0) <= 0.4))
        mixed = index.submatrix([0, 1, 9, 10])
        mixed_want = sparse.submatrix([0, 1, 9, 10])
        assert list(mixed.condensed) == list(mixed_want.condensed)

    def test_dbscan_labels_identical(self):
        population, index, sparse = self._pair()
        metric = QueryDistance(_stats())
        want = partitioned_dbscan(population, metric, eps=0.12,
                                  min_pts=2, matrix=sparse).labels
        got = partitioned_dbscan(population, metric, eps=0.12,
                                 min_pts=2, matrix=index).labels
        assert got == want
        # plain (non-partitioned) DBSCAN consumes either matrix too
        plain_want = DBSCAN(eps=0.12, min_pts=2).fit(
            population, matrix=sparse).labels
        plain_got = DBSCAN(eps=0.12, min_pts=2).fit(
            population, matrix=index).labels
        assert plain_got == plain_want


class TestInstrumentation:
    def test_stats_and_registry(self):
        registry = get_registry()
        population = [_window("T", float(i), float(i) + 6.0)
                      for i in range(40)]
        index = VPTreeIndex.compute(population, QueryDistance(_stats()),
                                    leaf_size=2, registry=registry)
        before = registry.counter("repro_vptree_queries_total").value
        index.neighbors(0, 0.1)
        assert registry.counter("repro_vptree_queries_total").value \
            == before + 1
        assert index.vpstats.trees_built == 1
        assert index.vpstats.build_evals > 0
        # build evaluates far fewer pairs than the full triangle
        assert index.stats.pairs_computed \
            < len(population) * (len(population) - 1) // 2
        assert index.stats.stored_floats > 0
        assert "trees" in index.vpstats.summary()


class TestIncrementalInsert:
    """Leaf-append inserts keep every neighbour query exact.

    Soundness argument under test: node membership is frozen at build
    (certified ``ms``/``nmin``/``nmax`` bounds stay valid), post-build
    clause ids are bounded by suffix minima over the whole tree-covered
    set, and overflow points are scanned exactly — so a tree grown by
    :meth:`VPTreeIndex.insert` must agree with brute force at any
    radius below the exactness bound, across rebuild thresholds.
    """

    def _mixed_population(self, k):
        out = []
        for i in range(k):
            if i % 3 == 2:
                out.append(_half("T" if i % 2 else "S",
                                 Op.LE if i % 4 else Op.GE,
                                 float((11 * i) % 100)))
            else:
                lo = float((7 * i) % 80)
                out.append(_window("T" if i % 2 else "S", lo, lo + 5.0))
        return out

    @settings(max_examples=25, deadline=None)
    @given(total=st.integers(min_value=3, max_value=36),
           split=st.integers(min_value=0, max_value=1_000_000),
           eps=st.floats(min_value=0.0, max_value=0.45))
    def test_grown_index_matches_brute_force(self, total, split, eps):
        population = self._mixed_population(total)
        k = split % total
        metric = QueryDistance(_stats())
        index = VPTreeIndex.compute(population[:k], metric,
                                    leaf_size=2)
        for area in population[k:]:
            index.insert(area, metric)
        dense = np.zeros((total, total))
        for i in range(total):
            for j in range(total):
                if i != j:
                    dense[i, j] = metric(population[i], population[j])
        for i in range(total):
            got = index.neighbors(i, eps)
            pids = [index._pids[j] for j in range(total)]
            want = [j for j in np.flatnonzero(dense[i] <= eps)
                    if pids[j] == pids[i]]
            assert got == want

    def test_insert_triggers_rebuild(self):
        metric = QueryDistance(_stats())
        base = [_window("T", float(i), float(i) + 6.0) for i in range(8)]
        index = VPTreeIndex.compute(base, metric, leaf_size=2)
        built_before = index.vpstats.trees_built
        for i in range(8, 24):
            index.insert(_window("T", float(i), float(i) + 6.0), metric)
        assert index.vpstats.trees_built > built_before
        ref = VPTreeIndex.compute(
            [_window("T", float(i), float(i) + 6.0) for i in range(24)],
            metric, leaf_size=2)
        for i in range(24):
            assert index.neighbors(i, 0.1) == ref.neighbors(i, 0.1)

    def test_max_radius_refusal_leaves_index_untouched(self):
        metric = QueryDistance(_stats())
        index = VPTreeIndex.compute([_window("T", 0, 10)], metric)
        both = AccessArea(("T", "S"), CNF.of([Clause.of([
            ColumnConstantPredicate(T_X, Op.GE, 1.0)])]))
        with pytest.raises(ValueError, match="bound"):
            index.insert(both, metric, max_radius=0.6)
        assert index.n == 1
        index.insert(_window("T", 1, 11), metric)
        assert index.neighbors(0, 0.2) == [0, 1]

    def test_kernel_unsupported_degrades_to_matrix_block(self):
        # A constant the kernel refuses to replay bitwise (bool, whose
        # ``True == 1`` identity is evaluation-order dependent) must
        # degrade that partition to a growable block, with queries
        # still exact.
        metric = QueryDistance(_stats())
        base = [_window("T", float(i), float(i) + 6.0) for i in range(6)]
        index = VPTreeIndex.compute(base, metric, leaf_size=2)
        # LE so the bool does not collapse into the existing float
        # ``T.x >= 1.0`` predicate via the ``True == 1.0`` identity
        # (that collapse mirrors the per-pair oracle's own memo and is
        # exactly why bools are refused as *new* predicates).
        odd = AccessArea(("T",), CNF.of([Clause.of([
            ColumnConstantPredicate(T_X, Op.LE, True)])]))
        fallbacks_before = index.vpstats.fallback_partitions
        index.insert(odd, metric)
        assert index.vpstats.fallback_partitions == fallbacks_before + 1
        extra = _window("T", 0.5, 6.5)
        index.insert(extra, metric)
        from repro.distance import DistanceMatrix
        dense = DistanceMatrix.compute(base + [odd, extra], metric)
        for i in range(len(base) + 2):
            assert index.neighbors(i, 0.12) == dense.neighbors(i, 0.12)
