"""d = d_tables + d_conj (Section 5): structure and corner cases."""

import pytest

from repro.algebra.cnf import CNF, Clause
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core.area import AccessArea, unconstrained
from repro.distance import QueryDistance, jaccard_distance

T_A = ColumnRef("T", "a")
S_B = ColumnRef("S", "b")


def area(relations, *preds):
    return AccessArea(tuple(relations),
                      CNF.of([Clause.of([p]) for p in preds]))


def cc(ref, op, value):
    return ColumnConstantPredicate(ref, op, value)


class TestJaccard:
    def test_identical(self):
        assert jaccard_distance(frozenset({"a"}), frozenset({"a"})) == 0.0

    def test_disjoint(self):
        assert jaccard_distance(frozenset({"a"}), frozenset({"b"})) == 1.0

    def test_partial(self):
        value = jaccard_distance(frozenset({"a", "b"}), frozenset({"a"}))
        assert value == pytest.approx(0.5)

    def test_both_empty_corner_case(self):
        # "In this case, we set d_tables to 0" (queries over constants).
        assert jaccard_distance(frozenset(), frozenset()) == 0.0


class TestDTables:
    def test_same_tables(self, stats):
        d = QueryDistance(stats)
        assert d.d_tables(unconstrained(["T"]), unconstrained(["T"])) == 0.0

    def test_different_tables(self, stats):
        d = QueryDistance(stats)
        assert d.d_tables(unconstrained(["T"]), unconstrained(["S"])) == 1.0

    def test_subset_tables(self, stats):
        d = QueryDistance(stats)
        value = d.d_tables(unconstrained(["T"]), unconstrained(["T", "S"]))
        assert value == pytest.approx(0.5)

    def test_no_tables(self, stats):
        d = QueryDistance(stats)
        assert d.d_tables(unconstrained([]), unconstrained([])) == 0.0


class TestDConj:
    def test_identical_queries_distance_zero(self, stats):
        d = QueryDistance(stats)
        q = area(["T"], cc(T_A, Op.GE, 1), cc(T_A, Op.LE, 3))
        assert d.distance(q, q) == 0.0

    def test_both_unconstrained(self, stats):
        d = QueryDistance(stats)
        assert d.distance(unconstrained(["T"]), unconstrained(["T"])) == 0.0

    def test_one_unconstrained_pays_unit(self, stats):
        d = QueryDistance(stats)
        q = area(["T"], cc(T_A, Op.GE, 1))
        assert d.d_conj(unconstrained(["T"]).cnf, q.cnf) == 1.0

    def test_overlapping_windows_close(self, stats):
        d = QueryDistance(stats, resolution=0.0)
        q1 = area(["T"], cc(T_A, Op.GE, 1.0), cc(T_A, Op.LE, 3.0))
        q2 = area(["T"], cc(T_A, Op.GE, 1.1), cc(T_A, Op.LE, 2.9))
        assert d.distance(q1, q2) < 0.2

    def test_disjoint_windows_far(self, stats):
        d = QueryDistance(stats, resolution=0.0)
        q1 = area(["T"], cc(T_A, Op.EQ, 0.5))
        q2 = area(["T"], cc(T_A, Op.EQ, 4.5))
        assert d.distance(q1, q2) == pytest.approx(1.0)

    def test_extra_clause_penalized(self, stats):
        d = QueryDistance(stats, resolution=0.0)
        base = area(["T"], cc(T_A, Op.GE, 1.0))
        more = area(["T"], cc(T_A, Op.GE, 1.0),
                    cc(ColumnRef("T", "a1"), Op.EQ, 2.0))
        value = d.distance(base, more)
        # The unmatched a1 clause pays ~1 over 3 clauses total.
        assert 0.2 < value < 0.8

    def test_range_upper_bound(self, stats):
        d = QueryDistance(stats)
        q1 = area(["T"], cc(T_A, Op.EQ, 0.5))
        q2 = area(["S"], cc(S_B, Op.EQ, 9.5))
        assert d.distance(q1, q2) == pytest.approx(2.0)

    def test_symmetry(self, stats):
        d = QueryDistance(stats)
        q1 = area(["T"], cc(T_A, Op.GE, 1.0), cc(T_A, Op.LE, 3.0))
        q2 = area(["T", "S"], cc(T_A, Op.GE, 2.0), cc(S_B, Op.LT, 5.0))
        assert d.distance(q1, q2) == d.distance(q2, q1)

    def test_callable_interface(self, stats):
        d = QueryDistance(stats)
        q = unconstrained(["T"])
        assert d(q, q) == 0.0


class TestDDisj:
    def test_best_match_semantics(self, stats):
        d = QueryDistance(stats, resolution=0.0)
        clause1 = Clause.of([cc(T_A, Op.LT, 3), cc(T_A, Op.GT, 4)])
        clause2 = Clause.of([cc(T_A, Op.LT, 3)])
        value = d.d_disj(clause1, clause2)
        # LT 3 matches exactly (0); GT 4 best-matches LT 3 at 1.0;
        # reverse direction matches at 0 → (0 + 1 + 0) / 3.
        assert value == pytest.approx(1 / 3)

    def test_empty_clause_corner(self, stats):
        d = QueryDistance(stats)
        empty = Clause(())
        some = Clause.of([cc(T_A, Op.LT, 3)])
        assert d.d_disj(empty, empty) == 0.0
        assert d.d_disj(empty, some) == 1.0
