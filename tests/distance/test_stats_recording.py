"""Regression: ``.record`` must be idempotent, not cumulative-additive.

``MatrixStats``/``KernelStats``/``VPTreeStats`` carry *cumulative*
totals, and their ``record`` used to ``inc`` those totals into the
registry wholesale — so recording twice (one resident process, one
scrape per request) doubled every counter.  Recording is now
delta-based: after any number of ``record`` calls the registry equals
the true totals.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.distance.block_sparse import BlockSparseDistanceMatrix
from repro.distance.metric_index import VPTreeIndex
from repro.distance.query_distance import QueryDistance
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def population(stats):
    from repro.core.extractor import AccessAreaExtractor

    extractor = AccessAreaExtractor(stats.schema)
    sqls = [
        "SELECT a FROM T WHERE a > 0 AND a < 1",
        "SELECT a FROM T WHERE a > 0.5 AND a < 1.5",
        "SELECT a FROM T WHERE a > 3 AND a < 4",
        "SELECT b FROM S WHERE b < 2",
        "SELECT b FROM S WHERE b > 7",
    ]
    return [extractor.extract(sql).area for sql in sqls]


def _counters(registry, prefix):
    return {c["name"]: c["value"]
            for c in registry.snapshot()["counters"]
            if c["name"].startswith(prefix)}


def test_matrix_stats_record_twice_equals_true_totals(population,
                                                      stats):
    distance = QueryDistance(stats, resolution=0.05)
    matrix = BlockSparseDistanceMatrix.compute(population, distance,
                                               cutoff=0.2)
    registry = MetricsRegistry()
    matrix.stats.record(registry)
    once = _counters(registry, "repro_distance_")
    assert once  # the family did land
    matrix.stats.record(registry)
    assert _counters(registry, "repro_distance_") == once
    seconds = registry.histogram("repro_distance_matrix_seconds")
    assert seconds.stats.count == 1


def test_vptree_stats_record_twice_equals_true_totals(population,
                                                      stats):
    distance = QueryDistance(stats, resolution=0.05)
    index = VPTreeIndex.compute(population, distance, cutoff=0.2)
    registry = MetricsRegistry()
    index.vpstats.record(registry)
    once = _counters(registry, "repro_vptree_")
    assert once
    index.vpstats.record(registry)
    assert _counters(registry, "repro_vptree_") == once
    build = registry.histogram("repro_vptree_build_seconds")
    assert build.stats.count == 1


def test_kernel_stats_record_twice_equals_true_totals():
    from repro.distance.kernel import KernelStats

    kernel = KernelStats(partitions_packed=3, partitions_fallback=1,
                         n_predicates=12, n_clauses=7,
                         pairs_vectorized=40, pairs_fallback=5,
                         pack_seconds=0.25, block_seconds=0.75)
    registry = MetricsRegistry()
    kernel.record(registry)
    once = _counters(registry, "repro_kernel_")
    assert once["repro_kernel_partitions_packed_total"] == 3
    kernel.record(registry)
    assert _counters(registry, "repro_kernel_") == once
    # a later run's growth lands as its delta
    kernel.partitions_packed += 2
    kernel.record(registry)
    assert _counters(registry, "repro_kernel_")[
        "repro_kernel_partitions_packed_total"] == 5


def test_two_runs_accumulate_their_deltas(population, stats):
    """Distinct stats objects still sum into one registry — the
    fleet-wide view stays additive across runs."""
    registry = MetricsRegistry()
    # fresh metric per run: QueryDistance memo caches would otherwise
    # shift the second run's hit/miss split
    m1 = BlockSparseDistanceMatrix.compute(
        population, QueryDistance(stats, resolution=0.05), cutoff=0.2)
    m1.stats.record(registry)
    once = _counters(registry, "repro_distance_")
    m2 = BlockSparseDistanceMatrix.compute(
        population, QueryDistance(stats, resolution=0.05), cutoff=0.2)
    m2.stats.record(registry)
    twice = _counters(registry, "repro_distance_")
    for name, value in once.items():
        assert twice[name] == pytest.approx(2 * value)
