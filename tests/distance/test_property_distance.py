"""Property-based checks of the distance function."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core.area import AccessArea
from repro.distance import QueryDistance
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)


def _stats():
    schema = Schema("prop")
    schema.add(Relation("T", (
        Column("a", ColumnType.FLOAT, Interval(0.0, 10.0)),
        Column("b", ColumnType.FLOAT, Interval(0.0, 10.0)),
    )))
    schema.add(Relation("S", (
        Column("c", ColumnType.FLOAT, Interval(0.0, 10.0)),
    )))
    return StatisticsCatalog.from_exact_content(schema, {
        ("T", "a"): Interval(0.0, 10.0),
        ("T", "b"): Interval(0.0, 10.0),
        ("S", "c"): Interval(0.0, 10.0),
    })


STATS = _stats()

_refs = st.sampled_from([ColumnRef("T", "a"), ColumnRef("T", "b"),
                         ColumnRef("S", "c")])
_ops = st.sampled_from([Op.LT, Op.LE, Op.EQ, Op.GT, Op.GE, Op.NE])
_values = st.integers(min_value=0, max_value=10)

predicates = st.builds(ColumnConstantPredicate, _refs, _ops, _values)
clauses = st.lists(predicates, min_size=1, max_size=3).map(Clause.of)


@st.composite
def areas(draw):
    clause_list = draw(st.lists(clauses, min_size=0, max_size=3))
    relations = {pred.ref.relation
                 for clause in clause_list for pred in clause}
    if not relations:
        relations = {draw(st.sampled_from(["T", "S"]))}
    return AccessArea(tuple(relations), CNF.of(clause_list))


@settings(max_examples=120, deadline=None)
@given(areas(), areas())
def test_symmetry(q1, q2):
    # Symmetric up to float summation order in the best-match averages.
    d = QueryDistance(STATS)
    assert abs(d.distance(q1, q2) - d.distance(q2, q1)) < 1e-9


@settings(max_examples=120, deadline=None)
@given(areas())
def test_self_distance_zero(q):
    d = QueryDistance(STATS)
    assert d.distance(q, q) == 0.0


@settings(max_examples=120, deadline=None)
@given(areas(), areas())
def test_range(q1, q2):
    value = QueryDistance(STATS).distance(q1, q2)
    assert 0.0 <= value <= 2.0


@settings(max_examples=60, deadline=None)
@given(areas(), areas())
def test_table_component_lower_bound(q1, q2):
    """d >= d_tables, the invariant partitioned DBSCAN relies on."""
    d = QueryDistance(STATS)
    assert d.distance(q1, q2) >= d.d_tables(q1, q2) - 1e-12


@settings(max_examples=60, deadline=None)
@given(predicates, predicates)
def test_predicate_distance_range(p1, p2):
    d = QueryDistance(STATS)
    value = d.d_pred(p1, p2)
    assert 0.0 <= value <= 1.0
    assert d.d_pred(p2, p1) == value
