"""BlockSparseDistanceMatrix: dense parity, bound semantics, stats."""

import math

import numpy as np
import pytest

from repro.clustering import DBSCAN, OPTICS, SingleLinkage, partitioned_dbscan
from repro.core.extractor import AccessAreaExtractor
from repro.distance import (BlockSparseDistanceMatrix, DistanceMatrix,
                            QueryDistance, compute_matrix,
                            partition_exactness_bound)
from repro.schema import StatisticsCatalog
from repro.schema.skyserver import CONTENT_BOUNDS, skyserver_schema
from repro.workload import WorkloadConfig, generate_workload

EPS = 0.12


@pytest.fixture(scope="module")
def population():
    """(areas, metric) extracted from a small synthetic workload."""
    schema = skyserver_schema()
    workload = generate_workload(WorkloadConfig(n_queries=260, seed=41))
    extractor = AccessAreaExtractor(schema)
    areas = []
    for sql in workload.log.statements():
        try:
            areas.append(extractor.extract(sql).area)
        except Exception:
            continue
        if len(areas) == 160:
            break
    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)
    for area in areas:
        stats.observe_cnf(area.cnf)
    return areas, QueryDistance(stats)


@pytest.fixture(scope="module")
def dense(population):
    areas, metric = population
    return DistanceMatrix.compute(areas, metric)


@pytest.fixture(scope="module")
def sparse(population):
    areas, metric = population
    return BlockSparseDistanceMatrix.compute(areas, metric, cutoff=EPS)


class TestLookupParity:
    def test_len(self, population, sparse):
        assert len(sparse) == len(population[0])

    def test_within_partition_values_bitwise_equal(self, population,
                                                   dense, sparse):
        areas, _ = population
        n = len(areas)
        checked = 0
        for i in range(n):
            for j in range(i + 1, n):
                if areas[i].table_set == areas[j].table_set:
                    assert sparse.value(i, j) == dense.value(i, j)
                    checked += 1
        assert checked > 0

    def test_cross_partition_is_d_tables_lower_bound(self, population,
                                                     dense, sparse):
        areas, metric = population
        n = len(areas)
        for i in range(0, n, 7):
            for j in range(i + 1, n, 11):
                if areas[i].table_set != areas[j].table_set:
                    expected = metric.d_tables(areas[i], areas[j])
                    assert sparse.value(i, j) == expected
                    assert sparse.value(i, j) <= dense.value(i, j) + 1e-12
                    assert sparse.value(i, j) >= sparse.exactness_bound

    def test_diagonal_and_symmetry(self, sparse):
        assert sparse.value(3, 3) == 0.0
        assert sparse.value(2, 9) == sparse.value(9, 2)
        assert sparse[2, 9] == sparse.value(2, 9)

    def test_row_matches_values(self, sparse):
        for i in (0, 5, len(sparse) - 1):
            row = sparse.row(i)
            assert len(row) == len(sparse)
            assert row[i] == 0.0
            for j in range(0, len(sparse), 13):
                assert row[j] == sparse.value(i, j)

    def test_neighbors_match_dense(self, dense, sparse):
        for i in range(0, len(sparse), 9):
            assert sparse.neighbors(i, EPS) == dense.neighbors(i, EPS)

    def test_neighbors_rejects_radius_at_bound(self, sparse):
        with pytest.raises(ValueError, match="exactness bound"):
            sparse.neighbors(0, sparse.exactness_bound)

    def test_submatrix_within_partition_exact(self, population, dense,
                                              sparse):
        areas, _ = population
        key = max({a.table_set for a in areas},
                  key=lambda k: sum(a.table_set == k for a in areas))
        indices = [i for i, a in enumerate(areas) if a.table_set == key]
        sub_sparse = sparse.submatrix(indices)
        sub_dense = dense.submatrix(indices)
        m = len(indices)
        for a in range(m):
            for b in range(a + 1, m):
                assert sub_sparse.value(a, b) == sub_dense.value(a, b)

    def test_submatrix_mixed_partitions(self, sparse):
        indices = list(range(0, len(sparse), 10))
        sub = sparse.submatrix(indices)
        for a in range(len(indices)):
            for b in range(a + 1, len(indices)):
                assert sub.value(a, b) == sparse.value(indices[a],
                                                       indices[b])

    def test_to_square_symmetric(self, sparse):
        square = sparse.to_square()
        assert square.shape == (len(sparse), len(sparse))
        assert np.allclose(square, square.T)
        assert np.all(np.diag(square) == 0.0)


class TestClusteringParity:
    """Dense and sparse matrices must give identical labels below the bound."""

    def test_dbscan(self, population, dense, sparse):
        areas, _ = population
        a = DBSCAN(EPS, 4).fit(areas, matrix=dense)
        b = DBSCAN(EPS, 4).fit(areas, matrix=sparse)
        assert a.labels == b.labels

    def test_partitioned_dbscan(self, population, dense, sparse):
        areas, metric = population
        a = partitioned_dbscan(areas, metric, EPS, 4, matrix=dense)
        b = partitioned_dbscan(areas, metric, EPS, 4, matrix=sparse)
        assert a.labels == b.labels

    def test_optics(self, population, dense, sparse):
        areas, _ = population
        a = OPTICS(max_eps=EPS, min_pts=4).fit(areas, matrix=dense)
        b = OPTICS(max_eps=EPS, min_pts=4).fit(areas, matrix=sparse)
        assert a.ordering == b.ordering
        assert a.reachability == b.reachability

    def test_single_linkage(self, population, dense, sparse):
        areas, _ = population
        a = SingleLinkage(threshold=EPS, min_size=3).fit(areas,
                                                         matrix=dense)
        b = SingleLinkage(threshold=EPS, min_size=3).fit(areas,
                                                         matrix=sparse)
        assert a.labels == b.labels


class TestConstruction:
    def test_requires_decomposed_metric(self, population):
        areas, _ = population

        def flat_metric(a, b):
            return 0.0

        with pytest.raises(ValueError, match="decomposed"):
            BlockSparseDistanceMatrix.compute(areas, flat_metric)

    def test_cutoff_beyond_bound_rejected(self, population, sparse):
        areas, metric = population
        with pytest.raises(ValueError, match="exactness bound"):
            BlockSparseDistanceMatrix.compute(
                areas, metric, cutoff=sparse.exactness_bound)

    def test_exactness_bound_matches_population(self, population,
                                                sparse):
        areas, _ = population
        expected = partition_exactness_bound(
            a.table_set for a in areas)
        assert sparse.exactness_bound == pytest.approx(expected)

    def test_single_partition_bound_is_inf(self, population):
        areas, metric = population
        key = next(iter({a.table_set for a in areas}))
        same = [a for a in areas if a.table_set == key]
        matrix = BlockSparseDistanceMatrix.compute(same, metric)
        assert matrix.exactness_bound == math.inf
        assert matrix.n_partitions == 1

    def test_serial_parallel_identical(self, population):
        areas, metric = population
        serial = BlockSparseDistanceMatrix.compute(areas, metric,
                                                   n_jobs=1)
        parallel = BlockSparseDistanceMatrix.compute(areas, metric,
                                                     n_jobs=2)
        for i in range(0, len(areas), 7):
            assert list(serial.row(i)) == list(parallel.row(i))


class TestStats:
    def test_block_accounting(self, population, sparse):
        areas, _ = population
        stats = sparse.stats
        partition_sizes = {}
        for area in areas:
            partition_sizes[area.table_set] = \
                partition_sizes.get(area.table_set, 0) + 1
        expected_pairs = sum(m * (m - 1) // 2
                             for m in partition_sizes.values())
        p = len(partition_sizes)
        assert stats.n_blocks == p
        assert stats.largest_block == max(partition_sizes.values())
        assert stats.pairs_computed == expected_pairs
        assert stats.pairs_skipped == stats.pairs_total - expected_pairs
        assert stats.stored_floats == expected_pairs + p * p
        assert stats.stored_floats < stats.pairs_total
        assert 0.0 < stats.storage_fraction < 1.0

    def test_summary_mentions_blocks(self, sparse):
        text = sparse.stats.summary()
        assert "blocks" in text
        assert "floats stored" in text

    def test_metrics_recorded(self, population):
        from repro.obs.metrics import MetricsRegistry
        areas, metric = population
        registry = MetricsRegistry()
        BlockSparseDistanceMatrix.compute(areas, metric,
                                          registry=registry)
        snapshot = registry.snapshot()
        counters = {c["name"] for c in snapshot["counters"]}
        gauges = {g["name"] for g in snapshot["gauges"]}
        assert "repro_distance_blocks_total" in counters
        assert "repro_distance_stored_floats" in gauges
        assert "repro_distance_storage_fraction" in gauges


class TestComputeMatrixFactory:
    def test_mode_validated(self, population):
        areas, metric = population
        with pytest.raises(ValueError, match="mode"):
            compute_matrix(areas, metric, mode="blocky")

    def test_explicit_modes(self, population):
        areas, metric = population
        assert isinstance(compute_matrix(areas, metric, mode="dense"),
                          DistanceMatrix)
        assert isinstance(compute_matrix(areas, metric, mode="sparse",
                                         eps=EPS),
                          BlockSparseDistanceMatrix)

    def test_auto_picks_sparse_below_bound(self, population):
        areas, metric = population
        matrix = compute_matrix(areas, metric, mode="auto", eps=EPS)
        assert isinstance(matrix, BlockSparseDistanceMatrix)

    def test_auto_picks_dense_at_bound(self, population, sparse):
        areas, metric = population
        matrix = compute_matrix(areas, metric, mode="auto",
                                eps=sparse.exactness_bound)
        assert isinstance(matrix, DistanceMatrix)

    def test_auto_without_eps_is_dense(self, population):
        areas, metric = population
        assert isinstance(compute_matrix(areas, metric, mode="auto"),
                          DistanceMatrix)

    def test_auto_with_flat_metric_is_dense(self, population):
        areas, _ = population
        matrix = compute_matrix(areas, lambda a, b: 0.5, mode="auto",
                                eps=EPS)
        assert isinstance(matrix, DistanceMatrix)


class TestInsertRow:
    """Incremental growth parity: a matrix grown row by row must be
    indistinguishable — bitwise — from one computed from scratch."""

    @pytest.mark.parametrize("engine", ["kernel", "python"])
    def test_grown_matrix_matches_recompute(self, population, engine):
        areas, metric = population
        prefix, suffix = areas[:40], areas[40:60]
        grown = BlockSparseDistanceMatrix.compute(prefix, metric)
        for area in suffix:
            grown.insert_row(area, metric, engine=engine)
        ref = BlockSparseDistanceMatrix.compute(prefix + suffix, metric)
        assert grown.n == ref.n
        assert grown.exactness_bound == ref.exactness_bound
        assert np.array_equal(grown.to_square(), ref.to_square())
        for i in range(0, ref.n, 7):
            assert grown.neighbors(i, EPS) == ref.neighbors(i, EPS)

    def test_bootstrap_from_empty(self, population):
        areas, metric = population
        grown = BlockSparseDistanceMatrix.compute([], metric)
        for area in areas[:30]:
            grown.insert_row(area, metric)
        ref = BlockSparseDistanceMatrix.compute(areas[:30], metric)
        assert np.array_equal(grown.to_square(), ref.to_square())

    def test_mixed_engines_stay_consistent(self, population):
        areas, metric = population
        grown = BlockSparseDistanceMatrix.compute(areas[:10], metric)
        for k, area in enumerate(areas[10:40]):
            grown.insert_row(area, metric,
                             engine="kernel" if k % 3 else "python")
        ref = BlockSparseDistanceMatrix.compute(areas[:40], metric)
        assert np.array_equal(grown.to_square(), ref.to_square())

    def test_stats_pair_accounting(self, population):
        areas, metric = population
        grown = BlockSparseDistanceMatrix.compute(areas[:40], metric)
        for area in areas[40:60]:
            grown.insert_row(area, metric)
        want = sum(len(m) * (len(m) - 1) // 2
                   for _, m in grown.partitions())
        assert grown.stats.pairs_computed == want
        assert grown.stats.pairs_total == grown.n * (grown.n - 1) // 2
        assert grown.stats.n_items == grown.n

    def test_max_radius_refuses_before_mutation(self, population):
        areas, metric = population
        grown = BlockSparseDistanceMatrix.compute(areas[:20], metric)
        covered = {frozenset(x.table_set) for x in areas[:20]}
        unseen = next((a for a in areas[20:]
                       if frozenset(a.table_set) not in covered), None)
        if unseen is None:
            pytest.skip("workload prefix already covers every table set")
        before = grown.to_square().copy()
        n_before = grown.n
        with pytest.raises(ValueError, match="bound"):
            grown.insert_row(unseen, metric, max_radius=1.0)
        assert grown.n == n_before
        assert np.array_equal(grown.to_square(), before)
        # Without the reservation the same insert succeeds.
        grown.insert_row(unseen, metric)
        assert grown.n == n_before + 1

    def test_requires_compute_built_matrix(self, population):
        areas, metric = population
        ref = BlockSparseDistanceMatrix.compute(areas[:5], metric)
        clone = BlockSparseDistanceMatrix(
            ref.n, list(ref._keys), [m.copy() for m in ref._members],
            [b.condensed for b in ref._blocks], ref._bounds.copy(),
            ref.stats)
        with pytest.raises(ValueError, match="compute"):
            clone.insert_row(areas[5], metric)
