"""Alternative distance functions (future-work axis)."""

import pytest

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core.area import AccessArea, unconstrained
from repro.distance import (FootprintDistance, QueryDistance,
                            WeightedQueryDistance)
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)

T_A = ColumnRef("T", "a")


@pytest.fixture()
def alt_stats():
    schema = Schema("alt")
    schema.add(Relation("T", (
        Column("a", ColumnType.FLOAT, Interval(0.0, 10.0)),
        Column("b", ColumnType.FLOAT, Interval(0.0, 10.0)),
    )))
    schema.add(Relation("S", (
        Column("c", ColumnType.FLOAT, Interval(0.0, 10.0)),)))
    return StatisticsCatalog.from_exact_content(schema, {
        ("T", "a"): Interval(0.0, 10.0),
        ("T", "b"): Interval(0.0, 10.0),
        ("S", "c"): Interval(0.0, 10.0),
    })


def area(*preds, relations=("T",)):
    return AccessArea(tuple(relations),
                      CNF.of([Clause.of([p]) for p in preds]))


def cc(ref, op, value):
    return ColumnConstantPredicate(ref, op, value)


class TestFootprintDistance:
    def test_identity(self, alt_stats):
        d = FootprintDistance(alt_stats)
        q = area(cc(T_A, Op.GE, 1), cc(T_A, Op.LE, 3))
        assert d(q, q) == 0.0

    def test_phrasing_invariance(self, alt_stats):
        """The defining property: how a range is split into atoms does
        not matter, only the resulting footprint."""
        d = FootprintDistance(alt_stats, resolution=0.0)
        two_atoms = area(cc(T_A, Op.GE, 2), cc(T_A, Op.LE, 8))
        three_atoms = area(cc(T_A, Op.GE, 2), cc(T_A, Op.GE, 1),
                           cc(T_A, Op.LE, 8))
        assert d(two_atoms, three_atoms) == pytest.approx(0.0)

    def test_disjoint_windows(self, alt_stats):
        d = FootprintDistance(alt_stats, resolution=0.0)
        q1 = area(cc(T_A, Op.GE, 0), cc(T_A, Op.LE, 2))
        q2 = area(cc(T_A, Op.GE, 8), cc(T_A, Op.LE, 10))
        assert d(q1, q2) == pytest.approx(1.0)

    def test_column_mismatch_penalized(self, alt_stats):
        d = FootprintDistance(alt_stats, resolution=0.0)
        q1 = area(cc(T_A, Op.GE, 0), cc(T_A, Op.LE, 2))
        q2 = area(cc(T_A, Op.GE, 0), cc(T_A, Op.LE, 2),
                  cc(ColumnRef("T", "b"), Op.LE, 5))
        value = d(q1, q2)
        # Column a matches (0), column b unmatched (1) → mean 0.5.
        assert value == pytest.approx(0.5)

    def test_tables_term(self, alt_stats):
        d = FootprintDistance(alt_stats)
        q1 = unconstrained(["T"])
        q2 = unconstrained(["S"])
        assert d(q1, q2) == 1.0

    def test_symmetry(self, alt_stats):
        d = FootprintDistance(alt_stats)
        q1 = area(cc(T_A, Op.GE, 1))
        q2 = area(cc(T_A, Op.LE, 4), cc(ColumnRef("T", "b"), Op.GT, 2))
        assert d(q1, q2) == pytest.approx(d(q2, q1))


class TestWeightedQueryDistance:
    def test_default_weights_match_paper_distance(self, alt_stats):
        base = QueryDistance(alt_stats)
        weighted = WeightedQueryDistance(alt_stats)
        q1 = area(cc(T_A, Op.GE, 1), cc(T_A, Op.LE, 3))
        q2 = area(cc(T_A, Op.GE, 2), cc(T_A, Op.LE, 4),
                  relations=("T", "S"))
        assert weighted(q1, q2) == pytest.approx(base(q1, q2))

    def test_zero_table_weight_ignores_tables(self, alt_stats):
        weighted = WeightedQueryDistance(alt_stats, w_tables=0.0)
        q1 = area(cc(T_A, Op.GE, 1), relations=("T",))
        q2 = area(cc(T_A, Op.GE, 1), relations=("T", "S"))
        assert weighted(q1, q2) == pytest.approx(0.0)

    def test_scaling(self, alt_stats):
        light = WeightedQueryDistance(alt_stats, w_conj=0.5)
        heavy = WeightedQueryDistance(alt_stats, w_conj=2.0)
        q1 = area(cc(T_A, Op.GE, 1))
        q2 = unconstrained(["T"])
        assert heavy(q1, q2) == pytest.approx(4 * light(q1, q2))
