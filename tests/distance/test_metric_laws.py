"""Property-based metric-law battery for ``d = d_tables + d_conj``.

The clustering stage treats the query distance as a metric-like
dissimilarity; the matrix engine additionally relies on two exact
invariants — bitwise symmetry (a condensed matrix stores each pair
once) and the partition bound ``d ≥ d_tables ≥ 0.5`` for differing
relation sets (the block-skipping rule).  These laws are asserted
*exactly*, not approximately: ``d_conj``/``d_disj`` accumulate their
two directional sums separately precisely so that symmetry survives
float summation order.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import (ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.core.area import AccessArea
from repro.distance import QueryDistance
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)


def _stats():
    schema = Schema("laws")
    schema.add(Relation("T", (
        Column("a", ColumnType.FLOAT, Interval(0.0, 5.0)),
        Column("b", ColumnType.FLOAT, Interval(0.0, 5.0)),
        Column("s", ColumnType.VARCHAR, categories=("x", "y", "z")),
    )))
    schema.add(Relation("S", (
        Column("c", ColumnType.FLOAT, Interval(0.0, 10.0)),
    )))
    schema.add(Relation("R", (
        Column("d", ColumnType.FLOAT, Interval(-1.0, 1.0)),
    )))
    return StatisticsCatalog.from_exact_content(schema, {
        ("T", "a"): Interval(0.0, 5.0),
        ("T", "b"): Interval(0.0, 5.0),
        ("S", "c"): Interval(0.0, 10.0),
        ("R", "d"): Interval(-1.0, 1.0),
    })


STATS = _stats()
DISTANCE = QueryDistance(STATS)

_numeric_refs = st.sampled_from([ColumnRef("T", "a"), ColumnRef("T", "b"),
                                 ColumnRef("S", "c"), ColumnRef("R", "d")])
_ops = st.sampled_from([Op.LT, Op.LE, Op.EQ, Op.GT, Op.GE, Op.NE])
_numeric_values = st.one_of(
    st.integers(min_value=-2, max_value=11),
    st.floats(min_value=-2.0, max_value=11.0,
              allow_nan=False, allow_infinity=False))

_numeric_predicates = st.builds(
    ColumnConstantPredicate, _numeric_refs, _ops, _numeric_values)
_categorical_predicates = st.builds(
    ColumnConstantPredicate,
    st.just(ColumnRef("T", "s")),
    st.sampled_from([Op.EQ, Op.NE]),
    st.sampled_from(["x", "y", "z", "w"]))
predicates = st.one_of(_numeric_predicates, _categorical_predicates)
clauses = st.lists(predicates, min_size=1, max_size=3).map(Clause.of)


@st.composite
def areas(draw):
    """Random access areas, including table sets beyond the CNF's own."""
    clause_list = draw(st.lists(clauses, min_size=0, max_size=4))
    relations = {pred.ref.relation
                 for clause in clause_list for pred in clause}
    relations |= set(draw(st.lists(
        st.sampled_from(["T", "S", "R"]), max_size=2)))
    if not relations:
        relations = {draw(st.sampled_from(["T", "S", "R"]))}
    return AccessArea(tuple(relations), CNF.of(clause_list))


@settings(max_examples=200, deadline=None)
@given(areas(), areas())
def test_symmetry_exact(q1, q2):
    """d(a, b) == d(b, a) bitwise — the condensed matrix stores one value."""
    assert DISTANCE(q1, q2) == DISTANCE(q2, q1)


@settings(max_examples=150, deadline=None)
@given(areas())
def test_identity(q):
    assert DISTANCE(q, q) == 0.0


@settings(max_examples=200, deadline=None)
@given(areas(), areas())
def test_range_bound(q1, q2):
    value = DISTANCE(q1, q2)
    assert 0.0 <= value <= 2.0


@st.composite
def small_table_set_areas(draw):
    """Areas over at most two relations (drawn from {T, S})."""
    area = draw(areas())
    relations = tuple(draw(st.sets(st.sampled_from(["T", "S"]),
                                   min_size=1, max_size=2)))
    return AccessArea(relations, area.cnf)


@settings(max_examples=200, deadline=None)
@given(small_table_set_areas(), small_table_set_areas())
def test_partition_bound(q1, q2):
    """d ≥ 0.5 whenever the table sets differ (sets of ≤ 2 relations).

    The Jaccard distance of two distinct relation sets drawn from at
    most two tables is at least 0.5 (worst case {A} vs {A, B}) and
    ``d_conj ≥ 0`` — the invariant partitioned DBSCAN's ``eps < 0.5``
    exactness rests on.  The constant does NOT survive larger sets
    ({A, B} vs {A, B, C} is 1/3 apart): see the sharp-bound test below,
    and note the matrix engine's block skipping never assumes 0.5 — it
    compares each pair's actual ``d_tables`` against the cutoff.
    """
    assume(q1.table_set != q2.table_set)
    assert DISTANCE(q1, q2) >= 0.5


@settings(max_examples=200, deadline=None)
@given(areas(), areas())
def test_partition_bound_sharp(q1, q2):
    """The general bound: differing table sets are ≥ 1/|union| apart."""
    assume(q1.table_set != q2.table_set)
    union = q1.table_set | q2.table_set
    assert DISTANCE(q1, q2) >= 1.0 / len(union)


@settings(max_examples=150, deadline=None)
@given(areas(), areas())
def test_table_component_is_lower_bound(q1, q2):
    """d ≥ d_tables exactly (d_conj never goes negative)."""
    assert DISTANCE(q1, q2) >= DISTANCE.d_tables(q1, q2)


@settings(max_examples=150, deadline=None)
@given(predicates, predicates)
def test_predicate_distance_laws(p1, p2):
    value = DISTANCE.d_pred(p1, p2)
    assert 0.0 <= value <= 1.0
    assert DISTANCE.d_pred(p2, p1) == value
    assert DISTANCE.d_pred(p1, p1) == 0.0
