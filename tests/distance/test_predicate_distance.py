"""d_pred (Section 5.2): the paper's worked examples and the dissimilarity."""

import pytest

from repro.algebra.predicates import (ColumnColumnPredicate,
                                      ColumnConstantPredicate, ColumnRef,
                                      Op)
from repro.distance import PredicateDistance

T_A = ColumnRef("T", "a")
T_A1 = ColumnRef("T", "a1")
T_A2 = ColumnRef("T", "a2")
T_S = ColumnRef("T", "s")
S_B = ColumnRef("S", "b")


def cc(ref, op, value):
    return ColumnConstantPredicate(ref, op, value)


class TestPaperOverlapExamples:
    def test_same_column_example(self, stats):
        # "assume that p1 is a < 3, p2 is a > 2, and access(a1) = [0,5].
        #  We have d_pred(p1, p2) = 1/5 = 0.2"
        d = PredicateDistance(stats)
        overlap = d.paper_overlap(cc(T_A, Op.LT, 3), cc(T_A, Op.GT, 2))
        assert overlap == pytest.approx(0.2)

    def test_cross_column_example(self, stats):
        # "assume that p1 is a1 < 3, p2 is a2 > 2, access = [0,5].
        #  We have d_pred(p1, p2) = (3 × 3)/(5 × 5) = 0.36"
        d = PredicateDistance(stats)
        overlap = d.paper_overlap(cc(T_A1, Op.LT, 3), cc(T_A2, Op.GT, 2))
        assert overlap == pytest.approx(0.36)


class TestSameColumnNumeric:
    def test_identical_is_zero(self, stats):
        d = PredicateDistance(stats)
        pred = cc(T_A, Op.LT, 3)
        assert d.distance(pred, pred) == 0.0

    def test_disjoint_is_maximal(self, stats):
        d = PredicateDistance(stats, resolution=0.0)
        assert d.distance(cc(T_A, Op.LT, 1), cc(T_A, Op.GT, 4)) == 1.0

    def test_partial_overlap_in_between(self, stats):
        d = PredicateDistance(stats, resolution=0.0)
        value = d.distance(cc(T_A, Op.LT, 3), cc(T_A, Op.GT, 2))
        # intersection (2,3) = 1, union [0,5] = 5 → 1 - 0.2 = 0.8.
        assert value == pytest.approx(0.8)

    def test_nested_rays_close(self, stats):
        d = PredicateDistance(stats, resolution=0.0)
        value = d.distance(cc(T_A, Op.LT, 4), cc(T_A, Op.LT, 5))
        # [0,4) vs [0,5): J = 4/5 → d = 0.2.
        assert value == pytest.approx(0.2)

    def test_symmetry(self, stats):
        d = PredicateDistance(stats)
        p1, p2 = cc(T_A, Op.LT, 3), cc(T_A, Op.GT, 1)
        assert d.distance(p1, p2) == d.distance(p2, p1)


class TestResolutionWidening:
    def test_nearby_points_close_with_resolution(self, stats):
        d = PredicateDistance(stats, resolution=0.2)  # margin = 0.5
        value = d.distance(cc(T_A, Op.EQ, 2.0), cc(T_A, Op.EQ, 2.1))
        assert value < 0.5

    def test_far_points_far_even_with_resolution(self, stats):
        d = PredicateDistance(stats, resolution=0.2)
        assert d.distance(cc(T_A, Op.EQ, 0.5), cc(T_A, Op.EQ, 4.5)) == 1.0

    def test_identical_points_zero_without_resolution(self, stats):
        d = PredicateDistance(stats, resolution=0.0)
        assert d.distance(cc(T_A, Op.EQ, 2), cc(T_A, Op.EQ, 2)) == 0.0

    def test_points_outside_access_still_compare(self, stats):
        # The zooSpec.dec = -100 style lookups beyond access(a).
        d = PredicateDistance(stats, resolution=0.1)
        value = d.distance(cc(T_A, Op.EQ, -7.0), cc(T_A, Op.EQ, -7.0))
        assert value == 0.0


class TestCategorical:
    def test_equal_values(self, stats):
        d = PredicateDistance(stats)
        assert d.distance(cc(T_S, Op.EQ, "x"), cc(T_S, Op.EQ, "x")) == 0.0

    def test_different_values(self, stats):
        d = PredicateDistance(stats)
        assert d.distance(cc(T_S, Op.EQ, "x"), cc(T_S, Op.EQ, "y")) == 1.0

    def test_ne_overlaps_other_eq(self, stats):
        d = PredicateDistance(stats)
        # s <> 'x' has footprint {y, z}; s = 'y' is inside it.
        value = d.distance(cc(T_S, Op.NE, "x"), cc(T_S, Op.EQ, "y"))
        assert 0.0 < value < 1.0

    def test_mixed_type_same_column_maximal(self, stats):
        d = PredicateDistance(stats)
        assert d.distance(cc(T_S, Op.EQ, "x"), cc(T_S, Op.EQ, 5)) == 1.0


class TestCategoricalInequalities:
    """Ordered-vocabulary footprints; vocabulary is {x, y, z}.

    Regression: every inequality operator used to collapse to ``{value}``,
    making ``s < 'y'`` and ``s = 'y'`` distance 0.
    """

    def test_lt_disjoint_from_eq(self, stats):
        d = PredicateDistance(stats)
        # s < 'y' → {x}; s = 'y' → {y}: disjoint.
        assert d.distance(cc(T_S, Op.LT, "y"), cc(T_S, Op.EQ, "y")) == 1.0

    def test_lt_footprint_contains_smaller(self, stats):
        d = PredicateDistance(stats)
        # s < 'y' → {x} == footprint of s = 'x'.
        assert d.distance(cc(T_S, Op.LT, "y"), cc(T_S, Op.EQ, "x")) == 0.0

    def test_le_includes_the_constant(self, stats):
        d = PredicateDistance(stats)
        # s <= 'y' → {x, y} overlaps s = 'y' partially (J = 1/2).
        value = d.distance(cc(T_S, Op.LE, "y"), cc(T_S, Op.EQ, "y"))
        assert value == pytest.approx(0.5)

    def test_gt_footprint(self, stats):
        d = PredicateDistance(stats)
        # s > 'x' → {y, z}; equals the footprint of s <> 'x'.
        assert d.distance(cc(T_S, Op.GT, "x"), cc(T_S, Op.NE, "x")) == 0.0

    def test_ge_includes_the_constant(self, stats):
        d = PredicateDistance(stats)
        # s >= 'z' → {z}; s = 'z' → {z}: identical ranges.
        assert d.distance(cc(T_S, Op.GE, "z"), cc(T_S, Op.EQ, "z")) == 0.0

    def test_lt_vs_gt_disjoint(self, stats):
        d = PredicateDistance(stats)
        # s < 'y' → {x}; s > 'y' → {z}.
        assert d.distance(cc(T_S, Op.LT, "y"), cc(T_S, Op.GT, "y")) == 1.0

    def test_inclusive_op_on_unknown_constant_is_reflexive(self, stats):
        d = PredicateDistance(stats)
        # 'm' is not in the vocabulary; identical predicates must still
        # be distance 0 (the footprint admits the constant itself).
        assert d.distance(cc(T_S, Op.LE, "m"), cc(T_S, Op.LE, "m")) == 0.0
        # And ordering still applies: s <= 'm' → {m} ∪ {} vs {x}.
        assert d.distance(cc(T_S, Op.LE, "m"),
                          cc(T_S, Op.EQ, "x")) == 1.0


class TestCrossColumn:
    def test_wide_predicates_somewhat_close(self, stats):
        d = PredicateDistance(stats, resolution=0.0)
        value = d.distance(cc(T_A1, Op.LT, 3), cc(T_A2, Op.GT, 2))
        assert value == pytest.approx(1 - 0.36)

    def test_narrow_cross_column_far(self, stats):
        d = PredicateDistance(stats, resolution=0.0)
        value = d.distance(cc(T_A1, Op.EQ, 3), cc(T_A2, Op.EQ, 2))
        assert value == 1.0

    def test_numeric_vs_categorical_cross(self, stats):
        d = PredicateDistance(stats)
        assert d.distance(cc(T_A, Op.LT, 3), cc(T_S, Op.EQ, "x")) == 1.0


class TestColumnColumn:
    def test_identical_join_zero(self, stats):
        d = PredicateDistance(stats)
        j1 = ColumnColumnPredicate(T_A, Op.EQ, S_B)
        j2 = ColumnColumnPredicate(S_B, Op.EQ, T_A)  # canonicalized equal
        assert d.distance(j1, j2) == 0.0

    def test_same_pair_different_op(self, stats):
        d = PredicateDistance(stats)
        j1 = ColumnColumnPredicate(T_A, Op.EQ, S_B)
        j2 = ColumnColumnPredicate(T_A, Op.LT, S_B)
        assert d.distance(j1, j2) == 0.5

    def test_different_pairs(self, stats):
        d = PredicateDistance(stats)
        j1 = ColumnColumnPredicate(T_A, Op.EQ, S_B)
        j2 = ColumnColumnPredicate(T_A1, Op.EQ, S_B)
        assert d.distance(j1, j2) == 1.0

    def test_join_vs_constant_maximal(self, stats):
        d = PredicateDistance(stats)
        join = ColumnColumnPredicate(T_A, Op.EQ, S_B)
        assert d.distance(join, cc(T_A, Op.LT, 3)) == 1.0


class TestCaching:
    def test_cache_used(self, stats):
        d = PredicateDistance(stats)
        p1, p2 = cc(T_A, Op.LT, 3), cc(T_A, Op.GT, 2)
        first = d.distance(p1, p2)
        assert d.distance(p1, p2) == first
        assert len(d._cache) == 1

    def test_cache_info_counts_both_caches(self, stats):
        d = PredicateDistance(stats)
        d.distance(cc(T_A, Op.LT, 3), cc(T_A, Op.GT, 2))
        d.distance(cc(T_A, Op.LT, 3), cc(T_A, Op.GT, 2))
        info = d.cache_info()
        assert info.hits == 1 and info.misses == 1
        assert info.size == 1
        assert info.footprint_size == 2  # one widened footprint per pred
        assert info.max_size == info.footprint_max == d.max_cache_size
        assert info.hit_rate == pytest.approx(0.5)

    def test_pair_cache_bounded(self, stats):
        d = PredicateDistance(stats, max_cache_size=4)
        for i in range(10):
            d.distance(cc(T_A, Op.LT, i / 10), cc(T_A, Op.GT, 0))
        assert len(d._cache) == 4

    def test_footprint_cache_bounded(self, stats):
        # Regression: _footprints grew one entry per distinct predicate
        # without limit; adversarial constant streams must stay bounded.
        d = PredicateDistance(stats, max_cache_size=4)
        for i in range(50):
            d.distance(cc(T_A, Op.LT, i / 50), cc(T_A, Op.GT, i / 50))
        info = d.cache_info()
        assert info.footprint_size <= 4
        assert info.footprint_max == 4

    def test_footprint_lru_keeps_hot_entries(self, stats):
        d = PredicateDistance(stats, max_cache_size=4)
        hot1, hot2 = cc(T_A, Op.LT, 3), cc(T_A, Op.GT, 2)
        for i in range(20):
            d.distance(hot1, hot2)  # cached pair: no footprint churn
            d.distance(cc(T_A, Op.LT, i / 20), hot2)  # reuses hot2
        assert hot2 in d._footprints  # touched every round → retained

    def test_unbounded_when_disabled(self, stats):
        d = PredicateDistance(stats, max_cache_size=None)
        for i in range(30):
            d.distance(cc(T_A, Op.LT, i / 30), cc(T_A, Op.GT, 0))
        assert len(d._cache) == 30
        assert d.cache_info().footprint_max is None
