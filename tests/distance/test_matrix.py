"""Parity tests for the shared distance-matrix engine.

The engine must be a pure optimization: the parallel matrix equals the
serial matrix and the naive double loop *bitwise*, the stats counters
account for every pair, and every clustering algorithm produces the
same labels whether it evaluates the callable itself or consumes a
precomputed matrix.
"""

import numpy as np
import pytest

from repro.clustering import (DBSCAN, OPTICS, SingleLinkage,
                              extract_dbscan, pairwise_matrix,
                              partitioned_dbscan)
from repro.core import AccessAreaExtractor, process_log
from repro.distance import DistanceMatrix, QueryDistance, condensed_index
from repro.schema import StatisticsCatalog, skyserver_schema
from repro.schema.skyserver import CONTENT_BOUNDS
from repro.workload import WorkloadConfig, generate_workload

EPS = 0.12


@pytest.fixture(scope="module")
def population():
    """~60 extracted areas plus their statistics catalog."""
    schema = skyserver_schema()
    workload = generate_workload(WorkloadConfig(n_queries=120, seed=47))
    report = process_log(workload.log.statements(),
                         AccessAreaExtractor(schema), keep_failures=False)
    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)
    for item in report.extracted:
        stats.observe_cnf(item.area.cnf)
    return report.areas()[:60], stats


def _metric(stats):
    return QueryDistance(stats, resolution=0.05)


# -- matrix vs naive loop vs parallel ---------------------------------------

def test_serial_matrix_equals_naive_double_loop(population):
    areas, stats = population
    naive = pairwise_matrix(areas, _metric(stats))
    matrix = DistanceMatrix.compute(areas, _metric(stats))
    assert np.array_equal(matrix.to_square(), naive)


def test_parallel_matrix_equals_serial(population):
    areas, stats = population
    serial = DistanceMatrix.compute(areas, _metric(stats))
    parallel = DistanceMatrix.compute(areas, _metric(stats), n_jobs=2)
    assert np.array_equal(parallel.condensed, serial.condensed)
    assert parallel.stats.n_jobs == 2


def test_stats_counters_account_for_every_pair(population):
    areas, stats = population
    n = len(areas)
    full = DistanceMatrix.compute(areas, _metric(stats))
    cut = DistanceMatrix.compute(areas, _metric(stats), cutoff=EPS)
    for m in (full, cut):
        assert m.stats.pairs_total == n * (n - 1) // 2
        assert m.stats.pairs_computed + m.stats.pairs_skipped \
            == m.stats.pairs_total
    assert full.stats.pairs_skipped == 0
    assert cut.stats.pairs_skipped > 0
    # Every d_tables evaluation beyond one per distinct set pair is a hit.
    assert cut.stats.table_cache_hits \
        == cut.stats.pairs_total - cut.stats.table_pairs
    assert cut.stats.predicate_cache_hits > 0
    assert 0.0 < cut.stats.skip_fraction < 1.0
    assert "bound-skipped" in cut.stats.summary()


def test_cutoff_entries_are_exact_or_lower_bounds(population):
    areas, stats = population
    naive = pairwise_matrix(areas, _metric(stats))
    cut = DistanceMatrix.compute(areas, _metric(stats), cutoff=EPS)
    n = len(areas)
    for i in range(n):
        for j in range(i + 1, n):
            value = cut.value(i, j)
            if value > EPS:
                assert value <= naive[i, j]  # a valid lower bound
            else:
                assert value == naive[i, j]  # exact below the cutoff


def test_neighbors_match_naive_matrix(population):
    areas, stats = population
    naive = pairwise_matrix(areas, _metric(stats))
    cut = DistanceMatrix.compute(areas, _metric(stats), cutoff=EPS)
    for i in (0, 7, len(areas) - 1):
        expected = list(np.flatnonzero(naive[i] <= EPS))
        assert cut.neighbors(i, EPS) == expected
        assert i in cut.neighbors(i, EPS)


# -- accessors --------------------------------------------------------------

def test_lookup_accessors(population):
    areas, stats = population
    matrix = DistanceMatrix.compute(areas, _metric(stats))
    n = len(matrix)
    assert n == len(areas)
    square = matrix.to_square()
    assert matrix.value(3, 9) == matrix.value(9, 3) == square[3, 9]
    assert matrix[5, 5] == 0.0
    assert np.array_equal(matrix.row(4), square[4])
    assert matrix.condensed.shape == (n * (n - 1) // 2,)
    with pytest.raises(ValueError):
        matrix.condensed[0] = 1.0  # read-only view
    roundtrip = DistanceMatrix.from_square(square)
    assert np.array_equal(roundtrip.condensed, matrix.condensed)


def test_submatrix_preserves_values(population):
    areas, stats = population
    matrix = DistanceMatrix.compute(areas, _metric(stats))
    indices = [2, 11, 17, 40]
    sub = matrix.submatrix(indices)
    for a, ia in enumerate(indices):
        for b, ib in enumerate(indices):
            assert sub.value(a, b) == matrix.value(ia, ib)


def test_condensed_index_layout():
    n = 7
    seen = set()
    for i in range(n):
        for j in range(i + 1, n):
            k = condensed_index(i, j, n)
            assert condensed_index(j, i, n) == k
            seen.add(k)
    assert seen == set(range(n * (n - 1) // 2))


def test_constructor_rejects_wrong_length():
    with pytest.raises(ValueError):
        DistanceMatrix(4, np.zeros(5))
    with pytest.raises(ValueError):
        DistanceMatrix.from_square(np.zeros((2, 3)))


def test_generic_metric_without_table_decomposition():
    """Plain callables (no d_tables/d_conj hooks) still work, serially
    and in parallel."""
    items = [0.0, 1.5, 4.0, 9.5]
    metric = _absolute_difference
    serial = DistanceMatrix.compute(items, metric)
    parallel = DistanceMatrix.compute(items, metric, n_jobs=2)
    assert serial.value(1, 3) == 8.0
    assert np.array_equal(parallel.condensed, serial.condensed)


def _absolute_difference(a, b):
    # Module-level so the parallel path can pickle it.
    return abs(a - b)


# -- clustering parity ------------------------------------------------------

def test_dbscan_labels_identical_with_matrix(population):
    areas, stats = population
    via_callable = DBSCAN(EPS, min_pts=3).fit(areas, _metric(stats))
    matrix = DistanceMatrix.compute(areas, _metric(stats))
    via_matrix = DBSCAN(EPS, min_pts=3).fit(areas, matrix=matrix)
    via_cutoff = DBSCAN(EPS, min_pts=3).fit(
        areas, matrix=DistanceMatrix.compute(
            areas, _metric(stats), cutoff=EPS))
    assert via_matrix.labels == via_callable.labels
    assert via_cutoff.labels == via_callable.labels


def test_optics_identical_with_matrix(population):
    areas, stats = population
    via_callable = OPTICS(max_eps=1.0, min_pts=3).fit(areas, _metric(stats))
    matrix = DistanceMatrix.compute(areas, _metric(stats))
    via_matrix = OPTICS(max_eps=1.0, min_pts=3).fit(areas, matrix=matrix)
    assert via_matrix.ordering == via_callable.ordering
    assert via_matrix.reachability == via_callable.reachability
    assert extract_dbscan(via_matrix, EPS).labels \
        == extract_dbscan(via_callable, EPS).labels


def test_single_linkage_identical_with_matrix(population):
    areas, stats = population
    via_callable = SingleLinkage(threshold=EPS).fit(areas, _metric(stats))
    matrix = DistanceMatrix.compute(areas, _metric(stats), cutoff=EPS)
    via_matrix = SingleLinkage(threshold=EPS).fit(areas, matrix=matrix)
    assert via_matrix.labels == via_callable.labels


def test_partitioned_dbscan_identical_across_engines(population):
    areas, stats = population
    legacy = partitioned_dbscan(areas, _metric(stats), EPS, min_pts=3)
    matrix = DistanceMatrix.compute(areas, _metric(stats), cutoff=EPS)
    precomputed = partitioned_dbscan(areas, None, EPS, min_pts=3,
                                     matrix=matrix)
    fanned_out = partitioned_dbscan(areas, _metric(stats), EPS, min_pts=3,
                                    n_jobs=2)
    assert precomputed.labels == legacy.labels
    assert fanned_out.labels == legacy.labels


def test_clustering_argument_validation(population):
    areas, stats = population
    matrix = DistanceMatrix.compute(areas[:6], _metric(stats))
    with pytest.raises(ValueError):
        DBSCAN(EPS).fit(areas[:6])  # neither distance nor matrix
    with pytest.raises(ValueError):
        DBSCAN(EPS).fit(areas[:6], _metric(stats), matrix)  # both
    with pytest.raises(ValueError):
        DBSCAN(EPS).fit(areas[:9], matrix=matrix)  # size mismatch
    with pytest.raises(ValueError):
        OPTICS(max_eps=1.0).fit(areas[:6])
    with pytest.raises(ValueError):
        SingleLinkage(threshold=EPS).fit(areas[:6])
    with pytest.raises(ValueError):
        partitioned_dbscan(areas[:6], None, EPS)


def test_pipeline_report_hands_off_matrix(population):
    """The batch path's LogProcessingReport → matrix hand-off."""
    _, stats = population
    schema = skyserver_schema()
    workload = generate_workload(WorkloadConfig(n_queries=40, seed=3))
    report = process_log(workload.log.statements(),
                         AccessAreaExtractor(schema), keep_failures=False)
    matrix = report.distance_matrix(_metric(stats), cutoff=EPS)
    assert len(matrix) == report.extraction_count
    assert matrix.stats.pairs_computed + matrix.stats.pairs_skipped \
        == matrix.stats.pairs_total
