"""Shared statistics fixture with controlled access ranges."""

import pytest

from repro.algebra.intervals import Interval
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)


@pytest.fixture()
def stats():
    """T(a, a1, a2 ∈ [0, 5]; s categorical {x, y, z}), S(b ∈ [0, 10])."""
    schema = Schema("dist")
    schema.add(Relation("T", (
        Column("a", ColumnType.FLOAT, Interval(0.0, 5.0)),
        Column("a1", ColumnType.FLOAT, Interval(0.0, 5.0)),
        Column("a2", ColumnType.FLOAT, Interval(0.0, 5.0)),
        Column("s", ColumnType.VARCHAR, categories=("x", "y", "z")),
    )))
    schema.add(Relation("S", (
        Column("b", ColumnType.FLOAT, Interval(0.0, 10.0)),
        Column("u", ColumnType.FLOAT, Interval(0.0, 10.0)),
    )))
    return StatisticsCatalog.from_exact_content(schema, {
        ("T", "a"): Interval(0.0, 5.0),
        ("T", "a1"): Interval(0.0, 5.0),
        ("T", "a2"): Interval(0.0, 5.0),
        ("S", "b"): Interval(0.0, 10.0),
        ("S", "u"): Interval(0.0, 10.0),
    })
