"""Sustained incremental-clustering ingest at stream scale.

The stream scenario's viability hangs on per-arrival cost staying flat
as the population grows: interned repeats must stay O(1) (a fingerprint
hit, a weight bump, at most a local core promotion), and genuinely new
areas must touch only their partition of the distance backend — never
the full population.  This benchmark drives
:class:`~repro.clustering.incremental.IncrementalDBSCAN` (block-sparse
backend) with a SkyServer-shaped arrival stream — Zipf-skewed repeats
over a pool of window templates on three hot axes, one partition per
relation — and records per-segment ingest rates plus the split between
the hit and insert paths.

Sublinearity evidence in ``benchmarks/out/BENCH_streaming.json``:

* segment throughput (``arrivals_per_second``) must not decay as the
  population grows — a per-arrival cost linear in n would slow the
  final segment ~5-10× relative to the early ones;
* ``final_over_early_cost_ratio`` pins that directly (and is watched
  by the perf guard, direction up);
* end-state labels are checked against a from-scratch batch weighted
  DBSCAN over the unique population — the throughput being measured is
  of the *exact* maintenance, not an approximation.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the stream ~20×.
"""

import json
import os
import random
import time

from repro.algebra.cnf import CNF, Clause
from repro.algebra.predicates import ColumnConstantPredicate, ColumnRef, Op
from repro.clustering import DBSCAN, IncrementalDBSCAN
from repro.core.area import AccessArea
from repro.distance import QueryDistance
from repro.distance.block_sparse import BlockSparseDistanceMatrix
from repro.obs.metrics import MetricsRegistry
from repro.schema import StatisticsCatalog
from repro.schema.skyserver import CONTENT_BOUNDS, skyserver_schema

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N_ARRIVALS = 5_000 if SMOKE else 100_000
N_SEGMENTS = 10
EPS = 0.12
MIN_PTS = 5

TEMPLATE_AXES = (
    ("PhotoObjAll", "ra", 0.0, 360.0),
    ("SpecObjAll", "z", 0.0, 2.0),
    ("Photoz", "z", 0.0, 2.0),
)
TEMPLATES_PER_AXIS = 30 if SMOKE else 400


def _window(relation, column, lo, hi):
    ref = ColumnRef(relation, column)
    return AccessArea((relation,), CNF.of([
        Clause.of([ColumnConstantPredicate(ref, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(ref, Op.LE, hi)]),
    ]))


def make_stream(seed=43):
    rng = random.Random(seed)
    pool = []
    for relation, column, lo0, hi0 in TEMPLATE_AXES:
        span = hi0 - lo0
        for _ in range(TEMPLATES_PER_AXIS):
            lo = lo0 + rng.random() * span * 0.8
            pool.append(_window(relation, column, lo, lo + span * 0.1))
    weights = [1.0 / (rank + 1) for rank in range(len(pool))]
    return rng.choices(pool, weights=weights, k=N_ARRIVALS)


def test_sustained_ingest(benchmark, out_dir):
    schema = skyserver_schema()
    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)
    metric = QueryDistance(stats)
    stream = make_stream()

    registry = MetricsRegistry()
    clusterer = IncrementalDBSCAN(metric, eps=EPS, min_pts=MIN_PTS,
                                  backend="sparse", registry=registry)
    segment_size = len(stream) // N_SEGMENTS
    segments = []

    def run():
        for s in range(N_SEGMENTS):
            chunk = stream[s * segment_size:(s + 1) * segment_size]
            hits_before = clusterer.interned_hits
            started = time.perf_counter()
            for area in chunk:
                clusterer.add(area)
            elapsed = time.perf_counter() - started
            segments.append({
                "segment": s,
                "arrivals": len(chunk),
                "population_after": clusterer.n_unique,
                "interned_hits": clusterer.interned_hits - hits_before,
                "seconds": elapsed,
                "arrivals_per_second": len(chunk) / elapsed,
            })
        return clusterer

    benchmark.pedantic(run, rounds=1, iterations=1)

    total_seconds = sum(s["seconds"] for s in segments)
    hist = registry.histogram("repro_incremental_update_seconds")
    # Per-arrival cost trend: the final segment (population saturated,
    # nearly all hits) against the second (population still growing).
    # Linear-in-n maintenance would put this ratio at ~N_SEGMENTS.
    early = segments[1]["seconds"] / segments[1]["arrivals"]
    late = segments[-1]["seconds"] / segments[-1]["arrivals"]
    ratio = late / early

    # Exactness: the measured throughput maintains the *batch* answer.
    matrix = BlockSparseDistanceMatrix.compute(clusterer.areas(), metric)
    batch = DBSCAN(eps=EPS, min_pts=MIN_PTS).fit(
        clusterer.areas(), matrix=matrix, weights=clusterer.weights())
    assert clusterer.labels() == list(batch.labels)

    payload = {
        "n_arrivals": len(stream),
        "n_unique": clusterer.n_unique,
        "n_clusters": clusterer.n_clusters,
        "dedup_ratio": len(stream) / clusterer.n_unique,
        "eps": EPS,
        "min_pts": MIN_PTS,
        "backend": "sparse",
        "ingest_seconds_total": total_seconds,
        "arrivals_per_second": len(stream) / total_seconds,
        "update_seconds_p50": hist.p50,
        "update_seconds_p99": hist.p99,
        "final_over_early_cost_ratio": ratio,
        "batch_parity": True,
        "smoke": SMOKE,
        "segments": segments,
    }
    (out_dir / "BENCH_streaming.json").write_text(
        json.dumps(payload, indent=2), encoding="utf-8")
    print(f"\n{len(stream):,} arrivals -> {clusterer.n_unique} unique, "
          f"{clusterer.n_clusters} clusters; "
          f"{payload['arrivals_per_second']:,.0f} arrivals/s, "
          f"late/early per-arrival cost ratio {ratio:.2f}")

    assert clusterer.interned_hits == len(stream) - clusterer.n_unique
    # Sublinear-update acceptance: per-arrival cost must not grow with
    # population.  Allow generous CI noise; linear maintenance would
    # sit near N_SEGMENTS.
    assert ratio < 2.0, (
        f"per-arrival cost grew {ratio:.1f}x from early to late stream "
        f"segments — incremental updates are not sublinear")
