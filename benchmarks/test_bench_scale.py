"""Extraction scaling: throughput must stay flat as the log grows.

The paper processes 12.4M statements; per-statement work must be
independent of log size for that to be feasible.  We measure throughput
at three log sizes and require the largest run to stay within 2.5x of the
per-query cost of the smallest (allowing cache/GC noise).
"""

import time

from repro.core import AccessAreaExtractor, process_log
from repro.schema import skyserver_schema
from repro.workload import WorkloadConfig, generate_workload
from .conftest import write_artifact

SIZES = (2000, 8000, 20_000)


def test_extraction_scaling(benchmark, out_dir):
    schema = skyserver_schema()
    logs = {
        size: generate_workload(
            WorkloadConfig(n_queries=size, seed=61)).log.statements()
        for size in SIZES
    }

    def measure(statements):
        extractor = AccessAreaExtractor(schema)
        start = time.perf_counter()
        report = process_log(statements, extractor, keep_failures=False)
        elapsed = time.perf_counter() - start
        return report, elapsed

    results = {}
    for size in SIZES[:-1]:
        results[size] = measure(logs[size])
    # The benchmark fixture times the largest run.
    report, elapsed = benchmark.pedantic(
        lambda: measure(logs[SIZES[-1]]), rounds=1, iterations=1)
    results[SIZES[-1]] = (report, elapsed)

    lines = [f"{'log size':>9} | {'seconds':>8} | {'q/s':>8} | rate"]
    per_query = {}
    for size in SIZES:
        rep, secs = results[size]
        throughput = rep.total / secs
        per_query[size] = secs / rep.total
        lines.append(f"{size:>9,} | {secs:>8.2f} | {throughput:>8,.0f} "
                     f"| {rep.extraction_rate:.2%}")
    projected = per_query[SIZES[-1]] * 12_400_000
    lines.append("")
    lines.append(f"projected 12.4M-statement log: {projected / 60:.1f} "
                 "minutes on this machine")
    art = "\n".join(lines)
    write_artifact(out_dir, "scaling.txt", art)
    print("\n" + art)

    # Per-query cost roughly flat: no superlinear behaviour.
    assert per_query[SIZES[-1]] < 2.5 * per_query[SIZES[0]]
    for size in SIZES:
        assert results[size][0].extraction_rate > 0.99
