"""Shared fixtures for the experiment benchmarks.

One moderately sized case-study run is shared across the Table-1,
Figure-1, and comparison benchmarks; each benchmark additionally times a
representative piece of work through the ``benchmark`` fixture and writes
its reproduced artifact to ``benchmarks/out/`` so EXPERIMENTS.md can
reference actual runs.
"""

import os
from pathlib import Path

import pytest

from repro import CaseStudyConfig, run_case_study
from repro.workload import ContentConfig, WorkloadConfig

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def bench_config() -> CaseStudyConfig:
    return CaseStudyConfig(
        workload=WorkloadConfig(n_queries=6000, seed=13),
        content=ContentConfig(photo_rows=2500, spec_rows=2000,
                              satellite_rows=1200, seed=7),
        sample_size=2200,
        eps=0.12,
        min_pts=5,
        resolution=0.05,
        seed=99,
    )


@pytest.fixture(scope="session")
def bench_result(bench_config):
    """The full Section-6 pipeline at benchmark scale."""
    return run_case_study(bench_config)


def write_artifact(out_dir: Path, name: str, text: str) -> None:
    (out_dir / name).write_text(text, encoding="utf-8")


def pytest_sessionfinish(session, exitstatus):
    """Flight-recorder hook: one run record per benchmark session.

    After the benchmarks have written their ``BENCH_*.json`` artifacts,
    leave a run record (flattened benchmark metrics included) under the
    runs directory, and — when ``REPRO_BENCH_TRAJECTORY_LABEL`` is set
    (the CI perf-guard job does this) — append the metrics to the
    trajectory store so ``repro perf check`` can compare labels.
    Never fails the benchmark run itself.
    """
    if not OUT_DIR.is_dir():
        return
    try:
        from repro.obs import runrec
        from repro.obs.perf import append_entry, collect_bench_metrics

        metrics = collect_bench_metrics(OUT_DIR)
        if not metrics:
            return
        runs_dir = (os.environ.get("REPRO_RUNS_DIR")
                    or runrec.DEFAULT_RUNS_DIR)
        with runrec.RunRecorder("benchmarks",
                                runs_dir=runs_dir) as recorder:
            recorder.set(bench_metrics=metrics,
                         exit_code=int(exitstatus),
                         smoke=os.environ.get("REPRO_BENCH_SMOKE")
                         == "1")
        label = os.environ.get("REPRO_BENCH_TRAJECTORY_LABEL")
        if label:
            append_entry(OUT_DIR / "BENCH_trajectory.json", metrics,
                         label=label, git_sha=runrec.git_sha())
    except Exception as error:  # pragma: no cover - diagnostics only
        print(f"flight-recorder benchmark hook skipped: {error}")
