"""Shared fixtures for the experiment benchmarks.

One moderately sized case-study run is shared across the Table-1,
Figure-1, and comparison benchmarks; each benchmark additionally times a
representative piece of work through the ``benchmark`` fixture and writes
its reproduced artifact to ``benchmarks/out/`` so EXPERIMENTS.md can
reference actual runs.
"""

from pathlib import Path

import pytest

from repro import CaseStudyConfig, run_case_study
from repro.workload import ContentConfig, WorkloadConfig

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def bench_config() -> CaseStudyConfig:
    return CaseStudyConfig(
        workload=WorkloadConfig(n_queries=6000, seed=13),
        content=ContentConfig(photo_rows=2500, spec_rows=2000,
                              satellite_rows=1200, seed=7),
        sample_size=2200,
        eps=0.12,
        min_pts=5,
        resolution=0.05,
        seed=99,
    )


@pytest.fixture(scope="session")
def bench_result(bench_config):
    """The full Section-6 pipeline at benchmark scale."""
    return run_case_study(bench_config)


def write_artifact(out_dir: Path, name: str, text: str) -> None:
    (out_dir / name).write_text(text, encoding="utf-8")
