"""E1 — Table 1: clusters of aggregated access areas.

Regenerates the paper's headline table (cardinality, area coverage,
object coverage, access-area description per cluster) on the synthetic
log and checks the qualitative shapes:

* the planted interest families come back as clusters;
* hot clusters cover a small fraction of the content (most Table 1 rows
  sit between <0.001 and ~0.4 coverage);
* the empty-area families (18-24) produce clusters with 0.0 / 0.0.

The timed section is cluster aggregation + coverage computation (the
post-clustering analytics the table consists of).
"""

from repro.analysis import format_summary, format_table1
from repro.clustering import aggregate_cluster, area_coverage, \
    object_coverage
from .conftest import write_artifact


def test_table1(benchmark, bench_result, out_dir):
    result = bench_result

    def rebuild_table_rows():
        rows = []
        for cid, indices in result.clustering.clusters().items():
            members = [result.sample[i].area for i in indices]
            agg = aggregate_cluster(cid, members, result.stats,
                                    sigma=result.config.sigma)
            rows.append((agg, area_coverage(agg, result.stats),
                         object_coverage(agg, result.db)))
        return rows

    rows = benchmark.pedantic(rebuild_table_rows, rounds=1, iterations=1)
    assert len(rows) == len(result.rows)

    table = format_table1(result.rows, show_truth=True)
    summary = format_summary(result)
    write_artifact(out_dir, "table1.txt", summary + "\n\n" + table)
    print("\n" + summary + "\n\n" + table)

    # -- shape assertions vs. the paper ------------------------------------
    recovered = result.recovered_families()
    assert len(recovered) >= 20, f"only recovered {sorted(recovered)}"

    # Hot families occupy small fractions of the content.
    hot = [row for row in result.rows
           if 1 <= row.dominant_family <= 17 and row.purity > 0.9]
    assert hot
    assert sum(1 for row in hot if row.area_coverage < 0.5) >= \
        0.7 * len(hot)

    # Empty-area families report 0.0 / 0.0 — including sub-percent rows.
    empty = [row for row in result.rows
             if row.dominant_family >= 18 and row.purity > 0.9]
    assert empty
    for row in empty:
        assert row.area_coverage <= 0.01, row.description
        assert row.object_coverage <= 0.01, row.description

    # Cardinality ordering roughly follows the planted Table-1 ordering:
    # family 1's biggest cluster outweighs family 24's.
    fam_card = {}
    for row in result.rows:
        if row.purity > 0.9:
            fam_card[row.dominant_family] = max(
                fam_card.get(row.dominant_family, 0), row.cardinality)
    if 1 in fam_card and 24 in fam_card:
        assert fam_card[1] > fam_card[24]

    # Users-per-cluster ≈ cardinality (the paper's observation).
    for row in result.rows[:10]:
        assert row.n_users >= 0.7 * row.cardinality


def test_table1_multi_relation_clusters(benchmark, bench_result):
    """Clusters 16/17 analogues: join families keep their join predicate."""
    result = bench_result

    def find_join_rows():
        return [row for row in result.rows
                if row.dominant_family in (16, 17) and row.purity > 0.9]

    join_rows = benchmark.pedantic(find_join_rows, rounds=1, iterations=1)
    assert join_rows, "join families not recovered"
    for row in join_rows:
        assert len(row.aggregated.relations) == 2
        assert row.aggregated.joins, row.description
