"""Vectorized kernel + VP-tree index: wall-time, storage, prune rate.

Builds SkyServer-shaped populations of **real** access areas (windows
over a five-table schema, quantized so the packed clause vocabulary
stays realistic) and compares three ways of serving intra-partition
distances at n ∈ {5 000, 20 000, 100 000}:

- ``python``: the pure-Python oracle filling block-sparse condensed
  blocks (the exact semantics baseline),
- ``kernel``: the same blocks filled by the vectorized struct-of-arrays
  kernel (bitwise-equal values),
- ``vptree``: the lazy neighbour index — no blocks materialized at
  all; queries answered through certified-bound pruning.

The pure-Python fill is measured up to ``PYTHON_CAP`` items and
extrapolated linearly in intra-partition pair count beyond that (the
fill is exactly pair-proportional).  Kernel blocks are materialized up
to ``KERNEL_CAP``: at n = 100 000 the condensed blocks alone would
need ~7 GB, which is precisely the regime the lazy index exists for,
so only the vptree runs there.  Writes
``benchmarks/out/BENCH_kernel.json``.

Acceptance (asserted): kernel block fill ≥ 5× faster than pure Python
at the middle size, vptree storage a small fraction of the kernel's
at every size, prune rate > 0, and DBSCAN label parity across all
three at the smallest size.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the sizes ~20×.
"""

import json
import os
import random
import time

import pytest

np = pytest.importorskip("numpy")

from repro.algebra.cnf import CNF, Clause
from repro.algebra.intervals import Interval
from repro.algebra.predicates import ColumnConstantPredicate, ColumnRef, Op
from repro.clustering import partitioned_dbscan
from repro.core.area import AccessArea
from repro.distance import QueryDistance
from repro.distance.block_sparse import BlockSparseDistanceMatrix
from repro.distance.metric_index import VPTreeIndex
from repro.schema import (Column, ColumnType, Relation, Schema,
                          StatisticsCatalog)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SIZES = (300, 800, 2000) if SMOKE else (5000, 20000, 100000)
#: pure-Python fill measured up to here, extrapolated beyond
PYTHON_CAP = SIZES[0]
#: kernel blocks materialized up to here (memory-bound above)
KERNEL_CAP = SIZES[1]
EPS = 0.12
MIN_PTS = 4
N_QUERY_SAMPLE = 200

TABLES = ("photoobj", "photoz", "specobj", "galaxy", "star")

#: SkyServer-like skew: single-table point lookups dominate, a tail of
#: joins.  All cross-partition d_tables values are ≥ 0.5, so EPS sits
#: safely below the exactness bound and the vptree preconditions hold.
TABLE_SET_MIX = (
    (frozenset({"photoobj"}), 0.30),
    (frozenset({"photoz"}), 0.18),
    (frozenset({"specobj"}), 0.12),
    (frozenset({"galaxy"}), 0.10),
    (frozenset({"star"}), 0.08),
    (frozenset({"photoobj", "specobj"}), 0.08),
    (frozenset({"photoz", "specobj"}), 0.06),
    (frozenset({"photoobj", "photoz"}), 0.04),
    (frozenset({"photoobj", "specobj", "galaxy"}), 0.04),
)

WIDTHS = (8.0, 10.0, 12.0)
CENTERS = (20.0, 50.0, 80.0)


def _catalog():
    schema = Schema("bench")
    for name in TABLES:
        schema.add(Relation(name, (
            Column("x", ColumnType.FLOAT, Interval(0.0, 100.0)),)))
    return StatisticsCatalog.from_exact_content(schema, {
        (name, "x"): Interval(0.0, 100.0) for name in TABLES})


def make_population(n, seed=29):
    """Clustered window areas with a quantized clause vocabulary."""
    rng = random.Random(seed)
    sets = [ts for ts, _ in TABLE_SET_MIX]
    weights = [w for _, w in TABLE_SET_MIX]
    items = []
    for _ in range(n):
        table_set = rng.choices(sets, weights)[0]
        table = min(table_set)
        ref = ColumnRef(table, "x")
        lo = float(round(rng.choice(CENTERS) + rng.gauss(0.0, 4.0)))
        width = rng.choice(WIDTHS)
        items.append(AccessArea(tuple(sorted(table_set)), CNF.of([
            Clause.of([ColumnConstantPredicate(ref, Op.GE, lo)]),
            Clause.of([ColumnConstantPredicate(ref, Op.LE, lo + width)]),
        ])))
    return items


def _intra_pairs(items):
    sizes = {}
    for item in items:
        sizes[item.table_set] = sizes.get(item.table_set, 0) + 1
    return sum(m * (m - 1) // 2 for m in sizes.values())


def _timed(build):
    started = time.perf_counter()
    result = build()
    return result, time.perf_counter() - started


def test_kernel_artifact(out_dir):
    catalog = _catalog()
    rows = []
    python_rate = None  # measured seconds per intra-partition pair

    for n in SIZES:
        items = make_population(n)
        metric = QueryDistance(catalog)
        pairs = _intra_pairs(items)
        row = {"n": n, "intra_pairs": pairs,
               "dense_condensed_bytes": n * (n - 1) // 2 * 8}

        if n <= PYTHON_CAP:
            _, python_seconds = _timed(
                lambda: BlockSparseDistanceMatrix.compute(
                    items, QueryDistance(catalog), cutoff=EPS,
                    engine="python"))
            python_rate = python_seconds / pairs
            row.update(python_measured=True,
                       python_seconds=round(python_seconds, 4))
        else:
            row.update(python_measured=False,
                       python_seconds=round(python_rate * pairs, 4))

        if n <= KERNEL_CAP:
            kernel, kernel_seconds = _timed(
                lambda: BlockSparseDistanceMatrix.compute(
                    items, QueryDistance(catalog), cutoff=EPS,
                    engine="kernel"))
            row.update(
                kernel_seconds=round(kernel_seconds, 4),
                kernel_stored_floats=kernel.stats.stored_floats,
                kernel_speedup=round(
                    row["python_seconds"] / kernel_seconds, 2))
            # Query throughput against the materialized blocks.
            sample = random.Random(7).sample(
                range(n), min(n, N_QUERY_SAMPLE))
            _, scan_seconds = _timed(
                lambda: [kernel.neighbors(i, EPS) for i in sample])
            row["matrix_queries_per_second"] = round(
                len(sample) / scan_seconds)
            del kernel

        index, vptree_seconds = _timed(
            lambda: VPTreeIndex.compute(items, QueryDistance(catalog),
                                        cutoff=EPS))
        sample = random.Random(7).sample(
            range(n), min(n, N_QUERY_SAMPLE))
        _, query_seconds = _timed(
            lambda: [index.neighbors(i, EPS) for i in sample])
        row.update(
            vptree_build_seconds=round(vptree_seconds, 4),
            vptree_build_evals=index.vpstats.build_evals,
            vptree_stored_floats=index.stats.stored_floats,
            vptree_queries_per_second=round(
                len(sample) / query_seconds),
            vptree_prune_rate=round(index.vpstats.prune_rate, 4))
        if "kernel_stored_floats" in row:
            row["storage_ratio_vptree_vs_kernel"] = round(
                row["vptree_stored_floats"]
                / row["kernel_stored_floats"], 4)

        if n == SIZES[0]:
            # All three engines must produce identical cluster labels.
            sparse = BlockSparseDistanceMatrix.compute(
                items, QueryDistance(catalog), cutoff=EPS,
                engine="python")
            kern = BlockSparseDistanceMatrix.compute(
                items, QueryDistance(catalog), cutoff=EPS,
                engine="kernel")
            want = partitioned_dbscan(items, metric, EPS, MIN_PTS,
                                      matrix=sparse).labels
            parity = (
                partitioned_dbscan(items, metric, EPS, MIN_PTS,
                                   matrix=kern).labels == want
                and partitioned_dbscan(items, metric, EPS, MIN_PTS,
                                       matrix=index).labels == want)
            row["dbscan_label_parity"] = parity
            assert parity
        del index
        rows.append(row)

    artifact = {
        "eps": EPS,
        "smoke": SMOKE,
        "python_cap": PYTHON_CAP,
        "kernel_cap": KERNEL_CAP,
        "table_set_mix": sorted(
            ("+".join(sorted(ts)), w) for ts, w in TABLE_SET_MIX),
        "sizes": rows,
    }
    (out_dir / "BENCH_kernel.json").write_text(
        json.dumps(artifact, indent=2) + "\n", encoding="utf-8")

    # Acceptance: ≥5× kernel speedup over the pure-Python fill at the
    # middle size, real pruning, and lazy storage far below the blocks.
    middle = rows[1]
    assert middle["kernel_speedup"] >= 5.0, middle
    for row in rows:
        assert row["vptree_prune_rate"] > 0.0, row
    if not SMOKE:
        # The lazy index's storage is linear in n (clause vocabulary ×
        # members) against the blocks' quadratic growth; at smoke
        # sizes the vocabulary tables dominate, so only assert at
        # benchmark scale.
        assert middle["storage_ratio_vptree_vs_kernel"] < 0.5, middle
    # The largest size runs without materializing any block.
    assert "kernel_seconds" not in rows[-1]
