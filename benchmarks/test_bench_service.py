"""Interest service benchmark: sustained ingest + request latency.

Drives the ASGI application in-process (no sockets, no kernel
networking noise) with the synthetic SkyServer workload:

* **ingest** — sustained ``POST /queries`` throughput while the
  incremental clusterer, intern pool, and per-user ledgers absorb the
  stream;
* **reads** — latency quantiles for the snapshot-backed endpoints
  (``/clusters``, ``/healthz``) and the recommender path
  (``/recommend``) measured against the loaded state;
* **parity** — the live labels after the run equal a from-scratch
  weighted batch DBSCAN over the resident unique areas.

Writes ``benchmarks/out/BENCH_service.json``; the perf guard budgets
``*_per_second`` (down = bad) and the dedicated ``BENCH_service``
latency entry in ``perf_budgets.toml``.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the stream ~10x.
"""

import json
import os
import time

from repro.clustering import DBSCAN
from repro.distance import QueryDistance
from repro.obs.metrics import MetricsRegistry
from repro.service import AppState, ServiceConfig, TestClient, create_app
from repro.workload import WorkloadConfig, generate_workload

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N_QUERIES = 250 if SMOKE else 2_500
N_READS = 60 if SMOKE else 400
EPS = 0.12
MIN_PTS = 5


def _quantile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def test_service_throughput_and_latency(benchmark, out_dir):
    registry = MetricsRegistry()
    state = AppState(ServiceConfig(eps=EPS, min_pts=MIN_PTS, warmup=50),
                     registry=registry)
    app = create_app(state=state)
    client = TestClient(app)
    workload = generate_workload(WorkloadConfig(n_queries=N_QUERIES,
                                                seed=17))
    statements = workload.log.statements_with_users()

    ingest = {}

    def run():
        started = time.perf_counter()
        for sql, user in statements:
            response = client.post("/queries",
                                   json={"sql": sql, "user": user})
            assert response.status == 200
        ingest["seconds"] = time.perf_counter() - started
        return state

    benchmark.pedantic(run, rounds=1, iterations=1)

    # Read latency against the loaded state, one sample per request.
    latencies = {"/clusters": [], "/healthz": [], "/recommend": []}
    client.get("/recommend")  # fit once outside the timed loop
    for path, samples in latencies.items():
        for _ in range(N_READS):
            started = time.perf_counter()
            response = client.get(path)
            samples.append(time.perf_counter() - started)
            assert response.status == 200

    # Parity: the answer being served is the batch answer.
    clusterer = state.clusterer
    batch = DBSCAN(eps=EPS, min_pts=MIN_PTS).fit(
        clusterer.areas(), distance=QueryDistance(state.frozen_stats),
        weights=clusterer.weights())
    labels_match_batch = clusterer.labels() == list(batch.labels)

    read_samples = [s for samples in latencies.values()
                    for s in samples]
    artifact = {
        "statements": len(statements),
        "ingest_seconds": round(ingest["seconds"], 4),
        "ingest_per_second": round(
            len(statements) / ingest["seconds"], 2),
        "unique_areas": clusterer.n_unique,
        "n_clusters": clusterer.n_clusters,
        "labels_match_batch": labels_match_batch,
        "request_p50_seconds": round(_quantile(read_samples, 0.50), 6),
        "request_p99_seconds": round(_quantile(read_samples, 0.99), 6),
        "routes": {
            path: {
                "p50_seconds": round(_quantile(samples, 0.50), 6),
                "p99_seconds": round(_quantile(samples, 0.99), 6),
            }
            for path, samples in latencies.items()
        },
    }
    path = out_dir / "BENCH_service.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True),
                    encoding="utf-8")
    print("\n" + json.dumps(artifact, indent=2, sort_keys=True))

    assert labels_match_batch
    assert artifact["ingest_per_second"] > 0
    # The per-route service histograms exist and saw the traffic.
    exposition = client.get("/metrics").text
    assert "repro_service_request_seconds" in exposition
    assert "repro_service_ingested_total" in exposition
