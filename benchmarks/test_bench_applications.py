"""Application-layer benchmarks: recommendation, categorization, sessions.

These exercise the library's downstream-facing extensions (Sections 3.2
related work and 6.3 expert feedback) on the case-study output.
"""

from collections import Counter

from repro.analysis import (IntentKind, SkyAreaKind, categorize,
                            split_sessions)
from repro.core import AccessAreaExtractor
from repro.recommend import InterestRecommender
from .conftest import write_artifact


def test_recommender(benchmark, bench_result, out_dir):
    result = bench_result
    extractor = AccessAreaExtractor(result.schema)

    def fit_and_query():
        recommender = InterestRecommender(
            result.stats, extractor=extractor,
            resolution=result.config.resolution).fit(
            [s.area for s in result.sample], result.clustering)
        recs = recommender.recommend_for_sql(
            "SELECT * FROM SpecObjAll WHERE plate BETWEEN 400 AND 900 "
            "AND class = 'star'", k=3)
        return recommender, recs

    recommender, recs = benchmark.pedantic(fit_and_query, rounds=1,
                                           iterations=1)
    lines = [f"indexed interest areas: {recommender.n_clusters}", ""]
    for rec in recs:
        lines.append(f"d={rec.distance:.2f} n={rec.popularity}: "
                     f"{rec.suggested_sql[:90]}")
    art = "\n".join(lines)
    write_artifact(out_dir, "recommender.txt", art)
    print("\n" + art)

    assert recommender.n_clusters >= 20
    assert recs
    # The nearest interest must share the query's relation.
    assert "SpecObjAll" in recs[0].aggregated.relations


def test_query_categorization(benchmark, bench_result, out_dir):
    result = bench_result

    def run():
        sky = Counter()
        intent = Counter()
        for extracted in result.report.extracted[:3000]:
            category = categorize(extracted.area)
            sky[category.sky_area] += 1
            intent[category.intent] += 1
        return sky, intent

    sky, intent = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["sky-area kinds:"]
    lines += [f"  {kind.value:<22}: {count:,}"
              for kind, count in sky.most_common()]
    lines.append("intent kinds:")
    lines += [f"  {kind.value:<22}: {count:,}"
              for kind, count in intent.most_common()]
    art = "\n".join(lines)
    write_artifact(out_dir, "categorization.txt", art)
    print("\n" + art)

    assert sky[SkyAreaKind.RECTANGULAR] > 0
    assert intent[IntentKind.RETRIEVE] > 0  # the point-lookup families
    assert intent[IntentKind.SEARCH] > 0


def test_session_statistics(benchmark, bench_result, out_dir):
    result = bench_result

    def run():
        return split_sessions(result.workload.log.entries, idle_gap=300)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    art = stats.describe()
    write_artifact(out_dir, "sessions.txt", art)
    print("\n" + art)

    assert stats.n_sessions >= stats.n_users
    # Mostly single-query users (the paper's cardinality ≈ users
    # observation), plus some repeat-user bursts.
    assert stats.single_query_sessions > 0.5 * stats.n_sessions
