"""E8 — Section 6.6 (efficiency): throughput and per-stage timings.

The paper reports ~100,000 queries in ~45 s (≈2,200 q/s on 2009 hardware)
with stage ranges Parsing <1-94 ms, Extraction <1-1333 ms, CNF <1 ms-∞,
Consolidation <1-95 ms, and identifies the CNF converter's exponential
blow-up past ~35 predicates — worked around by the predicate cap.
"""

import time

import numpy as np

from repro.algebra.cnf import CNFConversionError
from repro.clustering import pairwise_matrix
from repro.core import AccessAreaExtractor, process_log
from repro.distance import DistanceMatrix, QueryDistance
from repro.schema import StatisticsCatalog, skyserver_schema
from repro.schema.skyserver import CONTENT_BOUNDS
from repro.workload import WorkloadConfig, generate_workload
from .conftest import write_artifact


def test_throughput_and_stage_timings(benchmark, out_dir):
    workload = generate_workload(WorkloadConfig(n_queries=5000, seed=31))
    statements = workload.log.statements()
    extractor = AccessAreaExtractor(skyserver_schema())

    report = benchmark.pedantic(
        lambda: process_log(statements, extractor, keep_failures=False),
        rounds=1, iterations=1)

    total_seconds = sum(s.total for s in report.stage_timings.values())
    throughput = report.extraction_count / max(total_seconds, 1e-9)

    lines = [
        f"queries processed : {report.total:,}",
        f"pipeline seconds  : {total_seconds:.2f}",
        f"throughput        : {throughput:,.0f} q/s "
        f"(paper: ~2,200 q/s)",
        "",
        f"{'stage':<12} {'min ms':>9} {'mean ms':>9} {'max ms':>9}",
    ]
    for stage in ("parse", "extract", "cnf", "consolidate"):
        s = report.stage_timings[stage]
        lines.append(f"{stage:<12} {s.minimum * 1e3:>9.3f} "
                     f"{s.mean * 1e3:>9.3f} {s.maximum * 1e3:>9.3f}")
    art = "\n".join(lines)
    write_artifact(out_dir, "efficiency.txt", art)
    print("\n" + art)

    assert throughput > 500  # comfortably at the paper's scale
    # Stage ordering: parsing is not the bottleneck end-to-end.
    timings = report.stage_timings
    assert timings["parse"].maximum < 1.0  # seconds


def test_distance_matrix_engine_speedup(benchmark, out_dir):
    """The shared matrix engine vs the naive per-algorithm double loop.

    On a 200-area workload the engine must be ≥ 1.5× faster through
    bound-skipping and the two-level cache alone (this container may
    have a single core, so parallelism gets no credit), and the
    parallel path must reproduce the serial matrix bitwise.
    """
    schema = skyserver_schema()
    workload = generate_workload(WorkloadConfig(n_queries=400, seed=71))
    report = process_log(workload.log.statements(),
                         AccessAreaExtractor(schema), keep_failures=False)
    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)
    for item in report.extracted:
        stats.observe_cnf(item.area.cnf)
    areas = report.areas()[:200]
    eps = 0.12

    def metric():
        return QueryDistance(stats, resolution=0.05)

    # The old hot path: every algorithm re-ran the full double loop.
    start = time.perf_counter()
    naive = pairwise_matrix(areas, metric())
    naive_seconds = time.perf_counter() - start

    engine = benchmark.pedantic(
        lambda: DistanceMatrix.compute(areas, metric(), cutoff=eps),
        rounds=1, iterations=1)
    speedup = naive_seconds / max(engine.stats.elapsed_seconds, 1e-9)

    # Exactness: serial full matrix == naive loop == parallel matrix.
    serial = DistanceMatrix.compute(areas, metric())
    parallel = DistanceMatrix.compute(areas, metric(), n_jobs=2)
    assert np.array_equal(serial.to_square(), naive)
    assert np.array_equal(parallel.condensed, serial.condensed)

    art = "\n".join([
        f"population          : {len(areas)} areas, "
        f"{engine.stats.pairs_total:,} pairs",
        f"naive double loop   : {naive_seconds:.3f} s",
        f"matrix engine       : {engine.stats.elapsed_seconds:.3f} s "
        f"(cutoff={eps})",
        f"speedup             : {speedup:.1f}x",
        f"engine stats        : {engine.stats.summary()}",
        "parallel (n_jobs=2) : bitwise identical to serial",
    ])
    write_artifact(out_dir, "distance_matrix_engine.txt", art)
    print("\n" + art)

    assert speedup >= 1.5


def _many_predicate_query(n: int) -> str:
    """An adversarial OR-of-ANDs whose CNF is exponential in n."""
    disjuncts = [f"(ra > {i} AND dec < {i})" for i in range(n)]
    return "SELECT * FROM PhotoObjAll WHERE " + " OR ".join(disjuncts)


def test_cnf_blowup_and_cap(benchmark, out_dir):
    """Past ~35 predicates the uncapped converter explodes; the cap holds."""
    schema = skyserver_schema()
    capped = AccessAreaExtractor(schema, predicate_cap=35)
    uncapped = AccessAreaExtractor(schema, predicate_cap=None)

    # Uncapped: a 2^24-clause CNF must trip the resource guard.
    blew_up = False
    try:
        uncapped.extract(_many_predicate_query(24))
    except CNFConversionError:
        blew_up = True
    assert blew_up

    # Capped: the same statement (and far larger ones) stay bounded.
    result = benchmark.pedantic(
        lambda: capped.extract(_many_predicate_query(60)),
        rounds=1, iterations=1)
    assert result.area.cnf.count_predicates() <= 40

    # Growth curve below the cap (the paper's exponential observation).
    lines = ["predicates -> CNF clauses (uncapped)"]
    for n in (4, 6, 8, 10, 12):
        area = uncapped.extract(_many_predicate_query(n)).area
        lines.append(f"{2 * n:>10} -> {len(area.cnf):,}")
    art = "\n".join(lines) + (
        "\n\n>48 predicates uncapped: CNFConversionError (guarded)"
        "\ncap=35 keeps every statement bounded "
        "(paper: 471 of 12.4M queries exceeded 35 predicates)")
    write_artifact(out_dir, "cnf_blowup.txt", art)
    print("\n" + art)


def test_consolidation_cost_share(benchmark, out_dir):
    """Consolidation is a small share of the pipeline (paper: <1-95 ms)."""
    workload = generate_workload(WorkloadConfig(n_queries=1500, seed=33))
    statements = workload.log.statements()
    schema = skyserver_schema()

    with_consolidation = AccessAreaExtractor(schema, consolidate=True)
    report = benchmark.pedantic(
        lambda: process_log(statements, with_consolidation,
                            keep_failures=False),
        rounds=1, iterations=1)

    consolidate_share = (
        report.stage_timings["consolidate"].total
        / max(sum(s.total for s in report.stage_timings.values()), 1e-9))
    art = f"consolidation share of pipeline: {consolidate_share:.1%}"
    write_artifact(out_dir, "consolidation_share.txt", art)
    print("\n" + art)
    assert consolidate_share < 0.8
