"""Future-work sweep: alternative distances and clustering techniques.

Section 7: "we plan to experiment with different clustering techniques on
our data sets of extracted access areas ... [and] to test our method with
different distance functions".  This benchmark runs the sweep: the
paper's distance vs. the footprint distance vs. a table-deweighted
variant, and DBSCAN vs. single-linkage, all on the same sample — scored
by planted-family recovery.
"""

from repro.clustering import SingleLinkage, partitioned_dbscan
from repro.distance import (DistanceMatrix, FootprintDistance,
                            QueryDistance, WeightedQueryDistance)
from .conftest import write_artifact


def _recovery(result, labels):
    """Families recovered as a (dominant, ≥50% pure) cluster."""
    clusters: dict[int, list[int]] = {}
    for index, label in enumerate(labels):
        if label >= 0:
            clusters.setdefault(label, []).append(index)
    recovered = set()
    for members in clusters.values():
        families = [result.sample[i].family_id for i in members]
        dominant = max(set(families), key=families.count)
        if dominant > 0 and families.count(dominant) >= 0.5 * len(families):
            recovered.add(dominant)
    return recovered, len(clusters)


def test_distance_function_sweep(benchmark, bench_result, out_dir):
    result = bench_result
    areas = [s.area for s in result.sample]
    config = result.config
    candidates = {
        "paper d_tables+d_conj": QueryDistance(
            result.stats, resolution=config.resolution),
        "footprint Jaccard": FootprintDistance(
            result.stats, resolution=config.resolution),
        "conj-weighted (w_t=0.5)": WeightedQueryDistance(
            result.stats, w_tables=0.5, resolution=config.resolution),
    }

    def sweep():
        outcomes = {}
        for name, distance in candidates.items():
            clustering = partitioned_dbscan(
                areas, distance, eps=config.eps, min_pts=config.min_pts)
            recovered, n_clusters = _recovery(result, clustering.labels)
            outcomes[name] = (len(recovered), n_clusters,
                              clustering.noise_count)
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'distance':<26} {'recovered':>9} {'clusters':>9} "
             f"{'noise':>6}"]
    for name, (recovered, n_clusters, noise) in outcomes.items():
        lines.append(f"{name:<26} {recovered:>6}/24 {n_clusters:>9} "
                     f"{noise:>6}")
    art = "\n".join(lines)
    write_artifact(out_dir, "alternative_distances.txt", art)
    print("\n" + art)

    # Every distance recovers a solid majority; the paper's own distance
    # is the reference point and must not be dominated badly.
    for name, (recovered, _, _) in outcomes.items():
        assert recovered >= 15, (name, recovered)


def test_clustering_technique_sweep(benchmark, bench_result, out_dir):
    result = bench_result
    areas = [s.area for s in result.sample]
    config = result.config
    distance = QueryDistance(result.stats, resolution=config.resolution)

    def sweep():
        # One shared distance matrix feeds both algorithms — the
        # pairwise bill is paid once, not per technique.
        matrix = DistanceMatrix.compute(areas, distance,
                                        cutoff=config.eps)
        dbscan = partitioned_dbscan(areas, None, eps=config.eps,
                                    min_pts=config.min_pts, matrix=matrix)
        linkage = SingleLinkage(threshold=config.eps,
                                min_size=config.min_pts).fit(
            areas, matrix=matrix)
        return dbscan, linkage

    dbscan, linkage = benchmark.pedantic(sweep, rounds=1, iterations=1)
    db_recovered, db_n = _recovery(result, dbscan.labels)
    sl_recovered, sl_n = _recovery(result, linkage.labels)
    art = (f"DBSCAN          : {len(db_recovered)}/24 families, "
           f"{db_n} clusters, {dbscan.noise_count} noise\n"
           f"single-linkage  : {len(sl_recovered)}/24 families, "
           f"{sl_n} clusters, {linkage.noise_count} noise")
    write_artifact(out_dir, "alternative_clusterers.txt", art)
    print("\n" + art)

    assert len(sl_recovered) >= 15
    # Single linkage has no core-point requirement, so it cannot produce
    # MORE noise than DBSCAN at the same radius.
    assert linkage.noise_count <= dbscan.noise_count


def test_density_contrast_column(benchmark, bench_result, out_dir):
    """The Section 6.3 refinement: planted clusters are much denser than
    their surroundings; diffuse-noise clusters are not."""
    result = bench_result

    def collect():
        planted = [row.density_contrast for row in result.rows
                   if row.dominant_family > 0 and row.purity > 0.9
                   and row.cardinality >= 20]
        noise_rows = [row.density_contrast for row in result.rows
                      if row.dominant_family == 0]
        return planted, noise_rows

    planted, noise_rows = benchmark.pedantic(collect, rounds=1,
                                             iterations=1)
    import math
    finite_planted = [c for c in planted if math.isfinite(c)]
    art = (f"planted clusters  : {len(planted)} "
           f"(median contrast "
           f"{sorted(planted)[len(planted) // 2]:.1f})\n"
           f"noise-born rows   : {len(noise_rows)}")
    write_artifact(out_dir, "density_contrast.txt", art)
    print("\n" + art)
    assert planted
    high = sum(1 for c in planted if c > 2 or math.isinf(c))
    assert high >= 0.6 * len(planted), sorted(
        round(c, 1) for c in finite_planted)
