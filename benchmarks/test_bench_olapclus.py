"""E6 — Section 6.4: OLAPClus fragmentation of point-lookup families.

The paper: "OLAPClus produces approximately 100,000 clusters for Cluster 1
of our method ... for each of the Clusters 2-4, OLAPClus outputs about
50,000 clusters."  The shape: exact matching yields roughly one group per
distinct predicate signature, while the overlap distance yields one (or a
handful of) cluster(s) per family.
"""

from repro.baselines import fragmentation, olapclus_cluster
from .conftest import write_artifact


def _family_sample(result, family_id):
    return [
        (i, s.area) for i, s in enumerate(result.sample)
        if s.family_id == family_id
    ]


def test_olapclus_fragmentation(benchmark, bench_result, out_dir):
    result = bench_result
    lines = [f"{'family':>6} | {'queries':>7} | {'ours':>5} | "
             f"{'OLAPClus groups':>15} | factor"]

    def run_all():
        rows = []
        for family_id in (1, 2, 3, 4):
            sample = _family_sample(result, family_id)
            areas = [a for _, a in sample]
            olap_groups = fragmentation(areas, min_pts=2)
            ours = len({
                result.clustering.labels[i] for i, _ in sample
                if result.clustering.labels[i] >= 0
            })
            rows.append((family_id, len(areas), ours, olap_groups))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for family_id, n, ours, olap in rows:
        factor = olap / max(ours, 1)
        lines.append(f"{family_id:>6} | {n:>7} | {ours:>5} | "
                     f"{olap:>15} | {factor:8.1f}x")
        # OLAPClus shatters; our method stays compact.
        assert olap >= 10 * max(ours, 1), (family_id, ours, olap)
        assert 1 <= ours <= 6, (family_id, ours)

    art = "\n".join(lines)
    write_artifact(out_dir, "olapclus_fragmentation.txt", art)
    print("\n" + art)


def test_olapclus_on_full_point_lookup_population(benchmark, bench_result,
                                                  out_dir):
    """Family 1 in isolation: one overlap cluster vs. ~n exact groups."""
    result = bench_result
    areas = [s.area for s in result.sample if s.family_id == 1]
    assert len(areas) >= 50

    clustering = benchmark.pedantic(
        lambda: olapclus_cluster(areas, min_pts=2), rounds=1, iterations=1)

    groups = clustering.n_clusters + clustering.noise_count
    art = (f"family-1 point lookups : {len(areas)}\n"
           f"OLAPClus groups        : {groups}\n"
           f"paper analogue         : 179,072 queries -> ~100,000 clusters")
    write_artifact(out_dir, "olapclus_family1.txt", art)
    print("\n" + art)
    # Nearly every distinct constant is its own group (>80%).
    assert groups > 0.8 * len(areas)
