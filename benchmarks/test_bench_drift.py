"""Trend-mining benchmark: drifting interests across log windows.

Uses the drift-enabled workload (emerging family 9, fading family 10) to
verify the trend report's shape and times the windowed mining pass.
Also exercises OPTICS as the alternative density clusterer: one ordering
run serves several extraction radii.
"""

from repro.clustering import OPTICS, extract_dbscan, partitioned_dbscan
from repro.core import AccessAreaExtractor, process_log
from repro.analysis import TrendKind, mine_drift, split_by_time
from repro.distance import DistanceMatrix, QueryDistance
from repro.schema import (StatisticsCatalog, skyserver_schema)
from repro.schema.skyserver import CONTENT_BOUNDS
from repro.workload import WorkloadConfig, generate_workload
from .conftest import write_artifact


def test_interest_drift(benchmark, out_dir):
    schema = skyserver_schema()
    workload = generate_workload(WorkloadConfig(
        n_queries=2500, seed=5,
        emerging_families=(9,), fading_families=(10,)))
    extractor = AccessAreaExtractor(schema)
    report = process_log(workload.log.statements(), extractor,
                         keep_failures=False)
    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)
    for extracted in report.extracted:
        stats.observe_cnf(extracted.area.cnf)
    pairs = [(item.area, workload.log[item.index].timestamp)
             for item in report.extracted]
    windows = split_by_time(pairs, 2)

    drift = benchmark.pedantic(
        lambda: mine_drift(windows, stats, eps=0.12, min_pts=5),
        rounds=1, iterations=1)

    art = drift.describe(limit=12)
    write_artifact(out_dir, "interest_drift.txt", art)
    print("\n" + art)

    emerged_relations = {
        r for t in drift.emerged()
        for r in t.current.aggregated.relations
    }
    vanished_relations = {
        r for t in drift.vanished()
        for r in t.previous.aggregated.relations
    }
    assert "SpecObjAll" in emerged_relations
    assert "DBObjects" in vanished_relations
    # Stable families persist across windows.
    assert len(drift.persisted()) >= 10


def test_optics_multi_radius(benchmark, bench_result, out_dir):
    """One OPTICS run serves several radii; each cut matches DBSCAN."""
    result = bench_result
    # One partition's worth of areas (same table set) keeps the O(n²)
    # ordering affordable while staying a real population.
    photoz = [s.area for s in result.sample
              if s.area.relations == ("Photoz",)][:250]
    distance = QueryDistance(result.stats,
                             resolution=result.config.resolution)
    # The pairwise bill is paid once by the shared engine; the OPTICS
    # ordering and every DBSCAN cross-check below reuse the same matrix.
    matrix = DistanceMatrix.compute(photoz, distance)

    optics = benchmark.pedantic(
        lambda: OPTICS(max_eps=1.0, min_pts=5).fit(photoz, matrix=matrix),
        rounds=1, iterations=1)

    lines = ["eps -> clusters (OPTICS cut vs direct DBSCAN)"]
    for eps in (0.05, 0.12, 0.3):
        cut = extract_dbscan(optics, eps=eps)
        direct = partitioned_dbscan(photoz, None, eps=eps, min_pts=5,
                                    matrix=matrix) \
            if eps < 0.5 else None
        direct_n = direct.n_clusters if direct else "-"
        lines.append(f"{eps:>5} -> {cut.n_clusters} vs {direct_n}")
        if direct is not None:
            assert cut.n_clusters == direct.n_clusters, eps
    art = "\n".join(lines)
    write_artifact(out_dir, "optics_multi_radius.txt", art)
    print("\n" + art)
