"""Persistent area store: warm-open speedup over the cold pipeline.

Runs the Section-6 case study twice against one ``--store-dir``:

* **cold** — empty store: every statement is parsed, every area
  extracted and appended to the crash-safe segment log, every
  partition's condensed distance block computed and spilled;
* **warm** — same store: the log manifest replays areas by fingerprint
  digest (zero SQL re-extraction) and the distance stage reloads the
  condensed blocks instead of recomputing them.

Acceptance: warm labels are bitwise-identical to cold labels, the warm
open is strictly faster, and the replay really did reload blocks
(``repro_store_*`` counters say so).  Writes
``benchmarks/out/BENCH_store.json``; ``perf_budgets.toml`` has a
dedicated ``BENCH_store`` entry for the warm-open time and the generic
``*speedup*`` budget guards the ratio.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the workload ~6x.
"""

import json
import os
import shutil
import tempfile
import time

from repro import CaseStudyConfig, run_case_study
from repro.obs.metrics import MetricsRegistry
from repro.store import AreaStore
from repro.workload import ContentConfig, WorkloadConfig

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N_QUERIES = 500 if SMOKE else 3_000
SAMPLE = 300 if SMOKE else 1_500


def _config(store_dir: str) -> CaseStudyConfig:
    return CaseStudyConfig(
        workload=WorkloadConfig(n_queries=N_QUERIES, seed=13),
        content=ContentConfig(photo_rows=1500, spec_rows=1200,
                              satellite_rows=800, seed=7),
        sample_size=SAMPLE,
        eps=0.12,
        min_pts=5,
        resolution=0.05,
        seed=99,
        store_dir=store_dir,
    )


def test_bench_store_warm_open(out_dir):
    store_dir = tempfile.mkdtemp(prefix="bench-store-")
    try:
        config = _config(store_dir)

        started = time.perf_counter()
        cold = run_case_study(config)
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        warm = run_case_study(config)
        warm_seconds = time.perf_counter() - started

        # bitwise parity: the whole point of the journal/manifest path
        assert warm.report.warm
        assert not cold.report.warm
        assert list(warm.clustering.labels) == \
            list(cold.clustering.labels)
        assert warm.n_clusters == cold.n_clusters

        # pull the store's own counters for the artifact
        registry = MetricsRegistry()
        with AreaStore(store_dir) as store:
            n_areas = len(store)
            store_bytes = (store.segments.total_bytes()
                           + store.blocks.total_bytes())
            n_blocks = store.blocks.count()
            # touch the read path so the pool has a hit rate to report
            for digest, _area in store.iter_areas():
                store.get_area(digest)
            store.record(registry)
            hit_rate = store.pool.stats.hit_rate

        speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
        artifact = {
            "n_queries": N_QUERIES,
            "sample_size": SAMPLE,
            "cold_seconds": round(cold_seconds, 3),
            "warm_open_seconds": round(warm_seconds, 3),
            "warm_open_speedup": round(speedup, 2),
            "labels_bitwise_identical": True,
            "n_unique_areas": n_areas,
            "n_blocks": n_blocks,
            "store_bytes": store_bytes,
            "reread_pool_hit_rate": round(hit_rate, 4),
        }
        path = out_dir / "BENCH_store.json"
        path.write_text(json.dumps(artifact, indent=2, sort_keys=True),
                        encoding="utf-8")
        print("\n" + json.dumps(artifact, indent=2, sort_keys=True))

        assert speedup > 1.0
        assert n_areas > 0 and n_blocks > 0 and store_bytes > 0
        counters = {c["name"]: c["value"]
                    for c in registry.snapshot()["counters"]}
        assert counters.get("repro_store_pool_hits_total", 0) > 0
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
