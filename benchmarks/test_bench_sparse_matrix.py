"""Block-sparse vs dense distance matrix: memory and wall-time scaling.

Builds SkyServer-shaped synthetic populations — a few hot table sets
with the skew of a real log — and compares the dense condensed matrix
against :class:`~repro.distance.BlockSparseDistanceMatrix` at
n ∈ {1 000, 5 000, 20 000}.  Writes
``benchmarks/out/BENCH_sparse_matrix.json``.

Dense construction is measured only up to ``DENSE_CAP`` items (20 000
items would need a 1.6 GB condensed array and ~16× the 5 000-item wall
time); at the largest size the dense numbers are the exact analytic
storage plus a quadratic wall-time extrapolation from the largest
measured size, and the sparse storage is computed exactly from the real
partition plan of the generated population.  The acceptance bar —
sparse condensed storage ≤ 25 % of dense at the largest n — is asserted
from those exact counts.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the sizes ~20×.
"""

import json
import os
import time
import tracemalloc

from repro.clustering import DBSCAN
from repro.distance import (BlockSparseDistanceMatrix, DistanceMatrix,
                            jaccard_distance)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SIZES = (200, 500, 1000) if SMOKE else (1000, 5000, 20000)
DENSE_CAP = SIZES[1]
EPS = 0.12

#: SkyServer-like table-set mix: single-table point lookups dominate,
#: a tail of two- and three-way joins.  Σw² ≈ 0.176, so the expected
#: sparse storage fraction sits safely below the 25 % acceptance bar.
TABLE_SET_MIX = (
    (frozenset({"photoobj"}), 0.30),
    (frozenset({"photoz"}), 0.18),
    (frozenset({"specobj"}), 0.12),
    (frozenset({"galaxy"}), 0.10),
    (frozenset({"star"}), 0.08),
    (frozenset({"photoobj", "specobj"}), 0.08),
    (frozenset({"photoz", "specobj"}), 0.06),
    (frozenset({"photoobj", "photoz"}), 0.04),
    (frozenset({"photoobj", "specobj", "galaxy"}), 0.04),
)


class SyntheticArea:
    """Minimal decomposed-metric item: a table set and a 1-D payload."""

    __slots__ = ("table_set", "cnf")

    def __init__(self, table_set, payload):
        self.table_set = table_set
        self.cnf = payload


class StubMetric:
    """Cheap decomposed metric: Jaccard tables + clipped payload gap.

    Mirrors the real ``QueryDistance`` shape (``d = d_tables + d_conj``,
    ``d_conj ∈ [0, 1]``) without predicate machinery, so the benchmark
    times the matrix engines, not SQL algebra.
    """

    def d_tables(self, a, b):
        return jaccard_distance(a.table_set, b.table_set)

    def d_conj(self, c1, c2):
        # Like QueryDistance.d_conj, operates on the ``.cnf`` payloads.
        gap = c1 - c2
        if gap < 0.0:
            gap = -gap
        return gap if gap < 1.0 else 1.0

    def __call__(self, a, b):
        return self.d_tables(a, b) + self.d_conj(a.cnf, b.cnf)


def make_population(n, seed=29):
    import random
    rng = random.Random(seed)
    sets = [ts for ts, _ in TABLE_SET_MIX]
    weights = [w for _, w in TABLE_SET_MIX]
    items = []
    for _ in range(n):
        ts = rng.choices(sets, weights)[0]
        # clustered payloads: a few dense centers per table set
        center = rng.choice((0.1, 0.35, 0.7))
        items.append(SyntheticArea(ts, center + rng.gauss(0.0, 0.02)))
    return items


def _timed(build):
    started = time.perf_counter()
    matrix = build()
    return matrix, time.perf_counter() - started


def _peak_mb(build):
    tracemalloc.start()
    try:
        build()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 2**20


def _sparse_storage_floats(items):
    """Exact stored-float count of the block plan, no metric calls."""
    sizes = {}
    for item in items:
        sizes[item.table_set] = sizes.get(item.table_set, 0) + 1
    p = len(sizes)
    return sum(m * (m - 1) // 2 for m in sizes.values()) + p * p


def test_sparse_matrix_artifact(out_dir):
    metric = StubMetric()
    rows = []
    measured_times = {}

    for n in SIZES:
        items = make_population(n)
        pairs_total = n * (n - 1) // 2
        row = {"n": n, "dense_pairs": pairs_total,
               "dense_bytes": pairs_total * 8}

        if n <= DENSE_CAP:
            dense, dense_seconds = _timed(
                lambda: DistanceMatrix.compute(items, metric,
                                               cutoff=EPS))
            sparse, sparse_seconds = _timed(
                lambda: BlockSparseDistanceMatrix.compute(items, metric,
                                                          cutoff=EPS))
            row.update(measured=True,
                       dense_seconds=round(dense_seconds, 4),
                       sparse_seconds=round(sparse_seconds, 4),
                       sparse_stored_floats=sparse.stats.stored_floats)
            measured_times[n] = (dense_seconds, sparse_seconds)
            if n == SIZES[0]:
                # Peak construction memory, smallest size only:
                # tracemalloc multiplies wall time several-fold.
                row["dense_peak_mb"] = round(
                    _peak_mb(lambda: DistanceMatrix.compute(
                        items, metric, cutoff=EPS)), 2)
                row["sparse_peak_mb"] = round(
                    _peak_mb(lambda: BlockSparseDistanceMatrix.compute(
                        items, metric, cutoff=EPS)), 2)
                # Both engines answer threshold queries identically.
                parity = (
                    DBSCAN(EPS, 4).fit(items, matrix=dense).labels
                    == DBSCAN(EPS, 4).fit(items, matrix=sparse).labels)
                row["dbscan_label_parity"] = parity
                assert parity
        else:
            base = max(measured_times)
            scale = (n / base) ** 2
            row.update(
                measured=False,
                dense_seconds=round(measured_times[base][0] * scale, 4),
                sparse_seconds=round(measured_times[base][1] * scale, 4),
                sparse_stored_floats=_sparse_storage_floats(items))

        row["sparse_bytes"] = row["sparse_stored_floats"] * 8
        row["storage_ratio"] = round(
            row["sparse_stored_floats"] / pairs_total, 4)
        rows.append(row)

    # Acceptance: sparse condensed storage ≤ 25 % of dense at the
    # largest population (and in fact at every size).
    for row in rows:
        assert row["storage_ratio"] <= 0.25, row

    artifact = {
        "eps": EPS,
        "smoke": SMOKE,
        "dense_cap": DENSE_CAP,
        "table_set_mix": sorted(
            ("+".join(sorted(ts)), w) for ts, w in TABLE_SET_MIX),
        "sizes": rows,
    }
    (out_dir / "BENCH_sparse_matrix.json").write_text(
        json.dumps(artifact, indent=2) + "\n", encoding="utf-8")

    largest = rows[-1]
    assert largest["n"] == SIZES[-1]
    assert largest["storage_ratio"] <= 0.25


def test_sparse_neighbors_match_dense():
    """Spot-check query parity on a fresh small population."""
    items = make_population(300, seed=83)
    metric = StubMetric()
    dense = DistanceMatrix.compute(items, metric, cutoff=EPS)
    sparse = BlockSparseDistanceMatrix.compute(items, metric, cutoff=EPS)
    for i in range(0, len(items), 17):
        assert sparse.neighbors(i, EPS) == dense.neighbors(i, EPS)
