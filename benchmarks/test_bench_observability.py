"""Observability benchmark: the instrumented pipeline's own telemetry.

Runs extraction + distance matrix + clustering under a fresh metrics
registry and tracer, then exports the registry as
``benchmarks/out/BENCH_observability.json`` — stage timing quantiles,
distance-engine cache-hit ratios, and chunk-latency p95s, produced by
the same exporter the CLI uses.  A companion check pins the cost of the
*disabled* instruments: the null tracer/registry on the hot path must
stay within noise.
"""

import json
import time

from repro.clustering.partitioned import partitioned_dbscan
from repro.core import AccessAreaExtractor, process_log
from repro.distance import DistanceMatrix, QueryDistance
from repro.obs import export
from repro.obs.metrics import MetricsRegistry, NullRegistry, use_registry
from repro.obs.trace import NULL_TRACER, Tracer, use_tracer
from repro.schema import StatisticsCatalog, skyserver_schema
from repro.schema.skyserver import CONTENT_BOUNDS
from repro.workload import WorkloadConfig, generate_workload


def _instrumented_run(registry: MetricsRegistry) -> dict:
    schema = skyserver_schema()
    workload = generate_workload(WorkloadConfig(n_queries=1200, seed=31))
    with use_registry(registry):
        report = process_log(workload.log.statements_with_users(),
                             AccessAreaExtractor(schema),
                             keep_failures=False)
        stats = StatisticsCatalog.from_exact_content(schema,
                                                     CONTENT_BOUNDS)
        areas = report.areas()[:400]
        for area in areas:
            stats.observe_cnf(area.cnf)
        matrix = DistanceMatrix.compute(areas, QueryDistance(stats),
                                        cutoff=0.12)
        result = partitioned_dbscan(areas, None, 0.12, 5, matrix=matrix)
    return {"extracted": report.extraction_count,
            "clusters": result.n_clusters,
            "matrix": matrix.stats}


def test_observability_artifact(benchmark, out_dir):
    registry = MetricsRegistry()
    tracer = Tracer()

    with use_tracer(tracer):
        run = benchmark.pedantic(lambda: _instrumented_run(registry),
                                 rounds=1, iterations=1)

    snapshot = registry.snapshot()
    histograms = {(h["name"], h["labels"].get("stage")
                   or h["labels"].get("mode")
                   or h["labels"].get("algorithm")): h
                  for h in snapshot["histograms"]}
    counters = {(c["name"], tuple(sorted(c["labels"].items()))): c["value"]
                for c in snapshot["counters"]}

    # The acceptance families must all be present.
    assert ("repro_pipeline_stage_seconds", "cnf") in histograms
    assert ("repro_distance_chunk_seconds", "serial") in histograms
    assert ("repro_clustering_iterations", "partitioned_dbscan") \
        in histograms
    # The generator may append a handful of noise statements past
    # n_queries; the counter reflects what actually went through.
    assert counters[("repro_pipeline_statements_total", ())] >= 1200

    stats = run["matrix"]
    artifact = {
        "workload_queries": 1200,
        "areas_clustered": 400,
        "clusters": run["clusters"],
        "stage_seconds_p95": {
            stage: histograms["repro_pipeline_stage_seconds", stage]["p95"]
            for stage in ("parse", "extract", "cnf", "consolidate")},
        "distance": {
            "pairs_total": stats.pairs_total,
            "pairs_computed": stats.pairs_computed,
            "skip_fraction": round(stats.skip_fraction, 4),
            "pred_cache_hit_rate": round(stats.predicate_cache_hit_rate,
                                         4),
            "chunk_seconds_p95":
                histograms["repro_distance_chunk_seconds", "serial"]["p95"],
        },
        "trace_roots": [root.name for root in tracer.roots],
        # The full dump, exactly as the CLI's --metrics-out writes it.
        "metrics": json.loads(export.to_json(registry)),
    }
    path = out_dir / "BENCH_observability.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True),
                    encoding="utf-8")

    # The artifact must be a valid JSON document round-trip.
    loaded = json.loads(path.read_text(encoding="utf-8"))
    assert loaded["metrics"]["counters"]
    assert "process_log" in loaded["trace_roots"]
    assert "distance_matrix" in loaded["trace_roots"]


def test_disabled_instrumentation_overhead(out_dir):
    """Null tracer + null registry on the extraction hot path.

    Both runs go through the fully instrumented code; the second one
    also routes every metric into a NullRegistry explicitly.  They must
    agree within generous noise bounds — the real pre/post comparison
    lives in test_bench_efficiency's absolute throughput floor.
    """
    schema = skyserver_schema()
    statements = generate_workload(
        WorkloadConfig(n_queries=800, seed=77)).log.statements()

    def run_once(registry):
        extractor = AccessAreaExtractor(schema)
        started = time.perf_counter()
        with use_registry(registry):
            report = process_log(statements, extractor,
                                 keep_failures=False)
        return time.perf_counter() - started, report.extraction_count

    # Warm-up round absorbs import/alloc noise.
    run_once(NullRegistry())
    default_s, extracted_a = run_once(MetricsRegistry())
    null_s, extracted_b = run_once(NullRegistry())
    assert extracted_a == extracted_b
    assert NULL_TRACER.roots == []

    summary = (f"default registry : {default_s:.3f} s\n"
               f"null registry    : {null_s:.3f} s\n"
               f"ratio            : {default_s / max(null_s, 1e-9):.3f}\n")
    (out_dir / "observability_overhead.txt").write_text(
        summary, encoding="utf-8")
    print("\n" + summary)
    # Generous bound: the instrumented run may not be wildly slower
    # than the disabled one (allows scheduler noise either way).
    assert default_s < null_s * 2.0 + 0.5
