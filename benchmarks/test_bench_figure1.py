"""E2-E4 — Figure 1: content scatter vs. accessed areas in three subspaces.

Each test regenerates one panel's data series, renders it as ASCII, and
asserts the geometric relationships the paper's plots show.
"""

from repro.analysis import figure1a, figure1b, figure1c
from repro.schema import skyserver as sky
from .conftest import write_artifact


def test_figure1a_plate_mjd(benchmark, bench_result, out_dir):
    """Content fills a diagonal band; the accessed box is a small corner."""
    fig = benchmark.pedantic(figure1a, args=(bench_result,),
                             rounds=1, iterations=1)
    art = fig.render_ascii()
    write_artifact(out_dir, "figure1a.txt", art)
    print("\n" + art)

    assert fig.points
    inside = [r for r in fig.rects if not r.empty]
    assert inside, "no accessed plate/mjd area"
    # The cluster-9 analogue: an early-survey box within the content band.
    early = [r for r in inside if r.x_hi <= 3300 and r.y_hi <= 52_300]
    assert early, [str(r) for r in inside]
    box = early[0]
    content_area = (sky.PLATE_HI - sky.PLATE_LO) * (sky.MJD_HI - sky.MJD_LO)
    box_area = (box.x_hi - box.x_lo) * (box.y_hi - box.y_lo)
    assert box_area < 0.25 * content_area


def test_figure1b_photo_radec(benchmark, bench_result, out_dir):
    """Accessed areas span both content and the empty far south."""
    fig = benchmark.pedantic(figure1b, args=(bench_result,),
                             rounds=1, iterations=1)
    art = fig.render_ascii()
    write_artifact(out_dir, "figure1b.txt", art)
    print("\n" + art)

    min_content_dec = min(p[1] for p in fig.points)
    assert min_content_dec >= sky.PHOTO_DEC_LO

    south = [r for r in fig.empty_rects if r.y_hi <= -40]
    assert south, "Figure 1(b)'s southern empty access area missing"
    # The empty rectangle lies entirely below the content footprint.
    assert all(r.y_hi < min_content_dec for r in south)

    inside = [r for r in fig.rects if not r.empty]
    assert inside, "the equatorial in-content window missing"


def test_figure1c_zoospec(benchmark, bench_result, out_dir):
    """Non-contiguous access: a northern in-content window plus a larger
    southern empty window reaching the out-of-domain dec = -100."""
    fig = benchmark.pedantic(figure1c, args=(bench_result,),
                             rounds=1, iterations=1)
    art = fig.render_ascii()
    write_artifact(out_dir, "figure1c.txt", art)
    print("\n" + art)

    north = [r for r in fig.rects if not r.empty]
    south = [r for r in fig.empty_rects if r.y_hi < 0]
    assert north and south
    # Non-contiguity: a gap separates the two access areas.
    assert max(r.y_hi for r in south) < min(r.y_lo for r in north)
    # The paper's database-improvement hint: queries at dec = -100.
    assert min(r.y_lo for r in south) <= -99.0
