"""E7 — Section 6.5: the overlap distance on raw (untransformed) queries.

The paper swaps the exact matching of OLAPClus for d_conj but keeps
predicates as-is and finds that this "breaks Clusters 2, 5, 8, 9, 11, 12,
18, 19, 20, and 22" — exactly the families whose statements use the
transform-requiring forms of Sections 4.2-4.4 (HAVING aggregates,
NOT-wrapped ranges, EXISTS nesting).

We cluster each family's raw areas and report which families split
(more clusters than our method finds) or shed members to noise.
"""

from repro.baselines import raw_area_of_statement
from repro.clustering import partitioned_dbscan
from repro.distance import QueryDistance
from repro.sqlparser import parse
from .conftest import write_artifact

#: families whose generators emit transform-required phrasings
TRANSFORM_FAMILIES = (2, 5, 8, 9, 11, 12, 18, 19, 20, 22)
#: families with plain phrasing only — raw should NOT break these
PLAIN_FAMILIES = (3, 4, 7, 13)


def _cluster_raw(result, family_id, limit=160):
    statements = [e.sql for e in result.workload.log
                  if e.family_id == family_id][:limit]
    areas = []
    for sql in statements:
        areas.append(raw_area_of_statement(parse(sql), result.schema))
    distance = QueryDistance(result.stats,
                             resolution=result.config.resolution)
    clustering = partitioned_dbscan(areas, distance,
                                    eps=result.config.eps,
                                    min_pts=result.config.min_pts)
    return len(areas), clustering


def _ours(result, family_id):
    labels = {
        result.clustering.labels[i]
        for i, s in enumerate(result.sample)
        if s.family_id == family_id and result.clustering.labels[i] >= 0
    }
    return len(labels)


def test_raw_queries_break_transformed_families(benchmark, bench_result,
                                                out_dir):
    result = bench_result

    def evaluate():
        rows = []
        for family_id in TRANSFORM_FAMILIES:
            n, clustering = _cluster_raw(result, family_id)
            rows.append((family_id, n, _ours(result, family_id),
                         clustering.n_clusters, clustering.noise_count))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    lines = [f"{'family':>6} | {'queries':>7} | {'ours':>4} | "
             f"{'raw clusters':>12} | {'raw noise':>9} | broken?"]
    broken = []
    for family_id, n, ours, raw_clusters, raw_noise in rows:
        is_broken = raw_clusters > ours or raw_noise > 0.15 * n
        broken.append((family_id, is_broken))
        lines.append(f"{family_id:>6} | {n:>7} | {ours:>4} | "
                     f"{raw_clusters:>12} | {raw_noise:>9} | "
                     f"{'YES' if is_broken else 'no'}")
    art = "\n".join(lines) + (
        "\n\npaper: raw-query clustering breaks clusters "
        "2, 5, 8, 9, 11, 12, 18, 19, 20, 22")
    write_artifact(out_dir, "raw_query_breakage.txt", art)
    print("\n" + art)

    broken_count = sum(1 for _, b in broken if b)
    assert broken_count >= 0.7 * len(TRANSFORM_FAMILIES), broken


def test_raw_queries_keep_plain_families(benchmark, bench_result, out_dir):
    """Families with no transform-required phrasing survive raw mode —
    the breakage is attributable to the missing transformation."""
    result = bench_result

    def evaluate():
        return [(fid, *_cluster_raw(result, fid)) for fid in PLAIN_FAMILIES]

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    lines = []
    for family_id, n, clustering in rows:
        lines.append(f"family {family_id}: {n} queries -> "
                     f"{clustering.n_clusters} raw clusters, "
                     f"{clustering.noise_count} noise")
        assert clustering.n_clusters <= 3
        assert clustering.noise_count <= 0.15 * n
    art = "\n".join(lines)
    write_artifact(out_dir, "raw_query_plain_families.txt", art)
    print("\n" + art)
