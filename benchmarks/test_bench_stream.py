"""Streaming extension benchmark (Section 4's operator-notification idea).

Measures incremental-processing throughput and verifies the notification
content on the synthetic log: the zooSpec dec = -100 out-of-range
constants are flagged, new relation combinations and query features are
announced once, and a simulated dialect switch triggers a failure-burst
alarm.
"""

from repro.core import AccessAreaExtractor
from repro.core.stream import EventKind, StreamMonitor
from repro.schema import (CONTENT_BOUNDS, StatisticsCatalog,
                          skyserver_schema)
from repro.workload import WorkloadConfig, generate_workload
from .conftest import write_artifact


def test_stream_monitoring(benchmark, out_dir):
    schema = skyserver_schema()
    workload = generate_workload(WorkloadConfig(n_queries=4000, seed=51))
    statements = workload.log.statements()

    def run():
        stats = StatisticsCatalog.from_exact_content(schema,
                                                     CONTENT_BOUNDS)
        monitor = StreamMonitor(AccessAreaExtractor(schema), stats=stats,
                                warmup=25)
        monitor.process_many(statements)
        return monitor

    monitor = benchmark.pedantic(run, rounds=1, iterations=1)

    counts: dict[EventKind, int] = {}
    for event in monitor.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    art = monitor.summary() + "\n\nfirst events:\n" + "\n".join(
        f"  {event}" for event in monitor.events[:12])
    write_artifact(out_dir, "stream_monitoring.txt", art)
    print("\n" + art)

    assert monitor.state.extraction_rate > 0.99
    # Empty-area interest is caught in flight: the first query stepping
    # outside a content-derived access range (southern declinations,
    # impossible redshifts, future ids) raises an operator event.
    oor = [e for e in monitor.events
           if e.kind is EventKind.OUT_OF_RANGE_CONSTANT]
    assert oor
    flagged = " ".join(e.detail for e in oor)
    assert ("zooSpec.dec" in flagged or "Photoz.z" in flagged
            or "PhotoObjAll.dec" in flagged)
    # Feature novelty fires a bounded number of times (once per feature).
    features = [e for e in monitor.events
                if e.kind is EventKind.NEW_QUERY_FEATURE]
    assert len(features) <= 10


def test_stream_detects_dialect_switch(benchmark, out_dir):
    """A client switching to an unsupported dialect triggers the alarm."""
    schema = skyserver_schema()
    good = ["SELECT * FROM Photoz WHERE z < 0.1"] * 200
    bad = ["SELECT * FROM Photoz WHERE z ?? 0.1"] * 40  # illegal tokens

    def run():
        monitor = StreamMonitor(AccessAreaExtractor(schema), warmup=0,
                                failure_window=40,
                                failure_burst_threshold=0.25)
        monitor.process_many(good + bad)
        return monitor

    monitor = benchmark.pedantic(run, rounds=1, iterations=1)
    bursts = [e for e in monitor.events
              if e.kind is EventKind.FAILURE_BURST]
    art = (f"statements: {monitor.state.processed}, "
           f"failures: {monitor.state.failures}\n"
           f"burst alarms: {len(bursts)}\n"
           + "\n".join(f"  {b}" for b in bursts))
    write_artifact(out_dir, "stream_dialect_switch.txt", art)
    print("\n" + art)
    assert len(bursts) == 1
