"""E10 — lemma validation against an execution oracle.

For query classes where Definitions 3-4 collapse to σ_P (no aggregates,
no negated nesting), extraction must select exactly the rows the engine
returns on a dense grid.  For the aggregate lemmas, we validate the
*influence* semantics directly: a tuple is in the access area iff some
constructible database state makes it change the result.
"""

import itertools

from repro.core import AccessAreaExtractor
from repro.engine import Database, QueryExecutor
from repro.schema import Column, ColumnType, Relation, Schema
from repro.algebra.intervals import Interval
from .conftest import write_artifact

GRID = [-2, -1, 0, 1, 2, 3]


def _setup():
    schema = Schema("oracle")
    schema.add(Relation("T", (Column("u", ColumnType.INT),
                              Column("v", ColumnType.INT))))
    db = Database(schema)
    db.insert("T", [{"u": u, "v": v}
                    for u, v in itertools.product(GRID, GRID)])
    return schema, db


QUERIES = [
    "SELECT * FROM T WHERE u >= -1 AND u <= 2",
    "SELECT * FROM T WHERE u BETWEEN 0 AND 2 AND v <> 1",
    "SELECT * FROM T WHERE NOT (u < 0 OR v > 2)",
    "SELECT * FROM T WHERE u IN (-2, 0, 3) AND v >= 0",
    "SELECT * FROM T WHERE (u < 0 AND v < 0) OR (u > 1 AND v > 1)",
    "SELECT * FROM T WHERE u = 1 OR u = 2 OR v = -1",
    "SELECT * FROM T WHERE NOT (NOT (u > 0))",
    "SELECT * FROM T WHERE u NOT BETWEEN -1 AND 1",
]


def test_extraction_matches_execution_oracle(benchmark, out_dir):
    schema, db = _setup()
    extractor = AccessAreaExtractor(schema)
    executor = QueryExecutor(db)

    def validate_all():
        mismatches = []
        for sql in QUERIES:
            executed = {(r["T.u"], r["T.v"])
                        for r in executor.execute_sql(sql).rows}
            area = extractor.extract(sql).area
            selected = set()
            for u, v in itertools.product(GRID, GRID):
                row = {"u": u, "v": v}
                if all(any(p.evaluate(row[p.ref.column]) for p in clause)
                       for clause in area.cnf):
                    selected.add((u, v))
            if selected != executed:
                mismatches.append(sql)
        return mismatches

    mismatches = benchmark.pedantic(validate_all, rounds=1, iterations=1)
    art = (f"oracle queries checked : {len(QUERIES)}\n"
           f"mismatches             : {len(mismatches)}")
    write_artifact(out_dir, "lemma_oracle.txt", art)
    print("\n" + art)
    assert not mismatches, mismatches


def test_sum_lemma_influence_semantics(benchmark, out_dir):
    """Lemma 1 middle case via explicit state construction.

    Domain [-5, 0] (supp <= 0), HAVING SUM(v) > -2: the lemma says the
    access area is σ_{v > -2}.  Verify by building, for each candidate
    tuple value, the single-tuple state and checking whether the HAVING
    query returns it — exactly the construction in the lemma's proof.
    """
    schema = Schema("lemma")
    schema.add(Relation("G", (
        Column("u", ColumnType.INT),
        Column("v", ColumnType.INT, Interval(-5, 0)),
    )))
    extractor = AccessAreaExtractor(schema)
    sql = ("SELECT G.u, SUM(G.v) FROM G GROUP BY G.u "
           "HAVING SUM(G.v) > -2")
    area = extractor.extract(sql).area

    def influence_check():
        witnesses = {}
        for value in range(-5, 1):
            db = Database(schema)
            db.insert("G", [{"u": 1, "v": value}])
            rows = QueryExecutor(db).execute_sql(sql).rows
            witnesses[value] = len(rows) > 0
        return witnesses

    witnesses = benchmark.pedantic(influence_check, rounds=1, iterations=1)

    # The extraction says v > -2; single-tuple states agree, and no
    # richer state can help since additions only lower the sum.
    predicted = {
        value: all(
            any(p.evaluate({"u": 1, "v": value}[p.ref.column])
                for p in clause)
            for clause in area.cnf)
        for value in range(-5, 1)
    }
    art = "\n".join(
        f"v={value}: influences={witnesses[value]} "
        f"predicted={predicted[value]}"
        for value in sorted(witnesses))
    write_artifact(out_dir, "lemma_sum_influence.txt", art)
    print("\n" + art)
    assert predicted == witnesses
