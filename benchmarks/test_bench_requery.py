"""E9 — Section 6.6 (quality + efficiency vs. re-querying).

Re-issuing queries against the database (and MBR-ing the results):

* misses every empty-area cluster (18-24): those queries return no rows;
* fails outright on server-error queries (LIMIT dialect, size caps);
* costs far more wall-clock than log-only extraction.
"""

import random
import time

from repro.baselines import RequeryBaseline, requery_log
from repro.core import AccessAreaExtractor, process_log
from repro.workload import LogEntry
from .conftest import write_artifact

EMPTY_FAMILIES = (18, 19, 20, 21, 22, 23, 24)


def test_requery_misses_empty_areas(benchmark, bench_result, out_dir):
    result = bench_result
    rng = random.Random(5)
    entries = [e for e in result.workload.log
               if e.family_id in EMPTY_FAMILIES]
    entries = rng.sample(entries, min(150, len(entries)))
    baseline = RequeryBaseline(result.db)

    report = benchmark.pedantic(
        lambda: requery_log(baseline, [e.sql for e in entries]),
        rounds=1, iterations=1)

    art = (f"empty-area queries re-issued : {report.total}\n"
           f"returned rows (visible)      : {report.succeeded}\n"
           f"empty results (invisible)    : {report.empty_results}\n"
           f"errors                       : {report.errored}\n"
           "paper: clusters 18-24 are missed entirely by re-querying")
    write_artifact(out_dir, "requery_empty_areas.txt", art)
    print("\n" + art)

    assert report.empty_results >= 0.9 * report.total
    # Our extraction recovers those same families as clusters:
    recovered_empty = {row.dominant_family for row in result.rows
                       if row.dominant_family in EMPTY_FAMILIES
                       and row.purity > 0.8}
    assert len(recovered_empty) >= 5


def test_requery_fails_on_error_queries(benchmark, bench_result, out_dir):
    result = bench_result
    entries = [e for e in result.workload.log
               if e.family_id == LogEntry.ERROR][:60]
    baseline = RequeryBaseline(result.db)

    report = benchmark.pedantic(
        lambda: requery_log(baseline, [e.sql for e in entries]),
        rounds=1, iterations=1)

    extractor = AccessAreaExtractor(result.schema)
    ours = process_log([e.sql for e in entries], extractor)

    art = (f"server-error queries     : {report.total}\n"
           f"re-query areas obtained  : {report.succeeded}\n"
           f"re-query errors          : {report.errored}\n"
           f"our extraction succeeded : {ours.extraction_count}")
    write_artifact(out_dir, "requery_error_queries.txt", art)
    print("\n" + art)

    assert report.errored >= 0.9 * report.total
    assert ours.extraction_rate == 1.0


def test_requery_runtime_vs_extraction(benchmark, bench_result, out_dir):
    """Extraction is much cheaper than executing against the database."""
    result = bench_result
    rng = random.Random(6)
    entries = [e for e in result.workload.log
               if e.family_id in (5, 7, 9, 14)]
    statements = [e.sql for e in rng.sample(entries,
                                            min(80, len(entries)))]
    baseline = RequeryBaseline(result.db)
    extractor = AccessAreaExtractor(result.schema)

    start = time.perf_counter()
    requery_log(baseline, statements)
    requery_seconds = time.perf_counter() - start

    extract_report = benchmark.pedantic(
        lambda: process_log(statements, extractor),
        rounds=1, iterations=1)
    extract_seconds = sum(
        summary.total
        for summary in extract_report.stage_timings.values())

    speedup = requery_seconds / max(extract_seconds, 1e-9)
    art = (f"statements        : {len(statements)}\n"
           f"re-query wall     : {requery_seconds:.3f}s\n"
           f"extraction wall   : {extract_seconds:.3f}s\n"
           f"speedup           : {speedup:.0f}x "
           "(paper: orders of magnitude)")
    write_artifact(out_dir, "requery_runtime.txt", art)
    print("\n" + art)
    assert speedup > 5
