"""E5 — Section 6.1: extraction success rate and failure taxonomy.

The paper extracts areas from 12,375,426 / 12,442,989 statements
(>99.4%); the leftovers are (a) syntax errors, (b) SkyServer-specific
constructs, (c) non-SELECT statements.  The benchmark times log
processing end-to-end and checks the same rate and taxonomy on the
synthetic log.
"""

from repro.core import AccessAreaExtractor, process_log
from repro.schema import skyserver_schema
from repro.workload import WorkloadConfig, generate_workload
from .conftest import write_artifact


def test_extraction_rate(benchmark, out_dir):
    workload = generate_workload(WorkloadConfig(n_queries=4000, seed=21))
    statements = workload.log.statements()
    extractor = AccessAreaExtractor(skyserver_schema())

    report = benchmark.pedantic(
        lambda: process_log(statements, extractor),
        rounds=1, iterations=1)

    lines = [
        f"statements           : {report.total:,}",
        f"areas extracted      : {report.extraction_count:,}",
        f"extraction rate      : {report.extraction_rate:.4%}  "
        f"(paper: 99.46%)",
        f"  (a) syntax errors  : {report.parse_errors + report.lex_errors}",
        f"  (c) non-SELECT     : {report.unsupported_statements}",
        f"  CNF blow-ups       : {report.cnf_failures}",
    ]
    art = "\n".join(lines)
    write_artifact(out_dir, "extraction_rate.txt", art)
    print("\n" + art)

    assert report.extraction_rate > 0.99
    assert report.parse_errors + report.lex_errors > 0
    assert report.unsupported_statements > 0

    # Every failure is one of the paper's classes.
    kinds = {kind for _, kind, _ in report.failures}
    assert kinds <= {"parse", "lex", "unsupported", "cnf"}


def test_error_queries_still_extract(benchmark, out_dir):
    """The 1.2M server-erroring queries are extractable from the log."""
    workload = generate_workload(WorkloadConfig(n_queries=4000, seed=22))
    error_statements = [e.sql for e in workload.log if e.family_id == -1]
    extractor = AccessAreaExtractor(skyserver_schema())

    report = benchmark.pedantic(
        lambda: process_log(error_statements, extractor),
        rounds=1, iterations=1)

    art = (f"server-error statements: {report.total}\n"
           f"areas extracted        : {report.extraction_count}")
    write_artifact(out_dir, "error_query_extraction.txt", art)
    print("\n" + art)
    assert report.extraction_rate == 1.0
