"""Ablations of the design choices DESIGN.md calls out.

* predicate cap ∈ {5, 15, 35, none-with-guard} vs. runtime;
* 3σ trimming on/off vs. cluster MBR width under outliers;
* estimated (sampling + doubling) vs. exact content statistics;
* consolidation on/off vs. distance quality;
* DBSCAN eps sensitivity.
"""

import math
import time

from repro.algebra.cnf import CNFConversionError
from repro.clustering import aggregate_cluster, partitioned_dbscan
from repro.core import AccessAreaExtractor, process_log
from repro.distance import QueryDistance
from repro.schema import (CONTENT_BOUNDS, StatisticsCatalog,
                          skyserver_schema)
from repro.workload import WorkloadConfig, generate_workload
from .conftest import write_artifact


def test_ablation_predicate_cap(benchmark, out_dir):
    """Smaller caps truncate more but never blow up; no cap risks it."""
    schema = skyserver_schema()

    def many_predicates(n):
        parts = [f"(ra > {i} AND dec < {i})" for i in range(n)]
        return "SELECT * FROM PhotoObjAll WHERE " + " OR ".join(parts)

    def sweep():
        rows = []
        for cap in (5, 15, 35):
            extractor = AccessAreaExtractor(schema, predicate_cap=cap)
            start = time.perf_counter()
            area = extractor.extract(many_predicates(50)).area
            elapsed = time.perf_counter() - start
            rows.append((cap, area.cnf.count_predicates(), elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"cap={cap:>3}: {preds:>4} predicates kept, "
             f"{elapsed * 1e3:7.1f} ms" for cap, preds, elapsed in rows]
    uncapped = AccessAreaExtractor(schema, predicate_cap=None)
    try:
        uncapped.extract(many_predicates(50))
        lines.append("cap=∞  : completed (unexpected at this size)")
    except CNFConversionError:
        lines.append("cap=∞  : CNFConversionError (resource guard)")
    art = "\n".join(lines)
    write_artifact(out_dir, "ablation_predicate_cap.txt", art)
    print("\n" + art)

    kept = [preds for _, preds, _ in rows]
    assert kept == sorted(kept)  # larger cap keeps more structure


def test_ablation_sigma_trimming(benchmark, bench_result, out_dir):
    """3σ trimming shields cluster MBRs from stray outlier bounds."""
    result = bench_result
    family5 = [s.area for s in result.sample if s.family_id == 5][:40]
    assert len(family5) >= 10
    # Poison the cluster with one absurd bound (a stray query).
    outlier = AccessAreaExtractor(result.schema).extract(
        "SELECT * FROM PhotoObjAll WHERE ra <= 359.9 AND dec <= 10").area
    members = family5 + [outlier]

    def run_both():
        trimmed = aggregate_cluster(0, members, result.stats, sigma=3.0)
        untrimmed = aggregate_cluster(0, members, result.stats,
                                      sigma=math.inf)
        return trimmed, untrimmed

    trimmed, untrimmed = benchmark.pedantic(run_both, rounds=1,
                                            iterations=1)
    from repro.algebra.predicates import ColumnRef
    ra = ColumnRef("PhotoObjAll", "ra")
    trimmed_hi = trimmed.bound_for(ra).interval.hi
    untrimmed_hi = untrimmed.bound_for(ra).interval.hi
    art = (f"ra upper bound with 3σ trim : {trimmed_hi:.1f}\n"
           f"ra upper bound untrimmed    : {untrimmed_hi:.1f}")
    write_artifact(out_dir, "ablation_sigma.txt", art)
    print("\n" + art)
    assert untrimmed_hi >= 359.0
    assert trimmed_hi < 250.0


def test_ablation_estimated_vs_exact_stats(benchmark, bench_result,
                                           out_dir):
    """Sampling+doubling vs. exact content: clustering must agree broadly."""
    result = bench_result
    exact_stats = StatisticsCatalog.from_exact_content(
        result.schema, CONTENT_BOUNDS)
    for extracted in result.report.extracted:
        exact_stats.observe_cnf(extracted.area.cnf)
    areas = [s.area for s in result.sample]

    clustering = benchmark.pedantic(
        lambda: partitioned_dbscan(
            areas, QueryDistance(exact_stats,
                                 resolution=result.config.resolution),
            eps=result.config.eps, min_pts=result.config.min_pts),
        rounds=1, iterations=1)

    estimated_n = result.n_clusters
    exact_n = clustering.n_clusters
    art = (f"clusters with estimated stats : {estimated_n}\n"
           f"clusters with exact stats     : {exact_n}")
    write_artifact(out_dir, "ablation_stats_estimation.txt", art)
    print("\n" + art)
    assert abs(exact_n - estimated_n) <= 0.5 * estimated_n


def test_ablation_consolidation(benchmark, out_dir):
    """Consolidation compacts constraints without changing coverage."""
    workload = generate_workload(WorkloadConfig(n_queries=1200, seed=41))
    statements = workload.log.statements()
    schema = skyserver_schema()

    def run_both():
        on = process_log(statements,
                         AccessAreaExtractor(schema, consolidate=True),
                         keep_failures=False)
        off = process_log(statements,
                          AccessAreaExtractor(schema, consolidate=False),
                          keep_failures=False)
        return on, off

    on, off = benchmark.pedantic(run_both, rounds=1, iterations=1)
    preds_on = sum(a.cnf.count_predicates() for a in on.areas())
    preds_off = sum(a.cnf.count_predicates() for a in off.areas())
    art = (f"predicates with consolidation    : {preds_on:,}\n"
           f"predicates without consolidation : {preds_off:,}\n"
           f"extraction counts equal          : "
           f"{on.extraction_count == off.extraction_count}")
    write_artifact(out_dir, "ablation_consolidation.txt", art)
    print("\n" + art)
    assert on.extraction_count == off.extraction_count
    assert preds_on <= preds_off


def test_ablation_eps_sensitivity(benchmark, bench_result, out_dir):
    """Smaller eps fragments, larger eps merges — monotone cluster counts
    are the sanity check for the chosen operating point."""
    result = bench_result
    areas = [s.area for s in result.sample][:900]
    distance = QueryDistance(result.stats,
                             resolution=result.config.resolution)

    def sweep():
        counts = {}
        for eps in (0.05, 0.12, 0.3):
            clustering = partitioned_dbscan(areas, distance, eps=eps,
                                            min_pts=5)
            counts[eps] = (clustering.n_clusters,
                           clustering.noise_count)
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    art = "\n".join(
        f"eps={eps}: {n} clusters, {noise} noise"
        for eps, (n, noise) in sorted(counts.items()))
    write_artifact(out_dir, "ablation_eps.txt", art)
    print("\n" + art)
    # Noise shrinks as eps grows.
    noises = [counts[eps][1] for eps in (0.05, 0.12, 0.3)]
    assert noises[0] >= noises[1] >= noises[2]
