"""Access-area interning: wall-time and storage vs the plain pipeline.

SkyServer logs are dominated by bot/template repeats, so the clustering
stage sees the same access area over and over.  This benchmark builds
real :class:`~repro.core.AccessArea` populations over the SkyServer
schema with Zipf-shaped repeat skew (a pool of ~150 unique window
templates, hot templates drawn far more often), then compares

* **plain**: distance matrix + partitioned DBSCAN over all n areas;
* **interned**: canonical-fingerprint dedupe to u unique areas, matrix
  + multiplicity-weighted partitioned DBSCAN over the u areas, labels
  expanded back to n.

Writes ``benchmarks/out/BENCH_interning.json``.  The plain path is
measured only up to ``PLAIN_CAP`` (12.5M real ``QueryDistance`` pairs
at 5 000 already take ~2 minutes; 20 000 would take ~16× that); at the
largest size its wall time is extrapolated quadratically from the
largest measured size — the same convention as the sparse-matrix
benchmark — while the interned path is measured exactly at every size.
Acceptance: expanded interned labels are bitwise-identical to plain
labels at every measured size, and the interned pipeline is ≥ 2× faster
at the largest size.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the sizes ~20×.
"""

import json
import os
import random
import time

from repro.algebra.cnf import CNF, Clause
from repro.algebra.predicates import ColumnConstantPredicate, ColumnRef, Op
from repro.clustering import partitioned_dbscan
from repro.core.area import AccessArea
from repro.core.pipeline import dedupe_areas, expand_labels
from repro.distance import QueryDistance
from repro.distance.block_sparse import compute_matrix
from repro.schema import StatisticsCatalog
from repro.schema.skyserver import CONTENT_BOUNDS, skyserver_schema

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SIZES = (200, 500, 1000) if SMOKE else (1000, 5000, 20000)
PLAIN_CAP = SIZES[1]
EPS = 0.12
MIN_PTS = 5

#: (relation, column, domain lo, domain hi) template axes — hot
#: SkyServer query shapes (cone/redshift windows).
TEMPLATE_AXES = (
    ("PhotoObjAll", "ra", 0.0, 360.0),
    ("SpecObjAll", "z", 0.0, 2.0),
    ("Photoz", "z", 0.0, 2.0),
)
TEMPLATES_PER_AXIS = 50


def _window(relation, column, lo, hi):
    ref = ColumnRef(relation, column)
    return AccessArea((relation,), CNF.of([
        Clause.of([ColumnConstantPredicate(ref, Op.GE, lo)]),
        Clause.of([ColumnConstantPredicate(ref, Op.LE, hi)]),
    ]))


def make_template_pool(seed=29):
    rng = random.Random(seed)
    pool = []
    for relation, column, lo0, hi0 in TEMPLATE_AXES:
        span = hi0 - lo0
        for _ in range(TEMPLATES_PER_AXIS):
            lo = lo0 + rng.random() * span * 0.8
            pool.append(_window(relation, column, lo, lo + span * 0.1))
    return pool


def make_population(pool, n, seed=31):
    """Zipf-shaped draws: template rank r appears with weight 1/(r+1)."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(len(pool))]
    return rng.choices(pool, weights, k=n)


def _plain_run(areas, distance):
    started = time.perf_counter()
    matrix = compute_matrix(areas, distance, mode="auto", eps=EPS)
    labels = partitioned_dbscan(areas, distance, EPS, MIN_PTS,
                                matrix=matrix,
                                on_inexact="fallback").labels
    return labels, time.perf_counter() - started, matrix.stats


def _interned_run(areas, distance):
    started = time.perf_counter()
    unique, weights, inverse = dedupe_areas(areas)
    matrix = compute_matrix(unique, distance, mode="auto", eps=EPS)
    matrix.stats.n_source_items = len(areas)
    deduped = partitioned_dbscan(unique, distance, EPS, MIN_PTS,
                                 matrix=matrix, weights=weights,
                                 on_inexact="fallback")
    labels = expand_labels(deduped.labels, inverse)
    return labels, time.perf_counter() - started, matrix.stats


def test_interning_artifact(out_dir):
    stats_catalog = StatisticsCatalog.from_exact_content(
        skyserver_schema(), CONTENT_BOUNDS)
    pool = make_template_pool()
    rows = []
    plain_measured = {}

    for n in SIZES:
        areas = make_population(pool, n)
        # Each run gets a fresh QueryDistance so warm predicate caches
        # cannot leak between the measured paths.
        interned_labels, interned_seconds, interned_stats = \
            _interned_run(areas, QueryDistance(stats_catalog))
        u = interned_stats.n_items
        row = {
            "n": n,
            "unique_areas": u,
            "dedup_ratio": round(interned_stats.dedup_ratio, 2),
            "interned_seconds": round(interned_seconds, 4),
            "interned_pairs": interned_stats.pairs_total,
            "interned_stored_floats": interned_stats.stored_floats,
        }
        assert interned_stats.pairs_total == u * (u - 1) // 2

        if n <= PLAIN_CAP:
            plain_labels, plain_seconds, plain_stats = _plain_run(
                areas, QueryDistance(stats_catalog))
            assert interned_labels == plain_labels
            row.update(measured=True,
                       label_parity=True,
                       plain_seconds=round(plain_seconds, 4),
                       plain_pairs=plain_stats.pairs_total,
                       plain_stored_floats=plain_stats.stored_floats)
            plain_measured[n] = plain_seconds
        else:
            base = max(plain_measured)
            scale = (n / base) ** 2
            row.update(measured=False,
                       plain_seconds=round(plain_measured[base] * scale,
                                           4),
                       plain_pairs=n * (n - 1) // 2)
        row["speedup"] = round(row["plain_seconds"]
                               / max(row["interned_seconds"], 1e-9), 2)
        rows.append(row)

    # Acceptance: ≥ 2× wall-time win at the largest population.
    largest = rows[-1]
    assert largest["n"] == SIZES[-1]
    assert largest["speedup"] >= 2.0, largest

    artifact = {
        "eps": EPS,
        "min_pts": MIN_PTS,
        "smoke": SMOKE,
        "plain_cap": PLAIN_CAP,
        "template_pool": len(pool),
        "sizes": rows,
    }
    (out_dir / "BENCH_interning.json").write_text(
        json.dumps(artifact, indent=2) + "\n", encoding="utf-8")


def test_interned_storage_shrinks():
    """Condensed storage drops from O(n²) to O(u²) after interning."""
    pool = make_template_pool()
    areas = make_population(pool, 400, seed=83)
    distance = QueryDistance(StatisticsCatalog.from_exact_content(
        skyserver_schema(), CONTENT_BOUNDS))
    unique, _, _ = dedupe_areas(areas)
    plain = compute_matrix(areas, distance, mode="auto", eps=EPS)
    interned = compute_matrix(unique, distance, mode="auto", eps=EPS)
    assert interned.stats.stored_floats < plain.stats.stored_floats
    assert len(unique) < len(areas)
