"""Observability: structured logging, span tracing, metrics.

The pipeline's answer to "where do time and failures go" once logs
stop fitting in a terminal: per-module structured logs
(:mod:`.logs`), hierarchical timing spans with a JSONL sink
(:mod:`.trace`), and a process-wide metrics registry with
Prometheus/JSON/table exporters (:mod:`.metrics`, :mod:`.export`).

Everything defaults to the cheapest possible state: tracing is a
no-op until :func:`set_tracer` installs a real :class:`Tracer`,
logging is a ``NullHandler`` until :func:`configure_logging`, and the
default registry can be swapped for :class:`NullRegistry` to disable
metric collection entirely.  This layer depends on nothing else in
the package, so every other layer may import it.
"""

from .logs import (JsonFormatter, configure_logging, get_logger)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      NullRegistry, RunningStats, get_registry,
                      set_registry, use_registry)
from .trace import (NULL_TRACER, NullTracer, Span, TraceContext, Tracer,
                    attach, current_context, flush_all_open,
                    format_span_tree, get_tracer, load_trace, set_tracer,
                    span, use_tracer)
from .export import (load_json, render_table, to_json, to_prometheus,
                     write_json)
from .profile import (NULL_PROFILER, NullProfiler, Profiler,
                      get_profiler, profile_section, set_profiler,
                      use_profiler)

__all__ = [
    "JsonFormatter", "configure_logging", "get_logger",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "RunningStats", "get_registry", "set_registry", "use_registry",
    "NULL_TRACER", "NullTracer", "Span", "TraceContext", "Tracer",
    "attach", "current_context", "flush_all_open", "format_span_tree",
    "get_tracer", "load_trace", "set_tracer", "span", "use_tracer",
    "load_json", "render_table", "to_json", "to_prometheus", "write_json",
    "NULL_PROFILER", "NullProfiler", "Profiler", "get_profiler",
    "profile_section", "set_profiler", "use_profiler",
]
