"""Structured logging on top of the stdlib ``logging`` module.

Every module logs through a child of the ``repro`` logger
(:func:`get_logger`), and :func:`configure_logging` installs exactly
one handler on that root — idempotently, so the CLI and tests can call
it repeatedly.  Two formats:

* ``human`` — ``HH:MM:SS level logger: message`` on stderr;
* ``json`` — one JSON object per line (``ts``, ``level``, ``logger``,
  ``msg`` plus any ``extra={...}`` fields), machine-harvestable at
  SkyServer log volumes.

Configuration precedence: explicit arguments, then the
``REPRO_LOG_LEVEL`` / ``REPRO_LOG_FORMAT`` environment variables, then
the defaults (``warning`` / ``human``).  Library code never calls
``configure_logging`` itself — importing :mod:`repro` leaves the
stdlib logging tree untouched apart from a ``NullHandler``.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import Optional, TextIO

ROOT_LOGGER_NAME = "repro"

LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

#: LogRecord attributes that are not user-supplied ``extra`` fields.
_RESERVED = frozenset(vars(logging.LogRecord(
    "", 0, "", 0, "", (), None))) | {"message", "asctime", "taskName"}

#: Marker attribute identifying the handler we installed.
_HANDLER_FLAG = "_repro_obs_handler"


class JsonFormatter(logging.Formatter):
    """One JSON object per record; ``extra`` fields ride along."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


class HumanFormatter(logging.Formatter):
    """Compact single-line format for terminals."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)-7s %(name)s: "
                         "%(message)s", datefmt="%H:%M:%S")
        self.converter = time.localtime


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger("distance.matrix")`` → ``repro.distance.matrix``;
    dunder module names (``repro.core.pipeline``) pass through.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(level: Optional[str] = None,
                      fmt: Optional[str] = None,
                      stream: Optional[TextIO] = None) -> logging.Logger:
    """Install (or replace) the single ``repro`` handler.

    Returns the configured root logger.  Raises ``ValueError`` on an
    unknown level or format name.
    """
    level = (level or os.environ.get("REPRO_LOG_LEVEL") or "warning").lower()
    fmt = (fmt or os.environ.get("REPRO_LOG_FORMAT") or "human").lower()
    if level not in LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; pick from {sorted(LEVELS)}")
    if fmt not in ("human", "json"):
        raise ValueError(f"unknown log format {fmt!r}; "
                         f"pick 'human' or 'json'")

    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if fmt == "json"
                         else HumanFormatter())
    setattr(handler, _HANDLER_FLAG, True)
    root.addHandler(handler)
    root.setLevel(LEVELS[level])
    root.propagate = False
    return root


# Importing the library must not print: absorb records until the
# application configures a handler.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())
