"""Run manifests: one durable JSON record per pipeline run.

The SkyServer Traffic Report could mine five years of workload only
because every request left a durable, analyzable record; this module
gives the reproduction the same property about *itself*.  Every
``process``/``qa``/``casestudy``/benchmark run appends one JSON
document to a ``runs/`` directory — configuration, git SHA, platform,
the stage waterfall distilled from the span trace, a compact metrics
snapshot, and optional matrix/intern/profile payloads — under a
versioned schema, so ``repro runs list/show/diff`` can answer "what
changed between yesterday's run and this one" long after the processes
are gone.

The recorder is exception-safe: used as a context manager it writes
the record even when the run dies, with ``status: "error"`` and the
exception inline — a crashed run still leaves its flight-recorder
entry next to the partial trace the tracer flushed.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
import uuid
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional, Union

from . import metrics as obs_metrics

#: Bump when the record layout changes incompatibly; readers check it.
RUN_RECORD_SCHEMA_VERSION = 1

DEFAULT_RUNS_DIR = "runs"


def git_sha(cwd: Union[str, Path, None] = None) -> Optional[str]:
    """The current git commit SHA, or None outside a repo / without git."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def environment_info() -> dict:
    """Platform facts worth keeping next to every measurement."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "release": platform.release(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "pid": os.getpid(),
    }


def _waterfall_node(node: dict, depth: int) -> dict:
    out = {"name": node["name"],
           "seconds": round(float(node.get("duration_s", 0.0)), 9),
           "status": node.get("status", "ok")}
    if depth > 0 and node.get("children"):
        out["children"] = [_waterfall_node(child, depth - 1)
                           for child in node["children"]]
    return out


def waterfall_from_roots(roots, depth: int = 2) -> list[dict]:
    """Distill completed span trees into the stage waterfall stored in
    the record: names, seconds, and status, ``depth`` levels deep.

    Accepts :class:`~repro.obs.trace.Span` objects or their dicts."""
    nodes = []
    for root in roots:
        node = root if isinstance(root, dict) else root.to_dict()
        nodes.append(_waterfall_node(node, depth))
    return nodes


class RunRecorder:
    """Builds and writes one run record; use as a context manager.

    ::

        with RunRecorder("process", runs_dir="runs",
                         config=vars(args)) as recorder:
            ...  # the run
            recorder.set_metrics(get_registry())
            recorder.set_waterfall(tracer.roots)

    The record lands in ``runs/<run_id>.json`` on exit — also on
    exception, with the error inline.
    """

    def __init__(self, command: str,
                 runs_dir: Union[str, Path] = DEFAULT_RUNS_DIR,
                 config: Optional[dict] = None,
                 argv: Optional[list[str]] = None) -> None:
        self.command = command
        self.runs_dir = Path(runs_dir)
        stamp = datetime.now(timezone.utc)
        # Microsecond-precision stamp: ``runs list`` sorts filenames,
        # so back-to-back runs must still order chronologically; the
        # random suffix guards against the residual collision.
        self.run_id = (stamp.strftime("%Y%m%dT%H%M%S")
                       + f"{stamp.microsecond:06d}"
                       + "-" + uuid.uuid4().hex[:6])
        self.record: dict = {
            "schema_version": RUN_RECORD_SCHEMA_VERSION,
            "run_id": self.run_id,
            "command": command,
            "argv": list(argv if argv is not None else sys.argv[1:]),
            "config": _jsonable(config or {}),
            "git_sha": git_sha(),
            "environment": environment_info(),
            "started": stamp.isoformat(timespec="seconds"),
            "status": "ok",
            "error": None,
            "waterfall": [],
            "metrics": None,
        }
        self._t0 = time.perf_counter()
        self.path: Optional[Path] = None

    # -- payload setters ----------------------------------------------------

    def set(self, **fields) -> None:
        """Attach free-form top-level fields (JSON-coerced)."""
        for key, value in fields.items():
            self.record[key] = _jsonable(value)

    def set_metrics(self, registry: obs_metrics.MetricsRegistry) -> None:
        """Store the compact registry snapshot (no raw reservoirs)."""
        self.record["metrics"] = registry.snapshot(
            include_reservoir=False)

    def set_waterfall(self, roots, depth: int = 2) -> None:
        self.record["waterfall"] = waterfall_from_roots(roots, depth)

    def set_profile(self, profiler) -> None:
        """Embed the profiler's hotspot tables (if any sections ran)."""
        report = profiler.report()
        if report:
            self.record["profile"] = report

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.record["status"] = "error"
            self.record["error"] = f"{exc_type.__name__}: {exc}"
        self.finalize()
        return False

    def finalize(self) -> Path:
        """Stamp the duration and write ``runs/<run_id>.json``."""
        self.record["finished"] = datetime.now(timezone.utc).isoformat(
            timespec="seconds")
        self.record["duration_s"] = round(
            time.perf_counter() - self._t0, 6)
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.runs_dir / f"{self.run_id}.json"
        self.path.write_text(
            json.dumps(self.record, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        return self.path


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "__dict__") and not callable(value):
        return _jsonable(vars(value))
    return repr(value)


# -- reading back -----------------------------------------------------------

def list_runs(runs_dir: Union[str, Path] = DEFAULT_RUNS_DIR
              ) -> list[dict]:
    """All run records under ``runs_dir``, oldest first.

    Unreadable files are skipped (a crashed writer must not take the
    whole flight recorder down)."""
    directory = Path(runs_dir)
    if not directory.is_dir():
        return []
    records = []
    for path in sorted(directory.glob("*.json")):
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(record, dict) and "run_id" in record:
            records.append(record)
    return records


def resolve_run(token: str,
                runs_dir: Union[str, Path] = DEFAULT_RUNS_DIR) -> dict:
    """Find one run record by id prefix, ``latest``, or ``prev``.

    Raises :class:`KeyError` with a readable message on no/ambiguous
    match."""
    records = list_runs(runs_dir)
    if not records:
        raise KeyError(f"no run records under {runs_dir}")
    if token == "latest":
        return records[-1]
    if token == "prev":
        if len(records) < 2:
            raise KeyError("only one run recorded; no 'prev'")
        return records[-2]
    matches = [record for record in records
               if record["run_id"].startswith(token)]
    if not matches:
        raise KeyError(f"no run record matching {token!r}")
    if len(matches) > 1:
        ids = ", ".join(record["run_id"] for record in matches[:5])
        raise KeyError(f"ambiguous run id {token!r}: {ids}")
    return matches[0]


# -- diffing ----------------------------------------------------------------

def _scalar_metrics(record: dict) -> dict[str, float]:
    """Counters/gauges (by labelled name) and histogram p50/p95/count,
    flattened to one comparable scalar map."""
    snapshot = record.get("metrics") or {}
    out: dict[str, float] = {}

    def label_suffix(entry):
        labels = entry.get("labels") or {}
        if not labels:
            return ""
        body = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return "{" + body + "}"

    for entry in snapshot.get("counters", ()):
        out[entry["name"] + label_suffix(entry)] = entry["value"]
    for entry in snapshot.get("gauges", ()):
        out[entry["name"] + label_suffix(entry)] = entry["value"]
    for entry in snapshot.get("histograms", ()):
        base = entry["name"] + label_suffix(entry)
        out[base + ".count"] = entry["count"]
        out[base + ".p50"] = entry["p50"]
        out[base + ".p95"] = entry["p95"]
    return out


def _waterfall_seconds(record: dict) -> dict[str, float]:
    out: dict[str, float] = {}

    def walk(nodes, prefix):
        for node in nodes:
            path = f"{prefix}{node['name']}"
            # First occurrence wins; repeated stage names accumulate.
            out[path] = out.get(path, 0.0) + node["seconds"]
            walk(node.get("children", ()), path + "/")

    walk(record.get("waterfall", ()), "")
    return out


def diff_runs(a: dict, b: dict) -> dict:
    """A structured comparison of two run records (``a`` → ``b``)."""
    config_a, config_b = a.get("config", {}), b.get("config", {})
    config_changes = {
        key: {"a": config_a.get(key), "b": config_b.get(key)}
        for key in sorted(set(config_a) | set(config_b))
        if config_a.get(key) != config_b.get(key)
    }

    def deltas(map_a, map_b):
        rows = []
        for key in sorted(set(map_a) | set(map_b)):
            va, vb = map_a.get(key), map_b.get(key)
            row = {"key": key, "a": va, "b": vb}
            if isinstance(va, (int, float)) \
                    and isinstance(vb, (int, float)):
                row["delta"] = vb - va
                if va:
                    row["ratio"] = vb / va
            rows.append(row)
        return rows

    return {
        "a": a["run_id"], "b": b["run_id"],
        "commands": [a.get("command"), b.get("command")],
        "git_shas": [a.get("git_sha"), b.get("git_sha")],
        "duration_s": {"a": a.get("duration_s"),
                       "b": b.get("duration_s")},
        "config_changes": config_changes,
        "waterfall": deltas(_waterfall_seconds(a),
                            _waterfall_seconds(b)),
        "metrics": deltas(_scalar_metrics(a), _scalar_metrics(b)),
    }


# -- rendering --------------------------------------------------------------

def format_runs_table(records: list[dict]) -> str:
    if not records:
        return "(no run records)"
    id_width = max(len("run id"),
                   *(len(r.get("run_id", "")) for r in records))
    header = (f"{'run id':<{id_width}} {'command':<10} {'status':<8} "
              f"{'duration':>10}  {'sha':<9} started")
    lines = [header, "-" * len(header)]
    for record in records:
        sha = (record.get("git_sha") or "")[:8] or "-"
        duration = record.get("duration_s")
        duration_text = f"{duration:.2f} s" if duration is not None \
            else "-"
        lines.append(
            f"{record['run_id']:<{id_width}} "
            f"{record.get('command', '?'):<10} "
            f"{record.get('status', '?'):<8} {duration_text:>10}  "
            f"{sha:<9} {record.get('started', '')}")
    return "\n".join(lines)


def format_run(record: dict) -> str:
    lines = [f"run      : {record['run_id']}",
             f"command  : {record.get('command')}",
             f"status   : {record.get('status')}"]
    if record.get("error"):
        lines.append(f"error    : {record['error']}")
    lines.append(f"duration : {record.get('duration_s', 0.0):.3f} s")
    lines.append(f"git sha  : {record.get('git_sha') or '(none)'}")
    env = record.get("environment", {})
    lines.append(f"platform : python {env.get('python')} on "
                 f"{env.get('system')}/{env.get('machine')}, "
                 f"{env.get('cpus')} cpus")
    config = record.get("config") or {}
    if config:
        lines.append("config   : " + ", ".join(
            f"{key}={value}" for key, value in sorted(config.items())))
    waterfall = _waterfall_seconds(record)
    if waterfall:
        lines.append("")
        lines.append("stage waterfall:")
        width = max(len(name) for name in waterfall)
        for name, seconds in waterfall.items():
            lines.append(f"  {name:<{width}}  {seconds:>10.4f} s")
    profile = record.get("profile")
    if profile:
        lines.append("")
        lines.append("profiled sections: " + ", ".join(
            f"{section['name']} ({section['seconds']:.3f} s)"
            for section in profile))
    return "\n".join(lines)


def format_diff(diff: dict, top: int = 12) -> str:
    lines = [f"diff {diff['a']} -> {diff['b']}"]
    duration = diff["duration_s"]
    if duration["a"] is not None and duration["b"] is not None:
        delta = duration["b"] - duration["a"]
        lines.append(f"duration : {duration['a']:.3f} s -> "
                     f"{duration['b']:.3f} s ({delta:+.3f} s)")
    if diff["config_changes"]:
        lines.append("config changes:")
        for key, change in diff["config_changes"].items():
            lines.append(f"  {key}: {change['a']!r} -> {change['b']!r}")
    else:
        lines.append("config   : identical")

    def section(title, rows):
        interesting = [row for row in rows if row.get("delta")]
        if not interesting:
            return
        interesting.sort(key=lambda row: -abs(row["delta"]))
        lines.append(f"{title}:")
        for row in interesting[:top]:
            ratio = row.get("ratio")
            ratio_text = f"  ({ratio:.2f}x)" if ratio else ""
            lines.append(f"  {row['key']}: {row['a']:.6g} -> "
                         f"{row['b']:.6g} [{row['delta']:+.6g}]"
                         f"{ratio_text}")

    section("stage waterfall deltas", diff["waterfall"])
    section("metric deltas", diff["metrics"])
    return "\n".join(lines)
