"""Metrics primitives: counters, gauges, histograms, and their registry.

The pipeline needs to answer "where do time and failures go" at
SkyServer scale (millions of heterogeneous statements), which a single
end-of-run summary cannot.  This module provides the three classic
instrument kinds:

* :class:`Counter` — monotonically increasing event tallies
  (statements processed, cache hits, bound-skips);
* :class:`Gauge` — last-written values (clusters found, sample size);
* :class:`Histogram` — value distributions with quantile estimation
  (stage latencies, chunk latencies, cluster sizes).

Quantiles use deterministic reservoir sampling: up to
``reservoir_size`` observations are kept exactly (small runs report
exact quantiles), beyond that a seeded :class:`random.Random` keeps a
uniform sample, so repeated runs of a deterministic pipeline report
identical p50/p95/p99.

:class:`MetricsRegistry` is the process-wide sink.  A default registry
exists (:func:`get_registry`); tests and parallel workers inject their
own via :func:`set_registry` / :func:`use_registry`.  Registries
snapshot to plain dicts (picklable — this is how multiprocessing
workers ship their metrics back to the parent) and :meth:`merge`
combines snapshots: counters add, gauges last-write-wins, histograms
pool their accumulators and reservoirs.

:class:`NullRegistry` is the disabled mode: every instrument it hands
out is a shared no-op, keeping the hot path free of locks and
appends.
"""

from __future__ import annotations

import json
import threading
import zlib
from contextlib import contextmanager
from random import Random
from typing import Iterable, Iterator, Optional

#: Observations kept exactly before reservoir sampling kicks in.
DEFAULT_RESERVOIR_SIZE = 512

#: Slowest observations per histogram that keep a span-id exemplar.
EXEMPLAR_CAP = 5

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class RunningStats:
    """Count / total / min / max accumulator shared by every instrument.

    ``minimum`` and ``maximum`` are tracked symmetrically (both unset
    until the first value) and report ``0.0`` when empty, so exported
    reports over empty runs stay finite and parseable.
    """

    __slots__ = ("count", "total", "_minimum", "_maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self._minimum: Optional[float] = None
        self._maximum: Optional[float] = None

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self._minimum is None or value < self._minimum:
            self._minimum = value
        if self._maximum is None or value > self._maximum:
            self._maximum = value

    @property
    def minimum(self) -> float:
        return 0.0 if self._minimum is None else self._minimum

    @property
    def maximum(self) -> float:
        return 0.0 if self._maximum is None else self._maximum

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str = "", labels: Optional[dict] = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str = "", labels: Optional[dict] = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Value distribution with reservoir-backed quantiles.

    Exact up to ``reservoir_size`` observations, uniform-sampled beyond
    that.  The sampler is seeded from the metric name (CRC32) so a
    deterministic pipeline reports deterministic quantiles.
    """

    __slots__ = ("name", "labels", "stats", "reservoir", "exemplars",
                 "_size", "_rng", "_lock")

    def __init__(self, name: str = "", labels: Optional[dict] = None,
                 reservoir_size: int = DEFAULT_RESERVOIR_SIZE) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.stats = RunningStats()
        self.reservoir: list[float] = []
        #: ``(value, span_id)`` of the slowest exemplar-bearing
        #: observations — the link from a bad quantile back to the span
        #: tree that produced it.
        self.exemplars: list[tuple[float, str]] = []
        self._size = reservoir_size
        self._rng = Random(zlib.crc32(name.encode("utf-8")))
        self._lock = threading.Lock()

    def observe(self, value: float,
                exemplar: Optional[str] = None) -> None:
        value = float(value)
        with self._lock:
            self.stats.add(value)
            if len(self.reservoir) < self._size:
                self.reservoir.append(value)
            else:
                slot = self._rng.randrange(self.stats.count)
                if slot < self._size:
                    self.reservoir[slot] = value
            if exemplar is not None:
                self._note_exemplar(value, str(exemplar))

    def _note_exemplar(self, value: float, span_id: str) -> None:
        # Keep the top EXEMPLAR_CAP by (value, span_id) — a total order,
        # so the surviving set never depends on arrival order.
        self.exemplars.append((value, span_id))
        if len(self.exemplars) > EXEMPLAR_CAP:
            self.exemplars.sort(key=lambda pair: (-pair[0], pair[1]))
            del self.exemplars[EXEMPLAR_CAP:]

    # -- summary statistics -------------------------------------------------

    @property
    def count(self) -> int:
        return self.stats.count

    @property
    def total(self) -> float:
        return self.stats.total

    @property
    def minimum(self) -> float:
        return self.stats.minimum

    @property
    def maximum(self) -> float:
        return self.stats.maximum

    @property
    def mean(self) -> float:
        return self.stats.mean

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile of the reservoir, ``q ∈ [0, 1]``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            data = sorted(self.reservoir)
        if not data:
            return 0.0
        if len(data) == 1:
            return data[0]
        position = q * (len(data) - 1)
        low = int(position)
        high = min(low + 1, len(data) - 1)
        fraction = position - low
        return data[low] * (1.0 - fraction) + data[high] * fraction

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


class _NullCounter(Counter):
    """Shared no-op: increments vanish without taking the lock."""

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float,
                exemplar: Optional[str] = None) -> None:
        pass


class MetricsRegistry:
    """Get-or-create instrument store keyed by ``(name, labels)``.

    Thread-safe; the same ``(name, labels)`` pair always returns the
    same instrument instance, so call sites need not hold references.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    @property
    def enabled(self) -> bool:
        return True

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = Counter(name, labels)
                self._counters[key] = instrument
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = Gauge(name, labels)
                self._gauges[key] = instrument
        return instrument

    def histogram(self, name: str, reservoir_size: int =
                  DEFAULT_RESERVOIR_SIZE, **labels: str) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = Histogram(name, labels, reservoir_size)
                self._histograms[key] = instrument
        return instrument

    # -- snapshots / merging ------------------------------------------------

    def snapshot(self, include_reservoir: bool = True) -> dict:
        """A plain-dict (JSON/pickle-safe) view of every instrument.

        ``include_reservoir`` keeps the raw histogram samples, which
        :meth:`merge` needs to pool quantiles across processes; drop it
        for compact exports.
        """
        counters = [
            {"name": c.name, "labels": dict(c.labels), "value": c.value}
            for c in self._ordered(self._counters)
        ]
        gauges = [
            {"name": g.name, "labels": dict(g.labels), "value": g.value}
            for g in self._ordered(self._gauges)
        ]
        histograms = []
        for h in self._ordered(self._histograms):
            entry = {
                "name": h.name, "labels": dict(h.labels),
                "count": h.count, "sum": h.total,
                "min": h.minimum, "max": h.maximum, "mean": h.mean,
                "p50": h.p50, "p95": h.p95, "p99": h.p99,
            }
            if include_reservoir:
                entry["reservoir"] = list(h.reservoir)
            if h.exemplars:
                entry["exemplars"] = [
                    {"value": value, "span_id": span_id}
                    for value, span_id in sorted(
                        h.exemplars,
                        key=lambda pair: (-pair[0], pair[1]))]
            histograms.append(entry)
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def _ordered(self, table: dict) -> list:
        with self._lock:
            return [table[key] for key in sorted(table)]

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in.

        Counters add, gauges take the incoming value, histograms pool
        the accumulator statistics, exemplars, and the incoming
        reservoir (re-sampling down once over capacity).  Pooling is
        deterministic for a *given* merge order — the combined
        reservoir is sorted before the down-sample and the sampler is
        re-seeded from the pooled count — but a *set* of worker
        snapshots arriving in completion order should go through
        :meth:`merge_all`, which first sorts them by a stable key so
        worker scheduling cannot change the surviving sample.
        """
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], **entry["labels"]).inc(
                entry["value"])
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"], **entry["labels"]).set(entry["value"])
        for entry in snapshot.get("histograms", ()):
            histogram = self.histogram(entry["name"], **entry["labels"])
            incoming = entry.get("reservoir") or ()
            with histogram._lock:
                stats = histogram.stats
                stats.count += entry["count"]
                stats.total += entry["sum"]
                if entry["count"]:
                    if stats._minimum is None \
                            or entry["min"] < stats._minimum:
                        stats._minimum = entry["min"]
                    if stats._maximum is None \
                            or entry["max"] > stats._maximum:
                        stats._maximum = entry["max"]
                histogram.reservoir.extend(incoming)
                if len(histogram.reservoir) > histogram._size:
                    pooled = sorted(histogram.reservoir)
                    seed = zlib.crc32(
                        f"{histogram.name}:{stats.count}".encode("utf-8"))
                    histogram.reservoir = Random(seed).sample(
                        pooled, histogram._size)
                for exemplar in entry.get("exemplars", ()):
                    histogram._note_exemplar(exemplar["value"],
                                             exemplar["span_id"])

    def merge_all(self, snapshots: Iterable[dict]) -> int:
        """Merge worker snapshots in a canonical order.

        Multiprocessing pools hand results back in completion order,
        which varies run to run; merging in that order would let
        scheduling noise pick which reservoir samples survive the
        down-sample, making p50/p95/p99 flap across identical runs.
        Sorting the snapshots by their canonical JSON serialization
        first makes the merged state a pure function of the snapshot
        *set*.  Returns the number of snapshots merged."""
        ordered = sorted((s for s in snapshots if s),
                         key=lambda s: json.dumps(s, sort_keys=True))
        for snapshot in ordered:
            self.merge(snapshot)
        return len(ordered)


class NullRegistry(MetricsRegistry):
    """Disabled metrics: every instrument is a shared no-op."""

    _COUNTER = _NullCounter("null")
    _GAUGE = _NullGauge("null")
    _HISTOGRAM = _NullHistogram("null")

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str, **labels: str) -> Counter:
        return self._COUNTER

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._GAUGE

    def histogram(self, name: str, reservoir_size: int =
                  DEFAULT_RESERVOIR_SIZE, **labels: str) -> Histogram:
        return self._HISTOGRAM

    def snapshot(self, include_reservoir: bool = True) -> dict:
        return {"counters": [], "gauges": [], "histograms": []}

    def merge(self, snapshot: dict) -> None:
        pass


def record_counter_deltas(registry: MetricsRegistry,
                          recorded: dict,
                          pairs) -> None:
    """Inc each counter by its movement since the last call.

    ``recorded`` is the caller's per-stats-object memory of what has
    already been pushed (keyed per target registry, so a stats object
    recorded into two registries gives each the full totals).
    Cumulative totals recorded through this helper are therefore
    idempotent under re-recording: calling a ``.record`` twice against
    one registry — the resident ``repro serve`` lifecycle — leaves
    counters equal to the true totals instead of double-counting.
    """
    seen = recorded.setdefault(("counters", id(registry)), {})
    for name, value in pairs:
        delta = value - seen.get(name, 0)
        if delta > 0:
            registry.counter(name).inc(delta)
            seen[name] = value


def observe_when_changed(registry: MetricsRegistry, recorded: dict,
                         name: str, value: float) -> None:
    """Observe ``value`` into histogram ``name`` unless this exact
    value was already observed by this stats object — the histogram
    analogue of :func:`record_counter_deltas` (one run contributes one
    observation per registry no matter how often its stats are
    re-recorded)."""
    key = ("histogram", id(registry), name)
    if recorded.get(key) != value:
        registry.histogram(name).observe(value)
        recorded[key] = value


_default_registry: MetricsRegistry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry instrumented code writes to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` as the process default."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
