"""Opt-in deterministic profiling hooks for pipeline stages.

``--profile`` wraps each coarse pipeline section (extraction loop,
distance matrix, clustering, each QA profile) in a
:class:`cProfile.Profile`, turning one run into per-section hotspot
tables — the top-N functions by cumulative time — plus folded-stacks
output (``caller;callee weight`` lines) that flamegraph tools such as
``flamegraph.pl`` or speedscope consume directly.

The section boundary is deliberately coarse: cProfile's per-call
bookkeeping would distort the paper-scale per-statement timings if it
wrapped individual extractor stages, but a whole section profiles at a
few percent overhead and the hotspot table still names the offending
function/line exactly.

When disabled (the default), the process-wide profiler is
:data:`NULL_PROFILER` whose :meth:`~NullProfiler.section` returns one
shared no-op context manager — the hot path pays one method call and
no allocations, the same contract as the null tracer and registry
(pinned by the overhead test in ``tests/obs/test_profile.py``).
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

#: Hot functions reported per section.
DEFAULT_TOP_N = 15


def _func_label(func: tuple) -> str:
    """``file:line:name`` for a pstats function key (built-ins have a
    pseudo-file)."""
    filename, line, name = func
    if filename == "~":
        return name.strip("<>")
    short = "/".join(Path(filename).parts[-2:])
    return f"{short}:{line}:{name}"


class SectionProfile:
    """The digested outcome of profiling one section."""

    def __init__(self, name: str, stats: pstats.Stats,
                 top_n: int = DEFAULT_TOP_N) -> None:
        self.name = name
        self.seconds = stats.total_tt
        self.calls = stats.total_calls
        self.hotspots = self._hotspots(stats, top_n)
        self.folded = self._folded(stats)

    @staticmethod
    def _hotspots(stats: pstats.Stats, top_n: int) -> list[dict]:
        rows = []
        for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
            rows.append({
                "function": _func_label(func),
                "ncalls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            })
        rows.sort(key=lambda row: (-row["cumtime_s"], row["function"]))
        return rows[:top_n]

    @staticmethod
    def _folded(stats: pstats.Stats) -> list[str]:
        """Folded-stack lines weighted by integer microseconds.

        cProfile records a call *graph*, not full stacks, so the fold
        is two frames deep (``caller;callee``) — flamegraph tools
        accept any depth, and two levels already localize a hotspot to
        its dominant call edge.  Functions nobody calls (section
        roots) fold as a single frame weighted by their own time.
        """
        lines = []
        for func, (cc, nc, tt, ct, callers) in stats.stats.items():
            label = _func_label(func)
            if callers:
                for caller, (_cc, _nc, _tt, edge_ct) in callers.items():
                    weight = int(edge_ct * 1e6)
                    if weight > 0:
                        lines.append(
                            f"{_func_label(caller)};{label} {weight}")
            else:
                weight = int(tt * 1e6)
                if weight > 0:
                    lines.append(f"{label} {weight}")
        return sorted(lines)

    def to_dict(self) -> dict:
        return {"name": self.name, "seconds": round(self.seconds, 6),
                "calls": self.calls, "hotspots": self.hotspots}


class Profiler:
    """Collects one :class:`SectionProfile` per profiled section."""

    def __init__(self, top_n: int = DEFAULT_TOP_N) -> None:
        self.top_n = top_n
        self.sections: list[SectionProfile] = []

    @property
    def enabled(self) -> bool:
        return True

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Profile the enclosed block as one named section."""
        profile = cProfile.Profile()
        profile.enable()
        try:
            yield
        finally:
            profile.disable()
            stats = pstats.Stats(profile)
            stats.stream = None  # never prints; we digest it ourselves
            self.sections.append(
                SectionProfile(name, stats, self.top_n))

    def report(self) -> list[dict]:
        """JSON-ready hotspot tables, one entry per section — the form
        embedded into run records."""
        return [section.to_dict() for section in self.sections]

    def folded_lines(self) -> list[str]:
        """All sections' folded stacks, each frame prefixed with its
        section name so one flamegraph shows the whole run."""
        lines = []
        for section in self.sections:
            for line in section.folded:
                lines.append(f"{section.name};{line}")
        return lines

    def write_folded(self, path: Union[str, Path]) -> None:
        """Write ``flamegraph.pl``-consumable folded stacks."""
        text = "\n".join(self.folded_lines())
        Path(path).write_text(text + ("\n" if text else ""),
                              encoding="utf-8")

    def format_table(self) -> str:
        """Fixed-width per-section hotspot tables for terminals."""
        if not self.sections:
            return "(no sections profiled)"
        blocks = []
        for section in self.sections:
            header = (f"section {section.name}  "
                      f"({section.seconds:.3f} s, "
                      f"{section.calls:,} calls)")
            lines = [header, "-" * len(header),
                     f"{'cumtime':>10}  {'tottime':>10}  {'ncalls':>8}"
                     f"  function"]
            for row in section.hotspots:
                lines.append(
                    f"{row['cumtime_s']:>10.4f}  "
                    f"{row['tottime_s']:>10.4f}  "
                    f"{row['ncalls']:>8}  {row['function']}")
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks)


class _NullSection:
    """Shared do-nothing section handle."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullProfiler:
    """Disabled profiling: ``section()`` returns one shared no-op."""

    _SECTION = _NullSection()

    @property
    def enabled(self) -> bool:
        return False

    def section(self, name: str) -> _NullSection:
        return self._SECTION

    @property
    def sections(self) -> list:
        return []

    def report(self) -> list:
        return []

    def folded_lines(self) -> list:
        return []


NULL_PROFILER = NullProfiler()
_profiler: Union[Profiler, NullProfiler] = NULL_PROFILER


def get_profiler() -> Union[Profiler, NullProfiler]:
    return _profiler


def set_profiler(profiler: Union[Profiler, NullProfiler, None]
                 ) -> Union[Profiler, NullProfiler]:
    """Install ``profiler`` process-wide (``None`` → no-op); returns
    the previous one."""
    global _profiler
    previous = _profiler
    _profiler = profiler if profiler is not None else NULL_PROFILER
    return previous


@contextmanager
def use_profiler(profiler: Union[Profiler, NullProfiler]
                 ) -> Iterator[Union[Profiler, NullProfiler]]:
    previous = set_profiler(profiler)
    try:
        yield profiler
    finally:
        set_profiler(previous)


def profile_section(name: str):
    """Open a profiled section on the process-wide profiler (a no-op
    unless ``--profile`` installed a real :class:`Profiler`)."""
    return _profiler.section(name)
