"""Perf-regression guard: benchmark trajectories, budgets, noise-aware
deltas.

Benchmarks write ``BENCH_*.json`` artifacts with nested numeric leaves
(seconds, speedups, throughput).  This module turns those one-shot
artifacts into a *trajectory* — ``BENCH_trajectory.json``, an
append-only series of labelled entries mapping flattened metric keys
(``BENCH_kernel:sizes[1].kernel_seconds``) to values — and checks new
entries against a budget file with noise-aware statistics:

* the **baseline** for a metric is the median over up to the last *k*
  labelled baseline entries (median-of-k absorbs one bad run);
* a candidate only regresses when the budgeted direction worsens by
  more than the budget's ``max_ratio`` *and* ``min_abs_delta``, and —
  once enough history exists — its **robust z-score**
  (``|x - median| / (1.4826 * MAD)``) clears the budget's threshold,
  so a noisy metric needs a proportionally louder signal to trip.

``repro perf record`` appends an entry; ``repro perf check`` compares
two labels (default: the two most recent) and exits nonzero on any
budget violation, which is how CI turns a 2x slowdown on the smoke
benchmarks into a red build.

Budgets live in TOML (``perf_budgets.toml``).  :mod:`tomllib` ships
with Python >= 3.11; on 3.10 a deliberately small fallback parser
handles the subset the budget file uses (tables, arrays of tables,
string/number/bool scalars) so the guard runs on every CI leg without
new dependencies.
"""

from __future__ import annotations

import fnmatch
import json
import re
import statistics
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional, Union

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 CI
    tomllib = None

TRAJECTORY_SCHEMA_VERSION = 1

#: Scale factor relating MAD to the standard deviation of a normal
#: distribution; makes the robust z comparable to an ordinary z-score.
MAD_TO_SIGMA = 1.4826

#: Nested keys never flattened into trajectory metrics (raw samples and
#: embedded snapshots would bloat the series without being comparable).
_SKIP_KEYS = frozenset({"reservoir", "metrics", "exemplars"})


# -- flattening -------------------------------------------------------------

def flatten_numeric(value, prefix: str = "") -> dict[str, float]:
    """All numeric leaves of a nested JSON value as ``path -> float``.

    Dict keys join with ``.``; list items index as ``[i]``.  Booleans
    are excluded (they are ints in Python but not measurements), and
    subtrees under :data:`_SKIP_KEYS` are pruned.
    """
    out: dict[str, float] = {}
    if isinstance(value, bool):
        return out
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
        return out
    if isinstance(value, dict):
        for key, child in value.items():
            if key in _SKIP_KEYS:
                continue
            child_prefix = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(child, child_prefix))
        return out
    if isinstance(value, list):
        for index, child in enumerate(value):
            out.update(flatten_numeric(child, f"{prefix}[{index}]"))
        return out
    return out


def collect_bench_metrics(bench_dir: Union[str, Path]
                          ) -> dict[str, float]:
    """Flatten every ``BENCH_*.json`` under ``bench_dir`` into one
    metric map keyed ``BENCH_name:path``."""
    directory = Path(bench_dir)
    metrics: dict[str, float] = {}
    if not directory.is_dir():
        return metrics
    for path in sorted(directory.glob("BENCH_*.json")):
        if path.name == "BENCH_trajectory.json":
            continue  # the store itself lives next to the artifacts
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        family = path.stem
        for key, value in flatten_numeric(payload).items():
            metrics[f"{family}:{key}"] = value
    return metrics


# -- trajectory store -------------------------------------------------------

def load_trajectory(path: Union[str, Path]) -> dict:
    trajectory_path = Path(path)
    if trajectory_path.exists():
        data = json.loads(trajectory_path.read_text(encoding="utf-8"))
        if data.get("schema_version") != TRAJECTORY_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported trajectory schema "
                f"{data.get('schema_version')!r} in {path}")
        return data
    return {"schema_version": TRAJECTORY_SCHEMA_VERSION, "entries": []}


def append_entry(path: Union[str, Path], metrics: dict[str, float],
                 label: str = "run",
                 git_sha: Optional[str] = None,
                 recorded: Optional[str] = None) -> dict:
    """Append one labelled entry to the trajectory file and return it."""
    trajectory = load_trajectory(path)
    entry = {
        "recorded": recorded or datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "label": label,
        "git_sha": git_sha,
        "metrics": dict(sorted(metrics.items())),
    }
    trajectory["entries"].append(entry)
    trajectory_path = Path(path)
    trajectory_path.parent.mkdir(parents=True, exist_ok=True)
    trajectory_path.write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return entry


def entries_for_label(trajectory: dict, label: str) -> list[dict]:
    return [entry for entry in trajectory.get("entries", ())
            if entry.get("label") == label]


# -- budgets ----------------------------------------------------------------

class Budget:
    """One budget rule: a metric-key glob plus regression thresholds.

    ``direction`` states which way is *bad*: ``"up"`` for costs
    (seconds, bytes — more is worse), ``"down"`` for rates (speedups,
    queries/second — less is worse).
    """

    __slots__ = ("pattern", "direction", "max_ratio", "min_abs_delta",
                 "robust_z", "baseline_k")

    def __init__(self, pattern: str, direction: str = "up",
                 max_ratio: float = 1.5, min_abs_delta: float = 0.005,
                 robust_z: float = 4.0, baseline_k: int = 5) -> None:
        if direction not in ("up", "down"):
            raise ValueError(f"budget direction must be 'up' or 'down',"
                             f" got {direction!r}")
        self.pattern = pattern
        self.direction = direction
        self.max_ratio = float(max_ratio)
        self.min_abs_delta = float(min_abs_delta)
        self.robust_z = float(robust_z)
        self.baseline_k = int(baseline_k)

    def matches(self, key: str) -> bool:
        return fnmatch.fnmatchcase(key, self.pattern)


def _parse_toml_minimal(text: str) -> dict:
    """A small TOML-subset parser for 3.10 (no :mod:`tomllib`).

    Supports ``[table]``, ``[[array-of-tables]]``, and
    ``key = value`` lines with string/float/int/bool scalars — exactly
    what ``perf_budgets.toml`` uses.  Not a general TOML parser.
    """
    root: dict = {}
    current = root
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        array_header = re.fullmatch(r"\[\[([A-Za-z0-9_.-]+)\]\]", line)
        if array_header:
            current = {}
            root.setdefault(array_header.group(1), []).append(current)
            continue
        table_header = re.fullmatch(r"\[([A-Za-z0-9_.-]+)\]", line)
        if table_header:
            current = root.setdefault(table_header.group(1), {})
            continue
        if "=" not in line:
            raise ValueError(f"cannot parse TOML line: {raw_line!r}")
        key, _, value_text = line.partition("=")
        key = key.strip().strip('"')
        value_text = value_text.strip()
        if value_text.startswith('"') and value_text.endswith('"'):
            value: object = value_text[1:-1]
        elif value_text in ("true", "false"):
            value = value_text == "true"
        else:
            try:
                value = int(value_text)
            except ValueError:
                value = float(value_text)
        current[key] = value
    return root


def load_budgets(path: Union[str, Path]) -> list[Budget]:
    """Parse ``perf_budgets.toml`` into :class:`Budget` rules.

    ``[defaults]`` sets thresholds inherited by every ``[[budget]]``
    entry; each entry needs at least a ``pattern``.
    """
    text = Path(path).read_text(encoding="utf-8")
    if tomllib is not None:
        data = tomllib.loads(text)
    else:
        data = _parse_toml_minimal(text)
    defaults = data.get("defaults", {})
    budgets = []
    for raw in data.get("budget", []):
        merged = {**defaults, **raw}
        if "pattern" not in merged:
            raise ValueError("each [[budget]] needs a 'pattern'")
        budgets.append(Budget(
            pattern=merged["pattern"],
            direction=merged.get("direction", "up"),
            max_ratio=merged.get("max_ratio", 1.5),
            min_abs_delta=merged.get("min_abs_delta", 0.005),
            robust_z=merged.get("robust_z", 4.0),
            baseline_k=merged.get("baseline_k", 5),
        ))
    return budgets


# -- the check --------------------------------------------------------------

def robust_z_score(value: float, history: list[float]) -> Optional[float]:
    """``|value - median| / (1.4826 * MAD)`` over ``history``.

    Returns None when the history is too short (< 3 points) or has
    zero spread — callers fall back to the ratio test alone.
    """
    if len(history) < 3:
        return None
    median = statistics.median(history)
    mad = statistics.median(abs(x - median) for x in history)
    if mad == 0.0:
        return None
    return abs(value - median) / (MAD_TO_SIGMA * mad)


def check_regressions(trajectory: dict, budgets: list[Budget],
                      baseline_label: str = "baseline",
                      candidate_label: str = "candidate") -> dict:
    """Compare the latest ``candidate`` entry against the ``baseline``
    history under the given budgets.

    Returns ``{"ok": bool, "findings": [...], "checked": int}``;
    every finding carries the metric key, baseline median, candidate
    value, ratio, robust z (when computable), and verdict.  A metric
    missing from the candidate is reported as ``"missing"`` but does
    not fail the check (benchmarks may be skipped in smoke runs).
    """
    baseline_entries = entries_for_label(trajectory, baseline_label)
    candidate_entries = entries_for_label(trajectory, candidate_label)
    if not baseline_entries:
        raise KeyError(f"no trajectory entries labelled "
                       f"{baseline_label!r}")
    if not candidate_entries:
        raise KeyError(f"no trajectory entries labelled "
                       f"{candidate_label!r}")
    candidate = candidate_entries[-1]["metrics"]

    findings = []
    checked = 0
    baseline_keys = set()
    for entry in baseline_entries:
        baseline_keys.update(entry["metrics"])

    for key in sorted(baseline_keys):
        budget = next((b for b in budgets if b.matches(key)), None)
        if budget is None:
            continue
        history = [entry["metrics"][key]
                   for entry in baseline_entries[-budget.baseline_k:]
                   if key in entry["metrics"]]
        if not history:
            continue
        checked += 1
        baseline_value = statistics.median(history)
        if key not in candidate:
            findings.append({
                "key": key, "verdict": "missing",
                "baseline": baseline_value, "candidate": None})
            continue
        candidate_value = candidate[key]
        delta = candidate_value - baseline_value
        worse = delta > 0 if budget.direction == "up" else delta < 0
        if not worse:
            continue
        if abs(delta) <= budget.min_abs_delta:
            continue
        if baseline_value > 0:
            ratio = candidate_value / baseline_value
        else:
            ratio = float("inf") if candidate_value > 0 else 1.0
        if budget.direction == "up":
            tripped_ratio = ratio > budget.max_ratio
        else:
            tripped_ratio = ratio < 1.0 / budget.max_ratio
        if not tripped_ratio:
            continue
        z = robust_z_score(candidate_value, history)
        if z is not None and z <= budget.robust_z:
            # Loud enough in ratio but within this metric's own noise
            # band — record it as suspicious, don't fail the build.
            findings.append({
                "key": key, "verdict": "noisy",
                "baseline": baseline_value,
                "candidate": candidate_value,
                "ratio": round(ratio, 4), "robust_z": round(z, 2),
                "budget": budget.pattern})
            continue
        findings.append({
            "key": key, "verdict": "regression",
            "baseline": baseline_value,
            "candidate": candidate_value,
            "ratio": round(ratio, 4),
            "robust_z": round(z, 2) if z is not None else None,
            "budget": budget.pattern})

    ok = not any(finding["verdict"] == "regression"
                 for finding in findings)
    return {"ok": ok, "checked": checked, "findings": findings,
            "baseline_label": baseline_label,
            "candidate_label": candidate_label,
            "baseline_n": len(baseline_entries)}


def format_check(result: dict) -> str:
    lines = [f"perf check: {result['checked']} budgeted metrics, "
             f"baseline {result['baseline_label']!r} "
             f"(n={result['baseline_n']}) vs candidate "
             f"{result['candidate_label']!r}"]
    for finding in result["findings"]:
        verdict = finding["verdict"]
        if verdict == "missing":
            lines.append(f"  MISSING    {finding['key']} "
                         f"(baseline {finding['baseline']:.6g})")
            continue
        z_text = (f", z={finding['robust_z']}"
                  if finding.get("robust_z") is not None else "")
        lines.append(
            f"  {verdict.upper():<10} {finding['key']}: "
            f"{finding['baseline']:.6g} -> "
            f"{finding['candidate']:.6g} "
            f"({finding['ratio']}x{z_text})")
    lines.append("RESULT: " + ("ok" if result["ok"]
                               else "REGRESSION DETECTED"))
    return "\n".join(lines)
