"""Lightweight nestable span tracing with a JSONL sink.

A *span* is a named, timed region of work with free-form attributes::

    with trace.span("cnf", query_id=17) as s:
        cnf = to_cnf(expr)
        s.set(clauses=len(cnf))

Spans nest: entering a span while another is open attaches it as a
child, producing one hierarchical timing tree per top-level operation
(a ``process_log`` root with per-query children, each with its four
stage grandchildren).  Exceptions close the span with
``status == "error"`` and propagate.

The default tracer is :data:`NULL_TRACER`, a no-op whose ``span()``
returns a shared context manager — the instrumented hot paths cost one
call and no allocations when tracing is off.  Enable tracing with
:func:`set_tracer` (or the :func:`use_tracer` context manager); give
the tracer a ``sink`` path and every completed *root* span is appended
to the file as one JSON object per line, nested children inline —
streaming, so a crash mid-run loses at most the open roots.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO, Union


class Span:
    """One timed region: name, attributes, children, outcome."""

    __slots__ = ("name", "attrs", "children", "start", "end", "status",
                 "error")

    def __init__(self, name: str, attrs: Optional[dict] = None) -> None:
        self.name = name
        self.attrs = dict(attrs or {})
        self.children: list[Span] = []
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None

    def set(self, **attrs) -> None:
        """Attach attributes to the span (overwrites same keys)."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "duration_s": round(self.duration, 9),
            "status": self.status,
        }
        if self.attrs:
            out["attrs"] = _jsonable(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first lookup of a descendant span by name."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, "
                f"{len(self.children)} children, {self.status})")


def _jsonable(attrs: dict) -> dict:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


class _SpanContext:
    """The ``with`` handle: closes the span and pops the stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set(self, **attrs) -> None:
        self.span.set(**attrs)

    def __enter__(self) -> "_SpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.end = time.perf_counter()
        if exc is not None:
            span.status = "error"
            span.error = f"{exc_type.__name__}: {exc}"
        self._tracer._close(span)
        return False  # never swallow


class Tracer:
    """Collects span trees; thread-local nesting, optional JSONL sink.

    ``sink`` — a path or open text file; each completed root span is
    written as one JSON line.  ``keep`` — retain completed roots in
    :attr:`roots` for in-process inspection (on by default; large
    batch runs with a sink may turn it off to bound memory).
    """

    def __init__(self, sink: Union[str, TextIO, None] = None,
                 keep: bool = True) -> None:
        self.roots: list[Span] = []
        self.keep = keep
        self._local = threading.local()
        self._lock = threading.Lock()
        self._own_handle = False
        if isinstance(sink, str):
            self._sink: Optional[TextIO] = open(sink, "a",
                                                encoding="utf-8")
            self._own_handle = True
        else:
            self._sink = sink

    @property
    def enabled(self) -> bool:
        return True

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a nested span; use as a context manager."""
        span = Span(name, attrs)
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        return _SpanContext(self, span)

    def current(self) -> Optional[Span]:
        """The innermost open span of this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _close(self, span: Span) -> None:
        stack = self._stack()
        # Exception-tolerant pop: close everything above `span` too.
        while stack and stack[-1] is not span:
            dangling = stack.pop()
            dangling.end = dangling.end or span.end
        if stack:
            stack.pop()
        if not stack:  # a root completed
            if self.keep:
                self.roots.append(span)
            if self._sink is not None:
                line = json.dumps(span.to_dict(), sort_keys=True)
                with self._lock:
                    self._sink.write(line + "\n")
                    self._sink.flush()

    def close(self) -> None:
        if self._own_handle and self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _NullSpanContext:
    """Shared do-nothing span handle."""

    __slots__ = ()
    span = None

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullTracer:
    """Disabled tracing: ``span()`` returns one shared no-op handle."""

    _CONTEXT = _NullSpanContext()

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, **attrs) -> _NullSpanContext:
        return self._CONTEXT

    def current(self) -> None:
        return None

    @property
    def roots(self) -> list:
        return []

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()
_tracer: Union[Tracer, NullTracer] = NULL_TRACER


def get_tracer() -> Union[Tracer, NullTracer]:
    return _tracer


def set_tracer(tracer: Union[Tracer, NullTracer, None]
               ) -> Union[Tracer, NullTracer]:
    """Install ``tracer`` process-wide (``None`` → no-op); returns the
    previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Union[Tracer, NullTracer]
               ) -> Iterator[Union[Tracer, NullTracer]]:
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attrs):
    """Open a span on the process-wide tracer (no-op by default)."""
    return _tracer.span(name, **attrs)


# -- trace file rendering ---------------------------------------------------

def load_trace(path: str) -> list[dict]:
    """Parse a JSONL trace file into root-span dicts."""
    roots = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                roots.append(json.loads(line))
    return roots


def format_span_tree(root: dict, indent: int = 0,
                     max_children: int = 12) -> str:
    """Render one span dict (from :func:`load_trace`) as an ASCII tree."""
    lines = [_format_span_line(root, indent)]
    children = root.get("children", [])
    shown = children if len(children) <= max_children \
        else children[:max_children]
    for child in shown:
        lines.append(format_span_tree(child, indent + 1, max_children))
    if len(children) > len(shown):
        pad = "  " * (indent + 1)
        lines.append(f"{pad}… {len(children) - len(shown)} more children")
    return "\n".join(lines)


def _format_span_line(node: dict, indent: int) -> str:
    pad = "  " * indent
    duration_ms = node.get("duration_s", 0.0) * 1e3
    flag = "" if node.get("status", "ok") == "ok" \
        else f"  [{node.get('status')}: {node.get('error', '?')}]"
    attrs = node.get("attrs") or {}
    attr_text = ""
    if attrs:
        parts = [f"{key}={value}" for key, value in sorted(attrs.items())]
        attr_text = "  (" + ", ".join(parts) + ")"
    return f"{pad}{node['name']}  {duration_ms:.3f} ms{attr_text}{flag}"
