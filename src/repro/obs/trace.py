"""Lightweight nestable span tracing with a JSONL sink.

A *span* is a named, timed region of work with free-form attributes::

    with trace.span("cnf", query_id=17) as s:
        cnf = to_cnf(expr)
        s.set(clauses=len(cnf))

Spans nest: entering a span while another is open attaches it as a
child, producing one hierarchical timing tree per top-level operation
(a ``process_log`` root with per-query children, each with its four
stage grandchildren).  Exceptions close the span with
``status == "error"`` and propagate.

The default tracer is :data:`NULL_TRACER`, a no-op whose ``span()``
returns a shared context manager — the instrumented hot paths cost one
call and no allocations when tracing is off.  Enable tracing with
:func:`set_tracer` (or the :func:`use_tracer` context manager); give
the tracer a ``sink`` path and every completed *root* span is appended
to the file as one JSON object per line, nested children inline —
streaming, so a crash mid-run loses at most the open roots.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, TextIO, Union

_id_lock = threading.Lock()
_id_counter = 0


def new_span_id() -> str:
    """A process-unique 16-hex-char span id.

    Built from the pid and a process-local counter, so ids minted in
    forked multiprocessing workers never collide with the parent's —
    the property cross-process stitching and histogram exemplars rely
    on.  (A counter, not a clock: two spans opened within one timer
    tick must still get distinct ids.)
    """
    global _id_counter
    with _id_lock:
        _id_counter += 1
        count = _id_counter
    return f"{os.getpid() & 0xFFFFFF:06x}{count & 0xFFFFFFFFFF:010x}"


@dataclass(frozen=True)
class TraceContext:
    """The picklable cross-process handle of an open trace.

    Carries just enough to let a worker process mint spans that the
    parent can stitch back under the right node: the root trace id and
    the span id of the parent-side span the worker's tree will become
    a child of.
    """

    trace_id: str
    parent_span_id: str


class Span:
    """One timed region: name, attributes, children, outcome."""

    __slots__ = ("name", "attrs", "children", "start", "end", "status",
                 "error", "span_id", "trace_id")

    def __init__(self, name: str, attrs: Optional[dict] = None,
                 span_id: Optional[str] = None,
                 trace_id: Optional[str] = None) -> None:
        self.name = name
        self.attrs = dict(attrs or {})
        self.children: list[Span] = []
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self.span_id = span_id or new_span_id()
        self.trace_id = trace_id

    def set(self, **attrs) -> None:
        """Attach attributes to the span (overwrites same keys)."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "span_id": self.span_id,
            "duration_s": round(self.duration, 9),
            "status": self.status,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.attrs:
            out["attrs"] = _jsonable(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, node: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output.

        Timing is reconstructed relative to zero (``start=0``,
        ``end=duration_s``) — good enough for rendering and duration
        arithmetic, which is all a stitched-in foreign subtree needs.
        """
        span = cls(node["name"], node.get("attrs"),
                   span_id=node.get("span_id"),
                   trace_id=node.get("trace_id"))
        span.start = 0.0
        span.end = float(node.get("duration_s", 0.0))
        span.status = node.get("status", "ok")
        span.error = node.get("error")
        span.children = [cls.from_dict(child)
                         for child in node.get("children", ())]
        return span

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first lookup of a descendant span by name."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, "
                f"{len(self.children)} children, {self.status})")


def _jsonable(attrs: dict) -> dict:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


class _SpanContext:
    """The ``with`` handle: closes the span and pops the stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set(self, **attrs) -> None:
        self.span.set(**attrs)

    def __enter__(self) -> "_SpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.end = time.perf_counter()
        if exc is not None:
            span.status = "error"
            span.error = f"{exc_type.__name__}: {exc}"
        self._tracer._close(span)
        return False  # never swallow


class Tracer:
    """Collects span trees; thread-local nesting, optional JSONL sink.

    ``sink`` — a path or open text file; each completed root span is
    written as one JSON line.  ``keep`` — retain completed roots in
    :attr:`roots` for in-process inspection (on by default; large
    batch runs with a sink may turn it off to bound memory).
    """

    def __init__(self, sink: Union[str, TextIO, None] = None,
                 keep: bool = True) -> None:
        self.roots: list[Span] = []
        self.keep = keep
        self._local = threading.local()
        self._lock = threading.Lock()
        self._own_handle = False
        self._open_roots: dict[int, Span] = {}
        self._flushed: set[int] = set()
        if isinstance(sink, str):
            self._sink: Optional[TextIO] = open(sink, "a",
                                                encoding="utf-8")
            self._own_handle = True
        else:
            self._sink = sink
        if self._sink is not None:
            _register_atexit_flush(self)

    @property
    def enabled(self) -> bool:
        return True

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a nested span; use as a context manager."""
        stack = self._stack()
        if stack:
            span = Span(name, attrs, trace_id=stack[-1].trace_id)
            stack[-1].children.append(span)
        else:
            span = Span(name, attrs)
            span.trace_id = span.span_id
            with self._lock:
                self._open_roots[id(span)] = span
        stack.append(span)
        return _SpanContext(self, span)

    def current(self) -> Optional[Span]:
        """The innermost open span of this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_context(self) -> Optional[TraceContext]:
        """A picklable handle of the innermost open span, for workers."""
        current = self.current()
        if current is None:
            return None
        return TraceContext(trace_id=current.trace_id or current.span_id,
                            parent_span_id=current.span_id)

    def attach(self, tree: Union[Span, dict]) -> Span:
        """Graft a completed foreign span tree (e.g. shipped back from a
        multiprocessing worker as a :meth:`Span.to_dict`) under the
        innermost open span of this thread; returns the grafted
        :class:`Span`.  With no span open it becomes a completed root
        (kept/sunk like any other)."""
        span = tree if isinstance(tree, Span) else Span.from_dict(tree)
        stack = self._stack()
        if stack:
            span.trace_id = stack[-1].trace_id
            stack[-1].children.append(span)
        else:
            if self.keep:
                self.roots.append(span)
            self._write(span)
        return span

    def _write(self, span: Span) -> None:
        if self._sink is None:
            return
        line = json.dumps(span.to_dict(), sort_keys=True)
        try:
            with self._lock:
                self._sink.write(line + "\n")
                self._sink.flush()
        except ValueError:
            # Sink already closed (interpreter shutdown race) — the
            # flush hooks must never turn a crash into another crash.
            pass

    def _close(self, span: Span) -> None:
        stack = self._stack()
        # Exception-tolerant pop: close everything above `span` too.
        while stack and stack[-1] is not span:
            dangling = stack.pop()
            dangling.end = dangling.end or span.end
        if stack:
            stack.pop()
        if not stack:  # a root completed
            with self._lock:
                self._open_roots.pop(id(span), None)
                already_flushed = id(span) in self._flushed
            if self.keep:
                self.roots.append(span)
            if not already_flushed:
                self._write(span)

    @property
    def open_roots(self) -> list[Span]:
        """Root spans still open right now (crash handlers read this
        before :meth:`flush_open` pops them)."""
        with self._lock:
            return list(self._open_roots.values())

    def flush_open(self) -> int:
        """Write every still-open root span to the sink as a partial
        trace (``status == "partial"`` unless already an error).

        Called from the :mod:`atexit` hook and from CLI crash handlers,
        so an interrupted run still leaves its in-flight span trees in
        the JSONL sink.  Roots flushed here are remembered and not
        re-written if they later close normally.  Returns the number of
        roots flushed."""
        with self._lock:
            pending = list(self._open_roots.values())
        flushed = 0
        for root in pending:
            if root.status == "ok":
                root.status = "partial"
            self._write(root)
            with self._lock:
                self._flushed.add(id(root))
                self._open_roots.pop(id(root), None)
            flushed += 1
        return flushed

    def close(self) -> None:
        if self._own_handle and self._sink is not None:
            self.flush_open()
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _NullSpanContext:
    """Shared do-nothing span handle."""

    __slots__ = ()
    span = None

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullTracer:
    """Disabled tracing: ``span()`` returns one shared no-op handle."""

    _CONTEXT = _NullSpanContext()

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, **attrs) -> _NullSpanContext:
        return self._CONTEXT

    def current(self) -> None:
        return None

    def current_context(self) -> None:
        return None

    def attach(self, tree) -> None:
        return None

    def flush_open(self) -> int:
        return 0

    @property
    def roots(self) -> list:
        return []

    @property
    def open_roots(self) -> list:
        return []

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()
_tracer: Union[Tracer, NullTracer] = NULL_TRACER

# -- crash-time flushing ----------------------------------------------------
#
# Tracers with a sink enrol themselves here; one atexit hook flushes
# whatever roots are still open when the interpreter exits, so a run
# killed mid-span (sys.exit deep in a library, an abandoned generator,
# a signal-triggered shutdown) still leaves a usable partial trace.

_sink_tracers: "weakref.WeakSet[Tracer]" = weakref.WeakSet()
_atexit_registered = False


def _register_atexit_flush(tracer: "Tracer") -> None:
    global _atexit_registered
    _sink_tracers.add(tracer)
    if not _atexit_registered:
        atexit.register(flush_all_open)
        _atexit_registered = True


def flush_all_open() -> int:
    """Flush open root spans of every sink-backed tracer; returns the
    number of partial roots written.  Safe to call repeatedly."""
    flushed = 0
    for tracer in list(_sink_tracers):
        try:
            flushed += tracer.flush_open()
        except Exception:  # never let a flush hook raise at shutdown
            pass
    return flushed


def get_tracer() -> Union[Tracer, NullTracer]:
    return _tracer


def set_tracer(tracer: Union[Tracer, NullTracer, None]
               ) -> Union[Tracer, NullTracer]:
    """Install ``tracer`` process-wide (``None`` → no-op); returns the
    previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Union[Tracer, NullTracer]
               ) -> Iterator[Union[Tracer, NullTracer]]:
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attrs):
    """Open a span on the process-wide tracer (no-op by default)."""
    return _tracer.span(name, **attrs)


def current_context() -> Optional[TraceContext]:
    """The innermost open span's cross-process handle (None when
    tracing is off or nothing is open)."""
    return _tracer.current_context()


def attach(tree: Union[Span, dict, None]) -> Optional[Span]:
    """Graft a completed span tree under the current open span of the
    process-wide tracer.  ``None`` (no tree shipped) is a no-op, so
    call sites can pass ``info.span`` straight through."""
    if tree is None:
        return None
    return _tracer.attach(tree)


# -- trace file rendering ---------------------------------------------------

def load_trace(path: str) -> list[dict]:
    """Parse a JSONL trace file into root-span dicts."""
    roots = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                roots.append(json.loads(line))
    return roots


def format_span_tree(root: dict, indent: int = 0,
                     max_children: int = 12) -> str:
    """Render one span dict (from :func:`load_trace`) as an ASCII tree."""
    lines = [_format_span_line(root, indent)]
    children = root.get("children", [])
    shown = children if len(children) <= max_children \
        else children[:max_children]
    for child in shown:
        lines.append(format_span_tree(child, indent + 1, max_children))
    if len(children) > len(shown):
        pad = "  " * (indent + 1)
        lines.append(f"{pad}… {len(children) - len(shown)} more children")
    return "\n".join(lines)


def _format_span_line(node: dict, indent: int) -> str:
    pad = "  " * indent
    duration_ms = node.get("duration_s", 0.0) * 1e3
    flag = "" if node.get("status", "ok") == "ok" \
        else f"  [{node.get('status')}: {node.get('error', '?')}]"
    attrs = node.get("attrs") or {}
    attr_text = ""
    if attrs:
        parts = [f"{key}={value}" for key, value in sorted(attrs.items())]
        attr_text = "  (" + ", ".join(parts) + ")"
    return f"{pad}{node['name']}  {duration_ms:.3f} ms{attr_text}{flag}"
