"""Exporters for metrics snapshots: Prometheus text, JSON, terminal table.

All three render the plain-dict :meth:`MetricsRegistry.snapshot`
format, so they work equally on a live registry and on a
``--metrics-out`` JSON file loaded back from disk (which is how the
``repro stats`` subcommand re-renders past runs).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .metrics import MetricsRegistry

Snapshot = dict
_SourceType = Union[MetricsRegistry, Snapshot]


def _as_snapshot(source: _SourceType, include_reservoir: bool) -> Snapshot:
    if isinstance(source, MetricsRegistry):
        return source.snapshot(include_reservoir=include_reservoir)
    return source


# -- Prometheus text format -------------------------------------------------

def _prom_labels(labels: dict, extra: Union[dict, None] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_prom_escape(str(value))}"'
        for key, value in sorted(merged.items()))
    return "{" + body + "}"


def _prom_escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace(
        "\n", r"\n")


def _prom_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(source: _SourceType) -> str:
    """The Prometheus text exposition format.

    Histograms are exported as summaries (``quantile`` label plus
    ``_sum`` / ``_count`` series), which matches the reservoir
    estimator better than fixed buckets would.
    """
    snapshot = _as_snapshot(source, include_reservoir=False)
    lines: list[str] = []
    seen_types: set[str] = set()

    for entry in snapshot.get("counters", ()):
        name = entry["name"]
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}{_prom_labels(entry['labels'])} "
                     f"{_prom_number(entry['value'])}")
    for entry in snapshot.get("gauges", ()):
        name = entry["name"]
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{_prom_labels(entry['labels'])} "
                     f"{_prom_number(entry['value'])}")
    for entry in snapshot.get("histograms", ()):
        name = entry["name"]
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} summary")
        labels = entry["labels"]
        for q_label, q_key in (("0.5", "p50"), ("0.95", "p95"),
                               ("0.99", "p99")):
            lines.append(
                f"{name}{_prom_labels(labels, {'quantile': q_label})} "
                f"{_prom_number(entry[q_key])}")
        lines.append(f"{name}_sum{_prom_labels(labels)} "
                     f"{_prom_number(entry['sum'])}")
        lines.append(f"{name}_count{_prom_labels(labels)} "
                     f"{_prom_number(entry['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- JSON -------------------------------------------------------------------

def to_json(source: _SourceType, include_reservoir: bool = False) -> str:
    """The snapshot as a JSON document (compact, sorted keys)."""
    snapshot = _as_snapshot(source, include_reservoir)
    return json.dumps(snapshot, sort_keys=True, indent=2)


def write_json(source: _SourceType, path: Union[str, Path],
               include_reservoir: bool = False) -> None:
    Path(path).write_text(to_json(source, include_reservoir) + "\n",
                          encoding="utf-8")


def load_json(path: Union[str, Path]) -> Snapshot:
    """Read back a ``--metrics-out`` dump for re-rendering."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


# -- terminal summary table -------------------------------------------------

def _instrument_label(entry: dict) -> str:
    labels = entry["labels"]
    if not labels:
        return entry["name"]
    body = ",".join(f"{key}={value}"
                    for key, value in sorted(labels.items()))
    return f"{entry['name']}{{{body}}}"


def render_table(source: _SourceType) -> str:
    """A fixed-width table for terminals (the ``repro stats`` view)."""
    snapshot = _as_snapshot(source, include_reservoir=False)
    sections: list[str] = []

    counters = snapshot.get("counters", [])
    gauges = snapshot.get("gauges", [])
    histograms = snapshot.get("histograms", [])

    scalar_rows = ([(_instrument_label(e), e["value"]) for e in counters]
                   + [(_instrument_label(e), e["value"]) for e in gauges])
    if scalar_rows:
        width = max(len(name) for name, _ in scalar_rows)
        lines = [f"{'counter / gauge':<{width}}  {'value':>14}",
                 "-" * (width + 16)]
        for name, value in scalar_rows:
            lines.append(f"{name:<{width}}  {_prom_number(value):>14}")
        sections.append("\n".join(lines))

    if histograms:
        width = max(len(_instrument_label(e)) for e in histograms)
        header = (f"{'histogram':<{width}}  {'count':>8}  {'mean':>11}  "
                  f"{'p50':>11}  {'p95':>11}  {'p99':>11}  {'max':>11}")
        lines = [header, "-" * len(header)]
        for entry in histograms:
            lines.append(
                f"{_instrument_label(entry):<{width}}  "
                f"{entry['count']:>8}  "
                f"{entry['mean']:>11.6f}  {entry['p50']:>11.6f}  "
                f"{entry['p95']:>11.6f}  {entry['p99']:>11.6f}  "
                f"{entry['max']:>11.6f}")
        sections.append("\n".join(lines))

    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)
