"""Exporters for metrics snapshots: Prometheus text, JSON, terminal table.

All three render the plain-dict :meth:`MetricsRegistry.snapshot`
format, so they work equally on a live registry and on a
``--metrics-out`` JSON file loaded back from disk (which is how the
``repro stats`` subcommand re-renders past runs).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .metrics import MetricsRegistry

Snapshot = dict
_SourceType = Union[MetricsRegistry, Snapshot]


def _as_snapshot(source: _SourceType, include_reservoir: bool) -> Snapshot:
    if isinstance(source, MetricsRegistry):
        return source.snapshot(include_reservoir=include_reservoir)
    return source


# -- Prometheus text format -------------------------------------------------

def _prom_labels(labels: dict, extra: Union[dict, None] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_prom_escape(str(value))}"'
        for key, value in sorted(merged.items()))
    return "{" + body + "}"


def _prom_escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace(
        "\n", r"\n")


def _prom_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


#: Cumulative bucket upper bounds for histogram exposition (seconds-
#: flavoured ladder; ``+Inf`` is always appended).
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: ``# HELP`` text for the known instrument families; anything not
#: listed falls back to a name-derived description so every exported
#: family still carries a HELP line.
HELP_TEXTS = {
    "repro_pipeline_statements_total": "Log statements processed.",
    "repro_pipeline_extracted_total":
        "Statements with an extracted access area.",
    "repro_pipeline_failures_total":
        "Extraction failures by kind (parse/lex/unsupported/cnf).",
    "repro_pipeline_stage_seconds":
        "Per-statement extractor stage latency.",
    "repro_distance_chunk_seconds":
        "Distance-engine chunk/partition evaluation latency.",
    "repro_distance_matrix_seconds": "Whole distance-matrix build time.",
    "repro_intern_pool_size": "Unique access areas in the intern pool.",
    "repro_intern_hits_total": "Intern-pool fingerprint hits.",
    "repro_intern_misses_total": "Intern-pool fingerprint misses.",
    "repro_intern_dedup_ratio": "Source areas per unique area.",
    "repro_service_requests_total":
        "HTTP requests served, by route/method/status code.",
    "repro_service_request_seconds": "Per-route request latency.",
    "repro_service_ingested_total":
        "POST /queries outcomes (clustered/unclustered/failed).",
    "repro_service_ingest_seconds":
        "End-to-end ingest latency (extract + intern + cluster).",
    "repro_service_intern_pool":
        "Unique access areas resident in the service intern pool.",
    "repro_service_recommender_refreshes_total":
        "Recommender refits triggered by cluster-structure changes.",
}


def _help_text(name: str) -> str:
    return HELP_TEXTS.get(name, name.replace("_", " ") + ".")


def _bucket_counts(reservoir: list, count: int,
                   bounds=DEFAULT_BUCKETS) -> list[tuple[str, int]]:
    """Cumulative ``(le, count)`` pairs estimated from the reservoir.

    Exact while the reservoir is exact (≤ its capacity); beyond that
    the uniform sample is scaled to the true count, which keeps the
    buckets consistent with ``_count``/``_sum`` and monotone.
    """
    ordered = sorted(float(v) for v in reservoir)
    total = len(ordered)
    pairs: list[tuple[str, int]] = []
    position = 0
    for bound in bounds:
        while position < total and ordered[position] <= bound:
            position += 1
        scaled = round(count * position / total) if total else 0
        pairs.append((_prom_number(bound), scaled))
    pairs.append(("+Inf", count))
    return pairs


def _exemplar_suffix(entry: dict, low: float, high: float) -> str:
    """OpenMetrics exemplar annotation for the bucket ``(low, high]``
    (empty when no exemplar landed in it)."""
    for exemplar in entry.get("exemplars", ()):
        value = exemplar["value"]
        if low < value <= high:
            span_id = _prom_escape(str(exemplar["span_id"]))
            return (f' # {{span_id="{span_id}"}} '
                    f"{_prom_number(value)}")
    return ""


def to_prometheus(source: _SourceType) -> str:
    """The Prometheus text exposition format.

    Counters and gauges export directly; histograms export as native
    Prometheus histograms — cumulative ``_bucket{le=...}`` series
    (reconstructed from the quantile reservoir and scaled to the true
    count) plus ``_sum``/``_count`` — with OpenMetrics span-id
    exemplars on buckets containing a recorded slow observation, so a
    scrape can link a latency spike straight to its span tree.  The
    reservoir quantiles additionally export as a companion
    ``<name>_quantiles`` gauge family (a family must be one type, so
    they cannot share the histogram's name).  Every family carries
    ``# HELP`` and ``# TYPE`` lines.
    """
    snapshot = _as_snapshot(source, include_reservoir=True)
    lines: list[str] = []
    seen_types: set[str] = set()

    def _head(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# HELP {name} {_help_text(name)}")
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", ()):
        name = entry["name"]
        _head(name, "counter")
        lines.append(f"{name}{_prom_labels(entry['labels'])} "
                     f"{_prom_number(entry['value'])}")
    for entry in snapshot.get("gauges", ()):
        name = entry["name"]
        _head(name, "gauge")
        lines.append(f"{name}{_prom_labels(entry['labels'])} "
                     f"{_prom_number(entry['value'])}")
    for entry in snapshot.get("histograms", ()):
        name = entry["name"]
        _head(name, "histogram")
        labels = entry["labels"]
        # A compact snapshot loaded from disk may lack the reservoir;
        # fall back to a two-bucket histogram that is still valid.
        reservoir = entry.get("reservoir")
        if reservoir:
            buckets = _bucket_counts(reservoir, entry["count"])
        else:
            buckets = [("+Inf", entry["count"])]
        low = float("-inf")
        for le, bucket_count in buckets:
            high = float("inf") if le == "+Inf" else float(le)
            suffix = _exemplar_suffix(entry, low, high)
            lines.append(
                f"{name}_bucket{_prom_labels(labels, {'le': le})} "
                f"{bucket_count}{suffix}")
            low = high
        lines.append(f"{name}_sum{_prom_labels(labels)} "
                     f"{_prom_number(entry['sum'])}")
        lines.append(f"{name}_count{_prom_labels(labels)} "
                     f"{entry['count']}")
    for entry in snapshot.get("histograms", ()):
        name = entry["name"] + "_quantiles"
        _head(name, "gauge")
        labels = entry["labels"]
        for q_label, q_key in (("0.5", "p50"), ("0.95", "p95"),
                               ("0.99", "p99")):
            lines.append(
                f"{name}{_prom_labels(labels, {'quantile': q_label})} "
                f"{_prom_number(entry[q_key])}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- JSON -------------------------------------------------------------------

def to_json(source: _SourceType, include_reservoir: bool = False) -> str:
    """The snapshot as a JSON document (compact, sorted keys)."""
    snapshot = _as_snapshot(source, include_reservoir)
    return json.dumps(snapshot, sort_keys=True, indent=2)


def write_json(source: _SourceType, path: Union[str, Path],
               include_reservoir: bool = False) -> None:
    Path(path).write_text(to_json(source, include_reservoir) + "\n",
                          encoding="utf-8")


def load_json(path: Union[str, Path]) -> Snapshot:
    """Read back a ``--metrics-out`` dump for re-rendering."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


# -- terminal summary table -------------------------------------------------

def _instrument_label(entry: dict) -> str:
    labels = entry["labels"]
    if not labels:
        return entry["name"]
    body = ",".join(f"{key}={value}"
                    for key, value in sorted(labels.items()))
    return f"{entry['name']}{{{body}}}"


def render_table(source: _SourceType) -> str:
    """A fixed-width table for terminals (the ``repro stats`` view)."""
    snapshot = _as_snapshot(source, include_reservoir=False)
    sections: list[str] = []

    counters = snapshot.get("counters", [])
    gauges = snapshot.get("gauges", [])
    histograms = snapshot.get("histograms", [])

    scalar_rows = ([(_instrument_label(e), e["value"]) for e in counters]
                   + [(_instrument_label(e), e["value"]) for e in gauges])
    if scalar_rows:
        width = max(len(name) for name, _ in scalar_rows)
        lines = [f"{'counter / gauge':<{width}}  {'value':>14}",
                 "-" * (width + 16)]
        for name, value in scalar_rows:
            lines.append(f"{name:<{width}}  {_prom_number(value):>14}")
        sections.append("\n".join(lines))

    if histograms:
        width = max(len(_instrument_label(e)) for e in histograms)
        header = (f"{'histogram':<{width}}  {'count':>8}  {'mean':>11}  "
                  f"{'p50':>11}  {'p95':>11}  {'p99':>11}  {'max':>11}")
        lines = [header, "-" * len(header)]
        for entry in histograms:
            lines.append(
                f"{_instrument_label(entry):<{width}}  "
                f"{entry['count']:>8}  "
                f"{entry['mean']:>11.6f}  {entry['p50']:>11.6f}  "
                f"{entry['p95']:>11.6f}  {entry['p99']:>11.6f}  "
                f"{entry['max']:>11.6f}")
        sections.append("\n".join(lines))

    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)
