"""Single-linkage agglomerative clustering (Section 7 future work).

The paper plans to "experiment with different clustering techniques on
our data sets of extracted access areas".  This module provides the
natural alternative to DBSCAN: threshold-based single linkage — two
areas belong to one cluster when a chain of pairwise distances below the
threshold connects them, and components smaller than ``min_size`` are
noise.

Implemented with union-find over the sub-threshold pairs; like the
DBSCAN path, it exploits the ``d >= d_tables`` partition bound — the
population's minimum cross-partition Jaccard distance, computed by
:func:`~repro.distance.query_distance.partition_exactness_bound` — to
partition by canonical relation set first when the threshold allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..core.area import AccessArea
from ..distance.query_distance import partition_exactness_bound
from ..obs import trace
from .dbscan import NOISE, DBSCANResult
from .telemetry import record_run

Distance = Callable[[AccessArea, AccessArea], float]


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1


@dataclass
class SingleLinkage:
    """Threshold single-linkage clustering of access areas."""

    threshold: float
    min_size: int = 2

    def fit(self, areas: Sequence[AccessArea],
            distance: Optional[Distance] = None,
            matrix=None,
            weights: Optional[Sequence[float]] = None) -> DBSCANResult:
        """Cluster ``areas``; exactly one of ``distance``/``matrix``.

        ``matrix`` is a square array-like or a condensed
        ``DistanceMatrix`` over ``areas``.  ``weights`` — optional
        positive per-area multiplicities; the ``min_size`` filter then
        compares the summed weight of each connected component (so ``u``
        interned unique areas cluster exactly like the expanded
        population — linkage chains are weight-independent)."""
        if (distance is None) == (matrix is None):
            raise ValueError("provide exactly one of distance or matrix")
        if weights is not None:
            weights = [float(w) for w in weights]
            if len(weights) != len(areas):
                raise ValueError(
                    f"{len(weights)} weights do not match "
                    f"{len(areas)} areas")
            if any(w <= 0 for w in weights):
                raise ValueError("weights must be positive")
        if matrix is not None:
            if hasattr(matrix, "value"):  # condensed DistanceMatrix
                pair_distance = matrix.value
            else:
                pair_distance = lambda i, j: float(matrix[i][j])  # noqa: E731
        else:
            pair_distance = lambda i, j: distance(areas[i], areas[j])  # noqa: E731
        n = len(areas)
        uf = _UnionFind(n)
        # Partitioning is exact only below the population's minimum
        # cross-partition d_tables (not the legacy 0.5 constant, which
        # k-table joins undercut at 1/(k+1)).  Keys are the canonical
        # table sets d_tables itself compares.
        bound = partition_exactness_bound(
            area.table_set for area in areas)
        if self.threshold < bound:
            partitions: dict[frozenset[str], list[int]] = {}
            for index, area in enumerate(areas):
                partitions.setdefault(area.table_set, []).append(index)
            groups = list(partitions.values())
        else:
            groups = [list(range(n))]

        comparisons = 0
        with trace.span("single_linkage.fit", n=n,
                        threshold=self.threshold) as span:
            for indices in groups:
                for pos, i in enumerate(indices):
                    for j in indices[pos + 1:]:
                        if uf.find(i) == uf.find(j):
                            continue
                        comparisons += 1
                        if pair_distance(i, j) <= self.threshold:
                            uf.union(i, j)

            components: dict[int, list[int]] = {}
            for index in range(n):
                components.setdefault(uf.find(index), []).append(index)

            labels = [NOISE] * n
            cluster_id = 0
            for root in sorted(components,
                               key=lambda r: components[r][0]):
                members = components[root]
                if weights is None:
                    size = len(members)
                else:
                    size = sum(weights[index] for index in members)
                if size >= self.min_size:
                    for index in members:
                        labels[index] = cluster_id
                    cluster_id += 1
            result = DBSCANResult(labels)
            span.set(clusters=result.n_clusters, comparisons=comparisons)
        record_run("single_linkage", comparisons, result)
        return result
