"""Incremental weighted DBSCAN over a streaming access-area population.

The paper's stream scenario ("extract the information from an incoming
stream of logged queries, to detect changes in this data stream and to
notify the system operator") needs live cluster labels, but a batch
:class:`~repro.clustering.dbscan.DBSCAN` re-run per statement is
O(n²) — hopeless at SkyServer volumes.  This module maintains the exact
batch answer incrementally, exploiting the same structure the batch
pipeline does:

* **Interned arrivals are O(1).**  SkyServer logs are dominated by bot
  and template repeats, so most arrivals hit the fingerprint pool
  (``BENCH_interning.json``: 33–133× dedup).  A hit only bumps the
  representative's weight; the sole possible structural consequence is
  a *core promotion* inside its eps-neighbourhood, repaired locally.
* **New areas touch one partition.**  A genuinely new area inserts one
  row into the affected partition of the distance backend
  (:meth:`~repro.distance.block_sparse.BlockSparseDistanceMatrix.insert_row`
  or :meth:`~repro.distance.metric_index.VPTreeIndex.insert`) — no
  cross-partition distance is ever computed — and label repair is
  confined to the new point's eps-neighbourhood.

**Exact parity, not approximation.**  Weighted DBSCAN's labelling is a
pure function of (core set, eps-adjacency), both of which this class
maintains exactly:

* ``i`` is *core* iff the total weight of its (self-inclusive)
  eps-neighbourhood is ≥ ``min_pts``; weights only change by the
  arriving delta, so core status is repaired by scanning exactly the
  neighbourhoods the delta touched.
* Batch cluster ids number the core-graph components by their minimal
  core index (a component's cores stay unvisited until its smallest
  index is scanned).  We keep the components in a union-find carrying
  ``comp_min`` and rank components by it.
* A batch border point takes the label of the *first* expansion that
  reaches it, i.e. the minimal cluster id among its core neighbours;
  non-cores with no core neighbour are ``NOISE``.

Deriving labels from that canonical form makes :meth:`labels` equal to
``DBSCAN.fit`` output *exactly* — not merely up to renumbering — which
the property tests pin after every stream prefix.

Arrivals only add weight and edges, so the stream case needs only
promotions and merges.  :meth:`remove` (retracting a duplicate, e.g. a
revoked statement) is the converse: demotions trigger a split re-check
bounded by the demoted core's component, never the population.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..obs import get_logger, metrics, trace
from .dbscan import NOISE

logger = get_logger(__name__)

BACKENDS = ("dense", "sparse", "vptree")


@dataclass
class IncrementalUpdate:
    """What one arrival (or removal) did to the clustering.

    ``index`` is the unique-area index of the affected representative,
    ``label`` its canonical cluster label after the update.  The repair
    counters let callers (and the stream monitor) distinguish a quiet
    arrival — weight bump or new noise/border point — from one that
    changed the cluster *structure* (core set or component partition).
    """

    index: int
    label: int
    new_point: bool
    interned_hit: bool
    promotions: int = 0
    demotions: int = 0
    merges: int = 0
    splits: int = 0
    new_clusters: int = 0

    @property
    def structure_changed(self) -> bool:
        return bool(self.promotions or self.demotions or self.merges
                    or self.splits or self.new_clusters)


class _DenseBackend:
    """Growable symmetric distance matrix via per-pair metric calls.

    O(n) metric evaluations per insert — the reference backend, valid
    at any radius (no partition exactness precondition)."""

    def __init__(self, metric, eps: float):
        self._metric = metric
        self._items: list = []
        self._buf = np.zeros((4, 4), dtype=float)
        self.n = 0

    def insert(self, area) -> int:
        i = self.n
        if i >= self._buf.shape[0]:
            cap = max(2 * self._buf.shape[0], 4)
            buf = np.zeros((cap, cap), dtype=float)
            buf[:i, :i] = self._buf[:i, :i]
            self._buf = buf
        row = np.array([self._metric(old, area) for old in self._items],
                       dtype=float)
        self._buf[i, :i] = row
        self._buf[:i, i] = row
        self._buf[i, i] = 0.0
        self._items.append(area)
        self.n = i + 1
        return i

    def neighbors(self, i: int, eps: float) -> list[int]:
        return [int(j) for j in
                np.flatnonzero(self._buf[i, :self.n] <= eps)]


class _SparseBackend:
    """Partition-pruned backend over ``BlockSparseDistanceMatrix``.

    Per-insert cost is intra-partition only; ``neighbors`` scans just
    the point's partition.  Requires ``eps`` strictly below the
    partition exactness bound — ``insert`` refuses (pre-mutation) any
    area whose new partition would drop the bound to ``eps``."""

    def __init__(self, metric, eps: float, *, engine: str = "kernel"):
        from ..distance.block_sparse import BlockSparseDistanceMatrix
        self._matrix = BlockSparseDistanceMatrix.compute([], metric)
        self._metric = metric
        self._eps = eps
        self._engine = engine

    def insert(self, area) -> int:
        return self._matrix.insert_row(
            area, self._metric, engine=self._engine,
            max_radius=self._eps)

    def neighbors(self, i: int, eps: float) -> list[int]:
        return self._matrix.neighbors(i, eps)


class _VPTreeBackend:
    """Certified-bound vantage-point tree backend (``VPTreeIndex``)."""

    def __init__(self, metric, eps: float):
        from ..distance.metric_index import VPTreeIndex
        self._index = VPTreeIndex.compute([], metric)
        self._metric = metric
        self._eps = eps

    def insert(self, area) -> int:
        return self._index.insert(area, self._metric,
                                  max_radius=self._eps)

    def neighbors(self, i: int, eps: float) -> list[int]:
        return self._index.neighbors(i, eps)


_BACKEND_TYPES = {"dense": _DenseBackend,
                  "sparse": _SparseBackend,
                  "vptree": _VPTreeBackend}


class IncrementalDBSCAN:
    """Live weighted DBSCAN labels under streaming arrivals.

    Parameters mirror :class:`~repro.clustering.dbscan.DBSCAN`
    (``eps``, ``min_pts``); ``metric`` is the decomposed query metric.
    With ``intern=True`` (default) arrivals are pooled by canonical
    fingerprint, so repeats of an already-seen area never touch the
    distance backend.  ``backend`` selects the neighbourhood index:
    ``"sparse"`` (block-sparse partition matrix, the default),
    ``"vptree"`` (certified VP-tree), or ``"dense"`` (per-pair metric
    calls; the only backend valid at radii ≥ the partition exactness
    bound).

    After any sequence of :meth:`add` calls, :meth:`labels` equals the
    output of a from-scratch ``DBSCAN(eps, min_pts).fit(unique_areas,
    weights=weights)`` — exactly, including numbering.
    """

    def __init__(self, metric, *, eps: float, min_pts: int = 5,
                 intern: bool = True, backend: str = "sparse",
                 engine: str = "kernel",
                 registry: Optional[metrics.MetricsRegistry] = None):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {backend!r}")
        if eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        if min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {min_pts}")
        self.eps = float(eps)
        self.min_pts = float(min_pts)
        self.intern = bool(intern)
        self.backend_name = backend
        self._registry = registry or metrics.get_registry()
        if backend == "sparse":
            self._backend = _SparseBackend(metric, self.eps,
                                           engine=engine)
        else:
            self._backend = _BACKEND_TYPES[backend](metric, self.eps)
        # Population state (indexed by unique-area index).
        self._index_of: dict = {}
        self._areas: list = []
        self._weights: list[float] = []
        self._adj: list[list[int]] = []      # self-inclusive eps-lists
        self._mass: list[float] = []         # Σ weights over _adj[i]
        self._core: list[bool] = []
        # Union-find over core points, carrying each component's size
        # and minimal member index (the canonical cluster order key).
        self._parent: dict[int, int] = {}
        self._size: dict[int, int] = {}
        self._comp_min: dict[int, int] = {}  # keyed by root only
        # Arrival log: unique index per source statement, in order.
        self._inverse: list[int] = []
        self.arrivals = 0
        self.interned_hits = 0

    # -- population views ---------------------------------------------

    @property
    def n_unique(self) -> int:
        return len(self._areas)

    @property
    def n_clusters(self) -> int:
        return len(self._comp_min)

    def areas(self) -> list:
        """Unique representatives in first-arrival order."""
        return list(self._areas)

    def weights(self) -> list[float]:
        return list(self._weights)

    def inverse(self) -> list[int]:
        """Unique index of each arrival, in arrival order (the
        expansion map of :func:`~repro.core.pipeline.expand_labels`)."""
        return list(self._inverse)

    def index_of(self, area) -> Optional[int]:
        """Unique-area index of ``area`` by canonical fingerprint, or
        ``None`` when it was never (successfully) added.  Requires
        ``intern=True`` — without interning, equal areas are distinct
        points and the lookup is ambiguous."""
        if not self.intern:
            raise ValueError("index_of() requires intern=True")
        return self._index_of.get(area)

    # -- union-find ---------------------------------------------------

    def _find(self, x: int) -> int:
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def _union(self, a: int, b: int) -> bool:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size.pop(rb)
        self._comp_min[ra] = min(self._comp_min[ra],
                                 self._comp_min.pop(rb))
        return True

    # -- updates ------------------------------------------------------

    def add(self, area, count: int = 1) -> IncrementalUpdate:
        """Observe ``count`` arrivals of ``area``; repair labels.

        Interned repeats bump the representative's weight (O(1) plus
        any core promotions in its neighbourhood); new areas insert one
        backend row and wire adjacency for their eps-neighbourhood.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        started = time.perf_counter()
        with trace.span("incremental_add", backend=self.backend_name):
            self.arrivals += count
            idx = self._index_of.get(area) if self.intern else None
            if idx is not None:
                self.interned_hits += count
                update = self._bump(idx, float(count))
            else:
                update = self._insert(area, float(count))
            self._inverse.extend([update.index] * count)
        self._record(update, time.perf_counter() - started)
        return update

    def remove(self, area, count: int = 1) -> IncrementalUpdate:
        """Retract ``count`` earlier arrivals of ``area``.

        Requires ``intern=True`` (the representative is looked up by
        fingerprint) and must leave at least one arrival in place: the
        growable distance backends only ever append, so full point
        deletion is out of scope — decrementing to zero would desync
        the adjacency index.  Demotions trigger a split re-check
        bounded by the demoted core's component.
        """
        if not self.intern:
            raise ValueError("remove() requires intern=True; without "
                             "interning duplicate arrivals are distinct "
                             "points and retraction is ambiguous")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        idx = self._index_of.get(area)
        if idx is None:
            raise KeyError("area was never added")
        if count >= self._weights[idx]:
            raise ValueError(
                f"cannot retract {count} of {self._weights[idx]:g} "
                f"arrivals: full deletion is unsupported (the distance "
                f"backends are append-only)")
        started = time.perf_counter()
        with trace.span("incremental_remove",
                        backend=self.backend_name):
            self.arrivals -= count
            delta = float(count)
            self._weights[idx] -= delta
            for j in self._adj[idx]:
                self._mass[j] -= delta
            demoted = [j for j in self._adj[idx]
                       if self._core[j] and self._mass[j] < self.min_pts]
            splits = 0
            clusters_before = self.n_clusters
            for d in demoted:
                splits += self._demote(d)
            update = IncrementalUpdate(
                index=idx, label=self.label_of(idx), new_point=False,
                interned_hit=True, demotions=len(demoted),
                splits=splits,
                new_clusters=max(0, self.n_clusters - clusters_before))
            # Keep the arrival log consistent: drop the retracted
            # occurrences (latest first) so expanded_labels() still
            # mirrors the surviving arrival sequence.
            remaining = count
            for pos in range(len(self._inverse) - 1, -1, -1):
                if self._inverse[pos] == idx:
                    del self._inverse[pos]
                    remaining -= 1
                    if remaining == 0:
                        break
        self._record(update, time.perf_counter() - started)
        return update

    def _bump(self, idx: int, delta: float) -> IncrementalUpdate:
        self._weights[idx] += delta
        for j in self._adj[idx]:
            self._mass[j] += delta
        update = IncrementalUpdate(index=idx, label=NOISE,
                                   new_point=False, interned_hit=True)
        self._promote_eligible(self._adj[idx], update)
        update.label = self.label_of(idx)
        return update

    def _insert(self, area, weight: float) -> IncrementalUpdate:
        idx = self._backend.insert(area)
        assert idx == len(self._areas)
        self._areas.append(area)
        if self.intern:
            self._index_of[area] = idx
        self._weights.append(weight)
        neighbors = self._backend.neighbors(idx, self.eps)
        self._adj.append([int(j) for j in neighbors])
        self._mass.append(sum(self._weights[j] for j in self._adj[idx]))
        self._core.append(False)
        for j in self._adj[idx]:
            if j != idx:
                self._adj[j].append(idx)
                self._mass[j] += weight
        update = IncrementalUpdate(index=idx, label=NOISE,
                                   new_point=True, interned_hit=False)
        self._promote_eligible(self._adj[idx], update)
        update.label = self.label_of(idx)
        return update

    def _promote_eligible(self, candidates: Sequence[int],
                          update: IncrementalUpdate) -> None:
        """Promote every non-core in ``candidates`` whose neighbourhood
        mass now reaches ``min_pts``, folding it into the core graph."""
        for p in candidates:
            if self._core[p] or self._mass[p] < self.min_pts:
                continue
            self._core[p] = True
            self._parent[p] = p
            self._size[p] = 1
            self._comp_min[p] = p
            joined = 0
            for k in self._adj[p]:
                if k != p and self._core[k] and self._union(p, k):
                    joined += 1
            update.promotions += 1
            if joined == 0:
                update.new_clusters += 1
            else:
                # The first union attaches the fresh singleton; each
                # further one fuses two pre-existing components.
                update.merges += joined - 1

    def _demote(self, d: int) -> int:
        """Demote core ``d``; re-check its component for splits.

        The affected set — cores formerly connected through ``d`` — is
        found by BFS from ``d``'s core neighbours over the core graph,
        so the cost is bounded by ``d``'s component size, never the
        population.  Returns the number of extra components created.
        """
        self._core[d] = False
        seeds = [k for k in self._adj[d] if k != d and self._core[k]]
        # Every former component member minus d reaches some seed
        # without passing through d (the hop before d is a seed), so
        # this BFS covers the whole affected set.
        affected: set[int] = set()
        frontier = [s for s in seeds]
        affected.update(frontier)
        while frontier:
            nxt = []
            for x in frontier:
                for k in self._adj[x]:
                    if k != x and self._core[k] and k not in affected:
                        affected.add(k)
                        nxt.append(k)
            frontier = nxt
        old_root = self._find(d)
        self._comp_min.pop(old_root, None)
        self._size.pop(old_root, None)
        self._parent.pop(d, None)
        self._size.pop(d, None)
        # Rebuild union-find entries for just the affected set.
        for x in affected:
            self._parent[x] = x
            self._size[x] = 1
            self._comp_min[x] = x
        for x in affected:
            for k in self._adj[x]:
                if k != x and self._core[k]:
                    self._union(x, k)
        parts = len({self._find(x) for x in affected})
        return max(0, parts - 1)

    # -- canonical labels ---------------------------------------------

    def labels(self) -> list[int]:
        """Per-unique-area labels, batch-identical (see class doc)."""
        rank = self._ranks()
        out = []
        for i in range(len(self._areas)):
            if self._core[i]:
                out.append(rank[self._find(i)])
            else:
                best = None
                for j in self._adj[i]:
                    if j != i and self._core[j]:
                        r = rank[self._find(j)]
                        if best is None or r < best:
                            best = r
                out.append(NOISE if best is None else best)
        return out

    def label_of(self, i: int) -> int:
        """Canonical label of unique area ``i`` — O(deg(i) + C)."""
        if self._core[i]:
            key = self._comp_min[self._find(i)]
        else:
            mins = [self._comp_min[self._find(j)] for j in self._adj[i]
                    if j != i and self._core[j]]
            if not mins:
                return NOISE
            key = min(mins)
        return sum(1 for v in self._comp_min.values() if v < key)

    def expanded_labels(self) -> list[int]:
        """Per-arrival labels in arrival order (interned mode)."""
        labels = self.labels()
        return [labels[i] for i in self._inverse]

    def _ranks(self) -> dict[int, int]:
        ordered = sorted(self._comp_min.items(), key=lambda kv: kv[1])
        return {root: rank for rank, (root, _) in enumerate(ordered)}

    # -- telemetry ----------------------------------------------------

    def _record(self, update: IncrementalUpdate,
                elapsed: float) -> None:
        reg = self._registry
        reg.counter("repro_incremental_arrivals_total").inc()
        if update.interned_hit and not update.new_point:
            reg.counter("repro_incremental_hits_total").inc()
        if update.new_point:
            reg.counter("repro_incremental_inserts_total").inc()
        for name, value in (("promotions", update.promotions),
                            ("demotions", update.demotions),
                            ("merges", update.merges),
                            ("splits", update.splits),
                            ("new_clusters", update.new_clusters)):
            if value:
                reg.counter(f"repro_incremental_{name}_total").inc(value)
        reg.histogram("repro_incremental_update_seconds").observe(
            elapsed)
        reg.gauge("repro_incremental_population").set(self.n_unique)
        reg.gauge("repro_incremental_clusters").set(self.n_clusters)

    def summary(self) -> str:
        hit_pct = (100.0 * self.interned_hits / self.arrivals
                   if self.arrivals else 0.0)
        return (f"{self.arrivals} arrivals -> {self.n_unique} unique "
                f"({hit_pct:.1f}% interned), {self.n_clusters} "
                f"clusters [{self.backend_name}]")
