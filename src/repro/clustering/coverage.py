"""Area and object coverage of aggregated access areas (Section 6.2).

* **Area coverage** — ``v_access / v_content`` where ``v_access`` is the
  volume of the aggregated area *inside* the content MBR and
  ``v_content`` the content MBR volume, over the columns the cluster
  constrains.  An area entirely in empty space has coverage 0.0
  (Clusters 18–24 of Table 1).
* **Object coverage** — ``n_access / n_content``: the fraction of actual
  database objects falling into the aggregated area.  For multi-relation
  areas the fractions multiply (objects of the universal relation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra.intervals import Interval
from ..engine.database import Database
from ..schema.statistics import StatisticsCatalog
from .aggregation import AggregatedArea


@dataclass(frozen=True)
class CoverageReport:
    area_coverage: float
    object_coverage: float


def area_coverage(agg: AggregatedArea, stats: StatisticsCatalog) -> float:
    """Fraction of the content MBR volume covered by the aggregated area.

    Computed over the constrained numeric columns; a cluster constraining
    no numeric column covers the whole (projected) content, i.e. 1.0.
    """
    fraction = 1.0
    for bounds in agg.bounds:
        content = stats.content_interval(bounds.ref)
        width = content.width
        if width <= 0:
            # Degenerate content axis: covered iff the point is inside.
            fraction *= 1.0 if bounds.interval.contains(content.lo) else 0.0
            continue
        overlap = bounds.interval.overlap_width(content)
        fraction *= overlap / width
        if fraction == 0.0:
            return 0.0
    return fraction


def object_coverage(agg: AggregatedArea, db: Database) -> float:
    """Fraction of database objects inside the aggregated area."""
    fraction = 1.0
    for relation in agg.relations:
        if not db.has_table(relation):
            return 0.0
        table = db.table(relation)
        total = len(table)
        if total == 0:
            return 0.0
        matching = sum(
            1 for row in table if _row_in_area(agg, relation, table, row))
        fraction *= matching / total
        if fraction == 0.0:
            return 0.0
    return fraction


def _row_in_area(agg: AggregatedArea, relation: str, table, row) -> bool:
    for bounds in agg.bounds:
        if bounds.ref.relation.lower() != relation.lower():
            continue
        try:
            value = table.get_value(row, bounds.ref.column)
        except KeyError:
            continue
        if value is None or not _contains(bounds.interval, value):
            return False
    for cat in agg.categorical:
        if cat.ref.relation.lower() != relation.lower():
            continue
        try:
            value = table.get_value(row, cat.ref.column)
        except KeyError:
            continue
        if value is None or str(value) not in cat.values:
            return False
    return True


def _contains(interval: Interval, value) -> bool:
    try:
        return interval.contains(float(value))
    except (TypeError, ValueError):
        return False


def coverage(agg: AggregatedArea, stats: StatisticsCatalog,
             db: Database) -> CoverageReport:
    return CoverageReport(
        area_coverage=area_coverage(agg, stats),
        object_coverage=object_coverage(agg, db),
    )
