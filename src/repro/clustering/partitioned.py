"""Table-set partitioned DBSCAN.

The query distance is ``d = d_tables + d_conj`` with ``d_conj ≥ 0``, and
the Jaccard distance between two *different* relation sets is at least
0.5 (witnessed by ``{A}`` vs ``{A, B}``).  Hence for any ``eps < 0.5``
two areas can only be DBSCAN neighbours when their table sets are equal —
so the clustering decomposes exactly into one independent DBSCAN per
table-set partition, turning the O(n²) distance bill into
``Σ n_partition²``.

For ``eps ≥ 0.5`` the decomposition is not exact and
:func:`partitioned_dbscan` refuses to silently approximate.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.area import AccessArea
from .dbscan import DBSCAN, NOISE, DBSCANResult

Distance = Callable[[AccessArea, AccessArea], float]


def partitioned_dbscan(areas: Sequence[AccessArea], distance: Distance,
                       eps: float, min_pts: int = 5) -> DBSCANResult:
    """DBSCAN over access areas, partitioned by relation set.

    Produces exactly the labels plain DBSCAN would (up to cluster-id
    numbering) whenever ``eps < 0.5``.
    """
    if eps >= 0.5:
        raise ValueError(
            "partitioned DBSCAN is only exact for eps < 0.5; "
            "use DBSCAN directly for larger radii")
    partitions: dict[frozenset[str], list[int]] = {}
    for index, area in enumerate(areas):
        key = frozenset(t.lower() for t in area.table_set)
        partitions.setdefault(key, []).append(index)

    labels = [NOISE] * len(areas)
    next_cluster = 0
    for key in sorted(partitions, key=lambda k: (len(k), sorted(k))):
        indices = partitions[key]
        if len(indices) < min_pts:
            continue  # too small to ever contain a core point
        subset = [areas[i] for i in indices]
        result = DBSCAN(eps, min_pts).fit(subset, distance)
        remap: dict[int, int] = {}
        for local_index, label in enumerate(result.labels):
            if label == NOISE:
                continue
            if label not in remap:
                remap[label] = next_cluster
                next_cluster += 1
            labels[indices[local_index]] = remap[label]
    return DBSCANResult(labels)
