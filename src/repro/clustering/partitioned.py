"""Table-set partitioned DBSCAN.

The query distance is ``d = d_tables + d_conj`` with ``d_conj ≥ 0``, and
the Jaccard distance between two *different* relation sets is at least
``1/|union|`` — at least 0.5 for the one- and two-table FROM sets that
dominate query logs (worst case ``{A}`` vs ``{A, B}``).  Hence for any
``eps < 0.5`` two areas can only be DBSCAN neighbours when their table
sets are equal — so the clustering decomposes exactly into one
independent DBSCAN per table-set partition, turning the O(n²) distance
bill into ``Σ n_partition²``.

Caveat (property-tested in ``tests/distance/test_metric_laws.py``): the
0.5 constant does not survive larger sets — ``{A, B}`` vs ``{A, B, C}``
is only 1/3 apart — so with ``k``-table joins in the log the
decomposition is strictly exact only for ``eps < 1/(k + 1)``.  The
paper's radius (0.12) is safely below that for SkyServer-realistic
joins.  For ``eps ≥ 0.5`` the decomposition never holds and
:func:`partitioned_dbscan` refuses to silently approximate.

Per-partition distances go through the shared
:class:`~repro.distance.DistanceMatrix` engine: pass a precomputed
matrix over the whole population to reuse it across algorithms, or
``n_jobs != 1`` to fan the per-partition computation out over worker
processes.  Both paths produce exactly the labels of the legacy
callable path.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..core.area import AccessArea
from ..distance.matrix import DistanceMatrix
from ..obs import metrics, trace
from .dbscan import DBSCAN, NOISE, DBSCANResult
from .telemetry import record_run

Distance = Callable[[AccessArea, AccessArea], float]


def partitioned_dbscan(areas: Sequence[AccessArea],
                       distance: Optional[Distance], eps: float,
                       min_pts: int = 5, *,
                       matrix: Optional[DistanceMatrix] = None,
                       n_jobs: int = 1) -> DBSCANResult:
    """DBSCAN over access areas, partitioned by relation set.

    Produces exactly the labels plain DBSCAN would (up to cluster-id
    numbering) whenever ``eps < 0.5``.  ``matrix`` — optional precomputed
    :class:`~repro.distance.DistanceMatrix` over ``areas`` (then
    ``distance`` may be ``None``); ``n_jobs`` — worker processes for the
    per-partition distance matrices (1 = the serial callable path).
    """
    if eps >= 0.5:
        raise ValueError(
            "partitioned DBSCAN is only exact for eps < 0.5; "
            "use DBSCAN directly for larger radii")
    if distance is None and matrix is None:
        raise ValueError("provide a distance callable or a matrix")
    partitions: dict[frozenset[str], list[int]] = {}
    for index, area in enumerate(areas):
        key = frozenset(t.lower() for t in area.table_set)
        partitions.setdefault(key, []).append(index)

    partition_sizes = metrics.get_registry().histogram(
        "repro_clustering_partition_size", algorithm="partitioned_dbscan")
    labels = [NOISE] * len(areas)
    next_cluster = 0
    fitted_partitions = 0
    with trace.span("partitioned_dbscan", n=len(areas), eps=eps,
                    partitions=len(partitions)) as span:
        for key in sorted(partitions, key=lambda k: (len(k), sorted(k))):
            indices = partitions[key]
            partition_sizes.observe(len(indices))
            if len(indices) < min_pts:
                continue  # too small to ever contain a core point
            fitted_partitions += 1
            subset = [areas[i] for i in indices]
            with trace.span("partition",
                            tables="+".join(sorted(key)) or "(none)",
                            size=len(indices)):
                if matrix is not None:
                    result = DBSCAN(eps, min_pts).fit(
                        subset, matrix=matrix.submatrix(indices))
                elif n_jobs != 1:
                    sub = DistanceMatrix.compute(subset, distance,
                                                 n_jobs=n_jobs)
                    result = DBSCAN(eps, min_pts).fit(subset, matrix=sub)
                else:
                    result = DBSCAN(eps, min_pts).fit(subset, distance)
            remap: dict[int, int] = {}
            for local_index, label in enumerate(result.labels):
                if label == NOISE:
                    continue
                if label not in remap:
                    remap[label] = next_cluster
                    next_cluster += 1
                labels[indices[local_index]] = remap[label]
        combined = DBSCANResult(labels)
        span.set(clusters=combined.n_clusters,
                 fitted_partitions=fitted_partitions)
    record_run("partitioned_dbscan", fitted_partitions, combined)
    return combined
