"""Table-set partitioned DBSCAN.

The query distance is ``d = d_tables + d_conj`` with ``d_conj ≥ 0``, and
the Jaccard distance between two *different* relation sets is at least
``1/|union|`` — at least 0.5 for the one- and two-table FROM sets that
dominate query logs (worst case ``{A}`` vs ``{A, B}``).  Hence for any
radius below that bound two areas can only be DBSCAN neighbours when
their table sets are equal — so the clustering decomposes exactly into
one independent DBSCAN per table-set partition, turning the O(n²)
distance bill into ``Σ n_partition²``.

The 0.5 constant does not survive larger sets — ``{A, B}`` vs
``{A, B, C}`` is only 1/3 apart — so with ``k``-table joins in the log
the decomposition is strictly exact only for ``eps < 1/(k + 1)``.
:func:`partitioned_dbscan` therefore computes the *population's* true
bound (:func:`~repro.distance.query_distance.partition_exactness_bound`,
the minimum cross-partition ``d_tables``; property-tested in
``tests/distance/test_metric_laws.py`` and
``tests/clustering/test_partitioned.py``) and refuses to silently
approximate beyond it: ``eps >= bound`` raises, or — with
``on_inexact="fallback"`` — warns and runs plain DBSCAN over the whole
population.  The paper's radius (0.12) is safely below the bound for
SkyServer-realistic joins.

Partition keys are the areas' canonical table sets (relation names are
canonicalized once at extraction: schema capitalization, lowercase
fallback), i.e. exactly the sets ``d_tables`` compares — the partition
decision and the metric can never disagree on case.

Per-partition distances go through the shared
:class:`~repro.distance.DistanceMatrix` engine: pass a precomputed
matrix over the whole population — dense or
:class:`~repro.distance.BlockSparseDistanceMatrix` — to reuse it across
algorithms, or ``n_jobs != 1`` to fan the per-partition computation out
over worker processes.  All paths produce exactly the labels of the
legacy callable path.
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional, Sequence

from ..core.area import AccessArea
from ..distance.matrix import DistanceMatrix
from ..distance.query_distance import partition_exactness_bound
from ..obs import get_logger, metrics, trace
from .dbscan import DBSCAN, NOISE, DBSCANResult
from .telemetry import record_run

logger = get_logger(__name__)

Distance = Callable[[AccessArea, AccessArea], float]


def partitioned_dbscan(areas: Sequence[AccessArea],
                       distance: Optional[Distance], eps: float,
                       min_pts: int = 5, *,
                       matrix=None,
                       n_jobs: int = 1,
                       weights: Optional[Sequence[float]] = None,
                       on_inexact: str = "raise") -> DBSCANResult:
    """DBSCAN over access areas, partitioned by relation set.

    Produces exactly the labels plain DBSCAN would (up to cluster-id
    numbering) whenever ``eps`` lies strictly below the population's
    partition exactness bound — the minimum ``d_tables`` between
    distinct table sets, ``1/(k+1)`` in the worst ``k``-table-join case.
    ``matrix`` — optional precomputed distance matrix over ``areas``
    (dense :class:`~repro.distance.DistanceMatrix` or block-sparse; then
    ``distance`` may be ``None``); ``n_jobs`` — worker processes for the
    per-partition distance matrices (1 = the serial callable path);
    ``weights`` — optional positive per-area multiplicities (intern-pool
    duplicate counts), forwarded to the per-partition DBSCANs so the
    core condition sums neighbourhood weight; the small-partition skip
    likewise compares summed weight against ``min_pts``;
    ``on_inexact`` — what to do when ``eps`` reaches the bound:
    ``"raise"`` (default) or ``"fallback"`` (warn and run plain DBSCAN
    over the whole, unpartitioned population).
    """
    if distance is None and matrix is None:
        raise ValueError("provide a distance callable or a matrix")
    if weights is not None and len(weights) != len(areas):
        raise ValueError(f"{len(weights)} weights do not match "
                         f"{len(areas)} areas")
    if on_inexact not in ("raise", "fallback"):
        raise ValueError(f"on_inexact must be 'raise' or 'fallback', "
                         f"got {on_inexact!r}")
    bound = partition_exactness_bound(area.table_set for area in areas)
    if eps >= bound:
        message = (
            f"partitioned DBSCAN is only exact for eps < {bound:.4g} "
            f"(the minimum cross-partition d_tables of this "
            f"population); got eps={eps:g}")
        if on_inexact == "raise":
            raise ValueError(
                message + "; use plain DBSCAN or on_inexact='fallback'")
        warnings.warn(message + "; falling back to plain DBSCAN",
                      RuntimeWarning, stacklevel=2)
        logger.warning("%s; falling back to plain DBSCAN", message)
        if matrix is not None:
            return DBSCAN(eps, min_pts).fit(areas, matrix=matrix,
                                            weights=weights)
        return DBSCAN(eps, min_pts).fit(areas, distance, weights=weights)

    # Canonical table sets (the exact frozensets d_tables compares).
    partitions: dict[frozenset[str], list[int]] = {}
    for index, area in enumerate(areas):
        partitions.setdefault(area.table_set, []).append(index)

    partition_sizes = metrics.get_registry().histogram(
        "repro_clustering_partition_size", algorithm="partitioned_dbscan")
    labels = [NOISE] * len(areas)
    next_cluster = 0
    fitted_partitions = 0
    with trace.span("partitioned_dbscan", n=len(areas), eps=eps,
                    partitions=len(partitions)) as span:
        for key in sorted(partitions, key=lambda k: (len(k), sorted(k))):
            indices = partitions[key]
            partition_sizes.observe(len(indices))
            if weights is None:
                partition_mass: float = len(indices)
                subset_weights = None
            else:
                subset_weights = [weights[i] for i in indices]
                partition_mass = sum(subset_weights)
            if partition_mass < min_pts:
                continue  # too light to ever contain a core point
            fitted_partitions += 1
            subset = [areas[i] for i in indices]
            with trace.span("partition",
                            tables="+".join(sorted(key)) or "(none)",
                            size=len(indices)):
                if matrix is not None:
                    result = DBSCAN(eps, min_pts).fit(
                        subset, matrix=matrix.submatrix(indices),
                        weights=subset_weights)
                elif n_jobs != 1:
                    sub = DistanceMatrix.compute(subset, distance,
                                                 n_jobs=n_jobs)
                    result = DBSCAN(eps, min_pts).fit(
                        subset, matrix=sub, weights=subset_weights)
                else:
                    result = DBSCAN(eps, min_pts).fit(
                        subset, distance, weights=subset_weights)
            remap: dict[int, int] = {}
            for local_index, label in enumerate(result.labels):
                if label == NOISE:
                    continue
                if label not in remap:
                    remap[label] = next_cluster
                    next_cluster += 1
                labels[indices[local_index]] = remap[label]
        combined = DBSCANResult(labels)
        span.set(clusters=combined.n_clusters,
                 fitted_partitions=fitted_partitions)
    record_run("partitioned_dbscan", fitted_partitions, combined)
    return combined
