"""OPTICS (Ankerst et al., SIGMOD 1999) over access-area distances.

DBSCAN's fixed ``eps`` is its known weakness — the eps-sensitivity
ablation shows cluster counts swinging with the radius.  OPTICS computes
the density *ordering* once (up to ``max_eps``) and lets any smaller
radius be extracted afterwards without re-running the distance
computation: the natural next step for the paper's "different clustering
techniques" future work.

The implementation is the textbook one: reachability distances over a
priority queue, plus :func:`extract_dbscan` which cuts the reachability
plot at a chosen eps to obtain the DBSCAN-equivalent labelling.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..obs import trace
from .dbscan import NOISE, DBSCANResult
from .telemetry import record_run

Distance = Callable[[object, object], float]

_UNDEFINED = math.inf


@dataclass
class OPTICSResult:
    """The cluster ordering with core/reachability distances."""

    ordering: list[int]
    reachability: list[float]  # indexed by item position, not ordering
    core_distance: list[float]

    def reachability_plot(self) -> list[tuple[int, float]]:
        """(item index, reachability) pairs in cluster order."""
        return [(index, self.reachability[index])
                for index in self.ordering]


@dataclass
class OPTICS:
    """Density ordering up to ``max_eps`` with ``min_pts`` density."""

    max_eps: float
    min_pts: int = 5

    def fit(self, items: Sequence, distance: Optional[Distance] = None,
            matrix=None,
            weights: Optional[Sequence[float]] = None) -> OPTICSResult:
        """Order ``items``; exactly one of ``distance``/``matrix``.

        ``matrix`` is a square array-like or a condensed
        ``DistanceMatrix`` over ``items`` (computed up to at least
        ``max_eps`` — bound-skipped entries hold lower bounds, which the
        radius test treats correctly).  ``weights`` — optional positive
        per-item multiplicities: the core distance becomes the smallest
        radius whose neighbourhood mass (starting from the point's own
        weight) reaches ``min_pts``, so ordering ``u`` interned unique
        areas matches ordering the expanded population."""
        if (distance is None) == (matrix is None):
            raise ValueError("provide exactly one of distance or matrix")
        n = len(items)
        if weights is not None:
            weights = [float(w) for w in weights]
            if len(weights) != n:
                raise ValueError(
                    f"{len(weights)} weights do not match {n} items")
            if any(w <= 0 for w in weights):
                raise ValueError("weights must be positive")
        processed = [False] * n
        reachability = [_UNDEFINED] * n
        core_distance = [_UNDEFINED] * n
        ordering: list[int] = []

        memo: dict[tuple[int, int], float] = {}

        def dist(i: int, j: int) -> float:
            if matrix is not None:
                if hasattr(matrix, "value"):  # condensed DistanceMatrix
                    return matrix.value(i, j)
                return float(matrix[i][j])
            key = (i, j) if i < j else (j, i)
            value = memo.get(key)
            if value is None:
                value = distance(items[i], items[j])
                memo[key] = value
            return value

        # A metric-tree backend (VPTreeIndex) answers the eps-ball
        # directly, skipping the O(n) scan — but only below its
        # exactness bound, where range queries are exact; otherwise the
        # scan path keeps the documented lower-bound semantics.
        range_query = getattr(matrix, "range_query", None)
        if range_query is not None and not (
                self.max_eps
                < getattr(matrix, "exactness_bound", -math.inf)):
            range_query = None

        def neighbors(point: int) -> list[tuple[int, float]]:
            if range_query is not None:
                return [(other, d)
                        for other, d in range_query(point, self.max_eps)
                        if other != point]
            out = []
            for other in range(n):
                if other == point:
                    continue
                d = dist(point, other)
                if d <= self.max_eps:
                    out.append((other, d))
            return out

        iterations = 0
        with trace.span("optics.fit", n=n, max_eps=self.max_eps,
                        min_pts=self.min_pts) as span:
            for start in range(n):
                if processed[start]:
                    continue
                processed[start] = True
                ordering.append(start)
                near = neighbors(start)
                core_distance[start] = self._core_distance(start, near,
                                                           weights)
                if math.isinf(core_distance[start]):
                    continue
                seeds: list[tuple[float, int]] = []
                self._update(start, near, core_distance, reachability,
                             processed, seeds)
                while seeds:
                    _, current = heapq.heappop(seeds)
                    iterations += 1
                    if processed[current]:
                        continue
                    processed[current] = True
                    ordering.append(current)
                    current_near = neighbors(current)
                    core_distance[current] = self._core_distance(
                        current, current_near, weights)
                    if not math.isinf(core_distance[current]):
                        self._update(current, current_near, core_distance,
                                     reachability, processed, seeds)
            span.set(iterations=iterations)
        record_run("optics", iterations)
        return OPTICSResult(ordering, reachability, core_distance)

    def _core_distance(self, point: int, near: list[tuple[int, float]],
                       weights: Optional[list[float]]) -> float:
        # min_pts includes the point itself, matching our DBSCAN.
        if weights is None:
            if len(near) + 1 < self.min_pts:
                return _UNDEFINED
            distances = sorted(d for _, d in near)
            return distances[self.min_pts - 2]
        mass = weights[point]
        if mass >= self.min_pts:
            return 0.0
        for other, d in sorted(near, key=lambda pair: pair[1]):
            mass += weights[other]
            if mass >= self.min_pts:
                return d
        return _UNDEFINED

    @staticmethod
    def _update(center: int, near: list[tuple[int, float]],
                core_distance: list[float], reachability: list[float],
                processed: list[bool],
                seeds: list[tuple[float, int]]) -> None:
        core = core_distance[center]
        for other, d in near:
            if processed[other]:
                continue
            new_reach = max(core, d)
            if new_reach < reachability[other]:
                reachability[other] = new_reach
                heapq.heappush(seeds, (new_reach, other))


def extract_dbscan(result: OPTICSResult, eps: float,
                   min_pts_unused: int = 0) -> DBSCANResult:
    """Cut the reachability plot at ``eps``.

    Produces the DBSCAN clustering at radius ``eps`` (for any
    ``eps <= max_eps``), following the extraction rule of the OPTICS
    paper: a reachability above eps starts a new cluster when the point
    itself is core at eps, otherwise the point is noise.
    """
    n = len(result.reachability)
    labels = [NOISE] * n
    cluster_id = -1
    for index in result.ordering:
        if result.reachability[index] > eps:
            if result.core_distance[index] <= eps:
                cluster_id += 1
                labels[index] = cluster_id
            else:
                labels[index] = NOISE
        else:
            labels[index] = cluster_id if cluster_id >= 0 else NOISE
    return DBSCANResult(labels)
