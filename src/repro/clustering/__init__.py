"""Clustering of access areas: DBSCAN, aggregation, coverage metrics."""

from .aggregation import (AggregatedArea, CategoricalBounds, ColumnBounds,
                          aggregate_all, aggregate_cluster)
from .coverage import (CoverageReport, area_coverage, coverage,
                       object_coverage)
from .agglomerative import SingleLinkage
from .optics import OPTICS, OPTICSResult, extract_dbscan
from .dbscan import DBSCAN, NOISE, DBSCANResult, pairwise_matrix
from .density import (ColumnDensity, DensityReport, density_contrast)
from .incremental import IncrementalDBSCAN, IncrementalUpdate
from .partitioned import partitioned_dbscan

__all__ = [
    "AggregatedArea", "CategoricalBounds", "ColumnBounds",
    "aggregate_all", "aggregate_cluster",
    "CoverageReport", "area_coverage", "coverage", "object_coverage",
    "DBSCAN", "NOISE", "DBSCANResult", "pairwise_matrix",
    "partitioned_dbscan",
    "SingleLinkage",
    "OPTICS", "OPTICSResult", "extract_dbscan",
    "ColumnDensity", "DensityReport", "density_contrast",
    "IncrementalDBSCAN", "IncrementalUpdate",
]
