"""Shared metric recording for the clustering algorithms.

All four algorithms (DBSCAN, partitioned DBSCAN, OPTICS, single
linkage) report the same ``repro_clustering_*`` families, labelled by
``algorithm``, so the ``repro stats`` view and the Prometheus export
compare them directly:

* ``repro_clustering_runs_total`` — fits performed;
* ``repro_clustering_iterations`` — histogram of per-run iteration
  counts (region queries / seed pops / pair comparisons);
* ``repro_clustering_clusters`` — clusters found by the last run;
* ``repro_clustering_cluster_size`` — histogram of cluster sizes;
* ``repro_clustering_noise_total`` — points labelled noise.
"""

from __future__ import annotations

from typing import Optional

from ..obs import metrics


def record_run(algorithm: str, iterations: int, result=None,
               registry: Optional[metrics.MetricsRegistry] = None) -> None:
    """Fold one clustering run into the registry.

    ``result`` — a :class:`~repro.clustering.dbscan.DBSCANResult`
    (or anything with ``n_clusters``/``clusters()``/``noise_count``);
    ``None`` for ordering-only algorithms like OPTICS.
    """
    registry = registry or metrics.get_registry()
    registry.counter("repro_clustering_runs_total",
                     algorithm=algorithm).inc()
    registry.histogram("repro_clustering_iterations",
                       algorithm=algorithm).observe(iterations)
    if result is None:
        return
    registry.gauge("repro_clustering_clusters",
                   algorithm=algorithm).set(result.n_clusters)
    size_histogram = registry.histogram("repro_clustering_cluster_size",
                                        algorithm=algorithm)
    for members in result.clusters().values():
        size_histogram.observe(len(members))
    noise = result.noise_count
    if noise:
        registry.counter("repro_clustering_noise_total",
                         algorithm=algorithm).inc(noise)
