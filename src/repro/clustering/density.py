"""Cluster density contrast (the Section 6.3 refinement).

The paper's domain experts asked: "it would be interesting to know how
much denser each cluster is, in contrast to its immediate surroundings"
— values inside a cluster's range are "more likely to be referred to in
queries than just outside of the range", and the contrast quantifies by
how much.

For each aggregated area we compare, per constrained numeric column:

* the **inside rate** — cluster members per unit of normalized width
  inside the MBR side, against
* the **shell rate** — how many *other* sampled queries constrain the
  same column inside a shell of configurable relative width around the
  MBR side.

The per-column contrasts combine by geometric mean into one
``density_contrast`` figure (1.0 = no denser than the surroundings;
the interesting clusters score ≫ 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..algebra.intervals import Interval
from ..algebra.predicates import ColumnRef
from ..core.area import AccessArea
from ..schema.statistics import StatisticsCatalog
from .aggregation import AggregatedArea


@dataclass(frozen=True)
class ColumnDensity:
    """Density comparison along one MBR side."""

    ref: ColumnRef
    inside_count: int
    inside_width: float
    shell_count: int
    shell_width: float

    @property
    def inside_rate(self) -> float:
        if self.inside_width <= 0:
            return float(self.inside_count)
        return self.inside_count / self.inside_width

    @property
    def shell_rate(self) -> float:
        if self.shell_width <= 0:
            return 0.0
        return self.shell_count / self.shell_width

    @property
    def contrast(self) -> float:
        """inside/shell rate ratio; shell rate 0 maps to +inf-as-large."""
        shell = self.shell_rate
        if shell <= 0:
            return math.inf if self.inside_count else 1.0
        return self.inside_rate / shell


@dataclass(frozen=True)
class DensityReport:
    """Per-cluster density contrast."""

    cluster_id: int
    columns: tuple[ColumnDensity, ...]

    @property
    def contrast(self) -> float:
        """Geometric mean of per-column contrasts (inf-aware)."""
        finite = [c.contrast for c in self.columns
                  if math.isfinite(c.contrast)]
        has_infinite = any(math.isinf(c.contrast) for c in self.columns)
        if not self.columns:
            return 1.0
        if not finite:
            return math.inf if has_infinite else 1.0
        mean = math.exp(sum(math.log(max(c, 1e-12)) for c in finite)
                        / len(finite))
        return math.inf if has_infinite and mean >= 1 else mean

    def describe(self) -> str:
        value = ("inf" if math.isinf(self.contrast)
                 else f"{self.contrast:.1f}")
        return (f"cluster {self.cluster_id}: {value}x denser than its "
                f"surroundings across {len(self.columns)} column(s)")


def density_contrast(agg: AggregatedArea,
                     members: Sequence[AccessArea],
                     population: Sequence[AccessArea],
                     stats: StatisticsCatalog,
                     shell_fraction: float = 0.5) -> DensityReport:
    """Compute the density contrast of one cluster.

    ``members`` are the cluster's areas; ``population`` is the whole
    clustering sample (the "surroundings" candidates).  The shell around
    each MBR side is ``shell_fraction`` of the side's width on each
    flank, clipped to ``access(a)``.
    """
    member_ids = {id(area) for area in members}
    outsiders = [area for area in population
                 if id(area) not in member_ids]

    columns: list[ColumnDensity] = []
    for bounds in agg.bounds:
        side = bounds.interval
        access = stats.access_interval(bounds.ref)
        width = max(side.width, 1e-12 * max(access.width, 1.0))
        margin = shell_fraction * width
        shell_lo = Interval.make(max(access.lo, side.lo - margin), side.lo)
        shell_hi = Interval.make(side.hi, min(access.hi, side.hi + margin))
        shell_width = ((shell_lo.width if shell_lo else 0.0)
                       + (shell_hi.width if shell_hi else 0.0))

        inside = sum(1 for area in members
                     if _touches(area, bounds.ref, side))
        shell = 0
        for area in outsiders:
            in_lo = shell_lo is not None and _touches(area, bounds.ref,
                                                      shell_lo)
            in_hi = shell_hi is not None and _touches(area, bounds.ref,
                                                      shell_hi)
            if in_lo or in_hi:
                shell += 1
        columns.append(ColumnDensity(
            ref=bounds.ref,
            inside_count=inside,
            inside_width=side.width / max(access.width, 1e-12),
            shell_count=shell,
            shell_width=shell_width / max(access.width, 1e-12),
        ))
    return DensityReport(agg.cluster_id, tuple(columns))


def _touches(area: AccessArea, ref: ColumnRef, interval: Interval) -> bool:
    """True when the area's footprint on ``ref`` overlaps ``interval``."""
    footprint = area.column_footprints().get(ref)
    if footprint is None:
        return False
    return not footprint.intersect(interval).is_empty or any(
        interval.contains(iv.lo) for iv in footprint)
