"""Aggregating a cluster of access areas (Section 6.2).

"For each output cluster, we derive its minimum bounding hyper-rectangle,
which we interpret as the aggregated access area of the queries involved.
During this process, we leave out extreme range bounds by applying the
3-standard deviation rule."

Each cluster member contributes, per constrained numeric column, the hull
``[lo, hi]`` of its footprint; bounds farther than 3σ from the mean of
their side are trimmed before the MBR is taken.  Categorical constraints
contribute value sets (unioned); join predicates shared by a majority of
members are kept in the description (e.g. Table 1's Clusters 16/17).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..algebra.intervals import Interval
from ..algebra.predicates import (ColumnColumnPredicate,
                                  ColumnConstantPredicate, ColumnRef, Op)
from ..core.area import AccessArea
from ..schema.statistics import StatisticsCatalog


@dataclass(frozen=True)
class ColumnBounds:
    """The aggregated MBR side for one numeric column."""

    ref: ColumnRef
    interval: Interval
    lower_bounded: bool
    upper_bounded: bool
    support: int  # number of cluster members constraining this column

    def describe(self) -> str:
        if self.lower_bounded and self.upper_bounded:
            return (f"{_fmt(self.interval.lo)} <= {self.ref} "
                    f"<= {_fmt(self.interval.hi)}")
        if self.lower_bounded:
            return f"{self.ref} >= {_fmt(self.interval.lo)}"
        if self.upper_bounded:
            return f"{self.ref} <= {_fmt(self.interval.hi)}"
        return f"{self.ref} unconstrained"


@dataclass(frozen=True)
class CategoricalBounds:
    ref: ColumnRef
    values: frozenset[str]
    support: int

    def describe(self) -> str:
        if len(self.values) == 1:
            return f"{self.ref} = '{next(iter(self.values))}'"
        options = " OR ".join(
            f"{self.ref} = '{v}'" for v in sorted(self.values))
        return f"({options})"


@dataclass(frozen=True)
class AggregatedArea:
    """A Table-1 row: one cluster's aggregated access area."""

    cluster_id: int
    cardinality: int
    relations: tuple[str, ...]
    bounds: tuple[ColumnBounds, ...]
    categorical: tuple[CategoricalBounds, ...]
    joins: tuple[ColumnColumnPredicate, ...]

    def describe(self) -> str:
        parts = [b.describe() for b in self.bounds]
        parts += [c.describe() for c in self.categorical]
        parts += [str(j) for j in self.joins]
        return " AND ".join(parts) if parts else \
            f"all of {', '.join(self.relations)}"

    def bound_for(self, ref: ColumnRef) -> Optional[ColumnBounds]:
        for bounds in self.bounds:
            if (bounds.ref.relation.lower() == ref.relation.lower()
                    and bounds.ref.column.lower() == ref.column.lower()):
                return bounds
        return None

    def to_sql(self) -> str:
        """A representative SELECT over this aggregated area.

        Useful to hand interest areas back to users ("which parts of the
        data do others deem important?", Section 6.3) — e.g. by a query
        recommender.
        """
        tables = ", ".join(self.relations)
        predicates: list[str] = []
        for bounds in self.bounds:
            iv = bounds.interval
            if bounds.lower_bounded and bounds.upper_bounded:
                if iv.is_point:
                    predicates.append(f"{bounds.ref} = {_sqlnum(iv.lo)}")
                else:
                    predicates.append(
                        f"{bounds.ref} BETWEEN {_sqlnum(iv.lo)} "
                        f"AND {_sqlnum(iv.hi)}")
            elif bounds.lower_bounded:
                predicates.append(f"{bounds.ref} >= {_sqlnum(iv.lo)}")
            elif bounds.upper_bounded:
                predicates.append(f"{bounds.ref} <= {_sqlnum(iv.hi)}")
        for cat in self.categorical:
            values = sorted(cat.values)
            if len(values) == 1:
                predicates.append(f"{cat.ref} = '{values[0]}'")
            else:
                quoted = ", ".join(f"'{v}'" for v in values)
                predicates.append(f"{cat.ref} IN ({quoted})")
        for join in self.joins:
            predicates.append(str(join))
        sql = f"SELECT * FROM {tables}"
        if predicates:
            sql += " WHERE " + " AND ".join(predicates)
        return sql

    def __str__(self) -> str:
        return self.describe()


def _sqlnum(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer() and abs(value) < 2 ** 53:
        return str(int(value))
    return repr(float(value))  # shortest exact round-trip form


def aggregate_cluster(cluster_id: int, members: Sequence[AccessArea],
                      stats: Optional[StatisticsCatalog] = None,
                      sigma: float = 3.0,
                      column_support: float = 0.5,
                      join_support: float = 0.5,
                      weights: Optional[Sequence[int]] = None
                      ) -> AggregatedArea:
    """Build the aggregated access area of one cluster.

    ``sigma`` is the trimming rule (3 in the paper; ``math.inf`` disables
    it — the ablation knob).  ``column_support`` drops columns constrained
    by fewer than that fraction of members, so one stray query cannot add
    a spurious axis to the hyper-rectangle.

    ``weights`` — optional positive integer multiplicities (intern-pool
    duplicate counts): member ``i`` counts as ``weights[i]`` identical
    queries.  Implemented by repetition — each member contributes
    ``weights[i]`` copies of its bounds to the trim statistics, support
    counts, and ``cardinality`` — so a unique-area cluster with weights
    aggregates exactly like the duplicated population it stands for.
    """
    if weights is None:
        wlist = [1] * len(members)
    else:
        wlist = [int(w) for w in weights]
        if len(wlist) != len(members):
            raise ValueError(f"{len(wlist)} weights do not match "
                             f"{len(members)} members")
        if any(w <= 0 for w in wlist):
            raise ValueError("weights must be positive")
    total = sum(wlist)
    relations = _majority_relations(members, wlist)
    min_support = max(1, math.ceil(column_support * total))

    lower: dict[ColumnRef, list[float]] = {}
    upper: dict[ColumnRef, list[float]] = {}
    support: dict[ColumnRef, int] = {}
    cat_values: dict[ColumnRef, set[str]] = {}
    cat_support: dict[ColumnRef, int] = {}
    join_counts: dict[ColumnColumnPredicate, int] = {}

    for area, weight in zip(members, wlist):
        for ref, footprint in area.column_footprints().items():
            hull = footprint.hull()
            if hull is None:
                continue
            support[ref] = support.get(ref, 0) + weight
            if not math.isinf(hull.lo):
                lower.setdefault(ref, []).extend([hull.lo] * weight)
            if not math.isinf(hull.hi):
                upper.setdefault(ref, []).extend([hull.hi] * weight)
        for ref, values in _categorical_constraints(area).items():
            cat_support[ref] = cat_support.get(ref, 0) + weight
            cat_values.setdefault(ref, set()).update(values)
        for join in _join_predicates(area):
            join_counts[join] = join_counts.get(join, 0) + weight

    bounds: list[ColumnBounds] = []
    for ref, count in sorted(support.items(), key=lambda kv: str(kv[0])):
        if count < min_support:
            continue
        los = _trim(lower.get(ref, []), sigma)
        his = _trim(upper.get(ref, []), sigma)
        lo = min(los) if los else None
        hi = max(his) if his else None
        interval = _bounded_interval(ref, lo, hi, stats)
        if interval is None:
            continue
        bounds.append(ColumnBounds(
            ref, interval,
            lower_bounded=lo is not None,
            upper_bounded=hi is not None,
            support=count))

    categorical = tuple(
        CategoricalBounds(ref, frozenset(values), cat_support[ref])
        for ref, values in sorted(cat_values.items(),
                                  key=lambda kv: str(kv[0]))
        if cat_support[ref] >= min_support)

    min_join_support = max(1, math.ceil(join_support * total))
    joins = tuple(sorted(
        (j for j, count in join_counts.items()
         if count >= min_join_support),
        key=str))

    return AggregatedArea(
        cluster_id=cluster_id,
        cardinality=total,
        relations=relations,
        bounds=tuple(bounds),
        categorical=categorical,
        joins=joins,
    )


def aggregate_all(clusters: dict[int, Sequence[AccessArea]],
                  stats: Optional[StatisticsCatalog] = None,
                  sigma: float = 3.0,
                  column_support: float = 0.5,
                  weights: Optional[dict[int, Sequence[int]]] = None,
                  ) -> list[AggregatedArea]:
    """Aggregate every cluster, largest first.

    ``weights`` — optional per-cluster member multiplicities, keyed like
    ``clusters`` (see :func:`aggregate_cluster`)."""
    aggregated = [
        aggregate_cluster(cid, members, stats, sigma, column_support,
                          weights=None if weights is None
                          else weights.get(cid))
        for cid, members in clusters.items()
    ]
    aggregated.sort(key=lambda a: a.cardinality, reverse=True)
    return aggregated


# -- helpers ------------------------------------------------------------------

def _majority_relations(members: Sequence[AccessArea],
                        weights: Optional[Sequence[int]] = None,
                        ) -> tuple[str, ...]:
    if weights is None:
        weights = [1] * len(members)
    counts: dict[tuple[str, ...], int] = {}
    for area, weight in zip(members, weights):
        counts[area.relations] = counts.get(area.relations, 0) + weight
    best = max(counts.items(), key=lambda kv: kv[1])[0]
    return best


def _categorical_constraints(
        area: AccessArea) -> dict[ColumnRef, set[str]]:
    out: dict[ColumnRef, set[str]] = {}
    for clause in area.cnf:
        values_by_ref: dict[ColumnRef, set[str]] = {}
        eligible = True
        for pred in clause:
            if (isinstance(pred, ColumnConstantPredicate)
                    and isinstance(pred.value, str)
                    and pred.op is Op.EQ):
                values_by_ref.setdefault(pred.ref, set()).add(pred.value)
            else:
                eligible = False
                break
        # Only clauses that are disjunctions over ONE categorical column
        # constrain that column everywhere in the area.
        if eligible and len(values_by_ref) == 1:
            ref, values = next(iter(values_by_ref.items()))
            out.setdefault(ref, set()).update(values)
    return out


def _join_predicates(area: AccessArea) -> list[ColumnColumnPredicate]:
    out = []
    for clause in area.cnf:
        if clause.is_unit and isinstance(clause.predicates[0],
                                         ColumnColumnPredicate):
            out.append(clause.predicates[0])
    return out


def _trim(values: list[float], sigma: float) -> list[float]:
    """Drop values beyond ``sigma`` standard deviations from the mean.

    Degenerate inputs pass through untouched rather than erasing the
    bound: fewer than 3 values (no meaningful spread estimate), a
    disabled rule (``sigma = inf``), zero or non-finite spread (all
    values equal, or a NaN/overflowed accumulation), and the
    everything-is-an-outlier case (``sigma`` so tight nothing survives)
    all return the original list."""
    if len(values) < 3 or math.isinf(sigma):
        return values
    mean = sum(values) / len(values)
    if not math.isfinite(mean):
        return values
    try:
        variance = sum((v - mean) ** 2 for v in values) / len(values)
    except OverflowError:  # e.g. (1e200)**2 — Python raises, not inf
        return values
    std = math.sqrt(variance)
    if std == 0 or not math.isfinite(std):
        return values
    kept = [v for v in values if abs(v - mean) <= sigma * std]
    return kept or values


def _bounded_interval(ref: ColumnRef, lo: Optional[float],
                      hi: Optional[float],
                      stats: Optional[StatisticsCatalog]) -> Interval | None:
    """Close open sides of the MBR with access(a) when available.

    Without statistics the open side stays infinite — the bound flags on
    :class:`ColumnBounds` keep descriptions and SQL one-sided.
    """
    if lo is None and hi is None:
        return None
    if stats is not None:
        access = stats.access_interval(ref)
        if lo is None:
            lo = access.lo
        if hi is None:
            hi = access.hi
    if lo is None:
        lo = -math.inf
    if hi is None:
        hi = math.inf
    if lo > hi:
        lo, hi = hi, lo
    return Interval(lo, hi)


def _fmt(value: float) -> str:
    if isinstance(value, int):
        return f"{value:,}"
    if float(value).is_integer() and abs(value) < 2 ** 53:
        return f"{int(value):,}"
    return f"{value:g}"
