"""DBSCAN (Ester et al., KDD 1996) over an arbitrary distance callable.

The paper clusters transformed queries with an off-the-shelf DBSCAN; this
is a from-scratch, dependency-free implementation with the textbook
semantics: core points have at least ``min_pts`` neighbours within
``eps`` (neighbourhoods include the point itself), clusters grow by
density-reachability, and non-reachable points are labelled noise (-1).

Distances may be supplied as a callable (evaluated lazily, memoized per
pair), as a precomputed square matrix, or as a condensed
:class:`repro.distance.DistanceMatrix` (the shared engine all clustering
algorithms accept; recognized by duck-typing on ``neighbors`` so this
module keeps no dependency on the distance layer).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..obs import trace
from .telemetry import record_run

NOISE = -1
_UNVISITED = -2

Distance = Callable[[object, object], float]


@dataclass
class DBSCANResult:
    """Cluster labels plus convenience accessors."""

    labels: list[int]

    @property
    def n_clusters(self) -> int:
        return len({label for label in self.labels if label >= 0})

    @property
    def noise_count(self) -> int:
        return sum(1 for label in self.labels if label == NOISE)

    def members(self, cluster: int) -> list[int]:
        return [i for i, label in enumerate(self.labels) if label == cluster]

    def clusters(self) -> dict[int, list[int]]:
        out: dict[int, list[int]] = {}
        for index, label in enumerate(self.labels):
            if label >= 0:
                out.setdefault(label, []).append(index)
        return out


@dataclass
class DBSCAN:
    """Density-based clustering with pluggable distances.

    ``eps`` — neighbourhood radius; ``min_pts`` — minimum neighbourhood
    size (including the point itself) for a core point.

    With ``weights`` (see :meth:`fit`) the core condition counts the
    summed multiplicity of the eps-neighbourhood — including the point's
    own weight — instead of the row count: clustering ``u`` interned
    unique areas with their duplicate counts as weights labels exactly
    like clustering the expanded ``n``-query population.
    """

    eps: float
    min_pts: int = 5
    _cache: dict[tuple[int, int], float] = field(default_factory=dict,
                                                 repr=False)

    def fit(self, items: Sequence, distance: Optional[Distance] = None,
            matrix=None,
            weights: Optional[Sequence[float]] = None) -> DBSCANResult:
        """Cluster ``items``; exactly one of ``distance``/``matrix``.

        ``matrix`` is a square array-like or a condensed
        ``DistanceMatrix`` over ``items``.  ``weights`` — optional
        per-item multiplicities (e.g. intern-pool duplicate counts, all
        positive); the core condition becomes
        ``Σ weights[neighbourhood] >= min_pts`` (self included)."""
        if (distance is None) == (matrix is None):
            raise ValueError("provide exactly one of distance or matrix")
        n = len(items)
        if weights is not None:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != (n,):
                raise ValueError(
                    f"weights shape {weights.shape} does not match "
                    f"{n} items")
            if n and weights.min() <= 0:
                raise ValueError("weights must be positive")
        if matrix is not None:
            if hasattr(matrix, "neighbors"):  # condensed DistanceMatrix
                if len(matrix) != n:
                    raise ValueError(
                        f"matrix over {len(matrix)} items does not "
                        f"match {n} items")
            else:
                matrix = np.asarray(matrix, dtype=float)
                if matrix.shape != (n, n):
                    raise ValueError(
                        f"matrix shape {matrix.shape} does not match "
                        f"{n} items")

        labels = [_UNVISITED] * n
        cluster_id = 0
        self._region_queries = 0
        with trace.span("dbscan.fit", n=n, eps=self.eps,
                        min_pts=self.min_pts) as span:
            for point in range(n):
                if labels[point] != _UNVISITED:
                    continue
                neighbors = self._region_query(point, items, distance,
                                               matrix)
                if _mass(neighbors, weights) < self.min_pts:
                    labels[point] = NOISE
                    continue
                self._expand(point, neighbors, cluster_id, labels, items,
                             distance, matrix, weights)
                cluster_id += 1
            result = DBSCANResult(labels)
            span.set(clusters=result.n_clusters,
                     noise=result.noise_count,
                     region_queries=self._region_queries)
        record_run("dbscan", self._region_queries, result)
        return result

    # -- internals ---------------------------------------------------------

    def _expand(self, point: int, neighbors: list[int], cluster_id: int,
                labels: list[int], items: Sequence,
                distance: Optional[Distance], matrix,
                weights: Optional[np.ndarray] = None) -> None:
        labels[point] = cluster_id
        queue = deque(neighbors)
        while queue:
            current = queue.popleft()
            if labels[current] == NOISE:
                labels[current] = cluster_id  # border point
            if labels[current] != _UNVISITED:
                continue
            labels[current] = cluster_id
            current_neighbors = self._region_query(
                current, items, distance, matrix)
            if _mass(current_neighbors, weights) >= self.min_pts:
                queue.extend(current_neighbors)

    def _region_query(self, point: int, items: Sequence,
                      distance: Optional[Distance], matrix) -> list[int]:
        self._region_queries += 1
        if matrix is not None:
            if hasattr(matrix, "neighbors"):
                return matrix.neighbors(point, self.eps)
            return list(np.flatnonzero(matrix[point] <= self.eps))
        neighbors: list[int] = []
        for other in range(len(items)):
            if self._distance(point, other, items, distance) <= self.eps:
                neighbors.append(other)
        return neighbors

    def _distance(self, i: int, j: int, items: Sequence,
                  distance: Distance) -> float:
        if i == j:
            return 0.0
        key = (i, j) if i < j else (j, i)
        value = self._cache.get(key)
        if value is None:
            value = distance(items[i], items[j])
            self._cache[key] = value
        return value


def _mass(neighbors: Sequence[int],
          weights: Optional[np.ndarray]) -> float:
    """Total multiplicity of a neighbourhood (row count if unweighted)."""
    if weights is None:
        return len(neighbors)
    if not len(neighbors):
        return 0.0
    return float(weights[np.asarray(neighbors, dtype=np.intp)].sum())


def pairwise_matrix(items: Sequence, distance: Distance) -> np.ndarray:
    """Full symmetric distance matrix (for small inputs / inspection)."""
    n = len(items)
    matrix = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            value = distance(items[i], items[j])
            matrix[i, j] = value
            matrix[j, i] = value
    return matrix
