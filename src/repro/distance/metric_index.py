"""Vantage-point tree neighbour index over the packed kernel.

Even with the vectorized kernel, every DBSCAN/OPTICS range query
against a materialized matrix scans a full row: ``O(m)`` per query,
``O(m²)`` per clustering pass, and the condensed block itself costs
``m·(m−1)/2`` stored floats.  :class:`VPTree` answers
``neighbors(i, eps)`` without ever materializing the block, visiting
only the subtrees a certified lower bound cannot exclude.

**The access-area distance is a semi-metric, not a metric.**  The PR 1
hypothesis battery proves symmetry, identity and the range/partition
bounds — but the triangle inequality genuinely fails: for unit windows
``T.v < 1``, ``T.v <= 2 AND T.v >= -3``, ``T.v > -2`` the direct
distance exceeds the two-hop sum by 0.33 (best-match averages over
clause sets are Chamfer-style and admit no relaxation constant either,
because a full-coverage predicate on another column collapses distances
to 0 between distinct areas).  Classic pivot/threshold pruning is
therefore unsound here.  Instead each subtree ``S`` carries bounds read
off the packed arrays themselves: the columnwise minimum
``ms[c] = min_{x∈S} best[c, x]`` of the kernel's best-match table, the
union ``cs`` of clause ids used in ``S``, and the clause-count range
``[nmin, nmax]``.  For a query area ``q`` with clause ids ``Q`` and
backward vector ``v`` (:meth:`~.kernel.PackedPartition.clause_best`),

    d(q, x) = (Σ_{c∈Q} best[c, x] + Σ_{c∈ids_x} v[c]) / (n_q + n_x)
            ≥ (Σ_{c∈Q} ms[c] + n_x · min_{c∈cs} v[c]) / (n_q + n_x)

for every ``x ∈ S``; the right side is monotone in ``n_x`` so its
minimum over ``[nmin, nmax]`` is attained at an endpoint.  When that
bound exceeds ``eps`` the whole subtree is excluded — soundly, with no
metric axioms involved.  The vantage-point split (first-index pivot,
median threshold) survives purely as a locality heuristic: grouping
mutually-near areas keeps the subtree bounds tight.

Distances are evaluated lazily through
:meth:`~.kernel.PackedPartition.pair_rows` — bitwise-equal to the
pure-Python oracle — in **batched frontier traversal**: each tree level
contributes all of its reached leaves to one vectorized one-vs-many
evaluation, so pruning saves arithmetic without giving up the kernel's
array form.  The bound is exact in real arithmetic; an explicit
``PRUNE_SLACK`` absorbs float64 summation-order differences.  The
VP-tree correctness battery checks no true neighbour is ever dropped
against brute-force rows at randomized radii, including the
triangle-violating populations above.  Areas with empty CNFs sit
outside the tree entirely: their distances are the exact fixups
(0 to each other, 1 to everything else) answered from clause counts.

:class:`VPTreeIndex` is the matrix-shaped facade: the same
``value``/``row``/``neighbors``/``submatrix``/``stats``/``__len__``
surface as :class:`~.matrix.DistanceMatrix` and
:class:`~.block_sparse.BlockSparseDistanceMatrix`, with one tree per
table-set partition, memoized ``d_tables`` bounds across partitions,
and the same exactness-bound contract on ``neighbors``.  Partitions the
kernel cannot pack bitwise fall back to a per-partition pure-Python
condensed block.  It additionally exposes ``range_query(i, eps)``
(neighbour, distance) pairs — the form OPTICS consumes when its
``max_eps`` lies below the exactness bound.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

try:  # pragma: no cover - numpy is present in the supported toolchain
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from ..obs import get_logger, metrics, trace
from .kernel import KernelUnsupported, PackedPartition
from .matrix import DistanceMatrix, MatrixStats
from .parallel import _evaluate_partition

logger = get_logger(__name__)

#: Partitions at or below this size skip tree construction entirely —
#: a leaf scan beats pivot bookkeeping.
DEFAULT_LEAF_SIZE = 16

#: Slack absorbed into the subtree lower-bound prune test.  The bound
#: is exact in real arithmetic but its float64 evaluation sums in a
#: different order than :meth:`~.kernel.PackedPartition.pair_rows`;
#: the slack keeps a boundary-distance neighbour from being pruned by
#: round-off while staying far below any meaningful distance
#: difference.
PRUNE_SLACK = 1e-9


@dataclass
class VPTreeStats:
    """Instrumentation of one :class:`VPTreeIndex` (build + queries)."""

    trees_built: int = 0
    fallback_partitions: int = 0
    build_evals: int = 0
    build_seconds: float = 0.0
    queries: int = 0
    query_evals: int = 0
    #: candidate points excluded by certified subtree lower bounds
    #: (never evaluated at query time)
    pruned: int = 0
    #: per-metric totals already pushed to a registry (see :meth:`record`)
    _recorded: dict = field(default_factory=dict, repr=False,
                            compare=False)

    @property
    def prune_rate(self) -> float:
        total = self.query_evals + self.pruned
        if not total:
            return 0.0
        return self.pruned / total

    def summary(self) -> str:
        return (
            f"{self.trees_built} trees "
            f"({self.fallback_partitions} partitions fell back), "
            f"{self.build_evals:,} build evals in "
            f"{self.build_seconds:.3f} s; {self.queries:,} queries, "
            f"{self.query_evals:,} evals, "
            f"prune rate {self.prune_rate:.1%}")

    def record(self, registry) -> None:
        """Fold the build-side counters into a registry
        (``repro_vptree_*``); query-side counters are folded in by the
        index as queries happen."""
        from ..obs.metrics import (observe_when_changed,
                                   record_counter_deltas)
        record_counter_deltas(registry, self._recorded, (
            ("repro_vptree_trees_total", self.trees_built),
            ("repro_vptree_fallback_partitions_total",
             self.fallback_partitions),
            ("repro_vptree_build_evals_total", self.build_evals)))
        observe_when_changed(registry, self._recorded,
                             "repro_vptree_build_seconds",
                             self.build_seconds)


class _Node:
    """Internal node: two children plus the certified subtree bounds
    (columnwise best-match minima, clause-id union, clause-count
    range) the query uses to exclude the whole subtree."""

    __slots__ = ("children", "size", "ms", "cs", "nmin", "nmax")

    def __init__(self, children, size, ms, cs, nmin, nmax):
        self.children = children
        self.size = size
        self.ms = ms
        self.cs = cs
        self.nmin = nmin
        self.nmax = nmax


class _Leaf:
    __slots__ = ("indices", "size")

    def __init__(self, indices):
        self.indices = indices
        self.size = len(indices)


class VPTree:
    """Vantage-point tree over one packed partition.

    Construction is deterministic: the pivot is always the first index
    of its node's list and the threshold the float64 median of the
    pivot distances, so identical inputs build identical trees.  The
    split is a locality heuristic only; exclusion at query time runs on
    the per-subtree lower bounds (see the module docstring), which hold
    for the semi-metric distance without any triangle inequality.
    Empty-CNF areas are kept out of the tree and answered from their
    exact fixup distances.
    """

    def __init__(self, pack: PackedPartition,
                 leaf_size: int = DEFAULT_LEAF_SIZE,
                 stats: Optional[VPTreeStats] = None) -> None:
        self.pack = pack
        self.leaf_size = max(int(leaf_size), 1)
        self.stats = stats if stats is not None else VPTreeStats()
        started = time.perf_counter()
        counts = pack._counts
        self._empty = np.flatnonzero(counts == 0).astype(np.intp)
        #: indices covered by the built tree — frozen until a rebuild;
        #: later inserts accumulate in ``_overflow`` and are scanned
        #: brute-force (they are few by the rebuild threshold).
        self._tree_indices = np.flatnonzero(counts != 0).astype(np.intp)
        self._overflow: list[int] = []
        self._built_clauses = pack.n_clauses
        self._suffix = np.zeros(0, dtype=float)
        self.root = self._build(self._tree_indices)[0] \
            if len(self._tree_indices) else None
        self.stats.trees_built += 1
        self.stats.build_seconds += time.perf_counter() - started

    @property
    def _nonempty(self) -> "np.ndarray":
        if self._overflow:
            return np.concatenate([
                self._tree_indices,
                np.asarray(self._overflow, dtype=np.intp)])
        return self._tree_indices

    def insert(self, li: int) -> None:
        """Adopt pack-local point ``li`` (already appended to the pack
        by :meth:`~.kernel.PackedPartition.extend`).

        Node membership never changes — the point lands in the overflow
        list (or the empty-CNF fixup set), so every stored subtree bound
        stays valid; queries scan the overflow brute-force.  Once the
        overflow outgrows ``max(leaf_size, size/4)`` the tree is rebuilt
        over the full population, amortizing the rebuild to O(1)
        evaluations per insert.
        """
        if int(self.pack._counts[li]) == 0:
            self._empty = np.append(self._empty, np.intp(li))
            return
        self._overflow.append(li)
        if len(self._overflow) > max(self.leaf_size,
                                     len(self._tree_indices) // 4):
            self._rebuild()

    def _rebuild(self) -> None:
        started = time.perf_counter()
        counts = self.pack._counts
        self._empty = np.flatnonzero(counts == 0).astype(np.intp)
        self._tree_indices = np.flatnonzero(counts != 0).astype(np.intp)
        self._overflow = []
        self._built_clauses = self.pack.n_clauses
        self._suffix = np.zeros(0, dtype=float)
        self.root = self._build(self._tree_indices)[0] \
            if len(self._tree_indices) else None
        self.stats.trees_built += 1
        self.stats.build_seconds += time.perf_counter() - started

    def _suffix_mins(self) -> "np.ndarray":
        """Lower bounds for clause ids minted after the tree was built:
        ``suffix[k] = min over tree-covered areas of best[built+k, ·]``.

        Node ``ms`` vectors are frozen at ``_built_clauses`` entries, so
        a query whose area uses newer clauses needs this tail.  The
        tree-covered set is a superset of every subtree, so the shared
        minima stay sound (if looser) for any node's bound.  Extended
        incrementally: best-match rows never change once computed.
        """
        c = self.pack.n_clauses
        have = self._built_clauses + len(self._suffix)
        if have < c:
            if len(self._tree_indices):
                tail = self.pack._best[
                    have:c, self._tree_indices].min(axis=1)
            else:
                tail = np.full(c - have, np.inf)
            self._suffix = np.concatenate([self._suffix, tail])
        return self._suffix

    def _build(self, indices):
        """Build the subtree over ``indices`` (all nonempty), returning
        ``(node, ms, cs)`` so parents can fold their children's bounds
        without leaves having to store them."""
        pack = self.pack
        if len(indices) > self.leaf_size:
            pivot = int(indices[0])
            spread = pack.pair_rows(pivot, indices)
            self.stats.build_evals += len(indices) - 1
            threshold = float(np.median(spread))
            near = spread <= threshold
            # The pivot sits in the near half (distance 0); when every
            # distance ties at the median (e.g. duplicates) no split is
            # possible and an oversized scanned leaf is still correct.
            if not near.all():
                inner, ms_a, cs_a = self._build(indices[near])
                outer, ms_b, cs_b = self._build(indices[~near])
                counts = pack._counts[indices]
                node = _Node([inner, outer], len(indices),
                             np.minimum(ms_a, ms_b),
                             np.union1d(cs_a, cs_b),
                             int(counts.min()), int(counts.max()))
                return node, node.ms, node.cs
        ms = pack._best[:, indices].min(axis=1)
        cs = np.unique(np.concatenate(
            [pack._ids[int(k)] for k in indices]))
        return _Leaf(indices), ms, cs

    def query(self, i: int, eps: float) -> list[tuple[int, float]]:
        """All ``(index, distance)`` with distance ≤ ``eps`` from local
        point ``i`` (including ``i`` itself), sorted by index."""
        stats = self.stats
        stats.queries += 1
        pack = self.pack
        n_q = int(pack._counts[i])
        out: list[tuple[int, float]] = []
        if n_q == 0:
            # Exact fixups: 0 to the other empty areas, 1 to the rest.
            if eps >= 0.0:
                out.extend((int(e), 0.0) for e in self._empty)
            if eps >= 1.0:
                out.extend((int(k), 1.0) for k in self._nonempty)
            out.sort()
            return out
        if eps >= 1.0:
            out.extend((int(e), 1.0) for e in self._empty)
        ids_q = pack._ids[i]
        v_ext = pack.clause_best(i)
        # Clause ids minted after the build index past the frozen node
        # ``ms`` vectors; their forward contribution comes from the
        # shared suffix minima instead.
        built_c = self._built_clauses
        extra = 0.0
        if len(ids_q) and int(ids_q.max()) >= built_c:
            suffix = self._suffix_mins()
            extra = float(suffix[ids_q[ids_q >= built_c]
                                 - built_c].sum())
            ids_q = ids_q[ids_q < built_c]
        frontier: list = [self.root] if self.root is not None else []
        while frontier:
            leaves = [e.indices for e in frontier
                      if isinstance(e, _Leaf)]
            nodes = [e for e in frontier if isinstance(e, _Node)]
            if leaves:
                # One vectorized one-vs-many evaluation per tree level.
                batch = np.concatenate(leaves)
                distances = pack.pair_rows(i, batch)
                stats.query_evals += len(batch)
                for k in np.flatnonzero(distances <= eps):
                    out.append((int(batch[k]), float(distances[k])))
            frontier = []
            for node in nodes:
                forward = float(node.ms[ids_q].sum()) + extra
                backward = float(v_ext[node.cs].min())
                bound = min(
                    (forward + node.nmin * backward)
                    / (n_q + node.nmin),
                    (forward + node.nmax * backward)
                    / (n_q + node.nmax))
                if bound > eps + PRUNE_SLACK:
                    stats.pruned += node.size
                else:
                    frontier.extend(node.children)
        if self._overflow:
            batch = np.asarray(self._overflow, dtype=np.intp)
            distances = pack.pair_rows(i, batch)
            stats.query_evals += len(batch)
            for k in np.flatnonzero(distances <= eps):
                out.append((int(batch[k]), float(distances[k])))
        out.sort()
        return out


class _TreePart:
    """One partition served by a VP-tree over its pack."""

    __slots__ = ("pack", "tree")
    kind = "tree"

    def __init__(self, pack: PackedPartition, tree: VPTree):
        self.pack = pack
        self.tree = tree

    def local_row(self, li: int) -> "np.ndarray":
        return self.pack.pair_rows(
            li, np.arange(self.pack.n_areas, dtype=np.intp))


class _MatrixPart:
    """Fallback partition served by a materialized condensed block."""

    __slots__ = ("block",)
    kind = "matrix"

    def __init__(self, block: DistanceMatrix):
        self.block = block

    def local_row(self, li: int) -> "np.ndarray":
        return self.block.row(li)


class VPTreeIndex:
    """Partitioned neighbour index with the distance-matrix surface.

    Intra-partition queries run through per-partition VP-trees (or
    fallback blocks); cross-partition lookups answer from the memoized
    P×P ``d_tables`` bound table, exactly like
    :class:`~.block_sparse.BlockSparseDistanceMatrix` — including the
    :attr:`exactness_bound` precondition on :meth:`neighbors`.
    """

    def __init__(self, n: int, keys: Sequence[frozenset],
                 members: Sequence, parts: Sequence,
                 bounds: "np.ndarray", stats: MatrixStats,
                 vpstats: VPTreeStats,
                 registry: Optional[metrics.MetricsRegistry] = None,
                 leaf_size: int = DEFAULT_LEAF_SIZE) -> None:
        self.n = n
        self._keys = list(keys)
        self._members = [np.asarray(m, dtype=np.intp) for m in members]
        self._parts = list(parts)
        self._bounds = np.asarray(bounds, dtype=float)
        self.stats = stats
        self.vpstats = vpstats
        self._registry = registry or metrics.get_registry()
        self._leaf_size = leaf_size
        self._key_to_pid = {key: pid
                            for pid, key in enumerate(self._keys)}
        #: retained by :meth:`compute` so :meth:`insert` can evaluate
        #: new intra-partition distances; ``None`` for constructor-
        #: adopted indexes, which therefore cannot grow.
        self._items: Optional[list] = None

        self._pids_buf = np.full(n, -1, dtype=np.intp)
        self._local_buf = np.zeros(n, dtype=np.intp)
        for pid, m in enumerate(self._members):
            self._pids_buf[m] = pid
            self._local_buf[m] = np.arange(len(m), dtype=np.intp)
        if n and int(self._pids_buf.min()) < 0:
            raise ValueError("partitions do not cover every item")
        p = len(self._keys)
        if p >= 2:
            off_diagonal = self._bounds[~np.eye(p, dtype=bool)]
            self.exactness_bound = float(off_diagonal.min())
        else:
            self.exactness_bound = math.inf
        # SingleLinkage/OPTICS probe value(i, j) i-major: one cached
        # local row turns the per-pair probes into a per-row amortized
        # vectorized evaluation.
        self._row_cache: Optional[tuple[int, np.ndarray]] = None

    @property
    def _pids(self) -> "np.ndarray":
        return self._pids_buf[:self.n]

    @property
    def _local(self) -> "np.ndarray":
        return self._local_buf[:self.n]

    # -- construction -------------------------------------------------------

    @classmethod
    def compute(cls, items: Sequence, metric, *,
                cutoff: Optional[float] = None,
                leaf_size: int = DEFAULT_LEAF_SIZE,
                registry: Optional[metrics.MetricsRegistry] = None,
                store=None, store_token: Optional[str] = None,
                ) -> "VPTreeIndex":
        """Build the index over ``items``.

        Same preconditions as the block-sparse matrix: a decomposed
        metric and, when ``cutoff`` is given, a radius strictly below
        the partition exactness bound.

        ``store``/``store_token`` spill the *fallback* partitions'
        materialized condensed blocks (the kernel-unsupported ones —
        the only distance values this index ever fully evaluates at
        build time) to the area store and reload them on later runs;
        tree partitions hold lazy packs, so there is nothing to spill
        for them.  Key semantics match
        :meth:`~repro.distance.block_sparse.BlockSparseDistanceMatrix.compute`.
        """
        if np is None:
            raise ValueError("the vptree backend requires numpy; "
                             "use the matrix backend instead")
        from .block_sparse import is_decomposed
        if not is_decomposed(metric, items):
            raise ValueError(
                "vptree index requires a decomposed metric "
                "(d_tables/d_conj) over items with table_set/cnf; "
                "use DistanceMatrix for arbitrary metrics")
        n = len(items)
        if registry is None:
            registry = metrics.get_registry()
        started = time.perf_counter()

        with trace.span("vptree_index", n_items=n) as span:
            groups: dict[frozenset, list[int]] = {}
            for index, item in enumerate(items):
                groups.setdefault(item.table_set, []).append(index)
            keys = sorted(groups, key=lambda k: (len(k), sorted(k)))
            members = [groups[key] for key in keys]
            p = len(keys)

            bounds = np.zeros((p, p), dtype=float)
            reps = [items[m[0]] for m in members]
            for a in range(p):
                for b in range(a + 1, p):
                    value = metric.d_tables(reps[a], reps[b])
                    bounds[a, b] = bounds[b, a] = value
            if p >= 2:
                exactness = float(bounds[~np.eye(p, dtype=bool)].min())
            else:
                exactness = math.inf
            if cutoff is not None and cutoff >= exactness:
                raise ValueError(
                    f"cutoff {cutoff:g} is not below the partition "
                    f"exactness bound {exactness:.4g}: cross-partition "
                    f"entries would no longer answer threshold queries "
                    f"exactly; use the dense DistanceMatrix")

            block_key_of = None
            if store is not None:
                from ..store.codec import block_key as content_key
                from ..store.codec import fingerprint_digest

                def block_key_of(key, member_list) -> str:
                    return content_key(
                        key, [fingerprint_digest(items[k])
                              for k in member_list], store_token)

            vpstats = VPTreeStats()
            parts: list = []
            stored = p * p
            fallback_pairs = 0
            for key, member_list in zip(keys, members):
                try:
                    pack = PackedPartition(
                        [items[k] for k in member_list], metric)
                    parts.append(_TreePart(
                        pack, VPTree(pack, leaf_size, vpstats)))
                    stored += pack.storage_floats
                except KernelUnsupported as exc:
                    logger.debug(
                        "vptree fallback for %d-area partition: %s",
                        len(member_list), exc)
                    m = len(member_list)
                    values = None
                    block_id = None
                    if block_key_of is not None:
                        block_id = block_key_of(key, member_list)
                        loaded = store.blocks.load(block_id)
                        if loaded is not None \
                                and len(loaded) == m * (m - 1) // 2:
                            values = np.asarray(loaded, dtype=float)
                    if values is None:
                        raw, _ = _evaluate_partition(metric, items,
                                                     member_list)
                        values = np.asarray(raw, dtype=float)
                        if block_id is not None:
                            store.blocks.save(block_id, values)
                    block = DistanceMatrix(m, values)
                    parts.append(_MatrixPart(block))
                    vpstats.fallback_partitions += 1
                    fallback_pairs += len(values)
                    stored += len(values)
            if store is not None:
                store.record(registry)

            stats = MatrixStats(
                n_items=n, pairs_total=n * (n - 1) // 2,
                pairs_computed=vpstats.build_evals + fallback_pairs,
                pairs_skipped=max(
                    0, n * (n - 1) // 2 - vpstats.build_evals
                    - fallback_pairs),
                table_pairs=p * (p - 1) // 2, cutoff=cutoff,
                n_blocks=p,
                largest_block=max((len(m) for m in members), default=0),
                stored_floats=stored,
                elapsed_seconds=time.perf_counter() - started)
            span.set(partitions=p, trees=vpstats.trees_built,
                     build_evals=vpstats.build_evals,
                     stored_floats=stored)

        stats.record(registry)
        vpstats.record(registry)
        logger.debug("vptree index: %s", vpstats.summary())
        index = cls(n, keys, members, parts, bounds, stats, vpstats,
                    registry, leaf_size)
        index._items = list(items)
        return index

    # -- incremental growth -------------------------------------------------

    def insert(self, item, metric, *,
               max_radius: Optional[float] = None) -> int:
        """Append one item, extending only its partition's tree.

        The common path is a pack :meth:`~.kernel.PackedPartition.extend`
        plus a leaf-append :meth:`VPTree.insert` — no distance is
        evaluated at all until a query reaches the overflow list.  A
        previously unseen table set opens a singleton partition (one
        ``d_tables`` evaluation per existing partition, possibly
        lowering :attr:`exactness_bound`); a partition the kernel can no
        longer replay degrades to a materialized growable block.  Pass
        ``max_radius`` to reject, before any mutation, an insert whose
        new partition would drop the exactness bound to ``max_radius``
        or below (see ``BlockSparseDistanceMatrix.insert_row``).
        Returns the item's new global index.  Only indexes built by
        :meth:`compute` retain the items this needs.
        """
        if self._items is None:
            raise ValueError(
                "insert requires an index built by compute(); "
                "constructor-adopted indexes do not retain their items")
        from .block_sparse import _GrowableBlock
        index = self.n
        key = frozenset(item.table_set)
        pid = self._key_to_pid.get(key)
        if pid is None:
            if max_radius is not None:
                bound = self.exactness_bound
                for members in self._members:
                    bound = min(bound, metric.d_tables(
                        self._items[int(members[0])], item))
                if max_radius >= bound:
                    raise ValueError(
                        f"inserting an item with unseen table set "
                        f"{sorted(key)} would lower the partition "
                        f"exactness bound to {bound:.4g}, at or below "
                        f"the reserved query radius {max_radius:.4g}")
            pid = len(self._keys)
            p = pid
            bounds = np.zeros((p + 1, p + 1), dtype=float)
            bounds[:p, :p] = self._bounds
            for q, members in enumerate(self._members):
                value = metric.d_tables(
                    self._items[int(members[0])], item)
                bounds[q, p] = bounds[p, q] = value
            self._bounds = bounds
            self._keys.append(key)
            self._key_to_pid[key] = pid
            self._members.append(np.array([index], dtype=np.intp))
            try:
                pack = PackedPartition([item], metric)
                self._parts.append(_TreePart(
                    pack, VPTree(pack, self._leaf_size, self.vpstats)))
            except KernelUnsupported as exc:
                logger.debug("vptree insert fallback for new "
                             "partition: %s", exc)
                self._parts.append(_MatrixPart(_GrowableBlock(
                    DistanceMatrix(1, np.zeros(0, dtype=float)))))
                self.vpstats.fallback_partitions += 1
            if p >= 1:
                off = bounds[~np.eye(p + 1, dtype=bool)]
                self.exactness_bound = float(off.min())
            self.stats.n_blocks = p + 1
        else:
            members = self._members[pid]
            part = self._parts[pid]
            if part.kind == "tree":
                try:
                    part.pack.extend([item])
                    part.tree.insert(part.pack.n_areas - 1)
                except KernelUnsupported as exc:
                    # Degrade the partition to a materialized block the
                    # per-pair oracle can keep growing.
                    logger.debug("vptree insert degrading partition %d "
                                 "to a matrix block: %s", pid, exc)
                    block = _GrowableBlock(DistanceMatrix(
                        len(members), part.pack.condensed_block()))
                    block.append(np.array(
                        [metric(self._items[int(g)], item)
                         for g in members], dtype=float))
                    part = _MatrixPart(block)
                    self._parts[pid] = part
                    self.vpstats.fallback_partitions += 1
            else:
                block = part.block
                if not isinstance(block, _GrowableBlock):
                    block = _GrowableBlock(block)
                    part.block = block
                block.append(np.array(
                    [metric(self._items[int(g)], item)
                     for g in members], dtype=float))
            self._members[pid] = np.append(members, index)
        self._items.append(item)
        if index >= len(self._pids_buf):
            cap = max(2 * len(self._pids_buf), 4)
            for name in ("_pids_buf", "_local_buf"):
                buf = np.zeros(cap, dtype=np.intp)
                buf[:index] = getattr(self, name)[:index]
                setattr(self, name, buf)
        self._pids_buf[index] = pid
        self._local_buf[index] = len(self._members[pid]) - 1
        self.n = index + 1
        self._row_cache = None
        st = self.stats
        st.n_items = self.n
        st.pairs_total = self.n * (self.n - 1) // 2
        st.largest_block = max(st.largest_block,
                               len(self._members[pid]))
        return index

    # -- lookups ------------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    @property
    def n_partitions(self) -> int:
        return len(self._keys)

    def partitions(self) -> list[tuple[frozenset, "np.ndarray"]]:
        """``(table_set, global indices)`` per partition."""
        return [(key, members.copy())
                for key, members in zip(self._keys, self._members)]

    def _local_row(self, i: int) -> "np.ndarray":
        cached = self._row_cache
        if cached is not None and cached[0] == i:
            return cached[1]
        pid = int(self._pids[i])
        row = self._parts[pid].local_row(int(self._local[i]))
        self._row_cache = (i, row)
        return row

    def value(self, i: int, j: int) -> float:
        """Exact distance within a partition; the ``d_tables`` lower
        bound across partitions (exact for threshold queries below
        :attr:`exactness_bound`)."""
        if i == j:
            return 0.0
        pi, pj = self._pids[i], self._pids[j]
        if pi != pj:
            return float(self._bounds[pi, pj])
        return float(self._local_row(i)[int(self._local[j])])

    def __getitem__(self, pair: tuple[int, int]) -> float:
        return self.value(*pair)

    def row(self, i: int) -> "np.ndarray":
        """Distances from item ``i`` to every item (length ``n``):
        exact inside ``i``'s partition, lower bounds elsewhere."""
        pid = int(self._pids[i])
        out = self._bounds[pid][self._pids]
        out[self._members[pid]] = self._local_row(i)
        return out

    def _check_radius(self, eps: float) -> None:
        if eps >= self.exactness_bound:
            raise ValueError(
                f"radius {eps:g} is not below the partition exactness "
                f"bound {self.exactness_bound:.4g}; cross-partition "
                f"entries are d_tables lower bounds only — use the "
                f"dense DistanceMatrix for radii this large")

    def range_query(self, i: int, eps: float) -> list[tuple[int, float]]:
        """``(index, distance)`` pairs within radius ``eps`` of item
        ``i`` (including ``i``), sorted by index.  Same exactness
        precondition as :meth:`neighbors`."""
        self._check_radius(eps)
        pid = int(self._pids[i])
        part = self._parts[pid]
        members = self._members[pid]
        li = int(self._local[i])
        if part.kind == "tree":
            hits = part.tree.query(li, eps)
            self._count_query(part)
        else:
            row = part.local_row(li)
            hits = [(int(k), float(row[k]))
                    for k in np.flatnonzero(row <= eps)]
        return [(int(members[k]), d) for k, d in hits]

    def neighbors(self, i: int, eps: float) -> list[int]:
        """Indices within radius ``eps`` of item ``i`` (including
        ``i``), matching the matrix backends' semantics: only valid
        below the partition exactness bound."""
        return [j for j, _ in self.range_query(i, eps)]

    def _count_query(self, part) -> None:
        self._registry.counter("repro_vptree_queries_total").inc()

    def submatrix(self, indices: Sequence[int]):
        """The index restricted to ``indices`` (in the given order).

        Single-partition index sets — the form partitioned DBSCAN
        produces — stay lazy: queries keep running through the
        partition's tree.  Mixed sets materialize a condensed
        :class:`DistanceMatrix` with bound-valued cross entries.
        """
        pids = self._pids[np.asarray(indices, dtype=np.intp)]
        if len(indices) and (pids == pids[0]).all():
            part = self._parts[int(pids[0])]
            locals_ = [int(self._local[i]) for i in indices]
            if part.kind == "matrix":
                return part.block.submatrix(locals_)
            return _PartitionView(part, locals_, self._registry)
        m = len(indices)
        values = np.empty(m * (m - 1) // 2, dtype=float)
        pos = 0
        for a in range(m):
            for b in range(a + 1, m):
                values[pos] = self.value(indices[a], indices[b])
                pos += 1
        return DistanceMatrix(m, values)


class _PartitionView:
    """One partition's subset behind the matrix query surface, with
    queries still served by the partition tree (fully exact: within a
    partition there are no bound-valued entries)."""

    def __init__(self, part: _TreePart, locals_: Sequence[int],
                 registry) -> None:
        self._part = part
        self._locals = list(locals_)
        self._registry = registry
        size = part.pack.n_areas
        full = len(locals_) == size \
            and self._locals == list(range(size))
        # position of each partition-local index inside this view, or
        # None when the view covers the whole partition in order.
        self._positions: Optional[dict[int, int]] = None if full else {
            local: position
            for position, local in enumerate(self._locals)}

    def __len__(self) -> int:
        return len(self._locals)

    def value(self, i: int, j: int) -> float:
        if i == j:
            return 0.0
        row = self._part.pack.pair_rows(
            self._locals[i], [self._locals[j]])
        return float(row[0])

    def row(self, i: int) -> "np.ndarray":
        return self._part.pack.pair_rows(self._locals[i], self._locals)

    def neighbors(self, i: int, eps: float) -> list[int]:
        hits = self._part.tree.query(self._locals[i], eps)
        self._registry.counter("repro_vptree_queries_total").inc()
        if self._positions is None:
            return [local for local, _ in hits]
        positions = self._positions
        return [positions[local] for local, _ in hits
                if local in positions]
