"""The access-area distance function of Section 5.

Besides the pairwise metric, the package hosts the shared
:class:`DistanceMatrix` engine every clustering algorithm consumes: the
condensed pairwise matrix with multiprocessing fan-out, relation-set
memoization, bound-skipping, and :class:`MatrixStats` instrumentation.
"""

from .alternatives import FootprintDistance, WeightedQueryDistance
from .block_sparse import (BlockSparseDistanceMatrix, MATRIX_MODES,
                           compute_matrix)
from .matrix import DistanceMatrix, MatrixStats, condensed_index
from .parallel import resolve_n_jobs
from .predicate_distance import (CacheInfo, DEFAULT_CACHE_SIZE,
                                 DEFAULT_RESOLUTION, PredicateDistance)
from .query_distance import (QueryDistance, jaccard_distance,
                             partition_exactness_bound)

__all__ = [
    "CacheInfo", "DEFAULT_CACHE_SIZE",
    "DEFAULT_RESOLUTION", "PredicateDistance",
    "QueryDistance", "jaccard_distance", "partition_exactness_bound",
    "FootprintDistance", "WeightedQueryDistance",
    "DistanceMatrix", "MatrixStats", "condensed_index",
    "BlockSparseDistanceMatrix", "MATRIX_MODES", "compute_matrix",
    "resolve_n_jobs",
]
