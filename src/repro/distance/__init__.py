"""The access-area distance function of Section 5."""

from .alternatives import FootprintDistance, WeightedQueryDistance
from .predicate_distance import (DEFAULT_RESOLUTION, PredicateDistance)
from .query_distance import QueryDistance, jaccard_distance

__all__ = [
    "DEFAULT_RESOLUTION", "PredicateDistance",
    "QueryDistance", "jaccard_distance",
    "FootprintDistance", "WeightedQueryDistance",
]
