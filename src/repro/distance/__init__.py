"""The access-area distance function of Section 5.

Besides the pairwise metric, the package hosts the shared
:class:`DistanceMatrix` engine every clustering algorithm consumes: the
condensed pairwise matrix with multiprocessing fan-out, relation-set
memoization, bound-skipping, and :class:`MatrixStats` instrumentation —
plus the vectorized struct-of-arrays kernel (:mod:`.kernel`) and the
vantage-point-tree neighbour index (:mod:`.metric_index`), both
differentially validated against the pure-Python oracle.
"""

from .alternatives import FootprintDistance, WeightedQueryDistance
from .block_sparse import (BlockSparseDistanceMatrix, MATRIX_MODES,
                           NEIGHBOR_BACKENDS, compute_matrix)
from .kernel import (KernelStats, KernelUnsupported, PackedPartition,
                     compute_kernel_blocks, kernel_available)
from .matrix import DistanceMatrix, MatrixStats, condensed_index
from .metric_index import VPTree, VPTreeIndex, VPTreeStats
from .parallel import resolve_n_jobs
from .predicate_distance import (CacheInfo, DEFAULT_CACHE_SIZE,
                                 DEFAULT_RESOLUTION, PredicateDistance)
from .query_distance import (QueryDistance, jaccard_distance,
                             partition_exactness_bound)

__all__ = [
    "CacheInfo", "DEFAULT_CACHE_SIZE",
    "DEFAULT_RESOLUTION", "PredicateDistance",
    "QueryDistance", "jaccard_distance", "partition_exactness_bound",
    "FootprintDistance", "WeightedQueryDistance",
    "DistanceMatrix", "MatrixStats", "condensed_index",
    "BlockSparseDistanceMatrix", "MATRIX_MODES", "NEIGHBOR_BACKENDS",
    "compute_matrix",
    "KernelStats", "KernelUnsupported", "PackedPartition",
    "compute_kernel_blocks", "kernel_available",
    "VPTree", "VPTreeIndex", "VPTreeStats",
    "resolve_n_jobs",
]
