"""Alternative distance functions (the Section 7 future-work axis).

The paper: "we intend to test our method with different distance
functions to unveil other interesting access patterns".  Two alternatives
ship with the reproduction:

* :class:`FootprintDistance` — compares queries at the *area* level:
  per-column footprint hulls (clamped to ``access(a)``) instead of
  predicate-by-predicate matching.  Robust to how a constraint is split
  into atoms, blind to join structure.
* :class:`WeightedQueryDistance` — the paper's ``d = d_tables + d_conj``
  generalized to ``w_t·d_tables + w_c·d_conj`` so the table/constraint
  balance becomes a tunable (the paper implicitly fixes 1:1).

Both are drop-in callables for the clustering layer, and the ablation
benchmark compares family recovery across all three.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.intervals import Interval, IntervalSet
from ..algebra.predicates import ColumnRef
from ..core.area import AccessArea
from ..schema.statistics import StatisticsCatalog
from .predicate_distance import DEFAULT_RESOLUTION
from .query_distance import QueryDistance, jaccard_distance


@dataclass
class FootprintDistance:
    """Area-level distance via per-column footprint Jaccard.

    For every numeric column constrained by either query, compare the
    footprints (resolution-widened, clamped to ``access(a)``) by Jaccard
    dissimilarity; a column constrained by only one side contributes the
    maximal 1.  The constraint part is the mean over the involved
    columns; the total adds the relation-set Jaccard like the paper's
    ``d``.
    """

    stats: StatisticsCatalog
    resolution: float = DEFAULT_RESOLUTION
    _footprints: dict[int, dict[ColumnRef, IntervalSet]] = \
        field(default_factory=dict, repr=False)

    def __call__(self, q1: AccessArea, q2: AccessArea) -> float:
        return self.distance(q1, q2)

    def distance(self, q1: AccessArea, q2: AccessArea) -> float:
        d_tables = jaccard_distance(q1.table_set, q2.table_set)
        fp1 = self._area_footprints(q1)
        fp2 = self._area_footprints(q2)
        columns = set(fp1) | set(fp2)
        if not columns:
            return d_tables
        total = 0.0
        for ref in columns:
            a, b = fp1.get(ref), fp2.get(ref)
            if a is None or b is None:
                total += 1.0
                continue
            inter = a.intersect(b).total_width
            union = a.total_width + b.total_width - inter
            if union <= 0:
                total += 0.0 if a == b else 1.0
            else:
                total += 1.0 - inter / union
        return d_tables + total / len(columns)

    def _area_footprints(
            self, area: AccessArea) -> dict[ColumnRef, IntervalSet]:
        cached = self._footprints.get(id(area))
        if cached is not None:
            return cached
        out: dict[ColumnRef, IntervalSet] = {}
        for ref, footprint in area.column_footprints().items():
            access = self.stats.access_interval(ref)
            if not _finite(access):
                continue
            clamped = footprint.intersect(access)
            margin = self.resolution * access.width / 2.0
            widened = IntervalSet(
                Interval(iv.lo - margin, iv.hi + margin) for iv in clamped)
            if not widened.is_empty:
                out[ref] = widened
        self._footprints[id(area)] = out
        return out


def _finite(interval: Interval) -> bool:
    import math

    return math.isfinite(interval.width) and interval.width > 0


@dataclass
class WeightedQueryDistance:
    """``w_tables · d_tables + w_conj · d_conj`` over the paper's parts."""

    stats: StatisticsCatalog
    w_tables: float = 1.0
    w_conj: float = 1.0
    resolution: float = DEFAULT_RESOLUTION

    def __post_init__(self) -> None:
        self._base = QueryDistance(self.stats, self.resolution)

    def __call__(self, q1: AccessArea, q2: AccessArea) -> float:
        return self.distance(q1, q2)

    def distance(self, q1: AccessArea, q2: AccessArea) -> float:
        return (self.w_tables * self._base.d_tables(q1, q2)
                + self.w_conj * self._base.d_conj(q1.cnf, q2.cnf))
