"""Chunked multiprocessing fan-out for pairwise metric evaluation.

:mod:`repro.distance.matrix` plans which index pairs of a condensed
distance matrix need a full metric evaluation; this module executes that
plan, either serially or over a worker pool.  The metric and the item
sequence are shipped to each worker exactly once (via the pool
initializer).  Two granularities of work unit exist: the dense matrix
ships flat chunks of ``(k, i, j)`` triples (:func:`compute_pairs`,
``k`` being the condensed destination index), while the block-sparse
matrix ships whole *partitions* (:func:`compute_blocks`) — better
locality, one predicate-cache warmup per table-set group.

Workers recompute distances with their own copy of the metric; because
the metric is a pure function of its arguments (the predicate memo only
caches, never alters, values) the parallel result is bitwise identical
to the serial one.  Any failure to spin up or use the pool — metrics
that cannot be pickled, fork-less restricted environments, interpreter
shutdown races — degrades to the serial path instead of erroring: the
pool is an optimization, never a requirement.

Each evaluated block additionally reports a :class:`BlockInfo` —
pairs computed, wall-clock seconds, and the worker-local predicate
cache delta.  These travel back over the same IPC channel as the
values, so the parent can merge per-worker metrics into its own
registry (:meth:`repro.obs.metrics.MetricsRegistry.merge`-style
aggregation at the call site in :mod:`.matrix`); the serial path
reports the identical structure for one block.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from ..obs import trace as obs_trace
from ..obs.metrics import MetricsRegistry, use_registry
from ..obs.trace import Span, TraceContext

Pair = tuple[int, int, int]  # (condensed index, i, j)

#: Tasks handed to one worker at a time.  Large enough to amortize IPC,
#: small enough that ``n_jobs`` workers stay busy on uneven blocks.
DEFAULT_CHUNK_PAIRS = 2048

_WORKER_STATE: dict = {}


@dataclass(frozen=True)
class BlockInfo:
    """Telemetry for one evaluated block of pairs.

    Beyond the scalar counters, two optional payloads ride back over
    the same IPC channel: ``span`` — the completed span tree of this
    block (a :meth:`repro.obs.trace.Span.to_dict`), minted under the
    propagated :class:`~repro.obs.trace.TraceContext` so the parent can
    stitch one whole-run trace out of every worker's pieces — and
    ``metrics`` — the worker-local registry snapshot of everything the
    metric recorded while evaluating this block (lost before: a forked
    worker's registry writes landed in its private copy-on-write copy
    of the parent registry and died with the worker)."""

    pairs: int
    seconds: float
    pid: int
    cache_hits: int = 0
    cache_misses: int = 0
    span: Optional[dict] = None
    metrics: Optional[dict] = None


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` knob: ``None``/``0``/negative → all cores."""
    if not n_jobs or n_jobs < 0:
        return max(os.cpu_count() or 1, 1)
    return n_jobs


def _init_worker(metric, items, trace_ctx: Optional[TraceContext] = None,
                 ship_metrics: bool = False) -> None:
    _WORKER_STATE["metric"] = metric
    _WORKER_STATE["items"] = items
    _WORKER_STATE["trace_ctx"] = trace_ctx
    _WORKER_STATE["ship_metrics"] = ship_metrics


def _block_span(name: str, ctx: Optional[TraceContext],
                started: float, elapsed: float,
                info_attrs: dict) -> Optional[dict]:
    """A completed span dict for one evaluated block, minted under the
    propagated trace context (None when tracing is off)."""
    if ctx is None:
        return None
    span = Span(name, {"pid": os.getpid(),
                       "parent_span_id": ctx.parent_span_id,
                       **info_attrs},
                trace_id=ctx.trace_id)
    span.start = started
    span.end = started + elapsed
    return span.to_dict()


def _evaluate_block(metric, items, block: Sequence[Pair],
                    trace_ctx: Optional[TraceContext] = None,
                    ) -> tuple[list[tuple[int, float]], BlockInfo]:
    started = time.perf_counter()
    pred_info = getattr(metric, "pred_cache_info", None)
    before = pred_info() if pred_info is not None else None
    entries = [(k, metric(items[i], items[j])) for k, i, j in block]
    elapsed = time.perf_counter() - started
    hits = misses = 0
    if before is not None:
        after = pred_info()
        hits = after.hits - before.hits
        misses = after.misses - before.misses
    span = _block_span("distance_chunk", trace_ctx, started, elapsed,
                       {"pairs": len(block), "cache_hits": hits,
                        "cache_misses": misses})
    return entries, BlockInfo(pairs=len(block), seconds=elapsed,
                              pid=os.getpid(), cache_hits=hits,
                              cache_misses=misses, span=span)


def _with_worker_registry(evaluate):
    """Run ``evaluate`` under a fresh worker-local registry when the
    parent asked for metric shipping; returns ``(result, snapshot)``."""
    if not _WORKER_STATE.get("ship_metrics"):
        return evaluate(), None
    registry = MetricsRegistry()
    with use_registry(registry):
        result = evaluate()
    snapshot = registry.snapshot(include_reservoir=True)
    if not (snapshot["counters"] or snapshot["gauges"]
            or snapshot["histograms"]):
        snapshot = None
    return result, snapshot


def _compute_block(block: list[Pair]
                   ) -> tuple[list[tuple[int, float]], BlockInfo]:
    (entries, info), snapshot = _with_worker_registry(
        lambda: _evaluate_block(_WORKER_STATE["metric"],
                                _WORKER_STATE["items"], block,
                                _WORKER_STATE.get("trace_ctx")))
    if snapshot is not None:
        info = replace(info, metrics=snapshot)
    return entries, info


def _evaluate_partition(metric, items, members: Sequence[int],
                        trace_ctx: Optional[TraceContext] = None,
                        ) -> tuple[list[float], BlockInfo]:
    """The full condensed block of one partition, row-major upper triangle."""
    started = time.perf_counter()
    pred_info = getattr(metric, "pred_cache_info", None)
    before = pred_info() if pred_info is not None else None
    subset = [items[index] for index in members]
    m = len(subset)
    values = [metric(subset[a], subset[b])
              for a in range(m) for b in range(a + 1, m)]
    elapsed = time.perf_counter() - started
    hits = misses = 0
    if before is not None:
        after = pred_info()
        hits = after.hits - before.hits
        misses = after.misses - before.misses
    span = _block_span("distance_partition", trace_ctx, started, elapsed,
                       {"members": m, "pairs": len(values),
                        "cache_hits": hits, "cache_misses": misses})
    return values, BlockInfo(pairs=len(values), seconds=elapsed,
                             pid=os.getpid(), cache_hits=hits,
                             cache_misses=misses, span=span)


def _compute_partition(members: Sequence[int]
                       ) -> tuple[list[float], BlockInfo]:
    (values, info), snapshot = _with_worker_registry(
        lambda: _evaluate_partition(_WORKER_STATE["metric"],
                                    _WORKER_STATE["items"], members,
                                    _WORKER_STATE.get("trace_ctx")))
    if snapshot is not None:
        info = replace(info, metrics=snapshot)
    return values, info


def _serial_blocks(items: Sequence, metric: Callable,
                   partitions: Sequence[Sequence[int]],
                   ) -> tuple[list[list[float]], list[BlockInfo]]:
    # The serial path mints the same per-partition span dicts as the
    # workers do, so serial and parallel runs stitch into trees of
    # identical shape.
    ctx = obs_trace.current_context()
    blocks: list[list[float]] = []
    infos: list[BlockInfo] = []
    for members in partitions:
        values, info = _evaluate_partition(metric, items, members, ctx)
        blocks.append(values)
        infos.append(info)
    return blocks, infos


def compute_blocks(items: Sequence,
                   metric: Callable[[object, object], float],
                   partitions: Sequence[Sequence[int]], n_jobs: int = 1,
                   ) -> tuple[list[list[float]], list[BlockInfo]]:
    """Evaluate the full condensed block of each partition.

    The block-sparse matrix's work unit is one *partition*, not a flat
    chunk of pairs: every pair inside a partition shares the same table
    set, so one worker evaluating a whole block touches one family of
    predicates — the predicate-pair LRU warms once per partition instead
    of once per arbitrary chunk, and no pair of workers duplicates a
    cache.  Returns ``(blocks, infos)`` aligned with ``partitions``:
    each block is the row-major condensed upper triangle of its
    partition (``m·(m−1)/2`` floats) plus one :class:`BlockInfo`.

    ``n_jobs == 1`` (or any pool failure — same degradation contract as
    :func:`compute_pairs`) runs the plain serial loop, which is bitwise
    identical to the parallel result because the metric is a pure
    function of its arguments.
    """
    n_jobs = resolve_n_jobs(n_jobs)
    if n_jobs == 1 or len(partitions) <= 1:
        return _serial_blocks(items, metric, partitions)
    workers = min(n_jobs, len(partitions))
    try:
        context = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None)
        with context.Pool(workers, initializer=_init_worker,
                          initargs=(metric, items,
                                    obs_trace.current_context(),
                                    True)) as pool:
            # chunksize=1: partitions are heavily skewed (one hot table
            # set dominates a real log); let the pool load-balance them.
            results = pool.map(_compute_partition,
                               [list(p) for p in partitions],
                               chunksize=1)
    except (OSError, ValueError, RuntimeError, AttributeError,
            pickle.PicklingError):
        return _serial_blocks(items, metric, partitions)
    blocks = [values for values, _ in results]
    infos = [info for _, info in results]
    return blocks, infos


def _serial(items: Sequence, metric: Callable, pairs: Sequence[Pair],
            chunk_pairs: int,
            ) -> tuple[list[tuple[int, float]], list[BlockInfo]]:
    ctx = obs_trace.current_context()
    entries: list[tuple[int, float]] = []
    infos: list[BlockInfo] = []
    for block in _blocks(pairs, chunk_pairs):
        block_entries, info = _evaluate_block(metric, items, block, ctx)
        entries.extend(block_entries)
        infos.append(info)
    return entries, infos


def _blocks(pairs: Sequence[Pair], size: int) -> list[list[Pair]]:
    return [list(pairs[start:start + size])
            for start in range(0, len(pairs), size)]


def compute_pairs(items: Sequence, metric: Callable[[object, object], float],
                  pairs: Sequence[Pair], n_jobs: int = 1,
                  chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
                  ) -> tuple[list[tuple[int, float]], list[BlockInfo]]:
    """Evaluate ``metric`` on every ``(k, i, j)`` pair, fanning out when asked.

    Returns ``(entries, infos)``: ``(k, value)`` tuples in unspecified
    order plus one :class:`BlockInfo` per evaluated chunk.
    ``n_jobs == 1`` (or a pool failure) runs the plain serial loop.
    """
    n_jobs = resolve_n_jobs(n_jobs)
    if n_jobs == 1 or len(pairs) == 0:
        return _serial(items, metric, pairs, chunk_pairs)
    blocks = _blocks(pairs, chunk_pairs)
    workers = min(n_jobs, len(blocks))
    try:
        context = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None)
        with context.Pool(workers, initializer=_init_worker,
                          initargs=(metric, items,
                                    obs_trace.current_context(),
                                    True)) as pool:
            results = pool.map(_compute_block, blocks)
    except (OSError, ValueError, RuntimeError, AttributeError,
            pickle.PicklingError):
        return _serial(items, metric, pairs, chunk_pairs)
    entries = [entry for block_entries, _ in results
               for entry in block_entries]
    infos = [info for _, info in results]
    return entries, infos
