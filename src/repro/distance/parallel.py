"""Chunked multiprocessing fan-out for pairwise metric evaluation.

:mod:`repro.distance.matrix` plans which index pairs of a condensed
distance matrix need a full metric evaluation; this module executes that
plan, either serially or over a worker pool.  The metric and the item
sequence are shipped to each worker exactly once (via the pool
initializer), and the work itself travels as compact ``(k, i, j)``
triples — ``k`` being the condensed destination index — grouped into
blocks so scheduling overhead stays negligible.

Workers recompute distances with their own copy of the metric; because
the metric is a pure function of its arguments (the predicate memo only
caches, never alters, values) the parallel result is bitwise identical
to the serial one.  Any failure to spin up or use the pool — metrics
that cannot be pickled, fork-less restricted environments, interpreter
shutdown races — degrades to the serial path instead of erroring: the
pool is an optimization, never a requirement.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
from typing import Callable, Sequence

Pair = tuple[int, int, int]  # (condensed index, i, j)

#: Tasks handed to one worker at a time.  Large enough to amortize IPC,
#: small enough that ``n_jobs`` workers stay busy on uneven blocks.
DEFAULT_CHUNK_PAIRS = 2048

_WORKER_STATE: dict = {}


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` knob: ``None``/``0``/negative → all cores."""
    if not n_jobs or n_jobs < 0:
        return max(os.cpu_count() or 1, 1)
    return n_jobs


def _init_worker(metric, items) -> None:
    _WORKER_STATE["metric"] = metric
    _WORKER_STATE["items"] = items


def _compute_block(block: list[Pair]) -> list[tuple[int, float]]:
    metric = _WORKER_STATE["metric"]
    items = _WORKER_STATE["items"]
    return [(k, metric(items[i], items[j])) for k, i, j in block]


def _serial(items: Sequence, metric: Callable,
            pairs: Sequence[Pair]) -> list[tuple[int, float]]:
    return [(k, metric(items[i], items[j])) for k, i, j in pairs]


def _blocks(pairs: Sequence[Pair], size: int) -> list[list[Pair]]:
    return [list(pairs[start:start + size])
            for start in range(0, len(pairs), size)]


def compute_pairs(items: Sequence, metric: Callable[[object, object], float],
                  pairs: Sequence[Pair], n_jobs: int = 1,
                  chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
                  ) -> list[tuple[int, float]]:
    """Evaluate ``metric`` on every ``(k, i, j)`` pair, fanning out when asked.

    Returns ``(k, value)`` tuples in unspecified order.  ``n_jobs == 1``
    (or a pool failure) runs the plain serial loop.
    """
    n_jobs = resolve_n_jobs(n_jobs)
    if n_jobs == 1 or len(pairs) == 0:
        return _serial(items, metric, pairs)
    blocks = _blocks(pairs, chunk_pairs)
    workers = min(n_jobs, len(blocks))
    try:
        context = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None)
        with context.Pool(workers, initializer=_init_worker,
                          initargs=(metric, items)) as pool:
            results = pool.map(_compute_block, blocks)
    except (OSError, ValueError, RuntimeError, AttributeError,
            pickle.PicklingError):
        return _serial(items, metric, pairs)
    return [entry for block in results for entry in block]
