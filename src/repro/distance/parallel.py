"""Chunked multiprocessing fan-out for pairwise metric evaluation.

:mod:`repro.distance.matrix` plans which index pairs of a condensed
distance matrix need a full metric evaluation; this module executes that
plan, either serially or over a worker pool.  The metric and the item
sequence are shipped to each worker exactly once (via the pool
initializer), and the work itself travels as compact ``(k, i, j)``
triples — ``k`` being the condensed destination index — grouped into
blocks so scheduling overhead stays negligible.

Workers recompute distances with their own copy of the metric; because
the metric is a pure function of its arguments (the predicate memo only
caches, never alters, values) the parallel result is bitwise identical
to the serial one.  Any failure to spin up or use the pool — metrics
that cannot be pickled, fork-less restricted environments, interpreter
shutdown races — degrades to the serial path instead of erroring: the
pool is an optimization, never a requirement.

Each evaluated block additionally reports a :class:`BlockInfo` —
pairs computed, wall-clock seconds, and the worker-local predicate
cache delta.  These travel back over the same IPC channel as the
values, so the parent can merge per-worker metrics into its own
registry (:meth:`repro.obs.metrics.MetricsRegistry.merge`-style
aggregation at the call site in :mod:`.matrix`); the serial path
reports the identical structure for one block.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
from dataclasses import dataclass
from typing import Callable, Sequence

Pair = tuple[int, int, int]  # (condensed index, i, j)

#: Tasks handed to one worker at a time.  Large enough to amortize IPC,
#: small enough that ``n_jobs`` workers stay busy on uneven blocks.
DEFAULT_CHUNK_PAIRS = 2048

_WORKER_STATE: dict = {}


@dataclass(frozen=True)
class BlockInfo:
    """Telemetry for one evaluated block of pairs."""

    pairs: int
    seconds: float
    pid: int
    cache_hits: int = 0
    cache_misses: int = 0


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` knob: ``None``/``0``/negative → all cores."""
    if not n_jobs or n_jobs < 0:
        return max(os.cpu_count() or 1, 1)
    return n_jobs


def _init_worker(metric, items) -> None:
    _WORKER_STATE["metric"] = metric
    _WORKER_STATE["items"] = items


def _evaluate_block(metric, items,
                    block: Sequence[Pair],
                    ) -> tuple[list[tuple[int, float]], BlockInfo]:
    started = time.perf_counter()
    pred_info = getattr(metric, "pred_cache_info", None)
    before = pred_info() if pred_info is not None else None
    entries = [(k, metric(items[i], items[j])) for k, i, j in block]
    elapsed = time.perf_counter() - started
    hits = misses = 0
    if before is not None:
        after = pred_info()
        hits = after.hits - before.hits
        misses = after.misses - before.misses
    return entries, BlockInfo(pairs=len(block), seconds=elapsed,
                              pid=os.getpid(), cache_hits=hits,
                              cache_misses=misses)


def _compute_block(block: list[Pair]
                   ) -> tuple[list[tuple[int, float]], BlockInfo]:
    return _evaluate_block(_WORKER_STATE["metric"],
                           _WORKER_STATE["items"], block)


def _serial(items: Sequence, metric: Callable, pairs: Sequence[Pair],
            chunk_pairs: int,
            ) -> tuple[list[tuple[int, float]], list[BlockInfo]]:
    entries: list[tuple[int, float]] = []
    infos: list[BlockInfo] = []
    for block in _blocks(pairs, chunk_pairs):
        block_entries, info = _evaluate_block(metric, items, block)
        entries.extend(block_entries)
        infos.append(info)
    return entries, infos


def _blocks(pairs: Sequence[Pair], size: int) -> list[list[Pair]]:
    return [list(pairs[start:start + size])
            for start in range(0, len(pairs), size)]


def compute_pairs(items: Sequence, metric: Callable[[object, object], float],
                  pairs: Sequence[Pair], n_jobs: int = 1,
                  chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
                  ) -> tuple[list[tuple[int, float]], list[BlockInfo]]:
    """Evaluate ``metric`` on every ``(k, i, j)`` pair, fanning out when asked.

    Returns ``(entries, infos)``: ``(k, value)`` tuples in unspecified
    order plus one :class:`BlockInfo` per evaluated chunk.
    ``n_jobs == 1`` (or a pool failure) runs the plain serial loop.
    """
    n_jobs = resolve_n_jobs(n_jobs)
    if n_jobs == 1 or len(pairs) == 0:
        return _serial(items, metric, pairs, chunk_pairs)
    blocks = _blocks(pairs, chunk_pairs)
    workers = min(n_jobs, len(blocks))
    try:
        context = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None)
        with context.Pool(workers, initializer=_init_worker,
                          initargs=(metric, items)) as pool:
            results = pool.map(_compute_block, blocks)
    except (OSError, ValueError, RuntimeError, AttributeError,
            pickle.PicklingError):
        return _serial(items, metric, pairs, chunk_pairs)
    entries = [entry for block_entries, _ in results
               for entry in block_entries]
    infos = [info for _, info in results]
    return entries, infos
